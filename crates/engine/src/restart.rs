//! Query-restart recovery: the paper's answer to message loss (§4.4.2).
//!
//! The shuffling operators never retransmit: when the transport loses data
//! (UD message loss), a Queue Pair fails, or flow control stops making
//! progress, every endpoint surfaces a typed [`ShuffleError`] instead of
//! hanging. This module supplies the layer above that contract — a
//! coordinator that runs a cluster-wide shuffle as a *query attempt*,
//! collects every worker's result, and on a restartable error tears the
//! exchange down and re-runs the query from scratch with capped
//! exponential backoff (all in virtual time, so recovery latency is
//! measurable and deterministic).
//!
//! Exactly-once delivery holds per *query*, not per attempt: a failed
//! attempt's partial output is discarded by the caller (the `sink` closure
//! is told which attempt each batch belongs to), and the winning attempt
//! replays the source from the beginning.
//!
//! Restart bookkeeping lands in the flight recorder (`query_restart` /
//! `query_recovered` events on the coordinator's track) and the metrics
//! registry (`engine.restarts`, `engine.recovery_ns`), so chaos traces
//! show exactly when the query gave up on an attempt and how long the
//! outage cost.

use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::{
    CostModel, Exchange, ExchangeConfig, Operator, ReceiveOperator, RowBatch, ShuffleError,
    ShuffleOperator, StreamState,
};
use rshuffle_obs::{names, EventKind, Labels};
use rshuffle_simnet::{Gate, NodeId, SimContext, SimDuration};
use rshuffle_verbs::VerbsRuntime;

/// Retry policy for [`run_shuffle_with_restart`].
#[derive(Clone, Copy, Debug)]
pub struct RestartPolicy {
    /// Maximum number of restarts (attempts = restarts + 1).
    pub max_restarts: u32,
    /// Backoff before the first restart; doubles per restart.
    pub initial_backoff: SimDuration,
    /// Backoff cap.
    pub max_backoff: SimDuration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 4,
            initial_backoff: SimDuration::from_micros(100),
            max_backoff: SimDuration::from_millis(10),
        }
    }
}

/// Outcome of a restartable query run, readable after `Cluster::run`.
#[derive(Clone, Debug, Default)]
pub struct QueryReport {
    /// Rows delivered to sinks by the successful attempt (0 on failure).
    pub rows: u64,
    /// Payload bytes delivered by the successful attempt.
    pub bytes: u64,
    /// Restarts performed (0 = first attempt succeeded).
    pub restarts: u32,
    /// Virtual time from the first observed failure to successful
    /// completion; `None` when no attempt failed.
    pub recovery: Option<SimDuration>,
    /// The representative error of each failed attempt, in order.
    pub attempt_errors: Vec<ShuffleError>,
    /// `Some(e)` when the query gave up (error not restartable, or the
    /// restart budget was exhausted); `None` on success.
    pub failure: Option<ShuffleError>,
}

impl QueryReport {
    /// True when some attempt delivered the query to completion.
    pub fn succeeded(&self) -> bool {
        self.failure.is_none()
    }
}

/// Whether an error is worth a fresh attempt. Configuration errors and
/// impossible memory budgets are deterministic and would fail
/// identically; everything else (message loss, stalls, completion
/// errors, verbs failures) is transient fabric state that a rebuilt
/// exchange escapes.
pub(crate) fn restartable(e: &ShuffleError) -> bool {
    !matches!(
        e,
        ShuffleError::Config(_) | ShuffleError::BudgetImpossible { .. }
    )
}

/// How one query attempt ended, as seen by
/// [`AttemptHooks::after_attempt`].
#[derive(Debug)]
pub enum AttemptEnd<'a> {
    /// The attempt delivered the query to completion.
    Success,
    /// The attempt failed with a restartable error; another attempt
    /// follows after backoff.
    Retry(&'a ShuffleError),
    /// The attempt failed terminally (non-restartable error, exhausted
    /// restart budget, or the exchange would not build).
    Failure(&'a ShuffleError),
}

/// Hook invoked before each attempt; an `Err` fails the query without
/// running the attempt.
pub type BeforeAttempt = Box<dyn Fn(&SimContext, u32) -> Result<(), ShuffleError> + Send + Sync>;
/// Hook invoked after each attempt with the attempt's end state.
pub type AfterAttempt = Box<dyn Fn(&SimContext, u32, &AttemptEnd<'_>) + Send + Sync>;

/// Per-attempt callbacks for [`run_shuffle_with_restart_hooks`]: the
/// seam the multi-query scheduler plugs into. `before_attempt` runs on
/// the coordinator thread before the exchange is built (admission — may
/// block in virtual time); `after_attempt` runs once the attempt's
/// outcome is known (release). A restarting query therefore gives its
/// slot back and re-enters admission at the back of the queue instead
/// of holding resources across the backoff.
pub struct AttemptHooks {
    /// Runs before the attempt's exchange is built.
    pub before_attempt: BeforeAttempt,
    /// Runs after the attempt's outcome is known.
    pub after_attempt: AfterAttempt,
}

impl Default for AttemptHooks {
    fn default() -> Self {
        AttemptHooks {
            before_attempt: Box::new(|_, _| Ok(())),
            after_attempt: Box::new(|_, _, _| {}),
        }
    }
}

/// Per-worker result of one attempt: rows and bytes delivered to the
/// sink, or the error that ended the worker.
pub(crate) type WorkerResult = Result<(u64, u64), ShuffleError>;

/// Shared factory producing the source operator for an (attempt, node).
type SourceFactory = Arc<dyn Fn(u32, NodeId) -> Arc<dyn Operator> + Send + Sync>;

/// Shared sink receiving every delivered `(attempt, node, tid, batch)`.
type AttemptSink = Arc<dyn Fn(u32, NodeId, usize, &RowBatch) + Send + Sync>;

/// Per-worker delivery callback, pre-bound to its attempt and node.
type Deliver = Box<dyn Fn(usize, &RowBatch) + Send + Sync>;

/// Runs a cluster-wide shuffle query under `policy`, restarting on
/// transient errors.
///
/// For every attempt the coordinator (a simulated thread on node 0)
/// builds a fresh [`Exchange`] from `config`, spawns `config.threads`
/// send workers pumping `make_source(attempt, node)` through the shuffle
/// operator and `config.threads` receive workers streaming `row_size`-byte
/// rows into `sink(attempt, node, tid, batch)` on every node, then blocks
/// until all workers report. Restartable failures trigger a teardown —
/// endpoints are dropped, fresh Queue Pairs are built — and a capped
/// exponential backoff before the next attempt.
///
/// The returned report is populated when the simulation completes.
pub fn run_shuffle_with_restart(
    runtime: &Arc<VerbsRuntime>,
    config: &ExchangeConfig,
    policy: RestartPolicy,
    row_size: usize,
    make_source: impl Fn(u32, NodeId) -> Arc<dyn Operator> + Send + Sync + 'static,
    sink: impl Fn(u32, NodeId, usize, &RowBatch) + Send + Sync + 'static,
) -> Arc<Mutex<QueryReport>> {
    run_shuffle_with_restart_hooks(
        runtime,
        config,
        policy,
        row_size,
        make_source,
        sink,
        AttemptHooks::default(),
    )
}

/// [`run_shuffle_with_restart`] with per-attempt [`AttemptHooks`] — the
/// entry point the multi-query scheduler composes with. With default
/// hooks this is exactly `run_shuffle_with_restart`.
pub fn run_shuffle_with_restart_hooks(
    runtime: &Arc<VerbsRuntime>,
    config: &ExchangeConfig,
    policy: RestartPolicy,
    row_size: usize,
    make_source: impl Fn(u32, NodeId) -> Arc<dyn Operator> + Send + Sync + 'static,
    sink: impl Fn(u32, NodeId, usize, &RowBatch) + Send + Sync + 'static,
    hooks: AttemptHooks,
) -> Arc<Mutex<QueryReport>> {
    let report = Arc::new(Mutex::new(QueryReport::default()));
    let out = report.clone();
    let runtime = runtime.clone();
    let config = config.clone();
    let make_source: SourceFactory = Arc::new(make_source);
    let sink: AttemptSink = Arc::new(sink);
    let cluster = runtime.cluster().clone();
    let obs = cluster.obs().clone();
    cluster.clone().spawn(0, "query-coordinator", move |sim| {
        let cost = CostModel::from_profile(runtime.profile());
        let restarts_ctr = obs.metrics.counter(names::ENGINE_RESTARTS, Labels::node(0));
        let recovery_ctr = obs
            .metrics
            .counter(names::ENGINE_RECOVERY_NS, Labels::node(0));
        let mut rep = QueryReport::default();
        let mut first_failure = None;
        let mut backoff =
            crate::recovery::BackoffSchedule::new(policy.initial_backoff, policy.max_backoff);
        loop {
            let attempt = rep.restarts;
            // Admission (may block in virtual time); a hook error fails
            // the query before any resource is built.
            if let Err(e) = (hooks.before_attempt)(&sim, attempt) {
                rep.failure = Some(e);
                break;
            }
            let attempt_started = sim.now();
            let exchange = match Exchange::build(&runtime, &config) {
                Ok(ex) => ex,
                Err(e) => {
                    (hooks.after_attempt)(&sim, attempt, &AttemptEnd::Failure(&e));
                    rep.failure = Some(e);
                    break;
                }
            };
            let done: Gate<WorkerResult> = Gate::new(cluster.kernel(), SimDuration::ZERO);
            let expected = spawn_attempt(
                &cluster,
                &exchange,
                &config,
                &cost,
                attempt,
                row_size,
                &make_source,
                &sink,
                &done,
            );
            let mut rows = 0u64;
            let mut bytes = 0u64;
            let mut first_err: Option<ShuffleError> = None;
            for _ in 0..expected {
                match done.recv(&sim) {
                    Ok((r, b)) => {
                        rows += r;
                        bytes += b;
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            obs.recorder.span(
                0,
                sim.id().track(),
                &format!("query-attempt:{attempt}"),
                attempt_started.as_nanos(),
                sim.now().as_nanos(),
            );
            match first_err {
                None => {
                    rep.rows = rows;
                    rep.bytes = bytes;
                    if let Some(at) = first_failure {
                        let recovery = sim.now() - at;
                        rep.recovery = Some(recovery);
                        recovery_ctr.add(recovery.as_nanos());
                        obs.recorder.event(
                            0,
                            sim.id().track(),
                            sim.now().as_nanos(),
                            EventKind::QueryRecovered,
                            recovery.as_nanos(),
                        );
                    }
                    (hooks.after_attempt)(&sim, attempt, &AttemptEnd::Success);
                    break;
                }
                Some(e) => {
                    first_failure.get_or_insert(sim.now());
                    let can_retry = restartable(&e) && rep.restarts < policy.max_restarts;
                    rep.attempt_errors.push(e.clone());
                    if !can_retry {
                        (hooks.after_attempt)(&sim, attempt, &AttemptEnd::Failure(&e));
                        rep.failure = Some(e);
                        break;
                    }
                    (hooks.after_attempt)(&sim, attempt, &AttemptEnd::Retry(&e));
                    rep.restarts += 1;
                    restarts_ctr.inc();
                    obs.recorder.event(
                        0,
                        sim.id().track(),
                        sim.now().as_nanos(),
                        EventKind::QueryRestart,
                        rep.restarts as u64,
                    );
                    sim.sleep(backoff.next());
                }
            }
        }
        *out.lock() = rep;
    });
    report
}

/// Spawns all send and receive workers for one attempt; returns how many
/// results the coordinator must collect from `done`.
#[allow(clippy::too_many_arguments)]
fn spawn_attempt(
    cluster: &rshuffle_simnet::Cluster,
    exchange: &Exchange,
    config: &ExchangeConfig,
    cost: &CostModel,
    attempt: u32,
    row_size: usize,
    make_source: &SourceFactory,
    sink: &AttemptSink,
    done: &Gate<WorkerResult>,
) -> usize {
    let threads = config.threads;
    let mut expected = 0;
    for node in 0..cluster.nodes() {
        if !exchange.send[node].is_empty() {
            let mut shuffle = ShuffleOperator::with_lanes(
                make_source(attempt, node),
                exchange.send[node].clone(),
                exchange.groups[node].clone(),
                threads,
                cost.clone(),
            );
            if let Some(runner) = &exchange.phases {
                shuffle = shuffle.with_phases(runner.clone(), node);
            }
            let op: Arc<dyn Operator> = Arc::new(shuffle);
            for tid in 0..threads {
                let name = format!("a{attempt}-shuffle-{node}-{tid}");
                spawn_worker(cluster, node, &name, op.clone(), tid, None, done.clone());
                expected += 1;
            }
        }
        if !exchange.recv[node].is_empty() {
            let op: Arc<dyn Operator> = Arc::new(ReceiveOperator::with_lanes(
                exchange.recv[node].clone(),
                row_size,
                1024,
                threads,
                cost.clone(),
            ));
            for tid in 0..threads {
                let name = format!("a{attempt}-recv-{node}-{tid}");
                let sink = sink.clone();
                let deliver: Deliver = Box::new(move |tid, batch| sink(attempt, node, tid, batch));
                spawn_worker(
                    cluster,
                    node,
                    &name,
                    op.clone(),
                    tid,
                    Some(deliver),
                    done.clone(),
                );
                expected += 1;
            }
        }
    }
    expected
}

/// One worker: pumps `op` with `tid` until depletion or error, streaming
/// non-empty batches to `deliver`, then reports through `done`.
pub(crate) fn spawn_worker(
    cluster: &rshuffle_simnet::Cluster,
    node: NodeId,
    name: &str,
    op: Arc<dyn Operator>,
    tid: usize,
    deliver: Option<Deliver>,
    done: Gate<WorkerResult>,
) {
    cluster.spawn(node, name, move |sim: SimContext| {
        let mut rows = 0u64;
        let mut bytes = 0u64;
        let result = loop {
            match op.next(&sim, tid) {
                Ok((state, batch)) => {
                    if !batch.is_empty() {
                        rows += batch.rows() as u64;
                        bytes += batch.bytes() as u64;
                        if let Some(deliver) = &deliver {
                            deliver(tid, &batch);
                        }
                    }
                    if state == StreamState::Depleted {
                        break Ok((rows, bytes));
                    }
                }
                Err(e) => break Err(e),
            }
        };
        done.push(result);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Generator;
    use rshuffle::ShuffleAlgorithm;
    use rshuffle_simnet::DeviceProfile;

    #[test]
    fn fault_free_query_succeeds_without_restart() {
        let nodes = 2;
        let threads = 2;
        let mut config = ExchangeConfig::repartition(ShuffleAlgorithm::MEMQ_SR, nodes, threads);
        config.message_size = 4096;
        let runtime = config.build_runtime(DeviceProfile::edr());
        let delivered = Arc::new(Mutex::new(0u64));
        let d = delivered.clone();
        let report = run_shuffle_with_restart(
            &runtime,
            &config,
            RestartPolicy::default(),
            16,
            |_, _| Arc::new(Generator::new(500, 2, 7)) as Arc<dyn Operator>,
            move |_, _, _, batch| *d.lock() += batch.rows() as u64,
        );
        runtime.cluster().run();
        let rep = report.lock();
        assert!(rep.succeeded(), "failure: {:?}", rep.failure);
        assert_eq!(rep.restarts, 0);
        assert_eq!(rep.recovery, None);
        assert_eq!(rep.rows, (nodes * threads * 500) as u64);
        assert_eq!(rep.rows, *delivered.lock());
    }
}
