//! Fragment drivers: pump a pipeline to completion on simulated worker
//! threads and report per-fragment statistics.

use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::{Operator, RowBatch, ShuffleError, StreamState};
use rshuffle_obs::{names, EventKind, Labels};
use rshuffle_simnet::{Cluster, NodeId, SimTime};

/// Statistics from driving one fragment.
///
/// This struct is a legacy per-fragment view; the same rollups also land
/// in the cluster's [`rshuffle_obs::MetricsRegistry`] under the
/// `engine.rows` / `engine.bytes` / `engine.errors` series labelled with
/// the fragment's node.
#[derive(Clone, Debug, Default)]
pub struct FragmentStats {
    /// Rows that reached the sink.
    pub rows: u64,
    /// Payload bytes that reached the sink.
    pub bytes: u64,
    /// Virtual time the last worker finished at.
    pub finished_at: SimTime,
    /// Errors raised by workers.
    pub errors: Vec<ShuffleError>,
}

/// Spawns `threads` workers on `node` that pull `op` to depletion,
/// streaming every batch into `sink` (which may be a no-op). Statistics are
/// accumulated into the returned handle, readable after
/// [`Cluster::run`].
pub fn drive_to_sink(
    cluster: &Cluster,
    node: NodeId,
    name: &str,
    op: Arc<dyn Operator>,
    threads: usize,
    sink: impl Fn(usize, &RowBatch) + Send + Sync + 'static,
) -> Arc<Mutex<FragmentStats>> {
    let stats = Arc::new(Mutex::new(FragmentStats::default()));
    let sink = Arc::new(sink);
    let obs = cluster.obs().clone();
    let labels = Labels::node(node as u32);
    let rows_ctr = obs.metrics.counter(names::ENGINE_ROWS, labels);
    let bytes_ctr = obs.metrics.counter(names::ENGINE_BYTES, labels);
    let errors_ctr = obs.metrics.counter(names::ENGINE_ERRORS, labels);
    for tid in 0..threads {
        let op = op.clone();
        let stats = stats.clone();
        let sink = sink.clone();
        let obs = obs.clone();
        let rows_ctr = rows_ctr.clone();
        let bytes_ctr = bytes_ctr.clone();
        let errors_ctr = errors_ctr.clone();
        let span_name = format!("fragment:{name}");
        cluster.spawn(node, &format!("{name}-{tid}"), move |sim| {
            let started = sim.now();
            let mut worker_rows = 0u64;
            loop {
                match op.next(&sim, tid) {
                    Ok((state, batch)) => {
                        if !batch.is_empty() {
                            rows_ctr.add(batch.rows() as u64);
                            bytes_ctr.add(batch.bytes() as u64);
                            worker_rows += batch.rows() as u64;
                            let mut s = stats.lock();
                            s.rows += batch.rows() as u64;
                            s.bytes += batch.bytes() as u64;
                            sink(tid, &batch);
                        }
                        if state == StreamState::Depleted {
                            let mut s = stats.lock();
                            s.finished_at = s.finished_at.max(sim.now());
                            break;
                        }
                    }
                    Err(e) => {
                        errors_ctr.inc();
                        let mut s = stats.lock();
                        s.errors.push(e);
                        s.finished_at = s.finished_at.max(sim.now());
                        break;
                    }
                }
            }
            let track = sim.id().track();
            let now = sim.now().as_nanos();
            obs.recorder.span(
                sim.node() as u32,
                track,
                &span_name,
                started.as_nanos(),
                now,
            );
            obs.recorder.event(
                sim.node() as u32,
                track,
                now,
                EventKind::FragmentDone,
                worker_rows,
            );
        });
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ComputeStage, Filter, Generator, HashAggregate, HashJoin, MemScan, Project};
    use crate::table::Table;
    use rshuffle_simnet::{DeviceProfile, SimDuration};

    fn cluster() -> Cluster {
        Cluster::new(1, DeviceProfile::edr())
    }

    /// Little-endian u64 at `row[at..at + 8]`.
    fn le_u64(row: &[u8], at: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&row[at..at + 8]);
        u64::from_le_bytes(b)
    }

    /// Little-endian i64 at `row[at..at + 8]`.
    fn le_i64(row: &[u8], at: usize) -> i64 {
        le_u64(row, at) as i64
    }

    fn key(row: &[u8]) -> u64 {
        le_u64(row, 0)
    }

    #[test]
    fn generator_emits_exact_row_count() {
        let c = cluster();
        let gen = Arc::new(Generator::new(5000, 3, 42));
        let stats = drive_to_sink(&c, 0, "gen", gen, 3, |_, _| {});
        c.run();
        let s = stats.lock();
        assert_eq!(s.rows, 15_000);
        assert_eq!(s.bytes, 15_000 * 16);
        assert!(s.errors.is_empty());
    }

    #[test]
    fn generator_keys_are_distinct_and_spread() {
        // splitmix64 over distinct inputs yields distinct outputs.
        let mut keys: Vec<u64> = (0..10_000)
            .map(|seq| key(&Generator::row(7, 0, seq)))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 10_000);
        // Roughly uniform: each quartile of the key space gets 15–35%.
        let q = u64::MAX / 4;
        for quartile in 0..4u64 {
            let count = keys
                .iter()
                .filter(|&&k| k / q.max(1) == quartile || (quartile == 3 && k / q.max(1) > 3))
                .count();
            assert!(
                (1_500..=3_500).contains(&count),
                "quartile {quartile} holds {count} of 10000"
            );
        }
    }

    #[test]
    fn memscan_visits_every_row_once() {
        let mut b = Table::builder(8);
        for i in 0..10_000u64 {
            b.push(&i.to_le_bytes());
        }
        let table = b.build();
        let c = cluster();
        let scan = Arc::new(MemScan::new(table, 4, 8e9));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let stats = drive_to_sink(&c, 0, "scan", scan, 4, move |_, batch| {
            for row in batch.iter() {
                seen2
                    .lock()
                    .push(le_u64(row, 0));
            }
        });
        c.run();
        assert!(stats.lock().errors.is_empty());
        let mut seen = seen.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn scan_time_tracks_bandwidth() {
        let mut b = Table::builder(16);
        for i in 0..100_000u64 {
            b.push(&[i.to_le_bytes(), i.to_le_bytes()].concat());
        }
        let table = b.build();
        let c = cluster();
        // 1.6 MB at 8 GB/s on one thread ≈ 200 µs.
        let scan = Arc::new(MemScan::new(table, 1, 8e9));
        drive_to_sink(&c, 0, "scan", scan, 1, |_, _| {});
        c.run();
        let us = c.kernel().now().as_nanos() as f64 / 1e3;
        assert!((150.0..300.0).contains(&us), "scan took {us} µs");
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let c = cluster();
        let gen = Arc::new(Generator::new(4000, 2, 1));
        let filter = Arc::new(Filter::new(
            gen,
            |row| key(row).is_multiple_of(2),
            SimDuration::from_nanos(2),
        ));
        let stats = drive_to_sink(&c, 0, "filter", filter, 2, |_, _| {});
        c.run();
        let rows = stats.lock().rows;
        // ~50% selectivity on a uniform key.
        assert!((3_200..4_800).contains(&rows), "kept {rows} of 8000");
    }

    #[test]
    fn project_narrows_rows() {
        let c = cluster();
        let gen = Arc::new(Generator::new(1000, 1, 1));
        let proj = Arc::new(Project::new(
            gen,
            8,
            |row, out| out.extend_from_slice(&row[0..8]),
            SimDuration::from_nanos(1),
        ));
        let stats = drive_to_sink(&c, 0, "proj", proj, 1, |_, batch| {
            assert_eq!(batch.row_size(), 8);
        });
        c.run();
        let s = stats.lock();
        assert_eq!(s.rows, 1000);
        assert_eq!(s.bytes, 8000);
    }

    #[test]
    fn hash_join_matches_equal_keys() {
        let c = cluster();
        // Build: keys 0..1000 (one row each); probe: keys 0..2000.
        let mut b = Table::builder(8);
        for i in 0..1000u64 {
            b.push(&i.to_le_bytes());
        }
        let build = Arc::new(MemScan::new(b.build(), 2, 8e9));
        let mut p = Table::builder(8);
        for i in 0..2000u64 {
            p.push(&i.to_le_bytes());
        }
        let probe = Arc::new(MemScan::new(p.build(), 2, 8e9));
        let join = Arc::new(HashJoin::new(
            c.kernel(),
            build,
            probe,
            key,
            key,
            |b, p, out| {
                out.extend_from_slice(&b[0..8]);
                out.extend_from_slice(&p[0..8]);
            },
            16,
            2,
            SimDuration::from_nanos(4),
        ));
        let stats = drive_to_sink(&c, 0, "join", join, 2, |_, batch| {
            for row in batch.iter() {
                assert_eq!(row[0..8], row[8..16], "join key mismatch");
            }
        });
        c.run();
        let s = stats.lock();
        assert!(s.errors.is_empty(), "{:?}", s.errors);
        assert_eq!(s.rows, 1000, "exactly the matching keys join");
    }

    #[test]
    fn hash_join_handles_duplicate_build_keys() {
        let c = cluster();
        let mut b = Table::builder(8);
        for _ in 0..3 {
            for i in 0..10u64 {
                b.push(&i.to_le_bytes());
            }
        }
        let build = Arc::new(MemScan::new(b.build(), 1, 8e9));
        let mut p = Table::builder(8);
        for i in 0..10u64 {
            p.push(&i.to_le_bytes());
        }
        let probe = Arc::new(MemScan::new(p.build(), 1, 8e9));
        let join = Arc::new(HashJoin::new(
            c.kernel(),
            build,
            probe,
            key,
            key,
            |b, _p, out| out.extend_from_slice(&b[0..8]),
            8,
            1,
            SimDuration::from_nanos(4),
        ));
        let stats = drive_to_sink(&c, 0, "join", join, 1, |_, _| {});
        c.run();
        assert_eq!(stats.lock().rows, 30, "3 build duplicates × 10 probe keys");
    }

    #[test]
    fn hash_aggregate_sums_groups() {
        let c = cluster();
        // 16-byte rows: key % 8 in [0..8), value = 1.
        let mut b = Table::builder(16);
        for i in 0..4000u64 {
            let mut row = Vec::new();
            row.extend_from_slice(&(i % 8).to_le_bytes());
            row.extend_from_slice(&1u64.to_le_bytes());
            b.push(&row);
        }
        let scan = Arc::new(MemScan::new(b.build(), 2, 8e9));
        let agg = Arc::new(HashAggregate::new(
            c.kernel(),
            scan,
            key,
            |row| {
                let mut acc = row[0..8].to_vec();
                acc.extend_from_slice(
                    &le_u64(row, 8).to_le_bytes(),
                );
                acc
            },
            |acc, row| {
                let cur = le_u64(acc, 8);
                let add = le_u64(row, 8);
                acc[8..16].copy_from_slice(&(cur + add).to_le_bytes());
            },
            16,
            2,
            SimDuration::from_nanos(4),
        ));
        let groups = Arc::new(Mutex::new(Vec::new()));
        let g2 = groups.clone();
        let stats = drive_to_sink(&c, 0, "agg", agg, 2, move |_, batch| {
            for row in batch.iter() {
                g2.lock().push((
                    le_u64(row, 0),
                    le_u64(row, 8),
                ));
            }
        });
        c.run();
        assert!(stats.lock().errors.is_empty());
        let mut groups = groups.lock().clone();
        groups.sort_unstable();
        assert_eq!(groups.len(), 8);
        for (k, sum) in groups {
            assert!(k < 8);
            assert_eq!(sum, 500, "group {k}");
        }
    }

    #[test]
    fn union_all_concatenates_children() {
        use crate::ops::UnionAll;
        let c = cluster();
        let a = Arc::new(Generator::new(1_000, 2, 1));
        let b = Arc::new(Generator::new(500, 2, 2));
        let union = Arc::new(UnionAll::new(vec![a, b], 2));
        let stats = drive_to_sink(&c, 0, "union", union, 2, |_, _| {});
        c.run();
        assert_eq!(stats.lock().rows, 2 * 1_000 + 2 * 500);
    }

    #[test]
    fn union_all_with_empty_children() {
        use crate::ops::UnionAll;
        let c = cluster();
        let empty = Arc::new(MemScan::new(Table::empty(16), 1, 8e9));
        let data = Arc::new(Generator::new(100, 1, 3));
        let empty2 = Arc::new(MemScan::new(Table::empty(16), 1, 8e9));
        let union = Arc::new(UnionAll::new(vec![empty, data, empty2], 1));
        let stats = drive_to_sink(&c, 0, "union", union, 1, |_, _| {});
        c.run();
        assert_eq!(stats.lock().rows, 100);
    }

    #[test]
    fn semi_join_passes_only_matching_probes() {
        use crate::ops::HashSemiJoin;
        let c = cluster();
        let mut b = Table::builder(8);
        for i in (0..1000u64).step_by(2) {
            b.push(&i.to_le_bytes()); // Even keys only.
        }
        let build = Arc::new(MemScan::new(b.build(), 2, 8e9));
        let mut p = Table::builder(8);
        for i in 0..1000u64 {
            p.push(&i.to_le_bytes());
        }
        let probe = Arc::new(MemScan::new(p.build(), 2, 8e9));
        let semi = Arc::new(HashSemiJoin::new(
            c.kernel(),
            build,
            probe,
            key,
            key,
            2,
            SimDuration::from_nanos(4),
        ));
        let stats = drive_to_sink(&c, 0, "semi", semi, 2, |_, batch| {
            for row in batch.iter() {
                assert_eq!(key(row) % 2, 0, "odd key leaked through the semi join");
            }
        });
        c.run();
        assert_eq!(stats.lock().rows, 500);
    }

    #[test]
    fn semi_join_with_empty_build_side_emits_nothing() {
        use crate::ops::HashSemiJoin;
        let c = cluster();
        let build = Arc::new(MemScan::new(Table::empty(8), 1, 8e9));
        let mut p = Table::builder(8);
        for i in 0..100u64 {
            p.push(&i.to_le_bytes());
        }
        let probe = Arc::new(MemScan::new(p.build(), 1, 8e9));
        let semi = Arc::new(HashSemiJoin::new(
            c.kernel(),
            build,
            probe,
            key,
            key,
            1,
            SimDuration::from_nanos(4),
        ));
        let stats = drive_to_sink(&c, 0, "semi", semi, 1, |_, _| {});
        c.run();
        assert_eq!(stats.lock().rows, 0);
    }

    #[test]
    fn top_n_keeps_the_largest_keys_in_order() {
        use crate::ops::TopN;
        let c = cluster();
        let mut b = Table::builder(8);
        // Shuffled values 0..1000.
        for i in 0..1000u64 {
            let v = (i * 617) % 1000;
            b.push(&(v as i64).to_le_bytes());
        }
        let scan = Arc::new(MemScan::new(b.build(), 3, 8e9));
        let top = Arc::new(TopN::new(
            c.kernel(),
            scan,
            |row| le_i64(row, 0),
            10,
            3,
            SimDuration::from_nanos(2),
        ));
        let rows = Arc::new(Mutex::new(Vec::new()));
        let rows2 = rows.clone();
        let stats = drive_to_sink(&c, 0, "top", top, 3, move |_, batch| {
            for row in batch.iter() {
                rows2
                    .lock()
                    .push(le_i64(row, 0));
            }
        });
        c.run();
        assert!(stats.lock().errors.is_empty());
        let rows = rows.lock().clone();
        assert_eq!(rows, (990..1000).rev().map(|v| v as i64).collect::<Vec<_>>());
    }

    #[test]
    fn compute_stage_slows_the_pipeline() {
        let run = |per_batch| {
            let c = cluster();
            let gen = Arc::new(Generator::new(10_240, 1, 1));
            let staged = Arc::new(ComputeStage::new(gen, per_batch));
            drive_to_sink(&c, 0, "stage", staged, 1, |_, _| {});
            c.run();
            c.kernel().now()
        };
        let fast = run(SimDuration::ZERO);
        let slow = run(SimDuration::from_micros(10));
        // 10 batches of 1024 rows at +10 µs each.
        let delta = (slow - fast).as_nanos();
        assert_eq!(delta, 100_000, "compute stage must add exactly 10×10µs");
    }
}
