//! Multi-query workload driver: runs N shuffle queries through the
//! admission scheduler on one simulated cluster.
//!
//! Each query gets its own coordinator (the restart orchestrator of
//! [`crate::restart`]) whose per-attempt hooks go through
//! [`Scheduler::admit`] / [`Scheduler::release`]: every attempt —
//! including a restart after a transient failure — re-enters admission
//! at the back of the queue, returns its registered memory, and gives
//! its fairness weight back while backing off. Queries are isolated on
//! the shared fabric by their [`FlowId`] (the query id) and by disjoint
//! endpoint-id spaces ([`ENDPOINT_ID_STRIDE`]).

use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::{
    Advice, AdvisorSignals, AlgorithmAdvisor, ExchangeConfig, Operator, RowBatch, ShuffleError,
};
use rshuffle_obs::EventKind;
use rshuffle_sched::{Admission, QueryRequest, ReleaseOutcome, Scheduler};
use rshuffle_simnet::{FlowId, NodeId, SimDuration, SimTime};
use rshuffle_verbs::VerbsRuntime;

use crate::restart::{
    run_shuffle_with_restart_hooks, AttemptEnd, AttemptHooks, QueryReport, RestartPolicy,
};

/// Gap between the endpoint-id spaces of consecutive query ids: room
/// for 32768 endpoints per query, far above any simulated plan.
pub const ENDPOINT_ID_STRIDE: u32 = 1 << 16;

/// One query of a workload.
#[derive(Clone)]
pub struct QuerySpec {
    /// Query id; doubles as the fabric flow id and scales the
    /// endpoint-id base. Must be unique within the workload.
    pub id: u32,
    /// The exchange to run. `flow` and `endpoint_id_base` are
    /// overwritten from `id`.
    pub config: ExchangeConfig,
    /// Restart policy for transient failures.
    pub policy: RestartPolicy,
    /// Row size streamed by the receive operators.
    pub row_size: usize,
    /// Weighted-fair bandwidth weight (1 = equal share).
    pub weight: u64,
    /// Priority under the scheduler's priority policy.
    pub priority: i32,
}

impl QuerySpec {
    /// A weight-1, priority-0 query with the default restart policy.
    pub fn new(id: u32, config: ExchangeConfig, row_size: usize) -> Self {
        QuerySpec {
            id,
            config,
            policy: RestartPolicy::default(),
            row_size,
            weight: 1,
            priority: 0,
        }
    }

    /// As [`QuerySpec::new`], but lets the [`AlgorithmAdvisor`] pick
    /// the shuffle design and phase policy from what is observable on
    /// `runtime` and `scheduler` before the query runs — the spec's
    /// configured algorithm is only the fallback shape the signals are
    /// derived from. Returns the spec plus the advice that rewrote it.
    pub fn advised(
        id: u32,
        config: ExchangeConfig,
        row_size: usize,
        runtime: &Arc<VerbsRuntime>,
        scheduler: Option<&Scheduler>,
    ) -> (Self, Advice) {
        let mut spec = QuerySpec::new(id, config, row_size);
        let signals = advisor_signals(runtime, scheduler, &spec.config);
        let advice = AlgorithmAdvisor::advise(&signals);
        spec.config.algorithm = advice.pick();
        spec.config.phase = advice.phase;
        record_advice(runtime, &advice);
        (spec, advice)
    }
}

/// Collects the advisor's observable inputs for `config` on `runtime`:
/// plan shape from the config itself, load from `scheduler`, topology
/// shape (including incast modeling) from the fabric, and declared
/// volume skew from the plan's per-pair byte estimate when one is
/// attached.
pub fn advisor_signals(
    runtime: &Arc<VerbsRuntime>,
    scheduler: Option<&Scheduler>,
    config: &ExchangeConfig,
) -> AdvisorSignals {
    let nodes = runtime.cluster().nodes();
    let mut signals = AdvisorSignals::baseline(nodes, config.threads, config.message_size);
    signals.fanout = config
        .groups
        .iter()
        .map(|g| g.destinations().len())
        .max()
        .unwrap_or(0);
    signals.broadcast = config
        .groups
        .iter()
        .any(|g| (0..g.len()).any(|i| g.group(i).len() > 1));
    signals.oversubscription = config.topology.oversubscription();
    signals.incast = config.topology.incast().is_some();
    if let Some(load) = scheduler.map(|s| s.load_signals()) {
        signals.co_runners = load.co_runners;
        signals.mem_headroom = load.mem_headroom;
    }
    if let Some(bytes) = &config.phase_bytes {
        let totals: Vec<u64> = bytes.iter().map(|row| row.iter().sum()).collect();
        let max = totals.iter().copied().max().unwrap_or(0);
        let mean = totals.iter().sum::<u64>() as f64 / totals.len().max(1) as f64;
        if mean > 0.0 {
            signals.skew = max as f64 / mean;
        }
    }
    signals
}

/// Publishes an advisor decision: bumps `advisor.decisions` and drops
/// an [`EventKind::AdvisorDecision`] trace instant whose argument
/// encodes the picked design (`mode * 8 + imp`, matching
/// [`ShuffleAlgorithm`]'s field order).
fn record_advice(runtime: &Arc<VerbsRuntime>, advice: &Advice) {
    let obs = runtime.obs();
    obs.metrics
        .counter(
            rshuffle_obs::names::ADVISOR_DECISIONS,
            rshuffle_obs::Labels::GLOBAL,
        )
        .inc();
    let pick = advice.pick();
    let code = (pick.mode as u64) * 8 + pick.imp as u64;
    let now = runtime.kernel().now().as_nanos();
    obs.recorder
        .event(0, 0, now, EventKind::AdvisorDecision, code);
}

/// Virtual-time milestones of one query's trip through the scheduler,
/// populated while the simulation runs.
#[derive(Clone, Debug, Default)]
pub struct QueryTiming {
    /// When the query first requested admission.
    pub submitted: Option<SimTime>,
    /// When its first admission was granted.
    pub first_admitted: Option<SimTime>,
    /// When it completed successfully (`None` on failure).
    pub completed: Option<SimTime>,
    /// Total admission-queue wait across all attempts.
    pub queue_wait: SimDuration,
    /// Admissions granted (attempts started).
    pub admissions: u32,
}

impl QueryTiming {
    /// Submission-to-completion virtual latency, once finished.
    pub fn latency(&self) -> Option<SimDuration> {
        Some(self.completed? - self.submitted?)
    }
}

/// Handle to one workload query's results, readable after
/// `Cluster::run`.
pub struct WorkloadHandle {
    /// The query id.
    pub query: u32,
    /// The restart orchestrator's report (rows, restarts, failure).
    pub report: Arc<Mutex<QueryReport>>,
    /// Scheduler-side timing milestones.
    pub timing: Arc<Mutex<QueryTiming>>,
}

/// Runs every query of `queries` through `scheduler` on `runtime`'s
/// cluster. Returns one handle per query (same order); results are
/// valid after `runtime.cluster().run()`.
///
/// `make_source(query, attempt, node)` builds the source operator and
/// `sink(query, attempt, node, tid, batch)` receives every delivered
/// batch — per-query, so sinks can keep attempt outputs apart exactly
/// like [`crate::restart::run_shuffle_with_restart`] does per attempt.
pub fn run_workload(
    runtime: &Arc<VerbsRuntime>,
    scheduler: &Arc<Scheduler>,
    queries: Vec<QuerySpec>,
    make_source: impl Fn(u32, u32, NodeId) -> Arc<dyn Operator> + Send + Sync + 'static,
    sink: impl Fn(u32, u32, NodeId, usize, &RowBatch) + Send + Sync + 'static,
) -> Vec<WorkloadHandle> {
    type SourceFactory = Arc<dyn Fn(u32, u32, NodeId) -> Arc<dyn Operator> + Send + Sync>;
    type WorkloadSink = Arc<dyn Fn(u32, u32, NodeId, usize, &RowBatch) + Send + Sync>;
    let make_source: SourceFactory = Arc::new(make_source);
    let sink: WorkloadSink = Arc::new(sink);
    let nodes = runtime.cluster().nodes();
    let mut handles = Vec::with_capacity(queries.len());
    for spec in queries {
        let mut config = spec.config.clone();
        config.flow = FlowId(spec.id);
        config.endpoint_id_base = spec.id * ENDPOINT_ID_STRIDE;
        let request = QueryRequest {
            id: spec.id,
            weight: spec.weight,
            priority: spec.priority,
            mem_per_node: (0..nodes)
                .map(|n| config.registered_bytes_estimate(runtime.profile(), n))
                .collect(),
        };
        let timing = Arc::new(Mutex::new(QueryTiming::default()));
        let slot: Arc<Mutex<Option<Admission>>> = Arc::new(Mutex::new(None));
        let before = {
            let scheduler = scheduler.clone();
            let timing = timing.clone();
            let slot = slot.clone();
            Box::new(move |sim: &rshuffle_simnet::SimContext, _attempt: u32| {
                {
                    let mut t = timing.lock();
                    t.submitted.get_or_insert(sim.now());
                }
                let adm = scheduler.admit(sim, &request)?;
                let mut t = timing.lock();
                t.first_admitted.get_or_insert(adm.admitted_at);
                t.queue_wait += adm.queue_wait();
                t.admissions += 1;
                drop(t);
                *slot.lock() = Some(adm);
                Ok::<(), ShuffleError>(())
            })
        };
        let after = {
            let scheduler = scheduler.clone();
            let timing = timing.clone();
            let slot = slot.clone();
            let obs = runtime.obs().clone();
            Box::new(
                move |sim: &rshuffle_simnet::SimContext, _attempt: u32, end: &AttemptEnd<'_>| {
                    // `before_attempt` always runs first and fills the
                    // slot; a missing admission would mean the attempt
                    // never started, so there is nothing to release.
                    let Some(adm) = slot.lock().take() else {
                        return;
                    };
                    let outcome = match end {
                        AttemptEnd::Success => ReleaseOutcome::Completed,
                        AttemptEnd::Retry(_) => ReleaseOutcome::Requeued,
                        AttemptEnd::Failure(_) => ReleaseOutcome::Failed,
                    };
                    scheduler.release(sim, adm, outcome);
                    if matches!(end, AttemptEnd::Success) {
                        let mut t = timing.lock();
                        t.completed = Some(sim.now());
                        // Submission-to-completion latency feeds the
                        // perf-trajectory percentile reports.
                        if let (Some(done), Some(sub)) = (t.completed, t.submitted) {
                            obs.metrics
                                .histogram(
                                    rshuffle_obs::names::ENGINE_QUERY_LATENCY_NS,
                                    rshuffle_obs::Labels::GLOBAL,
                                )
                                .record((done - sub).as_nanos());
                        }
                    }
                },
            )
        };
        let query = spec.id;
        let ms = make_source.clone();
        let sk = sink.clone();
        let report = run_shuffle_with_restart_hooks(
            runtime,
            &config,
            spec.policy,
            spec.row_size,
            move |attempt, node| ms(query, attempt, node),
            move |attempt, node, tid, batch| sk(query, attempt, node, tid, batch),
            AttemptHooks {
                before_attempt: before,
                after_attempt: after,
            },
        );
        handles.push(WorkloadHandle {
            query,
            report,
            timing,
        });
    }
    handles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Generator;
    use rshuffle::ShuffleAlgorithm;
    use rshuffle_sched::SchedulerConfig;
    use rshuffle_simnet::DeviceProfile;

    fn spec(id: u32, nodes: usize, threads: usize) -> QuerySpec {
        let mut config = ExchangeConfig::repartition(ShuffleAlgorithm::MEMQ_SR, nodes, threads);
        config.message_size = 4096;
        QuerySpec::new(id, config, 16)
    }

    #[test]
    fn two_queries_complete_and_release_everything() {
        let nodes = 2;
        let threads = 2;
        let config = spec(0, nodes, threads).config;
        let runtime = config.build_runtime(DeviceProfile::edr());
        let sched = Scheduler::new(&runtime, SchedulerConfig::default());
        let handles = run_workload(
            &runtime,
            &sched,
            vec![spec(0, nodes, threads), spec(1, nodes, threads)],
            |query, _, _| Arc::new(Generator::new(200, 2, 7 + query as u64)) as Arc<dyn Operator>,
            |_, _, _, _, _| {},
        );
        runtime.cluster().run();
        for h in &handles {
            let rep = h.report.lock();
            assert!(rep.succeeded(), "query {}: {:?}", h.query, rep.failure);
            assert_eq!(rep.rows, (nodes * threads * 200) as u64);
            let t = h.timing.lock();
            assert!(t.latency().is_some());
            assert_eq!(t.admissions, 1);
        }
        assert_eq!(sched.running(), 0);
        assert_eq!(sched.queued(), 0);
        for node in 0..nodes {
            assert_eq!(
                runtime.registered_bytes(node),
                0,
                "all query memory returned on node {node}"
            );
            assert_eq!(sched.reserved_bytes(node), 0);
        }
    }

    #[test]
    fn memory_estimate_matches_actual_registration() {
        // The admission controller budgets on the estimate; it is only
        // sound if the estimate equals what Exchange::build really pins.
        for algorithm in ShuffleAlgorithm::ALL {
            let nodes = 3;
            let mut config = ExchangeConfig::repartition(algorithm, nodes, 2);
            config.message_size = 4096;
            let runtime = config.build_runtime(DeviceProfile::edr());
            let exchange = rshuffle::Exchange::build(&runtime, &config)
                .unwrap_or_else(|e| panic!("{algorithm}: Exchange::build failed: {e}"));
            for node in 0..nodes {
                assert_eq!(
                    config.registered_bytes_estimate(runtime.profile(), node),
                    runtime.registered_bytes(node),
                    "{algorithm} node {node}"
                );
            }
            drop(exchange);
        }
    }

    #[test]
    fn budget_impossible_query_fails_fast_others_proceed() {
        let nodes = 2;
        let threads = 2;
        let config = spec(0, nodes, threads).config;
        let runtime = config.build_runtime(DeviceProfile::edr());
        let sched = Scheduler::new(
            &runtime,
            SchedulerConfig {
                // Far below any exchange's need: every query is
                // budget-impossible.
                mem_budget_per_node: Some(1024),
                ..SchedulerConfig::default()
            },
        );
        let handles = run_workload(
            &runtime,
            &sched,
            vec![spec(0, nodes, threads)],
            |_, _, _| Arc::new(Generator::new(50, 2, 7)) as Arc<dyn Operator>,
            |_, _, _, _, _| {},
        );
        runtime.cluster().run();
        let rep = handles[0].report.lock();
        assert!(matches!(
            rep.failure,
            Some(ShuffleError::BudgetImpossible { .. })
        ));
        assert_eq!(rep.restarts, 0, "budget errors must not burn restarts");
    }
}
