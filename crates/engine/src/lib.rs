//! A pull-based, vectorized, thread-parallel query engine — the substrate
//! the paper's Pythia prototype provides (§5: "a prototype open-source
//! in-memory query engine").
//!
//! Operators implement [`rshuffle::Operator`]: a `NEXT(tid)` call returning
//! a batch of fixed-width rows plus a stream state (Figure 1 of the paper).
//! The engine contributes:
//!
//! * [`Table`] — an in-memory row store with thread-partitioned scans,
//! * relational operators: [`MemScan`], [`Generator`], [`Filter`],
//!   [`Project`], [`HashJoin`], [`HashAggregate`], [`ComputeStage`],
//! * [`exec`] — fragment drivers that pump pipelines to completion on
//!   simulated worker threads and report timing,
//! * [`restart`] — a query-restart orchestrator that recovers from
//!   transient shuffle failures by rebuilding the exchange and re-running
//!   the query (§4.4.2), with capped virtual-time backoff,
//! * [`workload`] — a multi-query driver that runs N queries through the
//!   admission scheduler ([`rshuffle_sched`]) on one shared cluster.

#![warn(missing_docs)]

pub mod exec;
pub mod ops;
pub mod recovery;
pub mod restart;
pub mod table;
pub mod workload;

pub use exec::{drive_to_sink, FragmentStats};
pub use recovery::{
    degrade, run_shuffle_with_recovery, BackoffSchedule, RecoveryPolicy, RecoveryReport,
};
pub use restart::{
    run_shuffle_with_restart, run_shuffle_with_restart_hooks, AttemptEnd, AttemptHooks,
    QueryReport, RestartPolicy,
};
pub use ops::{
    ComputeStage, Filter, Generator, HashAggregate, HashJoin, HashSemiJoin, MemScan, Project, TopN,
    UnionAll,
};
pub use table::Table;
pub use workload::{
    advisor_signals, run_workload, QuerySpec, QueryTiming, WorkloadHandle, ENDPOINT_ID_STRIDE,
};
