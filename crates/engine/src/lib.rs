//! A pull-based, vectorized, thread-parallel query engine — the substrate
//! the paper's Pythia prototype provides (§5: "a prototype open-source
//! in-memory query engine").
//!
//! Operators implement [`rshuffle::Operator`]: a `NEXT(tid)` call returning
//! a batch of fixed-width rows plus a stream state (Figure 1 of the paper).
//! The engine contributes:
//!
//! * [`Table`] — an in-memory row store with thread-partitioned scans,
//! * relational operators: [`MemScan`], [`Generator`], [`Filter`],
//!   [`Project`], [`HashJoin`], [`HashAggregate`], [`ComputeStage`],
//! * [`exec`] — fragment drivers that pump pipelines to completion on
//!   simulated worker threads and report timing,
//! * [`restart`] — a query-restart orchestrator that recovers from
//!   transient shuffle failures by rebuilding the exchange and re-running
//!   the query (§4.4.2), with capped virtual-time backoff.

#![warn(missing_docs)]

pub mod exec;
pub mod ops;
pub mod restart;
pub mod table;

pub use exec::{drive_to_sink, FragmentStats};
pub use restart::{run_shuffle_with_restart, QueryReport, RestartPolicy};
pub use ops::{
    ComputeStage, Filter, Generator, HashAggregate, HashJoin, HashSemiJoin, MemScan, Project, TopN,
    UnionAll,
};
pub use table::Table;
