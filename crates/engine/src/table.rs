//! In-memory row storage.

use std::sync::Arc;

/// An immutable, fixed-width-row, in-memory table fragment (one node's
//  partition of a relation).
#[derive(Clone, Debug)]
pub struct Table {
    row_size: usize,
    data: Arc<Vec<u8>>,
}

/// Builder for [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    row_size: usize,
    data: Vec<u8>,
}

impl TableBuilder {
    /// Creates a builder for `row_size`-byte rows.
    pub fn new(row_size: usize) -> Self {
        assert!(row_size > 0, "rows must have positive width");
        TableBuilder {
            row_size,
            data: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not exactly `row_size` bytes.
    pub fn push(&mut self, row: &[u8]) {
        assert_eq!(row.len(), self.row_size, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Finalizes the table.
    pub fn build(self) -> Table {
        Table {
            row_size: self.row_size,
            data: Arc::new(self.data),
        }
    }
}

impl Table {
    /// Creates an empty table of `row_size`-byte rows.
    pub fn empty(row_size: usize) -> Self {
        TableBuilder::new(row_size).build()
    }

    /// Starts building a table.
    pub fn builder(row_size: usize) -> TableBuilder {
        TableBuilder::new(row_size)
    }

    /// Row width in bytes.
    pub fn row_size(&self) -> usize {
        self.row_size
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len() / self.row_size
    }

    /// Total bytes.
    pub fn bytes(&self) -> usize {
        self.data.len()
    }

    /// Returns row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[u8] {
        &self.data[i * self.row_size..(i + 1) * self.row_size]
    }

    /// The contiguous range of rows thread `tid` of `threads` should scan:
    /// an even block partition.
    pub fn thread_range(&self, tid: usize, threads: usize) -> std::ops::Range<usize> {
        assert!(tid < threads);
        let n = self.rows();
        let per = n.div_ceil(threads);
        let start = (tid * per).min(n);
        let end = ((tid + 1) * per).min(n);
        start..end
    }

    /// Iterates over all rows.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.data.chunks_exact(self.row_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: usize) -> Table {
        let mut b = Table::builder(8);
        for i in 0..rows {
            b.push(&(i as u64).to_le_bytes());
        }
        b.build()
    }

    #[test]
    fn build_and_read_back() {
        let t = table(10);
        assert_eq!(t.rows(), 10);
        assert_eq!(t.row(3), 3u64.to_le_bytes());
        assert_eq!(t.bytes(), 80);
    }

    #[test]
    fn thread_ranges_partition_exactly() {
        let t = table(10);
        let mut seen = Vec::new();
        for tid in 0..3 {
            for i in t.thread_range(tid, 3) {
                seen.push(i);
            }
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn thread_ranges_handle_more_threads_than_rows() {
        let t = table(2);
        let total: usize = (0..8).map(|tid| t.thread_range(tid, 8).len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn empty_table() {
        let t = Table::empty(16);
        assert_eq!(t.rows(), 0);
        assert!(t.thread_range(0, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_rejected() {
        let mut b = Table::builder(8);
        b.push(&[1, 2, 3]);
    }
}
