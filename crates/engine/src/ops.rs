//! Relational operators over the pull-based vectorized interface.
//!
//! Each operator charges a calibrated CPU cost per batch so that query
//! fragments consume realistic virtual time; the constants follow the cost
//! model of the device profiles (memory-bandwidth-bound scans, a few
//! nanoseconds per hashed tuple).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::{Operator, Result, RowBatch, ShuffleError, StreamState};
use rshuffle_simnet::{resource::transfer_time, SimBarrier, SimContext, SimDuration};

use crate::table::Table;

/// Default rows per vectorized batch.
pub const BATCH_ROWS: usize = 1024;

/// Extracts an unsigned 64-bit key from a row (hash keys, group keys).
pub type RowKeyFn = Arc<dyn Fn(&[u8]) -> u64 + Send + Sync>;
/// Extracts a signed ordering key from a row (Top-N sort keys).
pub type RowOrdKeyFn = Arc<dyn Fn(&[u8]) -> i64 + Send + Sync>;
/// Emits a joined output row from a build row and a probe row.
pub type JoinEmitFn = Arc<dyn Fn(&[u8], &[u8], &mut Vec<u8>) + Send + Sync>;
/// Folds a row into its group accumulator.
pub type FoldFn = Arc<dyn Fn(&mut Vec<u8>, &[u8]) + Send + Sync>;
/// Builds the initial accumulator for a new group.
pub type InitFn = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;
/// Min-heap of `(key, row)` keeping the N largest entries.
type TopHeap = std::collections::BinaryHeap<std::cmp::Reverse<(i64, Vec<u8>)>>;

/// Scans a [`Table`] fragment, block-partitioned across threads.
pub struct MemScan {
    table: Table,
    threads: usize,
    /// Next row index per thread.
    cursor: Vec<AtomicUsize>,
    /// Memory scan bandwidth per core, bytes/second.
    scan_bandwidth: f64,
}

impl MemScan {
    /// Creates a scan over `table` for `threads` workers. `scan_bandwidth`
    /// is the per-core sequential read bandwidth (bytes/s).
    pub fn new(table: Table, threads: usize, scan_bandwidth: f64) -> Self {
        MemScan {
            cursor: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
            table,
            threads,
            scan_bandwidth,
        }
    }
}

impl Operator for MemScan {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        let range = self.table.thread_range(tid, self.threads);
        let mut batch = RowBatch::new(self.table.row_size(), BATCH_ROWS);
        let start = range.start + self.cursor[tid].load(Ordering::Relaxed);
        let end = (start + BATCH_ROWS).min(range.end);
        for i in start..end {
            batch.push_row(self.table.row(i));
        }
        self.cursor[tid].fetch_add(end.saturating_sub(start), Ordering::Relaxed);
        if !batch.is_empty() {
            sim.sleep(transfer_time(batch.bytes(), self.scan_bandwidth));
        }
        let state = if end >= range.end {
            StreamState::Depleted
        } else {
            StreamState::MoreData
        };
        Ok((state, batch))
    }
}

/// Generates the synthetic table R(a, b) of §5.1 on the fly: two 8-byte
/// integer attributes, `a` uniformly distributed and randomized.
pub struct Generator {
    rows_per_thread: usize,
    cursor: Vec<AtomicUsize>,
    /// Seed mixed into the key stream (vary per node).
    seed: u64,
    /// Generation cost per tuple (a memory-bandwidth-bound scan surrogate).
    per_tuple: SimDuration,
}

impl Generator {
    /// Creates a generator emitting `rows_per_thread` rows on each of
    /// `threads` workers.
    pub fn new(rows_per_thread: usize, threads: usize, seed: u64) -> Self {
        Generator {
            rows_per_thread,
            cursor: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
            seed,
            per_tuple: SimDuration::from_nanos(1),
        }
    }

    /// The 16-byte row for `(seed, tid, seq)`: a = splitmix64 stream
    /// (uniform, randomized), b = sequence tag.
    pub fn row(seed: u64, tid: usize, seq: usize) -> [u8; 16] {
        let mut x = seed ^ ((tid as u64) << 40) ^ seq as u64;
        // splitmix64 finalizer: uniform key distribution.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let mut row = [0u8; 16];
        row[0..8].copy_from_slice(&x.to_le_bytes());
        row[8..16].copy_from_slice(&(seq as u64).to_le_bytes());
        row
    }
}

impl Operator for Generator {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        let done = self.cursor[tid].load(Ordering::Relaxed);
        let take = BATCH_ROWS.min(self.rows_per_thread - done);
        let mut batch = RowBatch::new(16, take);
        for seq in done..done + take {
            batch.push_row(&Self::row(self.seed, tid, seq));
        }
        self.cursor[tid].fetch_add(take, Ordering::Relaxed);
        if take > 0 {
            sim.sleep(self.per_tuple * take as u64);
        }
        let state = if done + take >= self.rows_per_thread {
            StreamState::Depleted
        } else {
            StreamState::MoreData
        };
        Ok((state, batch))
    }
}

/// Filters rows by a predicate.
pub struct Filter<F> {
    child: Arc<dyn Operator>,
    pred: F,
    per_tuple: SimDuration,
}

impl<F: Fn(&[u8]) -> bool + Send + Sync> Filter<F> {
    /// Creates a filter charging `per_tuple` CPU per input row.
    pub fn new(child: Arc<dyn Operator>, pred: F, per_tuple: SimDuration) -> Self {
        Filter {
            child,
            pred,
            per_tuple,
        }
    }
}

impl<F: Fn(&[u8]) -> bool + Send + Sync> Operator for Filter<F> {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        let (state, batch) = self.child.next(sim, tid)?;
        if batch.is_empty() {
            return Ok((state, batch));
        }
        sim.sleep(self.per_tuple * batch.rows() as u64);
        let mut out = RowBatch::new(batch.row_size(), batch.rows());
        for row in batch.iter() {
            if (self.pred)(row) {
                out.push_row(row);
            }
        }
        Ok((state, out))
    }
}

/// Projects each row to a new (usually narrower) row.
pub struct Project<F> {
    child: Arc<dyn Operator>,
    out_size: usize,
    f: F,
    per_tuple: SimDuration,
}

impl<F: Fn(&[u8], &mut Vec<u8>) + Send + Sync> Project<F> {
    /// Creates a projection producing `out_size`-byte rows; `f` appends the
    /// projected row bytes for each input row.
    pub fn new(child: Arc<dyn Operator>, out_size: usize, f: F, per_tuple: SimDuration) -> Self {
        Project {
            child,
            out_size,
            f,
            per_tuple,
        }
    }
}

impl<F: Fn(&[u8], &mut Vec<u8>) + Send + Sync> Operator for Project<F> {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        let (state, batch) = self.child.next(sim, tid)?;
        if batch.is_empty() {
            return Ok((state, RowBatch::new(self.out_size, 0)));
        }
        sim.sleep(self.per_tuple * batch.rows() as u64);
        let mut out = RowBatch::new(self.out_size, batch.rows());
        let mut scratch = Vec::with_capacity(self.out_size);
        for row in batch.iter() {
            scratch.clear();
            (self.f)(row, &mut scratch);
            if scratch.len() != self.out_size {
                return Err(ShuffleError::Config(format!(
                    "projection produced {} bytes, expected {}",
                    scratch.len(),
                    self.out_size
                )));
            }
            out.push_row(&scratch);
        }
        Ok((state, out))
    }
}

/// In-memory hash join: builds a shared hash table from the build child,
/// then streams the probe child (Grace-style, one partition per node after
/// shuffling).
pub struct HashJoin {
    build: Arc<dyn Operator>,
    probe: Arc<dyn Operator>,
    build_key: RowKeyFn,
    probe_key: RowKeyFn,
    /// Emits the joined output row.
    emit: JoinEmitFn,
    out_size: usize,
    table: Mutex<HashMap<u64, Vec<Vec<u8>>>>,
    barrier: SimBarrier,
    /// Whether each thread has completed the build phase.
    built: Vec<AtomicBool>,
    threads: usize,
    hash_cost: SimDuration,
    /// Probe-side leftovers awaiting emission, per thread.
    pending: Vec<Mutex<RowBatch>>,
}

impl HashJoin {
    /// Creates a hash join for `threads` workers.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kernel: &rshuffle_simnet::Kernel,
        build: Arc<dyn Operator>,
        probe: Arc<dyn Operator>,
        build_key: impl Fn(&[u8]) -> u64 + Send + Sync + 'static,
        probe_key: impl Fn(&[u8]) -> u64 + Send + Sync + 'static,
        emit: impl Fn(&[u8], &[u8], &mut Vec<u8>) + Send + Sync + 'static,
        out_size: usize,
        threads: usize,
        hash_cost: SimDuration,
    ) -> Self {
        HashJoin {
            build,
            probe,
            build_key: Arc::new(build_key),
            probe_key: Arc::new(probe_key),
            emit: Arc::new(emit),
            out_size,
            table: Mutex::new(HashMap::new()),
            barrier: SimBarrier::new(kernel, threads),
            built: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            threads,
            hash_cost,
            pending: (0..threads)
                .map(|_| Mutex::new(RowBatch::new(out_size.max(1), 0)))
                .collect(),
        }
    }

    /// Drains the build child on this thread and inserts into the shared
    /// table; all threads must pass through before probing starts.
    fn build_phase(&self, sim: &SimContext, tid: usize) -> Result<()> {
        loop {
            let (state, batch) = self.build.next(sim, tid)?;
            if !batch.is_empty() {
                sim.sleep(self.hash_cost * batch.rows() as u64);
                let mut table = self.table.lock();
                for row in batch.iter() {
                    table
                        .entry((self.build_key)(row))
                        .or_default()
                        .push(row.to_vec());
                }
            }
            if state == StreamState::Depleted {
                break;
            }
        }
        self.barrier.wait(sim);
        Ok(())
    }
}

impl Operator for HashJoin {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        let _ = self.threads;
        if !self.built[tid].load(Ordering::SeqCst) {
            self.build_phase(sim, tid)?;
            self.built[tid].store(true, Ordering::SeqCst);
        }
        let mut out = RowBatch::new(self.out_size, BATCH_ROWS);
        {
            // Emit leftovers from an earlier overflowing probe batch first.
            let mut pending = self.pending[tid].lock();
            if !pending.is_empty() {
                std::mem::swap(&mut *pending, &mut out);
            }
        }
        let mut scratch = Vec::with_capacity(self.out_size);
        loop {
            if out.rows() >= BATCH_ROWS {
                return Ok((StreamState::MoreData, out));
            }
            let (state, batch) = self.probe.next(sim, tid)?;
            if !batch.is_empty() {
                sim.sleep(self.hash_cost * batch.rows() as u64);
                let table = self.table.lock();
                for row in batch.iter() {
                    if let Some(matches) = table.get(&(self.probe_key)(row)) {
                        for build_row in matches {
                            scratch.clear();
                            (self.emit)(build_row, row, &mut scratch);
                            out.push_row(&scratch);
                        }
                    }
                }
            }
            if state == StreamState::Depleted {
                return Ok((StreamState::Depleted, out));
            }
        }
    }
}

/// Hash semi-join: passes probe rows through when their key exists on the
/// build side (the EXISTS subquery of TPC-H Q4, and the
/// customer-qualification join of Q3 where the build side carries no
/// payload).
pub struct HashSemiJoin {
    build: Arc<dyn Operator>,
    probe: Arc<dyn Operator>,
    build_key: RowKeyFn,
    probe_key: RowKeyFn,
    keys: Mutex<std::collections::HashSet<u64>>,
    barrier: SimBarrier,
    built: Vec<AtomicBool>,
    hash_cost: SimDuration,
}

impl HashSemiJoin {
    /// Creates a semi-join for `threads` workers.
    pub fn new(
        kernel: &rshuffle_simnet::Kernel,
        build: Arc<dyn Operator>,
        probe: Arc<dyn Operator>,
        build_key: impl Fn(&[u8]) -> u64 + Send + Sync + 'static,
        probe_key: impl Fn(&[u8]) -> u64 + Send + Sync + 'static,
        threads: usize,
        hash_cost: SimDuration,
    ) -> Self {
        HashSemiJoin {
            build,
            probe,
            build_key: Arc::new(build_key),
            probe_key: Arc::new(probe_key),
            keys: Mutex::new(std::collections::HashSet::new()),
            barrier: SimBarrier::new(kernel, threads),
            built: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            hash_cost,
        }
    }
}

impl Operator for HashSemiJoin {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        if !self.built[tid].load(Ordering::SeqCst) {
            loop {
                let (state, batch) = self.build.next(sim, tid)?;
                if !batch.is_empty() {
                    sim.sleep(self.hash_cost * batch.rows() as u64);
                    let mut keys = self.keys.lock();
                    for row in batch.iter() {
                        keys.insert((self.build_key)(row));
                    }
                }
                if state == StreamState::Depleted {
                    break;
                }
            }
            self.barrier.wait(sim);
            self.built[tid].store(true, Ordering::SeqCst);
        }
        let (state, batch) = self.probe.next(sim, tid)?;
        if batch.is_empty() {
            return Ok((state, batch));
        }
        sim.sleep(self.hash_cost * batch.rows() as u64);
        let keys = self.keys.lock();
        let mut out = RowBatch::new(batch.row_size(), batch.rows());
        for row in batch.iter() {
            if keys.contains(&(self.probe_key)(row)) {
                out.push_row(row);
            }
        }
        Ok((state, out))
    }
}

/// Hash aggregation: drains the child, groups by key, then emits the
/// aggregated groups (partitioned across threads).
pub struct HashAggregate {
    child: Arc<dyn Operator>,
    key: RowKeyFn,
    /// Folds a row into the accumulator for its group.
    fold: FoldFn,
    /// Initial accumulator for a new group.
    init: InitFn,
    out_size: usize,
    groups: Mutex<HashMap<u64, Vec<u8>>>,
    barrier: SimBarrier,
    /// Sorted group keys, filled once after aggregation.
    emit_order: Mutex<Vec<u64>>,
    emit_cursor: AtomicUsize,
    /// Whether each thread has completed the aggregation phase.
    aggregated: Vec<AtomicBool>,
    hash_cost: SimDuration,
}

impl HashAggregate {
    /// Creates a hash aggregation for `threads` workers producing
    /// `out_size`-byte accumulator rows.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kernel: &rshuffle_simnet::Kernel,
        child: Arc<dyn Operator>,
        key: impl Fn(&[u8]) -> u64 + Send + Sync + 'static,
        init: impl Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
        fold: impl Fn(&mut Vec<u8>, &[u8]) + Send + Sync + 'static,
        out_size: usize,
        threads: usize,
        hash_cost: SimDuration,
    ) -> Self {
        HashAggregate {
            child,
            key: Arc::new(key),
            fold: Arc::new(fold),
            init: Arc::new(init),
            out_size,
            groups: Mutex::new(HashMap::new()),
            barrier: SimBarrier::new(kernel, threads),
            emit_order: Mutex::new(Vec::new()),
            emit_cursor: AtomicUsize::new(0),
            aggregated: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            hash_cost,
        }
    }
}

impl Operator for HashAggregate {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        if !self.aggregated[tid].load(Ordering::SeqCst) {
            loop {
                let (state, batch) = self.child.next(sim, tid)?;
                if !batch.is_empty() {
                    sim.sleep(self.hash_cost * batch.rows() as u64);
                    let mut groups = self.groups.lock();
                    for row in batch.iter() {
                        let k = (self.key)(row);
                        match groups.get_mut(&k) {
                            Some(acc) => (self.fold)(acc, row),
                            None => {
                                groups.insert(k, (self.init)(row));
                            }
                        }
                    }
                }
                if state == StreamState::Depleted {
                    break;
                }
            }
            if self.barrier.wait(sim) {
                let mut keys: Vec<u64> = self.groups.lock().keys().copied().collect();
                keys.sort_unstable();
                *self.emit_order.lock() = keys;
            }
            self.barrier.wait(sim);
            self.aggregated[tid].store(true, Ordering::SeqCst);
        }
        // Emit: threads grab group slots round-robin.
        let order = self.emit_order.lock();
        let groups = self.groups.lock();
        let mut out = RowBatch::new(self.out_size, BATCH_ROWS);
        loop {
            let i = self.emit_cursor.fetch_add(1, Ordering::SeqCst);
            if i >= order.len() {
                return Ok((StreamState::Depleted, out));
            }
            let acc = &groups[&order[i]];
            debug_assert_eq!(acc.len(), self.out_size);
            out.push_row(acc);
            if out.rows() >= BATCH_ROWS {
                return Ok((StreamState::MoreData, out));
            }
        }
    }
}

/// Pulls from each child in turn (used to feed a join's probe side from
/// both a local scan and a received stream).
pub struct UnionAll {
    children: Vec<Arc<dyn Operator>>,
    /// Index of the child each thread is currently draining.
    cursor: Vec<AtomicUsize>,
}

impl UnionAll {
    /// Creates a union over `children` for `threads` workers.
    pub fn new(children: Vec<Arc<dyn Operator>>, threads: usize) -> Self {
        UnionAll {
            children,
            cursor: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
        }
    }
}

impl Operator for UnionAll {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        loop {
            let i = self.cursor[tid].load(Ordering::Relaxed);
            if i >= self.children.len() {
                return Ok((StreamState::Depleted, RowBatch::new(1, 0)));
            }
            let (state, batch) = self.children[i].next(sim, tid)?;
            let last = i + 1 == self.children.len();
            if state == StreamState::Depleted {
                self.cursor[tid].store(i + 1, Ordering::Relaxed);
                if last {
                    return Ok((StreamState::Depleted, batch));
                }
                if !batch.is_empty() {
                    return Ok((StreamState::MoreData, batch));
                }
                continue;
            }
            return Ok((StreamState::MoreData, batch));
        }
    }
}

/// Top-N selection: drains the child, keeps the `n` rows with the largest
/// key (TPC-H Q3's `ORDER BY revenue DESC LIMIT 10`), then emits them in
/// descending key order from thread 0.
pub struct TopN {
    child: Arc<dyn Operator>,
    key: RowOrdKeyFn,
    n: usize,
    /// Min-heap of (key, row) keeping the N largest.
    heap: Mutex<TopHeap>,
    barrier: SimBarrier,
    drained: Vec<AtomicBool>,
    emitted: AtomicBool,
    per_tuple: SimDuration,
}

impl TopN {
    /// Creates a top-`n` operator for `threads` workers ordering by `key`
    /// descending.
    pub fn new(
        kernel: &rshuffle_simnet::Kernel,
        child: Arc<dyn Operator>,
        key: impl Fn(&[u8]) -> i64 + Send + Sync + 'static,
        n: usize,
        threads: usize,
        per_tuple: SimDuration,
    ) -> Self {
        assert!(n > 0, "top-N needs a positive N");
        TopN {
            child,
            key: Arc::new(key),
            n,
            heap: Mutex::new(std::collections::BinaryHeap::new()),
            barrier: SimBarrier::new(kernel, threads),
            drained: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            emitted: AtomicBool::new(false),
            per_tuple,
        }
    }
}

impl Operator for TopN {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        if !self.drained[tid].load(Ordering::SeqCst) {
            loop {
                let (state, batch) = self.child.next(sim, tid)?;
                if !batch.is_empty() {
                    sim.sleep(self.per_tuple * batch.rows() as u64);
                    let mut heap = self.heap.lock();
                    for row in batch.iter() {
                        heap.push(std::cmp::Reverse(((self.key)(row), row.to_vec())));
                        if heap.len() > self.n {
                            heap.pop();
                        }
                    }
                }
                if state == StreamState::Depleted {
                    break;
                }
            }
            self.barrier.wait(sim);
            self.drained[tid].store(true, Ordering::SeqCst);
        }
        // One thread emits the final ranking; everyone else is done.
        if self
            .emitted
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Ok((StreamState::Depleted, RowBatch::new(1, 0)));
        }
        let mut rows: Vec<(i64, Vec<u8>)> =
            self.heap.lock().drain().map(|r| r.0).collect();
        rows.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let row_size = rows.first().map_or(1, |(_, r)| r.len());
        let mut out = RowBatch::new(row_size, rows.len());
        for (_, row) in rows {
            out.push_row(&row);
        }
        Ok((StreamState::Depleted, out))
    }
}

/// Adds a fixed compute cost per pulled batch — the knob of Figure 13
/// ("average time to retrieve next batch of data").
pub struct ComputeStage {
    child: Arc<dyn Operator>,
    per_batch: SimDuration,
}

impl ComputeStage {
    /// Wraps `child`, charging `per_batch` of CPU work per `next` call.
    pub fn new(child: Arc<dyn Operator>, per_batch: SimDuration) -> Self {
        ComputeStage { child, per_batch }
    }
}

impl Operator for ComputeStage {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        let (state, batch) = self.child.next(sim, tid)?;
        if self.per_batch > SimDuration::ZERO && !batch.is_empty() {
            sim.sleep(self.per_batch);
        }
        Ok((state, batch))
    }
}
