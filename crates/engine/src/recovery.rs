//! Partial-failure recovery: epoch-fenced per-flow retry, QP reconnect
//! with backoff, and graceful algorithm degradation.
//!
//! The [`crate::restart`] orchestrator answers every transient failure
//! the same way: discard the whole attempt and replay the query from
//! row zero. That is the paper's §4.4.2 contract and it is always
//! correct, but it is also maximally wasteful — a single failed Queue
//! Pair forces every healthy flow in the cluster to redo work it had
//! already delivered. This module adds three finer-grained rungs below
//! the full restart:
//!
//! 1. **Epoch-fenced per-flow retry.** Receivers track a delivered-row
//!    watermark per flow (`(source node, source thread, destination
//!    node)`). On a QP-shaped failure the exchange is rebuilt with a
//!    bumped wire epoch and a fresh endpoint-id range; senders
//!    fast-forward past the watermarked rows (the deterministic child
//!    replay plus deterministic partition hash make the skip exact), and
//!    the epoch field in every message header fences off any straggler
//!    from the failed attempt. Work delivered before the failure is
//!    *kept*, not redone, and delivery stays exactly-once.
//! 2. **QP reconnect with backoff.** Before resuming, the coordinator
//!    probes the failed node by tearing down and re-establishing an RC
//!    Queue Pair ([`rshuffle_verbs::ConnectionManager::reconnect_rc`])
//!    and pushing one message through it, retrying under a capped
//!    exponential [`BackoffSchedule`] up to a per-episode budget. The
//!    resume only proceeds once the fabric demonstrably carries traffic
//!    again; a still-broken fabric surfaces as
//!    [`ShuffleError::RetryBudgetExhausted`] instead of a doomed retry.
//! 3. **Graceful degradation.** When the retry budget is exhausted the
//!    query steps down a sturdiness ladder ([`degrade`]) — one-sided RC
//!    designs fall back to two-sided RC, two-sided RC falls back to the
//!    UD design that does not depend on the broken connections — and
//!    resumes *mid-query* on the sturdier algorithm, still keeping the
//!    watermarked rows (every design delivers the same row set per
//!    destination). Only when the ladder and budgets are exhausted does
//!    the query escalate to the classic full restart.
//!
//! All recovery activity is observable: `engine.partial_retries`,
//! `engine.qp_reconnects`, `engine.degraded`, `engine.kept_bytes` and
//! `engine.redone_bytes` counters, plus `partial_retry`, `qp_reconnect`,
//! `flow_resumed`, `query_degraded` flight-recorder events on the
//! coordinator track. On a healthy run none of this machinery executes
//! and the wire traffic is byte-identical to the pre-recovery stack
//! (epoch 0 in every header).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::{
    CostModel, EndpointImpl, Exchange, ExchangeConfig, Operator, RowBatch, ShuffleAlgorithm,
    ShuffleError, ShuffleOperator,
};
use rshuffle_obs::{names, EventKind, Labels};
use rshuffle_simnet::{Gate, NodeId, SimContext, SimDuration};
use rshuffle_verbs::{ConnectionManager, QpType, RecvWr, SendWr, VerbsRuntime, WcStatus};

use crate::restart::{restartable, spawn_worker, WorkerResult};

/// Payload bytes pushed through a probe QP to prove the fabric carries
/// traffic again.
const PROBE_BYTES: usize = 64;
/// Polling cadence while waiting for the probe send completion.
const PROBE_POLL: SimDuration = SimDuration::from_micros(2);
/// Endpoint-id distance between consecutive rebuild attempts of one
/// query, so a retried flow never aliases a fenced-off attempt's ids.
const ATTEMPT_ID_STRIDE: u32 = 4096;

/// A capped exponential backoff schedule in virtual time, with optional
/// deterministic per-seed jitter.
///
/// The base schedule starts at `initial`, doubles on every [`next`]
/// call and saturates at `max` — monotone non-decreasing until the cap.
/// With [`with_jitter`], each delay is stretched by up to a quarter of
/// its base value using a splitmix64 stream, so concurrent retriers
/// de-synchronize; the jittered delay is still clamped to `max` and the
/// sequence is a pure function of the seed.
///
/// [`next`]: BackoffSchedule::next
/// [`with_jitter`]: BackoffSchedule::with_jitter
#[derive(Clone, Debug)]
pub struct BackoffSchedule {
    initial: SimDuration,
    max: SimDuration,
    cur: SimDuration,
    jitter: Option<u64>,
}

impl BackoffSchedule {
    /// Creates the schedule: `initial` first, doubling to `max`.
    pub fn new(initial: SimDuration, max: SimDuration) -> Self {
        BackoffSchedule {
            initial,
            max,
            cur: initial,
            jitter: None,
        }
    }

    /// Creates a jittered schedule; the delay sequence is deterministic
    /// per `seed`.
    pub fn with_jitter(initial: SimDuration, max: SimDuration, seed: u64) -> Self {
        BackoffSchedule {
            initial,
            max,
            cur: initial,
            jitter: Some(seed),
        }
    }

    /// Returns the next delay and advances the schedule.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> SimDuration {
        let base = self.cur.min(self.max);
        self.cur = (base * 2).min(self.max);
        match &mut self.jitter {
            None => base,
            Some(state) => {
                // splitmix64: a full-period, seedable stream.
                *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let quarter = base.as_nanos() / 4;
                let extra = if quarter == 0 { 0 } else { z % quarter };
                (base + SimDuration::from_nanos(extra)).min(self.max)
            }
        }
    }

    /// Rewinds the schedule to its initial delay (a new failure episode).
    pub fn reset(&mut self) {
        self.cur = self.initial;
    }
}

/// One rung down the sturdiness ladder: the same endpoint mode on a
/// less fragile transport, or `None` when already on the sturdiest
/// design.
///
/// One-sided RC designs (`MQ/RD`, `MQ/WR`) depend on remote descriptor
/// rings *and* per-peer connections; they fall back to two-sided RC
/// (`MQ/SR`). Two-sided RC still depends on per-peer connections; it
/// falls back to the single unreliable-datagram Queue Pair (`SQ/SR`),
/// which carries no connection state to break. `SQ/SR` has nowhere
/// sturdier to go.
pub fn degrade(algorithm: ShuffleAlgorithm) -> Option<ShuffleAlgorithm> {
    match algorithm.imp {
        EndpointImpl::MqRd | EndpointImpl::MqWr => Some(ShuffleAlgorithm {
            mode: algorithm.mode,
            imp: EndpointImpl::MqSr,
        }),
        EndpointImpl::MqSr => Some(ShuffleAlgorithm {
            mode: algorithm.mode,
            imp: EndpointImpl::SqSr,
        }),
        EndpointImpl::SqSr => None,
    }
}

/// Retry policy for [`run_shuffle_with_recovery`].
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Partial (same-generation) retries before escalating to a full
    /// restart. Degradation rungs count against this budget too.
    pub max_partial_retries: u32,
    /// Reconnect probes per failed node per failure episode; exhaustion
    /// surfaces [`ShuffleError::RetryBudgetExhausted`] and triggers
    /// degradation.
    pub reconnect_budget: u32,
    /// First backoff delay (probe retries and full restarts).
    pub initial_backoff: SimDuration,
    /// Backoff cap.
    pub max_backoff: SimDuration,
    /// How long one probe waits for its send completion before counting
    /// the attempt as failed.
    pub probe_timeout: SimDuration,
    /// Whether the query may step down the [`degrade`] ladder when the
    /// reconnect budget is exhausted.
    pub allow_degradation: bool,
    /// Full restarts (discard everything, new generation) before the
    /// query gives up.
    pub max_full_restarts: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_partial_retries: 4,
            reconnect_budget: 5,
            initial_backoff: SimDuration::from_micros(50),
            max_backoff: SimDuration::from_millis(1),
            probe_timeout: SimDuration::from_micros(200),
            allow_degradation: true,
            max_full_restarts: 2,
        }
    }
}

/// Outcome of a recoverable query run, readable after `Cluster::run`.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Unique rows delivered to sinks in the surviving generation.
    pub rows: u64,
    /// Payload bytes of those rows.
    pub bytes: u64,
    /// Partial retries performed (epoch bumps that kept prior work).
    pub partial_retries: u32,
    /// Reconnect probe attempts across all failure episodes.
    pub qp_reconnects: u32,
    /// The rungs taken down the ladder, in order (empty = never
    /// degraded).
    pub degradations: Vec<ShuffleAlgorithm>,
    /// The design the query finished (or gave up) on.
    pub final_algorithm: ShuffleAlgorithm,
    /// Full restarts performed (generation bumps that discarded work).
    pub full_restarts: u32,
    /// The surviving generation; sinks must discard batches tagged with
    /// any earlier generation.
    pub generation: u32,
    /// Sink-visible bytes that bought no new rows: batches of discarded
    /// generations plus receiver-side duplicate drops.
    pub redone_bytes: u64,
    /// Watermarked bytes carried across partial retries instead of
    /// being replayed (summed over retries).
    pub kept_bytes: u64,
    /// Virtual time from the first observed failure to completion;
    /// `None` when no attempt failed.
    pub recovery: Option<SimDuration>,
    /// The representative error of each failed attempt, in order.
    pub attempt_errors: Vec<ShuffleError>,
    /// `Some(e)` when the query gave up; `None` on success.
    pub failure: Option<ShuffleError>,
}

impl RecoveryReport {
    fn new(algorithm: ShuffleAlgorithm) -> Self {
        RecoveryReport {
            rows: 0,
            bytes: 0,
            partial_retries: 0,
            qp_reconnects: 0,
            degradations: Vec::new(),
            final_algorithm: algorithm,
            full_restarts: 0,
            generation: 0,
            redone_bytes: 0,
            kept_bytes: 0,
            recovery: None,
            attempt_errors: Vec::new(),
            failure: None,
        }
    }

    /// True when some attempt delivered the query to completion.
    pub fn succeeded(&self) -> bool {
        self.failure.is_none()
    }
}

/// Delivered-row watermarks per flow `(src node, src thread, dst
/// node)`. The single source of truth for how far each flow got:
/// senders fast-forward to these counts on resume, receivers advance
/// them as unique rows reach the sink.
#[derive(Default)]
struct FlowLedger {
    rows: Mutex<BTreeMap<(usize, u16, usize), u64>>,
}

impl FlowLedger {
    fn get(&self, key: (usize, u16, usize)) -> u64 {
        self.rows.lock().get(&key).copied().unwrap_or(0)
    }

    fn advance(&self, key: (usize, u16, usize), n: u64) {
        *self.rows.lock().entry(key).or_insert(0) += n;
    }

    fn total_rows(&self) -> u64 {
        self.rows.lock().values().sum()
    }

    fn clear(&self) {
        self.rows.lock().clear();
    }
}

/// Shared accounting the recovery receive workers write into.
#[derive(Default)]
struct RecvAccounting {
    /// Rows and bytes delivered to the sink, per generation.
    per_generation: Mutex<BTreeMap<u32, (u64, u64)>>,
    /// Receiver-side duplicate rows dropped (bytes).
    dedup_dropped_bytes: Mutex<u64>,
    /// Outstanding per-flow duplicate drops, keyed
    /// `(dst node, src node, src tid)`; seeded before each resumed
    /// attempt, normally all zero (the sender skip is exact).
    pending_drops: Mutex<BTreeMap<(usize, usize, u16), u64>>,
}

/// Whether `config`'s transmission groups admit per-flow retry: every
/// group must target exactly one node and no two groups of a sender may
/// share a destination, so the per-destination row sequence is a
/// deterministic function of the source rows and the partition hash.
/// Multicast and broadcast patterns fall back to the full restart.
fn partial_eligible(config: &ExchangeConfig) -> bool {
    config.groups.iter().all(|g| {
        let mut seen = BTreeSet::new();
        g.iter().all(|members| members.len() == 1 && seen.insert(members[0]))
    })
}

/// Whether `e` looks like a broken Queue Pair (as opposed to datagram
/// loss or corrupt protocol state): a verbs-level failure, an errored
/// completion or a stall, with the runtime recording which nodes had
/// QPs forced into the error state. Only these failures are worth a
/// targeted reconnect; everything else goes to the full restart.
fn qp_shaped(e: &ShuffleError, runtime: &VerbsRuntime) -> bool {
    matches!(
        e,
        ShuffleError::Verbs(_) | ShuffleError::CompletionError(_) | ShuffleError::Stalled(_)
    ) && !runtime.failed_qp_nodes().is_empty()
}

/// Shared factory producing the source operator for a (generation,
/// node). Partial retries reuse the generation, so the factory must be
/// deterministic: the same `(generation, node)` yields the same rows in
/// the same order.
type GenSourceFactory = Arc<dyn Fn(u32, NodeId) -> Arc<dyn Operator> + Send + Sync>;

/// Shared sink receiving every delivered `(generation, node, tid,
/// batch)`. Rows within one generation are delivered exactly once; a
/// full restart bumps the generation and the caller must discard all
/// earlier generations.
type GenSink = Arc<dyn Fn(u32, NodeId, usize, &RowBatch) + Send + Sync>;

/// Runs a cluster-wide shuffle query under `policy`, recovering from
/// partial failures without discarding delivered work where possible.
///
/// The coordinator (a simulated thread on node 0) builds an
/// [`Exchange`] from `config` and drives it like
/// [`crate::restart::run_shuffle_with_restart`], but on a QP-shaped
/// failure it (1) probes the failed node with reconnect-with-backoff,
/// (2) resumes the query under a bumped epoch with senders fast-
/// forwarded past the delivered watermarks, (3) steps down the
/// [`degrade`] ladder when the reconnect budget is exhausted, and only
/// then (4) escalates to a generation-bumping full restart.
///
/// `sink` receives `(generation, node, tid, batch)`; rows are delivered
/// exactly once per generation and only the final generation (see
/// [`RecoveryReport::generation`]) survives. `make_source(generation,
/// node)` must be deterministic per `(generation, node)`.
///
/// The returned report is populated when the simulation completes.
pub fn run_shuffle_with_recovery(
    runtime: &Arc<VerbsRuntime>,
    config: &ExchangeConfig,
    policy: RecoveryPolicy,
    row_size: usize,
    make_source: impl Fn(u32, NodeId) -> Arc<dyn Operator> + Send + Sync + 'static,
    sink: impl Fn(u32, NodeId, usize, &RowBatch) + Send + Sync + 'static,
) -> Arc<Mutex<RecoveryReport>> {
    let report = Arc::new(Mutex::new(RecoveryReport::new(config.algorithm)));
    let out = report.clone();
    let runtime = runtime.clone();
    let config = config.clone();
    let make_source: GenSourceFactory = Arc::new(make_source);
    let sink: GenSink = Arc::new(sink);
    let cluster = runtime.cluster().clone();
    let obs = cluster.obs().clone();
    cluster.clone().spawn(0, "recovery-coordinator", move |sim| {
        let cost = CostModel::from_profile(runtime.profile());
        let m = &obs.metrics;
        let partial_ctr = m.counter(names::ENGINE_PARTIAL_RETRIES, Labels::node(0));
        let reconnect_ctr = m.counter(names::ENGINE_QP_RECONNECTS, Labels::node(0));
        let degraded_ctr = m.counter(names::ENGINE_DEGRADED, Labels::node(0));
        let redone_ctr = m.counter(names::ENGINE_REDONE_BYTES, Labels::node(0));
        let kept_ctr = m.counter(names::ENGINE_KEPT_BYTES, Labels::node(0));
        let restarts_ctr = m.counter(names::ENGINE_RESTARTS, Labels::node(0));
        let recovery_ctr = m.counter(names::ENGINE_RECOVERY_NS, Labels::node(0));
        let track = sim.id().track();

        let mut rep = RecoveryReport::new(config.algorithm);
        let ledger = Arc::new(FlowLedger::default());
        let accounting = Arc::new(RecvAccounting::default());
        let eligible = partial_eligible(&config);
        let mut algorithm = config.algorithm;
        let mut generation = 0u32;
        let mut epoch = 0u16;
        let mut rebuilds = 0u32;
        let mut first_failure = None;
        let mut backoff = BackoffSchedule::new(policy.initial_backoff, policy.max_backoff);
        loop {
            let mut attempt_cfg = config.clone();
            attempt_cfg.algorithm = algorithm;
            attempt_cfg.epoch = epoch;
            attempt_cfg.endpoint_id_base = config
                .endpoint_id_base
                .wrapping_add(rebuilds.wrapping_mul(ATTEMPT_ID_STRIDE));
            let attempt_started = sim.now();
            let exchange = match Exchange::build(&runtime, &attempt_cfg) {
                Ok(ex) => ex,
                Err(e) => {
                    rep.failure = Some(e);
                    break;
                }
            };
            let done: Gate<WorkerResult> = Gate::new(cluster.kernel(), SimDuration::ZERO);
            let expected = spawn_recovery_attempt(
                &cluster,
                &exchange,
                &attempt_cfg,
                &cost,
                generation,
                rebuilds,
                row_size,
                &make_source,
                &sink,
                &ledger,
                &accounting,
                &done,
            );
            let mut first_err: Option<ShuffleError> = None;
            for _ in 0..expected {
                if let Err(e) = done.recv(&sim) {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
            obs.recorder.span(
                0,
                track,
                &format!("recovery-attempt:g{generation}e{epoch}"),
                attempt_started.as_nanos(),
                sim.now().as_nanos(),
            );
            // The attempt is over (every worker has pushed its result):
            // return the generation's pinned memory before any rebuild,
            // so a flow-tagged query never holds two exchanges' worth of
            // the scheduler's budget across a reconnect. A no-op for
            // untagged exchanges.
            exchange.release(&runtime);
            let e = match first_err {
                None => {
                    let per_gen = accounting.per_generation.lock();
                    let (rows, bytes) = per_gen.get(&generation).copied().unwrap_or((0, 0));
                    rep.rows = rows;
                    rep.bytes = bytes;
                    rep.generation = generation;
                    rep.final_algorithm = algorithm;
                    rep.redone_bytes = per_gen
                        .iter()
                        .filter(|(g, _)| **g != generation)
                        .map(|(_, v)| v.1)
                        .sum::<u64>()
                        + *accounting.dedup_dropped_bytes.lock();
                    redone_ctr.add(rep.redone_bytes);
                    if let Some(at) = first_failure {
                        let recovery = sim.now() - at;
                        rep.recovery = Some(recovery);
                        recovery_ctr.add(recovery.as_nanos());
                        obs.recorder.event(
                            0,
                            track,
                            sim.now().as_nanos(),
                            EventKind::QueryRecovered,
                            recovery.as_nanos(),
                        );
                    }
                    break;
                }
                Some(e) => e,
            };
            first_failure.get_or_insert(sim.now());
            rep.attempt_errors.push(e.clone());
            if !restartable(&e) {
                rep.failure = Some(e);
                break;
            }
            // Rung 1+2: probe-gated per-flow retry on a QP-shaped
            // failure, while the partial budget lasts.
            let mut resumed = false;
            if eligible && rep.partial_retries < policy.max_partial_retries && qp_shaped(&e, &runtime)
            {
                let probed = probe_failed_nodes(
                    &sim,
                    &runtime,
                    cluster.nodes(),
                    &policy,
                    &mut backoff,
                    &obs,
                    track,
                    &reconnect_ctr,
                    &mut rep.qp_reconnects,
                );
                match probed {
                    Ok(()) => resumed = true,
                    Err(budget_err) => {
                        // Rung 3: the fabric would not come back — step
                        // down the ladder and resume on a design that
                        // does not need the broken resource.
                        rep.attempt_errors.push(budget_err.clone());
                        match degrade(algorithm) {
                            Some(next) if policy.allow_degradation => {
                                algorithm = next;
                                rep.degradations.push(next);
                                degraded_ctr.inc();
                                obs.recorder.event(
                                    0,
                                    track,
                                    sim.now().as_nanos(),
                                    EventKind::QueryDegraded,
                                    algo_code(next),
                                );
                                runtime.clear_failed_qp_nodes();
                                resumed = true;
                            }
                            _ => {
                                if rep.full_restarts >= policy.max_full_restarts {
                                    rep.failure = Some(budget_err);
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            if resumed {
                rep.partial_retries += 1;
                partial_ctr.inc();
                epoch = epoch.wrapping_add(1);
                rebuilds += 1;
                let kept = ledger.total_rows() * row_size as u64;
                rep.kept_bytes += kept;
                kept_ctr.add(kept);
                seed_pending_drops(&config, &ledger, &accounting);
                obs.recorder.event(
                    0,
                    track,
                    sim.now().as_nanos(),
                    EventKind::PartialRetry,
                    epoch as u64,
                );
                backoff.reset();
                continue;
            }
            // Rung 4: classic full restart — discard the generation.
            if rep.full_restarts >= policy.max_full_restarts {
                rep.failure = Some(e);
                break;
            }
            rep.full_restarts += 1;
            restarts_ctr.inc();
            generation += 1;
            epoch = epoch.wrapping_add(1);
            rebuilds += 1;
            ledger.clear();
            accounting.pending_drops.lock().clear();
            runtime.clear_failed_qp_nodes();
            obs.recorder.event(
                0,
                track,
                sim.now().as_nanos(),
                EventKind::QueryRestart,
                rep.full_restarts as u64,
            );
            sim.sleep(backoff.next());
        }
        *out.lock() = rep;
    });
    report
}

/// Stable code for a design in flight-recorder events: its Table 1
/// index, or 6 for the future-work Write designs.
fn algo_code(a: ShuffleAlgorithm) -> u64 {
    ShuffleAlgorithm::ALL
        .iter()
        .position(|x| *x == a)
        .map(|i| i as u64)
        .unwrap_or(6)
}

/// Probes every node the runtime recorded as QP-failed: tears down and
/// re-establishes a dedicated RC QP pair to a healthy peer and pushes
/// one message through it, retrying under `backoff` up to the
/// per-episode budget. Clears the failed-node set on success so the
/// next failure episode classifies freshly.
#[allow(clippy::too_many_arguments)]
fn probe_failed_nodes(
    sim: &SimContext,
    runtime: &Arc<VerbsRuntime>,
    nodes: usize,
    policy: &RecoveryPolicy,
    backoff: &mut BackoffSchedule,
    obs: &Arc<rshuffle_obs::Obs>,
    track: u32,
    reconnect_ctr: &Arc<rshuffle_obs::Counter>,
    reconnects: &mut u32,
) -> Result<(), ShuffleError> {
    for node in runtime.failed_qp_nodes() {
        let peer = (node + 1) % nodes;
        let ctx_a = runtime.context(node);
        let ctx_b = runtime.context(peer);
        let send_cq = ctx_a.create_cq();
        let qa = ctx_a.create_qp(QpType::Rc, send_cq.clone(), ctx_a.create_cq());
        let qb = ctx_b.create_qp(QpType::Rc, ctx_b.create_cq(), ctx_b.create_cq());
        let mr_a = ctx_a.register_untimed(PROBE_BYTES);
        let mr_b = ctx_b.register_untimed(PROBE_BYTES);
        let mut attempts = 0u32;
        let mut healthy = false;
        while attempts < policy.reconnect_budget {
            attempts += 1;
            *reconnects += 1;
            reconnect_ctr.inc();
            obs.recorder.event(
                0,
                track,
                sim.now().as_nanos(),
                EventKind::QpReconnect,
                attempts as u64,
            );
            if probe_once(sim, &qa, &qb, &send_cq, &mr_a, &mr_b, policy.probe_timeout).is_ok() {
                healthy = true;
                break;
            }
            sim.sleep(backoff.next());
        }
        runtime.deregister_untimed(&mr_a);
        runtime.deregister_untimed(&mr_b);
        if !healthy {
            return Err(ShuffleError::RetryBudgetExhausted { node, attempts });
        }
    }
    runtime.clear_failed_qp_nodes();
    Ok(())
}

/// One reconnect-and-send round trip over the probe QP pair: reset both
/// ends, reconnect (charging the modelled per-QP setup cost), post a
/// receive on the peer and push one message, then wait for the send
/// completion. Any verbs error, errored completion or timeout means the
/// fabric is still broken.
fn probe_once(
    sim: &SimContext,
    qa: &rshuffle_verbs::QueuePair,
    qb: &rshuffle_verbs::QueuePair,
    send_cq: &rshuffle_verbs::CompletionQueue,
    mr_a: &rshuffle_verbs::MemoryRegion,
    mr_b: &rshuffle_verbs::MemoryRegion,
    timeout: SimDuration,
) -> Result<(), ShuffleError> {
    ConnectionManager::reconnect_rc(sim, qa, qb.address_handle())?;
    ConnectionManager::reconnect_rc(sim, qb, qa.address_handle())?;
    qb.post_recv(
        sim,
        RecvWr {
            wr_id: 0,
            mr: mr_b.clone(),
            offset: 0,
            len: PROBE_BYTES,
        },
    )?;
    qa.post_send(
        sim,
        SendWr {
            wr_id: 0,
            mr: mr_a.clone(),
            offset: 0,
            len: PROBE_BYTES,
            imm: None,
            ah: None,
        },
    )?;
    let deadline = sim.now() + timeout;
    loop {
        if let Some(c) = send_cq.poll(sim, 1).into_iter().next() {
            return if c.status == WcStatus::Success {
                Ok(())
            } else {
                Err(ShuffleError::CompletionError("probe send failed"))
            };
        }
        if sim.now() >= deadline {
            return Err(ShuffleError::Stalled("probe send completion"));
        }
        sim.sleep(PROBE_POLL);
    }
}

/// Seeds the receiver-side duplicate-drop counts for a resumed attempt:
/// for every flow, the delivered watermark minus what the sender will
/// skip (the minimum watermark across the group's members). With
/// single-member groups — the eligibility condition — sender skips are
/// exact and every seeded count is zero; the mechanism stays armed as a
/// guard regardless.
fn seed_pending_drops(
    config: &ExchangeConfig,
    ledger: &FlowLedger,
    accounting: &RecvAccounting,
) {
    let mut drops = accounting.pending_drops.lock();
    drops.clear();
    for (src, groups) in config.groups.iter().enumerate() {
        for tid in 0..config.threads {
            for members in groups.iter() {
                let skip = members
                    .iter()
                    .map(|&d| ledger.get((src, tid as u16, d)))
                    .min()
                    .unwrap_or(0);
                for &d in members {
                    let excess = ledger.get((src, tid as u16, d)).saturating_sub(skip);
                    if excess > 0 {
                        *drops.entry((d, src, tid as u16)).or_insert(0) += excess;
                    }
                }
            }
        }
    }
}

/// Spawns send and receive workers for one recovery attempt; returns
/// how many results the coordinator must collect. Senders are seeded
/// with resume skips from the ledger (all zero on a fresh generation);
/// receivers track per-flow watermarks and deliver straight to the
/// generation-tagged sink.
#[allow(clippy::too_many_arguments)]
fn spawn_recovery_attempt(
    cluster: &rshuffle_simnet::Cluster,
    exchange: &Exchange,
    config: &ExchangeConfig,
    cost: &CostModel,
    generation: u32,
    rebuild: u32,
    row_size: usize,
    make_source: &GenSourceFactory,
    sink: &GenSink,
    ledger: &Arc<FlowLedger>,
    accounting: &Arc<RecvAccounting>,
    done: &Gate<WorkerResult>,
) -> usize {
    let threads = config.threads;
    let lanes = exchange.lanes;
    let base = config.endpoint_id_base;
    let mut expected = 0;
    for node in 0..cluster.nodes() {
        if !exchange.send[node].is_empty() {
            let groups = &exchange.groups[node];
            let skips: Vec<Vec<u64>> = (0..threads)
                .map(|tid| {
                    groups
                        .iter()
                        .map(|members| {
                            members
                                .iter()
                                .map(|&d| ledger.get((node, tid as u16, d)))
                                .min()
                                .unwrap_or(0)
                        })
                        .collect()
                })
                .collect();
            let mut shuffle = ShuffleOperator::with_lanes(
                make_source(generation, node),
                exchange.send[node].clone(),
                groups.clone(),
                threads,
                cost.clone(),
            )
            .with_resume_skip(skips);
            if let Some(runner) = &exchange.phases {
                shuffle = shuffle.with_phases(runner.clone(), node);
            }
            let op: Arc<dyn Operator> = Arc::new(shuffle);
            for tid in 0..threads {
                let name = format!("r{rebuild}-shuffle-{node}-{tid}");
                spawn_worker(cluster, node, &name, op.clone(), tid, None, done.clone());
                expected += 1;
            }
        }
        if !exchange.recv[node].is_empty() {
            for tid in 0..threads {
                let name = format!("r{rebuild}-recv-{node}-{tid}");
                let ep = exchange.recv[node][tid % exchange.recv[node].len()].clone();
                let sink = sink.clone();
                let ledger = ledger.clone();
                let accounting = accounting.clone();
                let cost = cost.clone();
                let done = done.clone();
                cluster.spawn(node, &name, move |sim: SimContext| {
                    let result = recovery_recv_loop(
                        &sim, &ep, node, tid, generation, base, lanes, row_size, &cost, &sink,
                        &ledger, &accounting,
                    );
                    done.push(result);
                });
                expected += 1;
            }
        }
    }
    expected
}

/// The recovery receive worker: pulls deliveries straight off the
/// endpoint (no [`rshuffle::ReceiveOperator`] — watermarks are per
/// flow, which batching would blur), drops any leading duplicate rows
/// the dedup guard demands, hands unique rows to the sink and advances
/// the flow's watermark.
#[allow(clippy::too_many_arguments)]
fn recovery_recv_loop(
    sim: &SimContext,
    ep: &Arc<dyn rshuffle::ReceiveEndpoint>,
    node: NodeId,
    tid: usize,
    generation: u32,
    base: u32,
    lanes: usize,
    row_size: usize,
    cost: &CostModel,
    sink: &GenSink,
    ledger: &Arc<FlowLedger>,
    accounting: &Arc<RecvAccounting>,
) -> WorkerResult {
    let mut rows = 0u64;
    let mut bytes = 0u64;
    loop {
        let delivery = match ep.get_data(sim)? {
            Some(d) => d,
            None => return Ok((rows, bytes)),
        };
        let len = delivery.local.len();
        if len % row_size != 0 {
            return Err(ShuffleError::Config(format!(
                "received {len} bytes, not a multiple of {row_size}-byte rows"
            )));
        }
        let rows_in = (len / row_size) as u64;
        // Map the wire-level source endpoint id back to the sending
        // node: send ids are `base + (node * lanes + lane) * 2`.
        let src_node = (delivery.src.0.wrapping_sub(base) / 2) as usize / lanes;
        let flow = (src_node, delivery.src_tid, node);
        let drop_now = {
            let mut drops = accounting.pending_drops.lock();
            match drops.get_mut(&(node, src_node, delivery.src_tid)) {
                Some(pending) => {
                    let d = (*pending).min(rows_in);
                    *pending -= d;
                    d
                }
                None => 0,
            }
        };
        sim.sleep(cost.copy_time(len));
        let mut batch = RowBatch::new(row_size, (rows_in - drop_now) as usize);
        delivery
            .local
            .with_payload(|p| batch.extend_rows(&p[(drop_now as usize) * row_size..]))?;
        ep.release(sim, delivery.remote, delivery.local, delivery.src)?;
        if drop_now > 0 {
            *accounting.dedup_dropped_bytes.lock() += drop_now * row_size as u64;
        }
        if !batch.is_empty() {
            let n = batch.rows() as u64;
            let b = batch.bytes() as u64;
            sink(generation, node, tid, &batch);
            ledger.advance(flow, n);
            let mut per_gen = accounting.per_generation.lock();
            let entry = per_gen.entry(generation).or_insert((0, 0));
            entry.0 += n;
            entry.1 += b;
            rows += n;
            bytes += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Generator;
    use rshuffle_simnet::DeviceProfile;

    #[test]
    fn backoff_base_schedule_doubles_to_cap() {
        let us = SimDuration::from_micros;
        let mut b = BackoffSchedule::new(us(50), us(400));
        assert_eq!(b.next(), us(50));
        assert_eq!(b.next(), us(100));
        assert_eq!(b.next(), us(200));
        assert_eq!(b.next(), us(400));
        assert_eq!(b.next(), us(400), "saturates at the cap");
        b.reset();
        assert_eq!(b.next(), us(50));
    }

    #[test]
    fn degradation_ladder_matches_table() {
        assert_eq!(
            degrade(ShuffleAlgorithm::MEMQ_RD),
            Some(ShuffleAlgorithm::MEMQ_SR)
        );
        assert_eq!(
            degrade(ShuffleAlgorithm::MEMQ_SR),
            Some(ShuffleAlgorithm::MESQ_SR)
        );
        assert_eq!(degrade(ShuffleAlgorithm::MESQ_SR), None);
        assert_eq!(
            degrade(ShuffleAlgorithm::SEMQ_RD),
            Some(ShuffleAlgorithm::SEMQ_SR)
        );
        assert_eq!(
            degrade(ShuffleAlgorithm::SEMQ_SR),
            Some(ShuffleAlgorithm::SESQ_SR)
        );
        assert_eq!(degrade(ShuffleAlgorithm::SESQ_SR), None);
    }

    #[test]
    fn fault_free_recovery_run_is_clean() {
        let nodes = 2;
        let threads = 2;
        let mut config = ExchangeConfig::repartition(ShuffleAlgorithm::MEMQ_SR, nodes, threads);
        config.message_size = 4096;
        let runtime = config.build_runtime(DeviceProfile::edr());
        let delivered = Arc::new(Mutex::new(0u64));
        let d = delivered.clone();
        let report = run_shuffle_with_recovery(
            &runtime,
            &config,
            RecoveryPolicy::default(),
            16,
            |_, _| Arc::new(Generator::new(500, 2, 7)) as Arc<dyn Operator>,
            move |_, _, _, batch| *d.lock() += batch.rows() as u64,
        );
        runtime.cluster().run();
        let rep = report.lock();
        assert!(rep.succeeded(), "failure: {:?}", rep.failure);
        assert_eq!(rep.partial_retries, 0);
        assert_eq!(rep.full_restarts, 0);
        assert_eq!(rep.qp_reconnects, 0);
        assert_eq!(rep.redone_bytes, 0);
        assert_eq!(rep.kept_bytes, 0);
        assert_eq!(rep.rows, (nodes * threads * 500) as u64);
        assert_eq!(rep.rows, *delivered.lock());
        assert_eq!(rep.final_algorithm, ShuffleAlgorithm::MEMQ_SR);
    }
}
