//! Completion queues.
//!
//! The NIC reports finished work requests by depositing [`Completion`]
//! entries; the application retrieves them with [`CompletionQueue::poll`]
//! (the analogue of `ibv_poll_cq`, non-blocking) or blocks with
//! [`CompletionQueue::next`]. Both charge the polling CPU cost from the
//! device profile. Multiple Queue Pairs may share one completion queue —
//! the paper associates all QPs of an endpoint with a single CQ "to
//! amortize the cost of polling" (§4.4.1).

use std::sync::Arc;

use rshuffle_obs::{EventKind, Obs, Stage};
use rshuffle_simnet::{Gate, Kernel, SimContext, SimDuration};

use crate::types::QpNum;
use crate::NodeId;

/// Status of a completed work request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WcStatus {
    /// The request completed successfully.
    Success,
    /// The inbound message was larger than the posted receive buffer.
    LocalLengthError,
    /// A reliable send exhausted its receiver-not-ready retries (the peer
    /// never posted a matching Receive).
    RetryExceeded,
    /// The QP transitioned to the error state; the request was flushed.
    Flushed,
}

/// Which operation a completion refers to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WcOpcode {
    /// A Send work request completed (buffer reusable).
    Send,
    /// A Receive work request completed (buffer holds a message).
    Recv,
    /// An RDMA Read completed (local buffer holds remote data).
    Read,
    /// An RDMA Write completed (remote memory updated).
    Write,
}

/// One completion-queue entry (the analogue of `ibv_wc`).
#[derive(Clone, Debug)]
pub struct Completion {
    /// The application-chosen identifier of the work request.
    pub wr_id: u64,
    /// Outcome of the request.
    pub status: WcStatus,
    /// Operation kind.
    pub opcode: WcOpcode,
    /// Bytes transferred (receives and reads).
    pub byte_len: usize,
    /// For receives: the sender's node.
    pub src_node: NodeId,
    /// For receives: the sender's QP number (meaningful on UD, where one
    /// local QP hears from many peers).
    pub src_qp: QpNum,
    /// The local QP this completion belongs to.
    pub qp: QpNum,
    /// Immediate data carried by the message, if any (the shuffle endpoints
    /// inline the credit value here to save a DMA, §4.4.1).
    pub imm: Option<u32>,
    /// Virtual ns the originating work request was posted; 0 when the
    /// post time is unknown (e.g. error flushes). Drives the
    /// post-to-completion stage histogram.
    pub posted_ns: u64,
    /// Virtual ns the completion was deposited into the CQ (stamped by
    /// the queue itself). Drives the CQ-wait stage histogram.
    pub deposited_ns: u64,
}

struct CqInner {
    gate: Gate<Completion>,
    poll_cost: SimDuration,
    kernel: Kernel,
    obs: Option<Arc<Obs>>,
}

impl CqInner {
    /// One flight-recorder event per retrieved completion, on the
    /// polling thread's track, plus the post→completion and
    /// completion→poll stage latencies. Pure recording — never advances
    /// virtual time.
    fn observe_polled(&self, ctx: &SimContext, c: &Completion) {
        if let Some(obs) = &self.obs {
            let node = ctx.node() as u32;
            let tid = ctx.id().track();
            let now = ctx.now().as_nanos();
            obs.recorder
                .event(node, tid, now, EventKind::CompletionPolled, c.byte_len as u64);
            if c.posted_ns > 0 && c.deposited_ns >= c.posted_ns {
                obs.record_stage(
                    Stage::PostToCompletion,
                    node,
                    c.deposited_ns - c.posted_ns,
                );
                obs.stage_span(Stage::PostToCompletion, node, tid, c.posted_ns, c.deposited_ns);
            }
            if c.deposited_ns > 0 && now >= c.deposited_ns {
                obs.record_stage(Stage::CqWait, node, now - c.deposited_ns);
                obs.stage_span(Stage::CqWait, node, tid, c.deposited_ns, now);
            }
        }
    }
}

/// A completion queue, shareable across QPs and threads.
#[derive(Clone)]
pub struct CompletionQueue {
    inner: Arc<CqInner>,
}

impl CompletionQueue {
    /// Creates a completion queue. `completion_latency` models the delay
    /// from hardware completion to a polling thread observing it;
    /// `poll_cost` is the CPU cost per poll call.
    pub fn new(kernel: &Kernel, completion_latency: SimDuration, poll_cost: SimDuration) -> Self {
        CompletionQueue {
            inner: Arc::new(CqInner {
                gate: Gate::new(kernel, completion_latency),
                poll_cost,
                kernel: kernel.clone(),
                obs: kernel.obs(),
            }),
        }
    }

    /// Non-blocking poll: drains up to `max` completions, charging one poll
    /// cost. Mirrors `ibv_poll_cq`.
    pub fn poll(&self, ctx: &SimContext, max: usize) -> Vec<Completion> {
        ctx.sleep(self.inner.poll_cost);
        let mut out = Vec::new();
        while out.len() < max {
            match self.inner.gate.try_recv() {
                Some(c) => out.push(c),
                None => break,
            }
        }
        for c in &out {
            self.inner.observe_polled(ctx, c);
        }
        out
    }

    /// Blocks until one completion is available and returns it.
    pub fn next(&self, ctx: &SimContext) -> Completion {
        ctx.sleep(self.inner.poll_cost);
        let c = self.inner.gate.recv(ctx);
        self.inner.observe_polled(ctx, &c);
        c
    }

    /// Blocks until a completion arrives or `timeout` elapses.
    pub fn next_timeout(&self, ctx: &SimContext, timeout: SimDuration) -> Option<Completion> {
        ctx.sleep(self.inner.poll_cost);
        match self.inner.gate.recv_timeout(ctx, timeout) {
            rshuffle_simnet::RecvTimeout::Value(c) => {
                self.inner.observe_polled(ctx, &c);
                Some(c)
            }
            rshuffle_simnet::RecvTimeout::TimedOut => None,
        }
    }

    /// Number of completions currently queued.
    pub fn depth(&self) -> usize {
        self.inner.gate.len()
    }

    /// Deposits a completion (called by the simulated NIC), stamping the
    /// deposit time for the CQ-wait stage histogram.
    pub(crate) fn deposit(&self, mut c: Completion) {
        c.deposited_ns = self.inner.kernel.now().as_nanos();
        self.inner.gate.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rshuffle_simnet::Kernel;

    fn cq(kernel: &Kernel) -> CompletionQueue {
        CompletionQueue::new(
            kernel,
            SimDuration::from_nanos(200),
            SimDuration::from_nanos(50),
        )
    }

    fn dummy(wr_id: u64) -> Completion {
        Completion {
            wr_id,
            status: WcStatus::Success,
            opcode: WcOpcode::Send,
            byte_len: 0,
            src_node: 0,
            src_qp: QpNum(0),
            qp: QpNum(0),
            imm: None,
            posted_ns: 0,
            deposited_ns: 0,
        }
    }

    #[test]
    fn poll_drains_up_to_max() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        for i in 0..5 {
            cq.deposit(dummy(i));
        }
        let cq2 = cq.clone();
        kernel.spawn(0, "poller", move |sim| {
            let batch = cq2.poll(&sim, 3);
            assert_eq!(batch.len(), 3);
            assert_eq!(batch[0].wr_id, 0);
            let rest = cq2.poll(&sim, 10);
            assert_eq!(rest.len(), 2);
            // Two polls at 50ns each.
            assert_eq!(sim.now().as_nanos(), 100);
        });
        kernel.run();
    }

    #[test]
    fn next_blocks_until_deposit() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        let cq2 = cq.clone();
        kernel.spawn(0, "waiter", move |sim| {
            let c = cq2.next(&sim);
            assert_eq!(c.wr_id, 7);
            // Deposit at 1000 + 200 completion latency; poll cost charged
            // before blocking.
            assert_eq!(sim.now().as_nanos(), 1_200);
        });
        let cq3 = cq.clone();
        kernel.schedule(rshuffle_simnet::SimTime::from_nanos(1_000), move || {
            cq3.deposit(dummy(7));
        });
        kernel.run();
    }

    #[test]
    fn next_timeout_expires() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        kernel.spawn(0, "waiter", move |sim| {
            assert!(cq.next_timeout(&sim, SimDuration::from_micros(2)).is_none());
        });
        kernel.run();
    }

    #[test]
    fn empty_poll_still_costs_cpu() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        kernel.spawn(0, "poller", move |sim| {
            assert!(cq.poll(&sim, 8).is_empty());
            assert_eq!(sim.now().as_nanos(), 50);
        });
        kernel.run();
    }
}
