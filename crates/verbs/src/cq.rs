//! Completion queues.
//!
//! The NIC reports finished work requests by depositing [`Completion`]
//! entries; the application retrieves them with [`CompletionQueue::poll`]
//! (the analogue of `ibv_poll_cq`, non-blocking) or blocks with
//! [`CompletionQueue::next`]. Both charge the polling CPU cost from the
//! device profile. Multiple Queue Pairs may share one completion queue —
//! the paper associates all QPs of an endpoint with a single CQ "to
//! amortize the cost of polling" (§4.4.1).

use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_obs::{EventKind, Obs, Stage};
use rshuffle_simnet::{Gate, Kernel, SimContext, SimDuration};

use crate::types::QpNum;
use crate::NodeId;

/// Status of a completed work request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WcStatus {
    /// The request completed successfully.
    Success,
    /// The inbound message was larger than the posted receive buffer.
    LocalLengthError,
    /// A reliable send exhausted its receiver-not-ready retries (the peer
    /// never posted a matching Receive).
    RetryExceeded,
    /// The QP transitioned to the error state; the request was flushed.
    Flushed,
}

/// Which operation a completion refers to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WcOpcode {
    /// A Send work request completed (buffer reusable).
    Send,
    /// A Receive work request completed (buffer holds a message).
    Recv,
    /// An RDMA Read completed (local buffer holds remote data).
    Read,
    /// An RDMA Write completed (remote memory updated).
    Write,
}

/// One completion-queue entry (the analogue of `ibv_wc`).
#[derive(Clone, Debug)]
pub struct Completion {
    /// The application-chosen identifier of the work request.
    pub wr_id: u64,
    /// Outcome of the request.
    pub status: WcStatus,
    /// Operation kind.
    pub opcode: WcOpcode,
    /// Bytes transferred (receives and reads).
    pub byte_len: usize,
    /// For receives: the sender's node.
    pub src_node: NodeId,
    /// For receives: the sender's QP number (meaningful on UD, where one
    /// local QP hears from many peers).
    pub src_qp: QpNum,
    /// The local QP this completion belongs to.
    pub qp: QpNum,
    /// Immediate data carried by the message, if any (the shuffle endpoints
    /// inline the credit value here to save a DMA, §4.4.1).
    pub imm: Option<u32>,
    /// Virtual ns the originating work request was posted; 0 when the
    /// post time is unknown (e.g. error flushes). Drives the
    /// post-to-completion stage histogram.
    pub posted_ns: u64,
    /// Virtual ns the completion was deposited into the CQ (stamped by
    /// the queue itself). Drives the CQ-wait stage histogram.
    pub deposited_ns: u64,
}

struct CqInner {
    gate: Gate<Completion>,
    poll_cost: SimDuration,
    kernel: Kernel,
    obs: Option<Arc<Obs>>,
    /// Completions already paid for by an earlier poll charge. One
    /// `ibv_poll_cq` call retrieves every queued entry for a single CPU
    /// cost; consumers that then take entries one at a time (the blocking
    /// [`CompletionQueue::next`] family) must not be billed again for the
    /// remainder of that burst.
    prepaid: Mutex<usize>,
}

impl CqInner {
    /// Charges one poll cost unless a previous charge already covered this
    /// retrieval (burst semantics of `ibv_poll_cq`): when the queue holds
    /// `k` entries at charge time, the first retrieval pays and the next
    /// `k - 1` ride along free.
    fn charge_poll(&self, ctx: &SimContext) {
        {
            let mut prepaid = self.prepaid.lock();
            if *prepaid > 0 {
                *prepaid -= 1;
                return;
            }
        }
        // Never sleep while holding the lock: the kernel may run another
        // sim thread that polls this CQ during the charge.
        ctx.sleep(self.poll_cost);
        *self.prepaid.lock() = self.gate.len().saturating_sub(1);
    }
    /// One flight-recorder event per retrieved completion, on the
    /// polling thread's track, plus the post→completion and
    /// completion→poll stage latencies. Pure recording — never advances
    /// virtual time.
    fn observe_polled(&self, ctx: &SimContext, c: &Completion) {
        if let Some(obs) = &self.obs {
            let node = ctx.node() as u32;
            let tid = ctx.id().track();
            let now = ctx.now().as_nanos();
            obs.recorder
                .event(node, tid, now, EventKind::CompletionPolled, c.byte_len as u64);
            if c.posted_ns > 0 && c.deposited_ns >= c.posted_ns {
                obs.record_stage(
                    Stage::PostToCompletion,
                    node,
                    c.deposited_ns - c.posted_ns,
                );
                obs.stage_span(Stage::PostToCompletion, node, tid, c.posted_ns, c.deposited_ns);
            }
            if c.deposited_ns > 0 && now >= c.deposited_ns {
                obs.record_stage(Stage::CqWait, node, now - c.deposited_ns);
                obs.stage_span(Stage::CqWait, node, tid, c.deposited_ns, now);
            }
        }
    }
}

/// A completion queue, shareable across QPs and threads.
#[derive(Clone)]
pub struct CompletionQueue {
    inner: Arc<CqInner>,
}

impl CompletionQueue {
    /// Creates a completion queue. `completion_latency` models the delay
    /// from hardware completion to a polling thread observing it;
    /// `poll_cost` is the CPU cost per poll call.
    pub fn new(kernel: &Kernel, completion_latency: SimDuration, poll_cost: SimDuration) -> Self {
        CompletionQueue {
            inner: Arc::new(CqInner {
                gate: Gate::new(kernel, completion_latency),
                poll_cost,
                kernel: kernel.clone(),
                obs: kernel.obs(),
                prepaid: Mutex::new(0),
            }),
        }
    }

    /// Non-blocking poll: drains up to `max` completions, charging one poll
    /// cost. Mirrors `ibv_poll_cq`. Prefer [`CompletionQueue::poll_into`]
    /// on hot paths — it reuses caller scratch instead of allocating.
    pub fn poll(&self, ctx: &SimContext, max: usize) -> Vec<Completion> {
        let mut out = Vec::new();
        self.poll_into(ctx, &mut out, max);
        out
    }

    /// Non-blocking batched drain into caller-owned scratch: clears `out`,
    /// then moves up to `max` queued completions into it, charging one poll
    /// cost for the whole drain (`ibv_poll_cq` batch semantics). Returns
    /// the number of completions retrieved.
    pub fn poll_into(&self, ctx: &SimContext, out: &mut Vec<Completion>, max: usize) -> usize {
        out.clear();
        // A fresh poll call supersedes any burst credit from earlier
        // one-at-a-time consumption.
        *self.inner.prepaid.lock() = 0;
        ctx.sleep(self.inner.poll_cost);
        while out.len() < max {
            match self.inner.gate.try_recv() {
                Some(c) => out.push(c),
                None => break,
            }
        }
        for c in out.iter() {
            self.inner.observe_polled(ctx, c);
        }
        out.len()
    }

    /// Blocking batched drain into caller-owned scratch: clears `out`,
    /// waits up to `timeout` for the first completion, then drains up to
    /// `max - 1` more that are already queued — all for a single poll
    /// cost. Returns the number retrieved (zero on timeout). This is the
    /// endpoint wait-loop workhorse: one charge per burst, no allocation.
    pub fn drain_into(
        &self,
        ctx: &SimContext,
        out: &mut Vec<Completion>,
        max: usize,
        timeout: SimDuration,
    ) -> usize {
        out.clear();
        if max == 0 {
            return 0;
        }
        *self.inner.prepaid.lock() = 0;
        ctx.sleep(self.inner.poll_cost);
        match self.inner.gate.recv_timeout(ctx, timeout) {
            rshuffle_simnet::RecvTimeout::Value(c) => out.push(c),
            rshuffle_simnet::RecvTimeout::TimedOut => return 0,
        }
        while out.len() < max {
            match self.inner.gate.try_recv() {
                Some(c) => out.push(c),
                None => break,
            }
        }
        for c in out.iter() {
            self.inner.observe_polled(ctx, c);
        }
        out.len()
    }

    /// Blocks until one completion is available and returns it.
    ///
    /// Burst pricing: if a previous charge already covered this entry (the
    /// queue held several completions when it was paid), no additional
    /// poll cost is charged — see [`CqInner::charge_poll`].
    pub fn next(&self, ctx: &SimContext) -> Completion {
        self.inner.charge_poll(ctx);
        let c = self.inner.gate.recv(ctx);
        self.inner.observe_polled(ctx, &c);
        c
    }

    /// Blocks until a completion arrives or `timeout` elapses. Shares
    /// [`CompletionQueue::next`]'s burst pricing.
    pub fn next_timeout(&self, ctx: &SimContext, timeout: SimDuration) -> Option<Completion> {
        self.inner.charge_poll(ctx);
        match self.inner.gate.recv_timeout(ctx, timeout) {
            rshuffle_simnet::RecvTimeout::Value(c) => {
                self.inner.observe_polled(ctx, &c);
                Some(c)
            }
            rshuffle_simnet::RecvTimeout::TimedOut => None,
        }
    }

    /// Number of completions currently queued.
    pub fn depth(&self) -> usize {
        self.inner.gate.len()
    }

    /// Deposits a completion (called by the simulated NIC), stamping the
    /// deposit time for the CQ-wait stage histogram.
    pub(crate) fn deposit(&self, mut c: Completion) {
        c.deposited_ns = self.inner.kernel.now().as_nanos();
        self.inner.gate.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rshuffle_simnet::Kernel;

    fn cq(kernel: &Kernel) -> CompletionQueue {
        CompletionQueue::new(
            kernel,
            SimDuration::from_nanos(200),
            SimDuration::from_nanos(50),
        )
    }

    fn dummy(wr_id: u64) -> Completion {
        Completion {
            wr_id,
            status: WcStatus::Success,
            opcode: WcOpcode::Send,
            byte_len: 0,
            src_node: 0,
            src_qp: QpNum(0),
            qp: QpNum(0),
            imm: None,
            posted_ns: 0,
            deposited_ns: 0,
        }
    }

    #[test]
    fn poll_drains_up_to_max() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        for i in 0..5 {
            cq.deposit(dummy(i));
        }
        let cq2 = cq.clone();
        kernel.spawn(0, "poller", move |sim| {
            let batch = cq2.poll(&sim, 3);
            assert_eq!(batch.len(), 3);
            assert_eq!(batch[0].wr_id, 0);
            let rest = cq2.poll(&sim, 10);
            assert_eq!(rest.len(), 2);
            // Two polls at 50ns each.
            assert_eq!(sim.now().as_nanos(), 100);
        });
        kernel.run();
    }

    #[test]
    fn next_blocks_until_deposit() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        let cq2 = cq.clone();
        kernel.spawn(0, "waiter", move |sim| {
            let c = cq2.next(&sim);
            assert_eq!(c.wr_id, 7);
            // Deposit at 1000 + 200 completion latency; poll cost charged
            // before blocking.
            assert_eq!(sim.now().as_nanos(), 1_200);
        });
        let cq3 = cq.clone();
        kernel.schedule(rshuffle_simnet::SimTime::from_nanos(1_000), move || {
            cq3.deposit(dummy(7));
        });
        kernel.run();
    }

    #[test]
    fn next_timeout_expires() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        kernel.spawn(0, "waiter", move |sim| {
            assert!(cq.next_timeout(&sim, SimDuration::from_micros(2)).is_none());
        });
        kernel.run();
    }

    #[test]
    fn empty_poll_still_costs_cpu() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        kernel.spawn(0, "poller", move |sim| {
            assert!(cq.poll(&sim, 8).is_empty());
            assert_eq!(sim.now().as_nanos(), 50);
        });
        kernel.run();
    }

    #[test]
    fn burst_of_next_calls_charges_one_poll_cost() {
        // Eight completions queued before the consumer runs: real
        // `ibv_poll_cq` retrieves them all for one call's CPU cost, so
        // eight blocking next() calls must charge one poll cost total,
        // not eight.
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        for i in 0..8 {
            cq.deposit(dummy(i));
        }
        let cq2 = cq.clone();
        kernel.spawn(0, "consumer", move |sim| {
            for i in 0..8 {
                let c = cq2.next(&sim);
                assert_eq!(c.wr_id, i);
            }
            // One 50ns charge for the whole burst.
            assert_eq!(sim.now().as_nanos(), 50);
            // The burst credit is spent: the next charge is a fresh one.
            cq2.deposit(dummy(99));
            let c = cq2.next(&sim);
            assert_eq!(c.wr_id, 99);
            assert_eq!(sim.now().as_nanos(), 100);
        });
        kernel.run();
    }

    #[test]
    fn next_timeout_burst_shares_the_charge() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        for i in 0..3 {
            cq.deposit(dummy(i));
        }
        let cq2 = cq.clone();
        kernel.spawn(0, "consumer", move |sim| {
            let t = SimDuration::from_micros(1);
            for _ in 0..3 {
                assert!(cq2.next_timeout(&sim, t).is_some());
            }
            assert_eq!(sim.now().as_nanos(), 50);
        });
        kernel.run();
    }

    #[test]
    fn poll_into_reuses_scratch_and_charges_once() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        for i in 0..5 {
            cq.deposit(dummy(i));
        }
        let cq2 = cq.clone();
        kernel.spawn(0, "poller", move |sim| {
            let mut scratch = Vec::with_capacity(8);
            assert_eq!(cq2.poll_into(&sim, &mut scratch, 8), 5);
            assert_eq!(scratch.len(), 5);
            assert_eq!(scratch[4].wr_id, 4);
            assert_eq!(sim.now().as_nanos(), 50);
            // Scratch is cleared on reuse, capacity retained.
            assert_eq!(cq2.poll_into(&sim, &mut scratch, 8), 0);
            assert!(scratch.is_empty());
            assert_eq!(sim.now().as_nanos(), 100);
        });
        kernel.run();
    }

    #[test]
    fn drain_into_blocks_then_drains_queued_burst() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        let cq2 = cq.clone();
        kernel.spawn(0, "drainer", move |sim| {
            let mut scratch = Vec::new();
            // Blocks for the first completion, then picks up the rest of
            // the burst for the same single charge.
            let n = cq2.drain_into(&sim, &mut scratch, 8, SimDuration::from_micros(5));
            assert_eq!(n, 3);
            // Deposits at 1000, +200 completion latency, poll cost charged
            // before blocking.
            assert_eq!(sim.now().as_nanos(), 1_200);
            // Timeout path returns zero after charging.
            assert_eq!(
                cq2.drain_into(&sim, &mut scratch, 8, SimDuration::from_nanos(100)),
                0
            );
        });
        let cq3 = cq.clone();
        kernel.schedule(rshuffle_simnet::SimTime::from_nanos(1_000), move || {
            for i in 0..3 {
                cq3.deposit(dummy(i));
            }
        });
        kernel.run();
    }

    #[test]
    fn poll_resets_stale_burst_credit() {
        let kernel = Kernel::new();
        let cq = cq(&kernel);
        for i in 0..4 {
            cq.deposit(dummy(i));
        }
        let cq2 = cq.clone();
        kernel.spawn(0, "mixed", move |sim| {
            // next() pays once and prepays the other three...
            let _ = cq2.next(&sim);
            assert_eq!(sim.now().as_nanos(), 50);
            // ...but an explicit poll is a fresh ibv_poll_cq call: it
            // charges again and supersedes the leftover credit.
            assert_eq!(cq2.poll(&sim, 8).len(), 3);
            assert_eq!(sim.now().as_nanos(), 100);
            cq2.deposit(dummy(9));
            let _ = cq2.next(&sim);
            assert_eq!(sim.now().as_nanos(), 150);
        });
        kernel.run();
    }
}
