//! Basic identifier and enum types shared across the verbs API.

use std::fmt;

/// Queue Pair number, unique within a node (like the hardware's QPN).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QpNum(pub u32);

impl fmt::Debug for QpNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp#{}", self.0)
    }
}

/// The transport service type of a Queue Pair (§2.2.2).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum QpType {
    /// Reliable Connection: acknowledged, ordered, connection-oriented.
    Rc,
    /// Unreliable Datagram: connectionless, unordered, ≤ MTU messages.
    Ud,
}

/// Queue Pair state machine states (a faithful subset of the IB spec).
#[derive(Copy, Clone, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum QpState {
    /// Freshly created; nothing may be posted.
    Reset,
    /// Initialized; Receive requests may be posted.
    Init,
    /// Ready to receive.
    ReadyToReceive,
    /// Ready to send (fully operational).
    ReadyToSend,
    /// Broken; all posted requests flush with errors.
    Error,
}
