//! Queue Pairs: posting work requests and the delivery pipeline.
//!
//! A [`QueuePair`] follows the IB state machine (RESET → INIT → RTR → RTS).
//! Posting a work request charges the CPU post cost, occupies the local
//! NIC's pipeline (touching the QP context cache), serializes on the fabric
//! ports and finally runs a delivery event at the receiver:
//!
//! * **Send** consumes a posted Receive at the destination. On UD an
//!   unmatched Send is silently dropped (§2.2.1: "else Send requests will
//!   be dropped"); on RC the hardware retries (receiver-not-ready) and the
//!   sender eventually completes with [`WcStatus::RetryExceeded`].
//! * **RDMA Read** pulls remote registered memory into a local buffer with
//!   no remote CPU involvement.
//! * **RDMA Write** pushes a local buffer into remote registered memory,
//!   also fully passive at the target.
//!
//! All timing flows through the shared [`rshuffle_simnet::NicModel`]s and
//! [`rshuffle_simnet::Fabric`]s so that
//! contention between QPs, threads and nodes is captured.

use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use rshuffle_obs::{EventKind, Stage, HW_TRACK};
use rshuffle_simnet::nic::WrKind;
use rshuffle_simnet::{FlowId, SimContext, SimDuration, SimTime};

use crate::cq::{Completion, CompletionQueue, WcOpcode, WcStatus};
use crate::error::{Result, VerbsError};
use crate::mr::{MemoryRegion, RemoteAddr};
use crate::runtime::VerbsRuntime;
use crate::types::{QpNum, QpState, QpType};
use crate::NodeId;

/// Per-packet wire header overhead for reliable transport (LRH+BTH+CRC).
const RC_HEADER_BYTES: usize = 30;
/// Wire overhead of a UD datagram (adds the 40-byte GRH).
const UD_HEADER_BYTES: usize = 70;
/// How many times the hardware retries a send that finds no posted receive.
const RNR_RETRY_LIMIT: u32 = 7;
/// Delay between receiver-not-ready retries.
const RNR_RETRY_DELAY: SimDuration = SimDuration::from_micros(20);

/// Destination of a UD send / identity of a remote QP (`ibv_ah` analogue).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AddressHandle {
    /// Destination node.
    pub node: NodeId,
    /// Destination Queue Pair number.
    pub qpn: QpNum,
}

/// A Receive work request: where an incoming message may land.
#[derive(Clone)]
pub struct RecvWr {
    /// Application identifier returned in the completion.
    pub wr_id: u64,
    /// Registered region holding the buffer.
    pub mr: MemoryRegion,
    /// Buffer offset within the region.
    pub offset: usize,
    /// Buffer capacity.
    pub len: usize,
}

/// A Send work request.
#[derive(Clone)]
pub struct SendWr {
    /// Application identifier returned in the completion.
    pub wr_id: u64,
    /// Registered region holding the payload.
    pub mr: MemoryRegion,
    /// Payload offset within the region.
    pub offset: usize,
    /// Payload length.
    pub len: usize,
    /// Immediate data delivered with the message (used by the shuffle
    /// endpoints to inline the credit value, §4.4.1).
    pub imm: Option<u32>,
    /// Destination (required on UD, ignored on RC which uses the connected
    /// peer).
    pub ah: Option<AddressHandle>,
}

/// One shared physical-QP slot of the connection multiplexer.
///
/// Virtual QPs bound to the same slot model endpoints that share one
/// real Reliable Connection: they alias a single NIC QP context — so the
/// QP-context cache and doorbell coalescing see one QP, not N (the
/// benefit side of multiplexing, Figure 11) — and they serialize their
/// deliveries through one shared order clock (the head-of-line cost of
/// sharing). Protocol state — receive queues, completion queues, credit
/// accounting — stays per virtual QP, so endpoint and audit invariants
/// are untouched by slot sharing.
pub struct SharedQpSlot {
    /// The NIC context key the slot's members alias. Donated by the
    /// first QP bound to the slot, so a slot with a single member is
    /// indistinguishable from an unshared QP.
    ctx: OnceLock<u64>,
    /// Shared delivery-order clock: RC delivery stays in posted order
    /// across *all* members, exactly as on one physical connection.
    order: Mutex<SimTime>,
}

impl SharedQpSlot {
    /// Creates an empty slot; the first bound QP donates its context.
    pub fn new() -> Arc<SharedQpSlot> {
        Arc::new(SharedQpSlot {
            ctx: OnceLock::new(),
            order: Mutex::new(SimTime::ZERO),
        })
    }
}

/// A QP's membership in a [`SharedQpSlot`] (installed once, pre-traffic).
pub(crate) struct SharedBinding {
    /// The slot's aliased NIC context key (resolved at bind time).
    pub(crate) ctx: u64,
    /// The slot itself, for the shared delivery-order clock.
    pub(crate) slot: Arc<SharedQpSlot>,
}

pub(crate) struct QpInner {
    pub(crate) node: NodeId,
    pub(crate) qpn: QpNum,
    pub(crate) ty: QpType,
    pub(crate) state: Mutex<QpState>,
    pub(crate) peer: Mutex<Option<AddressHandle>>,
    pub(crate) send_cq: CompletionQueue,
    pub(crate) recv_cq: CompletionQueue,
    pub(crate) recv_queue: Mutex<VecDeque<RecvWr>>,
    /// Latest delivery time issued on this (RC) QP. Reliable Connections
    /// deliver strictly in posted order even when a small message could
    /// physically arrive earlier (control virtual lane), so delivery times
    /// are clamped to be monotone per QP.
    pub(crate) last_delivery: Mutex<SimTime>,
    /// The flow (query) whose NIC/port share this QP's traffic consumes.
    pub(crate) flow: FlowId,
    /// Shared-slot membership when the connection multiplexer has bound
    /// this QP ([`QueuePair::bind_shared_slot`]); empty on the direct
    /// path, where every hot-path read is one relaxed atomic load.
    pub(crate) shared: OnceLock<SharedBinding>,
}

impl QpInner {
    pub(crate) fn new(
        node: NodeId,
        qpn: QpNum,
        ty: QpType,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        flow: FlowId,
    ) -> Self {
        QpInner {
            node,
            qpn,
            ty,
            state: Mutex::new(QpState::Reset),
            peer: Mutex::new(None),
            send_cq,
            recv_cq,
            recv_queue: Mutex::new(VecDeque::new()),
            last_delivery: Mutex::new(SimTime::ZERO),
            flow,
            shared: OnceLock::new(),
        }
    }

    /// The NIC context key this QP's traffic occupies: its own natural
    /// key, or the aliased slot key when multiplexed onto a shared slot.
    fn ctx_key(&self) -> u64 {
        match self.shared.get() {
            Some(b) => b.ctx,
            None => self.natural_ctx_key(),
        }
    }

    /// The un-multiplexed context key (`node << 32 | qpn`).
    fn natural_ctx_key(&self) -> u64 {
        ((self.node as u64) << 32) | self.qpn.0 as u64
    }

    /// Fault injection: forces the QP into the error state, flushing every
    /// queued receive to the receive CQ with [`WcStatus::Flushed`] (the
    /// `IBV_WC_WR_FLUSH_ERR` behaviour of real hardware). Returns `false`
    /// if the QP was already in the error state.
    pub(crate) fn force_error(&self) -> bool {
        {
            let mut st = self.state.lock();
            if *st == QpState::Error {
                return false;
            }
            *st = QpState::Error;
        }
        let flushed: Vec<RecvWr> = self.recv_queue.lock().drain(..).collect();
        for rwr in flushed {
            self.recv_cq.deposit(Completion {
                wr_id: rwr.wr_id,
                status: WcStatus::Flushed,
                opcode: WcOpcode::Recv,
                byte_len: 0,
                src_node: self.node,
                src_qp: self.qpn,
                qp: self.qpn,
                imm: None,
                posted_ns: 0,
                deposited_ns: 0,
            });
        }
        true
    }
}

/// A Queue Pair handle. Thread-safe; clones share the same QP.
#[derive(Clone)]
pub struct QueuePair {
    inner: Arc<QpInner>,
    runtime: Arc<VerbsRuntime>,
}

impl QueuePair {
    pub(crate) fn new(inner: Arc<QpInner>, runtime: Arc<VerbsRuntime>) -> Self {
        QueuePair { inner, runtime }
    }

    /// This QP's number.
    pub fn qpn(&self) -> QpNum {
        self.inner.qpn
    }

    /// The node the QP lives on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The transport service type.
    pub fn qp_type(&self) -> QpType {
        self.inner.ty
    }

    /// Current state.
    pub fn state(&self) -> QpState {
        *self.inner.state.lock()
    }

    /// The modelled setup cost of connecting one RC QP (used by
    /// [`crate::ConnectionManager`]).
    pub fn profile_rc_setup(&self) -> SimDuration {
        self.runtime.profile().rc_qp_setup
    }

    /// The modelled setup cost of creating one UD QP and exchanging its
    /// address handle.
    pub fn profile_ud_setup(&self) -> SimDuration {
        self.runtime.profile().ud_qp_setup
    }

    /// An address handle peers can use to reach this QP.
    pub fn address_handle(&self) -> AddressHandle {
        AddressHandle {
            node: self.inner.node,
            qpn: self.inner.qpn,
        }
    }

    /// RESET → INIT. Receives may be posted afterwards.
    pub fn modify_to_init(&self) -> Result<()> {
        self.transition(QpState::Reset, QpState::Init, "modify_to_init")
    }

    /// INIT → RTR (ready to receive). RC QPs must be connected first.
    pub fn modify_to_rtr(&self) -> Result<()> {
        if self.inner.ty == QpType::Rc && self.inner.peer.lock().is_none() {
            return Err(VerbsError::NotConnected(self.inner.qpn));
        }
        self.transition(QpState::Init, QpState::ReadyToReceive, "modify_to_rtr")
    }

    /// RTR → RTS (fully operational).
    pub fn modify_to_rts(&self) -> Result<()> {
        self.transition(
            QpState::ReadyToReceive,
            QpState::ReadyToSend,
            "modify_to_rts",
        )
    }

    fn transition(&self, from: QpState, to: QpState, op: &'static str) -> Result<()> {
        {
            let mut st = self.inner.state.lock();
            if *st != from {
                return Err(VerbsError::InvalidState {
                    qp: self.inner.qpn,
                    state: *st,
                    op,
                });
            }
            *st = to;
        }
        self.runtime.rt_obs.obs.recorder.event(
            self.inner.node as u32,
            HW_TRACK,
            self.runtime.kernel().now().as_nanos(),
            EventKind::QpTransition,
            // Low byte: new state; next byte: old state; rest: QPN.
            ((self.inner.qpn.0 as u64) << 16) | ((from as u64) << 8) | to as u64,
        );
        Ok(())
    }

    /// Any state → RESET (`ibv_modify_qp` to `IBV_QPS_RESET`): the
    /// recovery path for a QP that entered the error state. Pending
    /// receives are discarded *without* flushing completions (real
    /// hardware flushed them when the QP erred; a reconnecting endpoint
    /// reposts its pool), the peer binding is cleared and the delivery
    /// clock rewinds so the re-established connection starts fresh.
    pub fn reset(&self) -> Result<()> {
        let from = {
            let mut st = self.inner.state.lock();
            let from = *st;
            *st = QpState::Reset;
            from
        };
        self.inner.recv_queue.lock().clear();
        *self.inner.peer.lock() = None;
        *self.inner.last_delivery.lock() = SimTime::ZERO;
        self.runtime.rt_obs.obs.recorder.event(
            self.inner.node as u32,
            HW_TRACK,
            self.runtime.kernel().now().as_nanos(),
            EventKind::QpTransition,
            ((self.inner.qpn.0 as u64) << 16) | ((from as u64) << 8) | QpState::Reset as u64,
        );
        Ok(())
    }

    /// Binds this RC QP onto a shared physical-QP slot (connection
    /// multiplexing). Must happen at wiring time, before traffic flows;
    /// a QP can be bound at most once. The first member donates its
    /// context key, so a one-member slot behaves exactly like an
    /// unshared QP. [`QueuePair::reset`] does *not* rewind the shared
    /// order clock — the other members' deliveries already consumed it,
    /// just as tearing down one virtual endpoint of a real shared
    /// connection leaves the connection's ordering state intact.
    pub fn bind_shared_slot(&self, slot: &Arc<SharedQpSlot>) -> Result<()> {
        if self.inner.ty != QpType::Rc {
            return Err(VerbsError::UnsupportedOp {
                op: "bind_shared_slot",
                reason: "only Reliable Connections are multiplexed",
            });
        }
        let ctx = *slot.ctx.get_or_init(|| self.inner.natural_ctx_key());
        let binding = SharedBinding {
            ctx,
            slot: slot.clone(),
        };
        if self.inner.shared.set(binding).is_err() {
            return Err(VerbsError::UnsupportedOp {
                op: "bind_shared_slot",
                reason: "QP is already bound to a shared slot",
            });
        }
        Ok(())
    }

    /// Whether this QP is bound onto a shared physical-QP slot.
    pub fn is_shared(&self) -> bool {
        self.inner.shared.get().is_some()
    }

    /// Binds this RC QP to its (single) remote peer. Must happen in INIT,
    /// before RTR.
    pub fn connect(&self, peer: AddressHandle) -> Result<()> {
        if self.inner.ty != QpType::Rc {
            return Err(VerbsError::UnsupportedOp {
                op: "connect",
                reason: "UD queue pairs are connectionless",
            });
        }
        let st = *self.inner.state.lock();
        if st != QpState::Init {
            return Err(VerbsError::InvalidState {
                qp: self.inner.qpn,
                state: st,
                op: "connect",
            });
        }
        *self.inner.peer.lock() = Some(peer);
        Ok(())
    }

    /// Number of Receive requests currently posted.
    pub fn posted_receives(&self) -> usize {
        self.inner.recv_queue.lock().len()
    }

    /// Posts a Receive work request (`ibv_post_recv`). Allowed from INIT
    /// onward.
    pub fn post_recv(&self, sim: &SimContext, wr: RecvWr) -> Result<()> {
        let st = *self.inner.state.lock();
        if st < QpState::Init || st == QpState::Error {
            return Err(VerbsError::InvalidState {
                qp: self.inner.qpn,
                state: st,
                op: "post_recv",
            });
        }
        if wr
            .offset
            .checked_add(wr.len)
            .is_none_or(|e| e > wr.mr.len())
        {
            return Err(VerbsError::OutOfBounds {
                offset: wr.offset,
                len: wr.len,
                region: wr.mr.len(),
            });
        }
        sim.sleep(self.runtime.profile().post_wr_cpu);
        self.runtime.rt_obs.obs.recorder.event(
            sim.node() as u32,
            sim.id().track(),
            sim.now().as_nanos(),
            EventKind::RecvPosted,
            wr.len as u64,
        );
        self.inner.recv_queue.lock().push_back(wr);
        Ok(())
    }

    /// Posts a Receive without charging CPU time. For connection bootstrap
    /// outside the measured window (initial receive pools are posted while
    /// connections are established, before the query starts).
    pub fn post_recv_untimed(&self, wr: RecvWr) -> Result<()> {
        let st = *self.inner.state.lock();
        if st < QpState::Init || st == QpState::Error {
            return Err(VerbsError::InvalidState {
                qp: self.inner.qpn,
                state: st,
                op: "post_recv_untimed",
            });
        }
        if wr
            .offset
            .checked_add(wr.len)
            .is_none_or(|e| e > wr.mr.len())
        {
            return Err(VerbsError::OutOfBounds {
                offset: wr.offset,
                len: wr.len,
                region: wr.mr.len(),
            });
        }
        self.inner.recv_queue.lock().push_back(wr);
        Ok(())
    }

    /// Posts a Send work request (`ibv_post_send` with `IBV_WR_SEND`).
    ///
    /// The payload is captured when the request is posted; per the verbs
    /// contract the buffer must not be modified until the completion
    /// arrives.
    pub fn post_send(&self, sim: &SimContext, wr: SendWr) -> Result<()> {
        self.check_sendable("post_send")?;
        let profile = self.runtime.profile();
        let (dest, max) = match self.inner.ty {
            QpType::Ud => (wr.ah.ok_or(VerbsError::MissingAddressHandle)?, profile.mtu),
            QpType::Rc => {
                let peer = *self.inner.peer.lock();
                (
                    peer.ok_or(VerbsError::NotConnected(self.inner.qpn))?,
                    profile.max_rc_message,
                )
            }
        };
        if wr.len > max {
            return Err(VerbsError::MessageTooLarge { len: wr.len, max });
        }
        let payload = wr.mr.read(wr.offset, wr.len)?;
        sim.sleep(profile.post_wr_cpu);

        let now = self.runtime.kernel().now();
        self.observe_send_posted(sim, wr.len, now);
        let kind = match self.inner.ty {
            QpType::Rc => WrKind::SendRc,
            QpType::Ud => WrKind::SendUd,
        };
        let nic_done = self
            .runtime
            .nic(self.inner.node)
            .process_flow(now, self.inner.ctx_key(), kind, self.inner.flow);
        self.observe_wr_batch(sim, now, nic_done);

        let reliable = self.inner.ty == QpType::Rc;
        let wire_bytes = wire_bytes(self.inner.ty, wr.len, profile.mtu);

        // UD fault injection: loss and reordering.
        let jitter = if reliable {
            SimDuration::ZERO
        } else {
            match self.runtime.sample_ud_fate(self.inner.node) {
                Some(j) => j,
                None => {
                    // Lost in the network: the sender still sees a local
                    // send completion (it only means the NIC consumed the
                    // buffer).
                    let send_cq = self.inner.send_cq.clone();
                    let completion = self.local_send_completion(&wr, now.as_nanos());
                    self.runtime
                        .kernel()
                        .schedule(nic_done, move || send_cq.deposit(completion));
                    return Ok(());
                }
            }
        };

        let deliver = self.runtime.cluster().fabric().transfer_flow(
            self.inner.node,
            dest.node,
            wire_bytes,
            nic_done,
            self.inner.flow,
        ) + jitter;
        let deliver = if reliable {
            self.ordered_delivery(deliver)
        } else {
            deliver
        };

        // Sender-side completion: UD completes locally once the NIC is done;
        // RC completes after the remote match acknowledges (scheduled by the
        // delivery path).
        if !reliable {
            let send_cq = self.inner.send_cq.clone();
            let completion = self.local_send_completion(&wr, now.as_nanos());
            self.runtime
                .kernel()
                .schedule(nic_done, move || send_cq.deposit(completion));
        }

        let runtime = self.runtime.clone();
        let src = self.address_handle();
        let sender_ctx = if reliable {
            Some((self.inner.send_cq.clone(), wr.wr_id))
        } else {
            None
        };
        let imm = wr.imm;
        let posted_ns = now.as_nanos();
        self.runtime.kernel().schedule(deliver, move || {
            deliver_send(runtime, dest, payload, imm, src, sender_ctx, 0, posted_ns);
        });
        Ok(())
    }

    /// Records the send into the flight recorder and size histogram
    /// (through the interned per-node id — no name lookup per message).
    fn observe_send_posted(&self, sim: &SimContext, len: usize, now: SimTime) {
        let obs = &self.runtime.rt_obs.obs;
        obs.recorder.event(
            sim.node() as u32,
            sim.id().track(),
            now.as_nanos(),
            EventKind::SendPosted,
            len as u64,
        );
        obs.metrics
            .record(self.runtime.rt_obs.msg_size[self.inner.node], len as u64);
    }

    /// Records the doorbell→NIC-accept WR batching stage for a work
    /// request posted at `posted` and accepted at `nic_done`.
    fn observe_wr_batch(&self, sim: &SimContext, posted: SimTime, nic_done: SimTime) {
        let obs = &self.runtime.rt_obs.obs;
        let node = self.inner.node as u32;
        let p = posted.as_nanos();
        let d = nic_done.as_nanos();
        obs.record_stage(Stage::WrBatch, node, d.saturating_sub(p));
        obs.stage_span(Stage::WrBatch, node, sim.id().track(), p, d);
    }

    /// Posts one UD Send that the switch replicates to every destination
    /// (native InfiniBand multicast; the paper's §7 hypothesizes this will
    /// reduce broadcast CPU cost). One work request, one egress
    /// serialization, one local completion; each destination's delivery is
    /// subject to its own fault sampling. UD only.
    pub fn post_send_multicast(
        &self,
        sim: &SimContext,
        wr: SendWr,
        dests: &[AddressHandle],
    ) -> Result<()> {
        if self.inner.ty != QpType::Ud {
            return Err(VerbsError::UnsupportedOp {
                op: "post_send_multicast",
                reason: "native multicast runs over the Unreliable Datagram service",
            });
        }
        self.check_sendable("post_send_multicast")?;
        let profile = self.runtime.profile();
        if wr.len > profile.mtu {
            return Err(VerbsError::MessageTooLarge {
                len: wr.len,
                max: profile.mtu,
            });
        }
        assert!(!dests.is_empty(), "multicast needs at least one destination");
        let payload = wr.mr.read(wr.offset, wr.len)?;
        sim.sleep(profile.post_wr_cpu);

        let now = self.runtime.kernel().now();
        self.observe_send_posted(sim, wr.len, now);
        let nic_done = self
            .runtime
            .nic(self.inner.node)
            .process_flow(now, self.inner.ctx_key(), WrKind::SendUd, self.inner.flow);
        self.observe_wr_batch(sim, now, nic_done);
        let wire = wire_bytes(QpType::Ud, wr.len, profile.mtu);
        let dest_nodes: Vec<crate::NodeId> = dests.iter().map(|d| d.node).collect();
        let deliveries = self.runtime.cluster().fabric().transfer_multicast_flow(
            self.inner.node,
            &dest_nodes,
            wire,
            nic_done,
            self.inner.flow,
        );
        // One local completion for the single work request.
        let send_cq = self.inner.send_cq.clone();
        let completion = self.local_send_completion(&wr, now.as_nanos());
        self.runtime
            .kernel()
            .schedule(nic_done, move || send_cq.deposit(completion));
        let src = self.address_handle();
        let posted_ns = now.as_nanos();
        for (&dest, deliver) in dests.iter().zip(deliveries) {
            let Some(jitter) = self.runtime.sample_ud_fate(self.inner.node) else {
                continue; // This member's copy is lost.
            };
            let runtime = self.runtime.clone();
            let payload = payload.clone();
            let imm = wr.imm;
            self.runtime.kernel().schedule(deliver + jitter, move || {
                deliver_send(runtime, dest, payload, imm, src, None, 0, posted_ns);
            });
        }
        Ok(())
    }

    /// Posts an RDMA Read (`ibv_post_send` with `IBV_WR_RDMA_READ`):
    /// fetches `len` bytes from `remote` into the local buffer. RC only.
    pub fn post_read(
        &self,
        sim: &SimContext,
        wr_id: u64,
        local: (MemoryRegion, usize),
        remote: RemoteAddr,
        len: usize,
    ) -> Result<()> {
        self.check_one_sided("post_read")?;
        let profile = self.runtime.profile();
        if len > profile.max_rc_message {
            return Err(VerbsError::MessageTooLarge {
                len,
                max: profile.max_rc_message,
            });
        }
        let (local_mr, local_off) = local;
        if local_off
            .checked_add(len)
            .is_none_or(|e| e > local_mr.len())
        {
            return Err(VerbsError::OutOfBounds {
                offset: local_off,
                len,
                region: local_mr.len(),
            });
        }
        sim.sleep(profile.post_wr_cpu);

        let now = self.runtime.kernel().now();
        let nic_done = self.runtime.nic(self.inner.node).process_flow(
            now,
            self.inner.ctx_key(),
            WrKind::Read,
            self.inner.flow,
        );
        self.observe_wr_batch(sim, now, nic_done);
        let read_posted_ns = now.as_nanos();
        // The read request itself is a small packet to the remote node.
        let req_arrive = self.runtime.cluster().fabric().transfer_flow(
            self.inner.node,
            remote.node,
            RC_HEADER_BYTES,
            nic_done,
            self.inner.flow,
        );

        let runtime = self.runtime.clone();
        let local_node = self.inner.node;
        let send_cq = self.inner.send_cq.clone();
        let qpn = self.inner.qpn;
        let peer_ctx = self.peer_ctx_key();
        let self_ctx = self.inner.ctx_key();
        let mtu = profile.mtu;
        let flow = self.inner.flow;
        self.runtime.kernel().schedule(req_arrive, move || {
            let now = runtime.kernel().now();
            // The target NIC serves the read passively: pipeline occupancy
            // plus a QP-context touch, no remote CPU.
            let serve = runtime
                .nic(remote.node)
                .process_flow(now, peer_ctx, WrKind::RemoteDma, flow);
            let data = match runtime.lookup_mr(remote.rkey) {
                Some(mr) if remote.offset + len <= mr.len() => {
                    mr.read(remote.offset, len).expect("bounds checked")
                }
                _ => {
                    // Bad rkey or bounds: remote access error completion.
                    let completion = Completion {
                        wr_id,
                        status: WcStatus::Flushed,
                        opcode: WcOpcode::Read,
                        byte_len: 0,
                        src_node: remote.node,
                        src_qp: QpNum(0),
                        qp: qpn,
                        imm: None,
                        posted_ns: read_posted_ns,
                        deposited_ns: 0,
                    };
                    runtime
                        .kernel()
                        .schedule(serve, move || send_cq.deposit(completion));
                    return;
                }
            };
            let wire = len + RC_HEADER_BYTES * len.div_ceil(mtu).max(1);
            let back = runtime
                .cluster()
                .fabric()
                .transfer_flow(remote.node, local_node, wire, serve, flow);
            let runtime2 = runtime.clone();
            runtime.kernel().schedule(back, move || {
                let now = runtime2.kernel().now();
                let done =
                    runtime2
                        .nic(local_node)
                        .process_flow(now, self_ctx, WrKind::RecvMatch, flow);
                local_mr
                    .write(local_off, &data)
                    .expect("bounds checked at post time");
                let completion = Completion {
                    wr_id,
                    status: WcStatus::Success,
                    opcode: WcOpcode::Read,
                    byte_len: len,
                    src_node: remote.node,
                    src_qp: QpNum(0),
                    qp: qpn,
                    imm: None,
                    posted_ns: read_posted_ns,
                    deposited_ns: 0,
                };
                runtime2
                    .kernel()
                    .schedule(done, move || send_cq.deposit(completion));
            });
        });
        Ok(())
    }

    /// Posts an RDMA Write (`ibv_post_send` with `IBV_WR_RDMA_WRITE`):
    /// pushes the local buffer into `remote`. RC only. The target CPU is
    /// never involved; consumers poll memory (see
    /// [`MemoryRegion::wait_update`]).
    pub fn post_write(
        &self,
        sim: &SimContext,
        wr_id: u64,
        local: (MemoryRegion, usize),
        remote: RemoteAddr,
        len: usize,
    ) -> Result<()> {
        self.check_one_sided("post_write")?;
        let profile = self.runtime.profile();
        if len > profile.max_rc_message {
            return Err(VerbsError::MessageTooLarge {
                len,
                max: profile.max_rc_message,
            });
        }
        let (local_mr, local_off) = local;
        let payload = local_mr.read(local_off, len)?;
        sim.sleep(profile.post_wr_cpu);

        let now = self.runtime.kernel().now();
        let nic_done = self.runtime.nic(self.inner.node).process_flow(
            now,
            self.inner.ctx_key(),
            WrKind::Write,
            self.inner.flow,
        );
        self.observe_wr_batch(sim, now, nic_done);
        let write_posted_ns = now.as_nanos();
        let wire = len + RC_HEADER_BYTES * len.div_ceil(profile.mtu).max(1);
        let deliver = self.ordered_delivery(self.runtime.cluster().fabric().transfer_flow(
            self.inner.node,
            remote.node,
            wire,
            nic_done,
            self.inner.flow,
        ));

        let runtime = self.runtime.clone();
        let send_cq = self.inner.send_cq.clone();
        let qpn = self.inner.qpn;
        let ack_latency = profile.rc_ack_latency;
        let peer_ctx = self.peer_ctx_key();
        let flow = self.inner.flow;
        self.runtime.kernel().schedule(deliver, move || {
            let now = runtime.kernel().now();
            let served = runtime
                .nic(remote.node)
                .process_flow(now, peer_ctx, WrKind::RemoteDma, flow);
            match runtime.lookup_mr(remote.rkey) {
                Some(mr) if remote.offset + len <= mr.len() => {
                    mr.write(remote.offset, &payload).expect("bounds checked");
                    let mr2 = mr.clone();
                    let runtime2 = runtime.clone();
                    runtime.kernel().schedule(served, move || {
                        mr2.signal_update();
                        let completion = Completion {
                            wr_id,
                            status: WcStatus::Success,
                            opcode: WcOpcode::Write,
                            byte_len: len,
                            src_node: remote.node,
                            src_qp: QpNum(0),
                            qp: qpn,
                            imm: None,
                            posted_ns: write_posted_ns,
                            deposited_ns: 0,
                        };
                        runtime2
                            .kernel()
                            .schedule_in(ack_latency, move || send_cq.deposit(completion));
                    });
                }
                _ => {
                    let completion = Completion {
                        wr_id,
                        status: WcStatus::Flushed,
                        opcode: WcOpcode::Write,
                        byte_len: 0,
                        src_node: remote.node,
                        src_qp: QpNum(0),
                        qp: qpn,
                        imm: None,
                        posted_ns: write_posted_ns,
                        deposited_ns: 0,
                    };
                    runtime
                        .kernel()
                        .schedule(served, move || send_cq.deposit(completion));
                }
            }
        });
        Ok(())
    }

    /// The NIC context key the connected peer's passive (RemoteDma) work
    /// occupies: the peer QP's effective key — aliased when the peer is
    /// multiplexed — falling back to the natural `node << 32 | qpn`
    /// computation if the peer is not registered with the runtime.
    fn peer_ctx_key(&self) -> u64 {
        let Some(peer) = *self.inner.peer.lock() else {
            return 0;
        };
        match self.runtime.lookup_qp(peer.node, peer.qpn) {
            Some(qp) => qp.ctx_key(),
            None => ((peer.node as u64) << 32) | peer.qpn.0 as u64,
        }
    }

    fn check_sendable(&self, op: &'static str) -> Result<()> {
        // Lazy persistent-fault enforcement: a QP (re)built inside an open
        // kill window dies on first use, so reconnects cannot outrun the
        // fault (the recovery layer's retry budget sees every failure).
        self.runtime.enforce_kill_window(&self.inner);
        let st = *self.inner.state.lock();
        if st != QpState::ReadyToSend {
            return Err(VerbsError::InvalidState {
                qp: self.inner.qpn,
                state: st,
                op,
            });
        }
        Ok(())
    }

    fn check_one_sided(&self, op: &'static str) -> Result<()> {
        if self.inner.ty != QpType::Rc {
            return Err(VerbsError::UnsupportedOp {
                op,
                reason: "one-sided operations require the Reliable Connection service",
            });
        }
        self.check_sendable(op)
    }

    /// Clamps `deliver` so deliveries on this RC QP stay in posted order.
    /// A multiplexed QP clamps against its slot's shared clock instead:
    /// everything sharing the physical connection delivers in one posted
    /// order, which is exactly the head-of-line cost of QP sharing.
    fn ordered_delivery(&self, deliver: SimTime) -> SimTime {
        if let Some(b) = self.inner.shared.get() {
            let mut last = b.slot.order.lock();
            let t = deliver.max(*last);
            *last = t;
            return t;
        }
        let mut last = self.inner.last_delivery.lock();
        let t = deliver.max(*last);
        *last = t;
        t
    }

    fn local_send_completion(&self, wr: &SendWr, posted_ns: u64) -> Completion {
        Completion {
            wr_id: wr.wr_id,
            status: WcStatus::Success,
            opcode: WcOpcode::Send,
            byte_len: wr.len,
            src_node: self.inner.node,
            src_qp: self.inner.qpn,
            qp: self.inner.qpn,
            imm: None,
            posted_ns,
            deposited_ns: 0,
        }
    }
}

/// Wire bytes for a message of `len` payload bytes on transport `ty`.
fn wire_bytes(ty: QpType, len: usize, mtu: usize) -> usize {
    match ty {
        QpType::Ud => len + UD_HEADER_BYTES,
        QpType::Rc => len + RC_HEADER_BYTES * len.div_ceil(mtu).max(1),
    }
}

/// Records an unmatched inbound datagram at `node` (the §2.2.1 silent
/// UD drop).
fn observe_unmatched(runtime: &VerbsRuntime, node: crate::NodeId, at: SimTime) {
    runtime.rt_obs.ud_unmatched.inc();
    runtime
        .rt_obs
        .obs
        .recorder
        .event(node as u32, HW_TRACK, at.as_nanos(), EventKind::UdDrop, 1);
}

/// Delivery event: an inbound Send arrives at `dest`. `posted_ns` is the
/// virtual time the sender posted the work request, for the end-to-end
/// message-latency histogram.
#[allow(clippy::too_many_arguments)]
fn deliver_send(
    runtime: Arc<VerbsRuntime>,
    dest: AddressHandle,
    payload: Vec<u8>,
    imm: Option<u32>,
    src: AddressHandle,
    sender_ctx: Option<(CompletionQueue, u64)>,
    attempt: u32,
    posted_ns: u64,
) {
    let now = runtime.kernel().now();
    let reliable = sender_ctx.is_some();
    let Some(qp) = runtime.lookup_qp(dest.node, dest.qpn) else {
        // Unknown QP: UD drops; RC would eventually retry out. Treat both as
        // a drop with a counter.
        observe_unmatched(&runtime, dest.node, now);
        return;
    };
    // Lazy persistent-fault enforcement at the receiver: a target QP
    // inside an open kill window is forced into the error state before
    // the delivery is matched (see `check_sendable`).
    runtime.enforce_kill_window(&qp);
    let st = *qp.state.lock();
    if st == QpState::Error {
        // Target QP was killed (fault injection): an RC sender gets its
        // work request flushed in error; a UD datagram drops silently.
        if let Some((send_cq, wr_id)) = sender_ctx {
            let completion = Completion {
                wr_id,
                status: WcStatus::Flushed,
                opcode: WcOpcode::Send,
                byte_len: payload.len(),
                src_node: dest.node,
                src_qp: dest.qpn,
                qp: src.qpn,
                imm: None,
                posted_ns,
                deposited_ns: 0,
            };
            runtime
                .kernel()
                .schedule(now, move || send_cq.deposit(completion));
        } else {
            observe_unmatched(&runtime, dest.node, now);
        }
        return;
    }
    if st < QpState::ReadyToReceive {
        observe_unmatched(&runtime, dest.node, now);
        return;
    }
    // Receive matching occupies the *target* QP's context — the aliased
    // slot key when the target is multiplexed (identical to the natural
    // `node << 32 | qpn` key otherwise).
    let nic_done = runtime
        .nic(dest.node)
        .process_flow(now, qp.ctx_key(), WrKind::RecvMatch, qp.flow);
    // A receiver-pause fault freezes receive matching: the queue looks
    // empty, so RC takes the RNR-retry path and UD drops unmatched.
    let rwr = if runtime.recv_paused(dest.node, now.as_nanos()) {
        None
    } else {
        qp.recv_queue.lock().pop_front()
    };
    match rwr {
        Some(rwr) => {
            if payload.len() > rwr.len {
                // Message larger than the posted buffer.
                let completion = Completion {
                    wr_id: rwr.wr_id,
                    status: WcStatus::LocalLengthError,
                    opcode: WcOpcode::Recv,
                    byte_len: payload.len(),
                    src_node: src.node,
                    src_qp: src.qpn,
                    qp: dest.qpn,
                    imm,
                    posted_ns,
                    deposited_ns: 0,
                };
                let recv_cq = qp.recv_cq.clone();
                runtime
                    .kernel()
                    .schedule(nic_done, move || recv_cq.deposit(completion));
                return;
            }
            rwr.mr
                .write(rwr.offset, &payload)
                .expect("receive buffer bounds checked at post time");
            runtime.rt_obs.obs.metrics.record(
                runtime.rt_obs.msg_latency[dest.node],
                now.as_nanos().saturating_sub(posted_ns),
            );
            let completion = Completion {
                wr_id: rwr.wr_id,
                status: WcStatus::Success,
                opcode: WcOpcode::Recv,
                byte_len: payload.len(),
                src_node: src.node,
                src_qp: src.qpn,
                qp: dest.qpn,
                imm,
                posted_ns,
                deposited_ns: 0,
            };
            let recv_cq = qp.recv_cq.clone();
            runtime
                .kernel()
                .schedule(nic_done, move || recv_cq.deposit(completion));
            if let Some((send_cq, wr_id)) = sender_ctx {
                // The hardware ACK completes the reliable send.
                let ack = nic_done + runtime.profile().rc_ack_latency;
                let completion = Completion {
                    wr_id,
                    status: WcStatus::Success,
                    opcode: WcOpcode::Send,
                    byte_len: payload.len(),
                    src_node: dest.node,
                    src_qp: dest.qpn,
                    qp: src.qpn,
                    imm: None,
                    posted_ns,
                    deposited_ns: 0,
                };
                runtime
                    .kernel()
                    .schedule(ack, move || send_cq.deposit(completion));
            }
        }
        None => {
            if !reliable {
                // §2.2.1: an unmatched Send on UD is dropped.
                observe_unmatched(&runtime, dest.node, now);
                return;
            }
            if attempt >= RNR_RETRY_LIMIT {
                let (send_cq, wr_id) = sender_ctx.expect("reliable implies sender ctx");
                let completion = Completion {
                    wr_id,
                    status: WcStatus::RetryExceeded,
                    opcode: WcOpcode::Send,
                    byte_len: payload.len(),
                    src_node: dest.node,
                    src_qp: dest.qpn,
                    qp: src.qpn,
                    imm: None,
                    posted_ns,
                    deposited_ns: 0,
                };
                runtime
                    .kernel()
                    .schedule(now, move || send_cq.deposit(completion));
                return;
            }
            // Receiver not ready: the hardware retries after a delay.
            runtime.rt_obs.rnr_retries.inc();
            runtime.rt_obs.obs.recorder.event(
                dest.node as u32,
                HW_TRACK,
                now.as_nanos(),
                EventKind::RnrRetry,
                attempt as u64 + 1,
            );
            let retry_at = now + RNR_RETRY_DELAY;
            let rt = runtime.clone();
            runtime.kernel().schedule(retry_at, move || {
                deliver_send(rt, dest, payload, imm, src, sender_ctx, attempt + 1, posted_ns);
            });
        }
    }
}
