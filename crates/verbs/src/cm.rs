//! Connection management.
//!
//! Setting up RDMA communication is far more involved than a TCP socket:
//! Queue Pairs must be created, routing information exchanged out of band
//! and the QPs walked through the state machine (§2.2.3, §4.2). The paper
//! measures this cost in Figure 12. The helpers here perform the state
//! transitions and charge the modelled per-QP setup time to the calling
//! thread; the out-of-band exchange is folded into that constant (the
//! simulated processes share an address space, so the exchange itself is
//! trivial).

use rshuffle_simnet::SimContext;

use crate::error::Result;
use crate::qp::{AddressHandle, QueuePair};
use crate::types::QpType;

/// Stateless helpers for bringing Queue Pairs to a usable state.
pub struct ConnectionManager;

impl ConnectionManager {
    /// Brings an RC QP from RESET to RTS, connected to `peer`, charging the
    /// per-QP connection cost. The peer side must run the same call with
    /// this QP's address handle.
    pub fn connect_rc(sim: &SimContext, qp: &QueuePair, peer: AddressHandle) -> Result<()> {
        debug_assert_eq!(qp.qp_type(), QpType::Rc);
        // Modelled cost: QP creation attributes, out-of-band exchange and
        // the three modify_qp calls.
        let cost = {
            // Profile access goes through the runtime the QP belongs to.
            qp.profile_rc_setup()
        };
        sim.sleep(cost);
        qp.modify_to_init()?;
        qp.connect(peer)?;
        qp.modify_to_rtr()?;
        qp.modify_to_rts()?;
        Ok(())
    }

    /// Tears an RC QP down (any state → RESET, discarding queued work)
    /// and re-establishes it to `peer`, charging the full per-QP
    /// connection cost again. This is the recovery path after a QP
    /// failure: the peer side must run the same call with this QP's
    /// address handle before traffic can flow.
    pub fn reconnect_rc(sim: &SimContext, qp: &QueuePair, peer: AddressHandle) -> Result<()> {
        debug_assert_eq!(qp.qp_type(), QpType::Rc);
        qp.reset()?;
        Self::connect_rc(sim, qp, peer)
    }

    /// Tears a UD QP down and brings it back to RTS, charging the UD
    /// setup cost again (recovery path for a killed shared QP).
    pub fn resetup_ud(sim: &SimContext, qp: &QueuePair) -> Result<()> {
        debug_assert_eq!(qp.qp_type(), QpType::Ud);
        qp.reset()?;
        Self::setup_ud(sim, qp)
    }

    /// Brings a UD QP from RESET to RTS, charging the UD setup cost
    /// (creation plus address-handle exchange).
    pub fn setup_ud(sim: &SimContext, qp: &QueuePair) -> Result<()> {
        debug_assert_eq!(qp.qp_type(), QpType::Ud);
        sim.sleep(qp.profile_ud_setup());
        qp.modify_to_init()?;
        qp.modify_to_rtr()?;
        qp.modify_to_rts()?;
        Ok(())
    }

    /// Brings a QP to RTS without charging any setup time. For tests and
    /// for setup outside a measured window.
    pub fn activate_untimed(qp: &QueuePair, peer: Option<AddressHandle>) -> Result<()> {
        qp.modify_to_init()?;
        if let Some(p) = peer {
            qp.connect(p)?;
        }
        qp.modify_to_rtr()?;
        qp.modify_to_rts()?;
        Ok(())
    }
}
