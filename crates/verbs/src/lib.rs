//! An InfiniBand-verbs-like RDMA API over the simulated fabric.
//!
//! This crate mirrors the `ibv_*` programming interface described in §2.2.3
//! of the paper closely enough that the shuffling algorithms above it read
//! like their C++ originals:
//!
//! * [`VerbsRuntime`] — one per cluster; hands out per-node [`Context`]s.
//! * [`MemoryRegion`] — registered, "pinned" memory that RDMA operations
//!   target. Registration and deregistration charge the modelled setup cost.
//! * [`QueuePair`] — Reliable Connection (RC) or Unreliable Datagram (UD),
//!   with the standard RESET→INIT→RTR→RTS state machine.
//! * [`CompletionQueue`] — completions are polled (`poll`) or awaited
//!   (`next`), both charging CPU cost.
//!
//! Semantics faithful to the hardware (§2.2):
//! * RC is reliable and ordered, supports Send/Receive, RDMA Read and RDMA
//!   Write, messages up to 1 GiB, and one QP speaks to exactly one peer QP.
//! * UD is connectionless and unordered, supports only Send/Receive with
//!   messages up to the 4 KiB MTU; a Send that finds no posted Receive at
//!   the destination is **dropped**; delivery may be reordered (seeded,
//!   deterministic) and optionally lossy for failure-injection tests.
//! * Every work request occupies the node's NIC pipeline and touches the QP
//!   context cache, so designs with many QPs thrash exactly as on real FDR
//!   hardware.

#![warn(missing_docs)]

pub mod cm;
pub mod cq;
pub mod error;
pub mod fault;
pub mod mr;
pub mod qp;
pub mod runtime;
pub mod types;

pub use cm::ConnectionManager;
pub use cq::{Completion, CompletionQueue, WcOpcode, WcStatus};
pub use error::{Result, VerbsError};
pub use fault::{FaultEvent, FaultPlan, QpScope};
pub use mr::{MemoryRegion, RemoteAddr};
pub use qp::{AddressHandle, QueuePair, RecvWr, SendWr, SharedQpSlot};
pub use runtime::{Context, FaultConfig, VerbsRuntime};
pub use types::{QpNum, QpState, QpType};

pub use rshuffle_simnet::NodeId;
