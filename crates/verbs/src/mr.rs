//! Registered ("pinned") memory regions.
//!
//! RDMA operations can only target memory that has been registered with the
//! NIC (§2.2). A [`MemoryRegion`] owns its backing bytes; remote peers
//! address it through an `rkey` (see [`RemoteAddr`]). Registration charges
//! the modelled pinning cost to the calling thread, and the runtime tracks
//! total registered bytes per node — the quantity plotted in Figure 9(b).
//!
//! One-sided writes into a region can be awaited through
//! [`MemoryRegion::wait_update`], which models a thread polling local memory
//! for a change made by a remote RDMA Write (the paper's ValidArr/FreeArr
//! message queues, §4.4.3).

use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_simnet::{Gate, Kernel, SimContext, SimDuration};

use crate::error::{Result, VerbsError};
use crate::NodeId;

pub(crate) struct MrInner {
    pub(crate) node: NodeId,
    pub(crate) rkey: u32,
    pub(crate) data: Mutex<Box<[u8]>>,
    pub(crate) len: usize,
    /// Signalled whenever a remote RDMA Write lands in this region.
    pub(crate) update_gate: Gate<()>,
}

/// A registered memory region on one node.
///
/// Cloning is cheap and shares the same backing memory (like holding several
/// references to the same pinned pages).
#[derive(Clone)]
pub struct MemoryRegion {
    pub(crate) inner: Arc<MrInner>,
}

/// Address of a window inside a remote node's registered memory.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RemoteAddr {
    /// Node owning the memory.
    pub node: NodeId,
    /// Remote key identifying the region.
    pub rkey: u32,
    /// Byte offset within the region.
    pub offset: usize,
}

impl MemoryRegion {
    pub(crate) fn new(kernel: &Kernel, node: NodeId, rkey: u32, len: usize) -> Self {
        MemoryRegion {
            inner: Arc::new(MrInner {
                node,
                rkey,
                data: Mutex::new(vec![0u8; len].into_boxed_slice()),
                len,
                update_gate: Gate::new(kernel, SimDuration::from_nanos(100)),
            }),
        }
    }

    /// Creates a standalone region that is not tracked by any runtime
    /// registry (no rkey resolution, no registered-bytes accounting).
    ///
    /// Intended for unit tests of code that manipulates buffers without a
    /// full cluster.
    #[doc(hidden)]
    pub fn new_for_tests(kernel: &Kernel, node: NodeId, rkey: u32, len: usize) -> Self {
        Self::new(kernel, node, rkey, len)
    }

    /// The node this region lives on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The remote key peers use to address this region.
    pub fn rkey(&self) -> u32 {
        self.inner.rkey
    }

    /// Size of the region in bytes.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    fn check(&self, offset: usize, len: usize) -> Result<()> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.inner.len)
        {
            return Err(VerbsError::OutOfBounds {
                offset,
                len,
                region: self.inner.len,
            });
        }
        Ok(())
    }

    /// Copies `bytes` into the region at `offset`.
    pub fn write(&self, offset: usize, bytes: &[u8]) -> Result<()> {
        self.check(offset, bytes.len())?;
        self.inner.data.lock()[offset..offset + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads `len` bytes starting at `offset`.
    pub fn read(&self, offset: usize, len: usize) -> Result<Vec<u8>> {
        self.check(offset, len)?;
        Ok(self.inner.data.lock()[offset..offset + len].to_vec())
    }

    /// Runs `f` over an immutable view of `[offset, offset+len)`.
    pub fn with<R>(&self, offset: usize, len: usize, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.check(offset, len)?;
        Ok(f(&self.inner.data.lock()[offset..offset + len]))
    }

    /// Runs `f` over a mutable view of `[offset, offset+len)`.
    pub fn with_mut<R>(
        &self,
        offset: usize,
        len: usize,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R> {
        self.check(offset, len)?;
        Ok(f(&mut self.inner.data.lock()[offset..offset + len]))
    }

    /// Reads a little-endian `u64` at `offset`.
    pub fn read_u64(&self, offset: usize) -> Result<u64> {
        self.with(offset, 8, |b| {
            u64::from_le_bytes(b.try_into().expect("8 bytes"))
        })
    }

    /// Writes a little-endian `u64` at `offset`.
    pub fn write_u64(&self, offset: usize, v: u64) -> Result<()> {
        self.write(offset, &v.to_le_bytes())
    }

    /// Blocks until a remote RDMA Write lands anywhere in this region.
    ///
    /// Models a consumer polling local memory for updates made by a passive
    /// remote writer; the wakeup carries the polling latency.
    pub fn wait_update(&self, ctx: &SimContext) {
        self.inner.update_gate.recv(ctx)
    }

    /// Non-blocking variant of [`MemoryRegion::wait_update`]: consumes one
    /// pending update notification if present.
    pub fn try_update(&self) -> bool {
        self.inner.update_gate.try_recv().is_some()
    }

    /// Discards all pending update notifications. A poller calls this
    /// before re-checking its condition so stale notifications cannot make
    /// the subsequent wait spin.
    pub fn drain_updates(&self) {
        while self.inner.update_gate.try_recv().is_some() {}
    }

    /// Blocks until a remote RDMA Write lands in this region or `timeout`
    /// elapses; returns whether an update arrived. Wakes *early* on the
    /// write (this is what makes polled ring buffers latency-neutral in the
    /// simulator).
    pub fn wait_update_timeout(&self, ctx: &SimContext, timeout: SimDuration) -> bool {
        matches!(
            self.inner.update_gate.recv_timeout(ctx, timeout),
            rshuffle_simnet::RecvTimeout::Value(())
        )
    }

    pub(crate) fn signal_update(&self) {
        self.inner.update_gate.push(());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(len: usize) -> MemoryRegion {
        MemoryRegion::new(&Kernel::new(), 0, 1, len)
    }

    #[test]
    fn write_read_roundtrip() {
        let mr = region(64);
        mr.write(8, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mr.read(8, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(mr.read(0, 8).unwrap(), vec![0; 8]);
    }

    #[test]
    fn u64_roundtrip() {
        let mr = region(16);
        mr.write_u64(8, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        assert_eq!(mr.read_u64(8).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let mr = region(16);
        assert!(matches!(
            mr.write(12, &[0; 8]),
            Err(VerbsError::OutOfBounds { .. })
        ));
        assert!(mr.read(16, 1).is_err());
        // Overflowing offsets must not panic.
        assert!(mr.read(usize::MAX, 2).is_err());
    }

    #[test]
    fn boundary_access_is_allowed() {
        let mr = region(16);
        assert!(mr.write(8, &[0; 8]).is_ok());
        assert!(mr.read(0, 16).is_ok());
        assert!(mr.read(16, 0).is_ok());
    }

    #[test]
    fn with_mut_mutates_in_place() {
        let mr = region(4);
        mr.with_mut(0, 4, |b| b.copy_from_slice(&[9, 9, 9, 9]))
            .unwrap();
        assert_eq!(mr.read(0, 4).unwrap(), vec![9; 4]);
    }

    #[test]
    fn clones_share_backing_memory() {
        let a = region(8);
        let b = a.clone();
        a.write(0, &[7]).unwrap();
        assert_eq!(b.read(0, 1).unwrap(), vec![7]);
    }
}
