//! Deterministic fault injection: virtual-time-scheduled failure events.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s, each anchored at
//! a virtual-time offset from the start of the simulation. The plan is
//! installed when the [`crate::VerbsRuntime`] is created: window-style
//! faults (UD loss bursts, receiver pauses) become static schedules the
//! delivery hot paths consult, while state-mutating faults (link flaps,
//! degradation, stragglers, QP failures) are executed by the simulation
//! kernel's event queue at exactly their trigger time. Every activation
//! and deactivation is recorded as a `fault_begin`/`fault_end` event on
//! the affected node's hardware track and counted in the `fault.injected`
//! series, so traces show precisely which fault a latency cliff or a
//! query restart corresponds to.
//!
//! Determinism: the plan itself is data, the kernel's event queue is
//! ordered by `(time, seq)`, and window checks are pure functions of the
//! virtual clock — two runs with the same plan and seed are
//! byte-identical.

use std::fmt;

use rshuffle_simnet::{NodeId, SimDuration};

/// Which Queue Pairs a [`FaultEvent::QpFailureWindow`] kills.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QpScope {
    /// Only Reliable Connection QPs fail (links stay up for UD traffic).
    Rc,
    /// Every QP on the node fails, regardless of transport service.
    All,
}

/// One scheduled failure, anchored `at` virtual time after simulation
/// start. Window faults end `duration` later.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// The node's switch port goes down for `duration`. InfiniBand links
    /// are lossless, so in-window traffic stalls (and resumes at
    /// recovery) rather than dropping — long flaps therefore surface as
    /// endpoint stall timeouts, short ones as latency spikes.
    LinkFlap {
        /// Node whose port flaps.
        node: NodeId,
        /// Virtual-time offset of the flap.
        at: SimDuration,
        /// How long the port stays down.
        duration: SimDuration,
    },
    /// The node's port runs at `bandwidth_factor` of nominal bandwidth
    /// with `extra_latency` added per message, for `duration`.
    LinkDegrade {
        /// Node whose port degrades.
        node: NodeId,
        /// Virtual-time offset of the degradation.
        at: SimDuration,
        /// How long the degradation lasts.
        duration: SimDuration,
        /// Multiplier on the port's bandwidth (0 < factor ≤ 1).
        bandwidth_factor: f64,
        /// Additional one-way latency per message.
        extra_latency: SimDuration,
    },
    /// UD datagrams sent from `node` are dropped with
    /// `drop_probability` during the window (burst loss, §4.4.2).
    UdLossBurst {
        /// Sending node whose datagrams are lossy.
        node: NodeId,
        /// Virtual-time offset of the burst.
        at: SimDuration,
        /// How long the burst lasts.
        duration: SimDuration,
        /// In-window drop probability (sampled per datagram).
        drop_probability: f64,
    },
    /// Every `SimContext::sleep` on `node` stretches by `slowdown`
    /// during the window (straggling CPU).
    Straggler {
        /// Node that straggles.
        node: NodeId,
        /// Virtual-time offset of the slowdown.
        at: SimDuration,
        /// How long the slowdown lasts.
        duration: SimDuration,
        /// CPU-work multiplier (> 1 slows the node down).
        slowdown: f64,
    },
    /// Receives on `node` stop matching incoming messages for the
    /// window, as if the application stopped posting receives: RC
    /// senders take the RNR-retry path, UD datagrams drop unmatched.
    ReceiverPause {
        /// Node whose receive queues freeze.
        node: NodeId,
        /// Virtual-time offset of the pause.
        at: SimDuration,
        /// How long receives stay frozen.
        duration: SimDuration,
    },
    /// Every RC QP on `node` transitions to the error state at `at`;
    /// queued receives are flushed with error status and subsequent
    /// sends targeting the node complete with a flush error.
    QpFailure {
        /// Node whose RC QPs fail.
        node: NodeId,
        /// Virtual-time offset of the failure.
        at: SimDuration,
    },
    /// A *persistent* QP fault: every in-scope QP on `node` fails at
    /// `at`, and any QP used on the node while the window is open is
    /// forced into the error state on first touch. Unlike the one-shot
    /// [`FaultEvent::QpFailure`], reconnect attempts inside the window
    /// keep failing — the fault models a broken HCA port rather than a
    /// transient glitch, and is what drives retry budgets and algorithm
    /// degradation in the recovery layer.
    QpFailureWindow {
        /// Node whose QPs fail.
        node: NodeId,
        /// Virtual-time offset of the failure window.
        at: SimDuration,
        /// How long newly-used QPs keep failing.
        duration: SimDuration,
        /// Which transport services the failure covers.
        scope: QpScope,
    },
}

impl FaultEvent {
    /// The node this fault targets.
    pub fn node(&self) -> NodeId {
        match *self {
            FaultEvent::LinkFlap { node, .. }
            | FaultEvent::LinkDegrade { node, .. }
            | FaultEvent::UdLossBurst { node, .. }
            | FaultEvent::Straggler { node, .. }
            | FaultEvent::ReceiverPause { node, .. }
            | FaultEvent::QpFailure { node, .. }
            | FaultEvent::QpFailureWindow { node, .. } => node,
        }
    }

    /// When the fault activates (offset from simulation start).
    pub fn at(&self) -> SimDuration {
        match *self {
            FaultEvent::LinkFlap { at, .. }
            | FaultEvent::LinkDegrade { at, .. }
            | FaultEvent::UdLossBurst { at, .. }
            | FaultEvent::Straggler { at, .. }
            | FaultEvent::ReceiverPause { at, .. }
            | FaultEvent::QpFailure { at, .. }
            | FaultEvent::QpFailureWindow { at, .. } => at,
        }
    }

    /// Stable numeric code used in the `fault_begin`/`fault_end` trace
    /// events (`arg = code << 32 | node`).
    pub fn code(&self) -> u64 {
        match self {
            FaultEvent::LinkFlap { .. } => 1,
            FaultEvent::LinkDegrade { .. } => 2,
            FaultEvent::UdLossBurst { .. } => 3,
            FaultEvent::Straggler { .. } => 4,
            FaultEvent::ReceiverPause { .. } => 5,
            FaultEvent::QpFailure { .. } => 6,
            FaultEvent::QpFailureWindow { .. } => 7,
        }
    }

    /// The trace-event argument: fault code in the high word, node in
    /// the low word.
    pub fn obs_arg(&self) -> u64 {
        (self.code() << 32) | self.node() as u64
    }
}

impl fmt::Display for FaultEvent {
    /// Human-readable one-line form, used by the chaos bench table and
    /// `diag` instead of the numeric [`FaultEvent::code`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = |d: SimDuration| d.as_nanos() as f64 / 1_000.0;
        match *self {
            FaultEvent::LinkFlap { node, at, duration } => write!(
                f,
                "link-flap(node {node} @ {:.0}µs for {:.0}µs)",
                us(at),
                us(duration)
            ),
            FaultEvent::LinkDegrade {
                node,
                at,
                duration,
                bandwidth_factor,
                extra_latency,
            } => write!(
                f,
                "link-degrade(node {node} @ {:.0}µs for {:.0}µs, {:.0}% bw, +{:.1}µs)",
                us(at),
                us(duration),
                bandwidth_factor * 100.0,
                us(extra_latency)
            ),
            FaultEvent::UdLossBurst {
                node,
                at,
                duration,
                drop_probability,
            } => write!(
                f,
                "ud-loss-burst(node {node} @ {:.0}µs for {:.0}µs, p={drop_probability})",
                us(at),
                us(duration)
            ),
            FaultEvent::Straggler {
                node,
                at,
                duration,
                slowdown,
            } => write!(
                f,
                "straggler(node {node} @ {:.0}µs for {:.0}µs, {slowdown}x)",
                us(at),
                us(duration)
            ),
            FaultEvent::ReceiverPause { node, at, duration } => write!(
                f,
                "receiver-pause(node {node} @ {:.0}µs for {:.0}µs)",
                us(at),
                us(duration)
            ),
            FaultEvent::QpFailure { node, at } => {
                write!(f, "qp-failure(node {node} @ {:.0}µs)", us(at))
            }
            FaultEvent::QpFailureWindow {
                node,
                at,
                duration,
                scope,
            } => write!(
                f,
                "qp-failure-window(node {node} @ {:.0}µs for {:.0}µs, {})",
                us(at),
                us(duration),
                match scope {
                    QpScope::Rc => "rc",
                    QpScope::All => "all",
                }
            ),
        }
    }
}

/// A deterministic schedule of failures for one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled events, in the order they were added.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no injected faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an arbitrary event.
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Adds a link flap (port down for `duration` starting at `at`).
    pub fn link_flap(self, node: NodeId, at: SimDuration, duration: SimDuration) -> Self {
        self.with(FaultEvent::LinkFlap { node, at, duration })
    }

    /// Adds a link degradation window.
    pub fn link_degrade(
        self,
        node: NodeId,
        at: SimDuration,
        duration: SimDuration,
        bandwidth_factor: f64,
        extra_latency: SimDuration,
    ) -> Self {
        self.with(FaultEvent::LinkDegrade {
            node,
            at,
            duration,
            bandwidth_factor,
            extra_latency,
        })
    }

    /// Adds a burst UD loss window on `node`'s outgoing datagrams.
    pub fn ud_loss_burst(
        self,
        node: NodeId,
        at: SimDuration,
        duration: SimDuration,
        drop_probability: f64,
    ) -> Self {
        self.with(FaultEvent::UdLossBurst {
            node,
            at,
            duration,
            drop_probability,
        })
    }

    /// Adds a straggler window (CPU work on `node` stretched by
    /// `slowdown`).
    pub fn straggler(
        self,
        node: NodeId,
        at: SimDuration,
        duration: SimDuration,
        slowdown: f64,
    ) -> Self {
        self.with(FaultEvent::Straggler {
            node,
            at,
            duration,
            slowdown,
        })
    }

    /// Adds a receiver-pause window on `node`.
    pub fn receiver_pause(self, node: NodeId, at: SimDuration, duration: SimDuration) -> Self {
        self.with(FaultEvent::ReceiverPause { node, at, duration })
    }

    /// Adds an RC QP failure on `node` at `at`.
    pub fn qp_failure(self, node: NodeId, at: SimDuration) -> Self {
        self.with(FaultEvent::QpFailure { node, at })
    }

    /// Adds a persistent QP failure window on `node`: in-scope QPs fail
    /// at `at` and any QP used during the window fails on first touch.
    pub fn qp_failure_window(
        self,
        node: NodeId,
        at: SimDuration,
        duration: SimDuration,
        scope: QpScope,
    ) -> Self {
        self.with(FaultEvent::QpFailureWindow {
            node,
            at,
            duration,
            scope,
        })
    }
}

/// A `[start, end)` window with a payload, consulted by delivery paths.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Window {
    pub(crate) node: NodeId,
    pub(crate) start: SimDuration,
    pub(crate) end: SimDuration,
}

impl Window {
    pub(crate) fn contains(&self, node: NodeId, now_ns: u64) -> bool {
        node == self.node && now_ns >= self.start.as_nanos() && now_ns < self.end.as_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events_in_order() {
        let plan = FaultPlan::new()
            .link_flap(0, SimDuration::from_micros(10), SimDuration::from_micros(5))
            .qp_failure(1, SimDuration::from_micros(20));
        assert_eq!(plan.events.len(), 2);
        assert_eq!(plan.events[0].node(), 0);
        assert_eq!(plan.events[0].code(), 1);
        assert_eq!(plan.events[1].node(), 1);
        assert_eq!(plan.events[1].code(), 6);
        assert_eq!(plan.events[1].obs_arg(), (6 << 32) | 1);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn qp_failure_window_event_shape() {
        let plan = FaultPlan::new().qp_failure_window(
            2,
            SimDuration::from_micros(30),
            SimDuration::from_micros(100),
            QpScope::Rc,
        );
        assert_eq!(plan.events[0].node(), 2);
        assert_eq!(plan.events[0].at(), SimDuration::from_micros(30));
        assert_eq!(plan.events[0].code(), 7);
        assert_eq!(plan.events[0].obs_arg(), (7 << 32) | 2);
    }

    #[test]
    fn display_is_human_readable() {
        let e = FaultEvent::QpFailureWindow {
            node: 1,
            at: SimDuration::from_micros(20),
            duration: SimDuration::from_micros(150),
            scope: QpScope::All,
        };
        assert_eq!(e.to_string(), "qp-failure-window(node 1 @ 20µs for 150µs, all)");
        let e = FaultEvent::QpFailure {
            node: 0,
            at: SimDuration::from_micros(5),
        };
        assert_eq!(e.to_string(), "qp-failure(node 0 @ 5µs)");
        let e = FaultEvent::LinkFlap {
            node: 3,
            at: SimDuration::from_micros(10),
            duration: SimDuration::from_micros(40),
        };
        assert_eq!(e.to_string(), "link-flap(node 3 @ 10µs for 40µs)");
    }

    #[test]
    fn window_is_half_open() {
        let w = Window {
            node: 2,
            start: SimDuration::from_nanos(100),
            end: SimDuration::from_nanos(200),
        };
        assert!(!w.contains(2, 99));
        assert!(w.contains(2, 100));
        assert!(w.contains(2, 199));
        assert!(!w.contains(2, 200));
        assert!(!w.contains(1, 150));
    }
}
