//! Error type for verbs operations.

use crate::types::{QpNum, QpState};
use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, VerbsError>;

/// Errors returned by verbs operations.
///
/// These correspond to the immediate (synchronous) failure modes of the
/// `ibv_*` calls; asynchronous failures surface as completion statuses
/// instead (see [`crate::cq::WcStatus`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerbsError {
    /// The operation is not allowed in the QP's current state.
    InvalidState {
        /// The QP the operation targeted.
        qp: QpNum,
        /// Its state at the time of the call.
        state: QpState,
        /// What was attempted.
        op: &'static str,
    },
    /// The message exceeds the transport's maximum size (MTU for UD,
    /// 1 GiB for RC).
    MessageTooLarge {
        /// Requested message length.
        len: usize,
        /// Transport maximum.
        max: usize,
    },
    /// An RC operation was attempted before the QP was connected to a peer.
    NotConnected(QpNum),
    /// A UD send was posted without an address handle.
    MissingAddressHandle,
    /// A buffer range falls outside its memory region.
    OutOfBounds {
        /// Start offset of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Size of the memory region.
        region: usize,
    },
    /// A remote key did not resolve to a registered region.
    BadRemoteKey(u32),
    /// The opcode is not supported on this transport (e.g. RDMA Read on UD).
    UnsupportedOp {
        /// The offending opcode, for diagnostics.
        op: &'static str,
        /// A human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for VerbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbsError::InvalidState { qp, state, op } => {
                write!(f, "{op} not permitted on {qp:?} in state {state:?}")
            }
            VerbsError::MessageTooLarge { len, max } => {
                write!(f, "message of {len} bytes exceeds transport maximum {max}")
            }
            VerbsError::NotConnected(qp) => write!(f, "{qp:?} has no connected peer"),
            VerbsError::MissingAddressHandle => {
                write!(f, "UD send requires an address handle")
            }
            VerbsError::OutOfBounds {
                offset,
                len,
                region,
            } => write!(
                f,
                "access [{offset}, {}) outside region of {region} bytes",
                offset + len
            ),
            VerbsError::BadRemoteKey(rkey) => write!(f, "unknown rkey {rkey}"),
            VerbsError::UnsupportedOp { op, reason } => {
                write!(f, "{op} unsupported: {reason}")
            }
        }
    }
}

impl std::error::Error for VerbsError {}
