//! The verbs runtime: cluster-wide registries and per-node contexts.
//!
//! [`VerbsRuntime`] owns the QP and memory-region registries that the
//! simulated NICs use to deliver messages and serve one-sided operations.
//! A [`Context`] is the per-node device handle (the analogue of
//! `ibv_context`): it creates completion queues, registers memory and
//! creates Queue Pairs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rshuffle_obs::{names, Counter, EventKind, Labels, Obs, HW_TRACK};
use rshuffle_simnet::{Cluster, DeviceProfile, Kernel, NicModel, SimContext, SimDuration};

use crate::cq::CompletionQueue;
use crate::mr::MemoryRegion;
use crate::qp::{QpInner, QueuePair};
use crate::types::{QpNum, QpType};
use crate::NodeId;

/// Failure-injection knobs for the Unreliable Datagram service.
///
/// InfiniBand's link-level flow control makes buffer-overflow loss
/// impossible; real loss comes from bit errors and is rare (§4.4.2). The
/// defaults therefore reorder but never drop. Tests raise
/// `ud_drop_probability` to exercise the shuffle operator's
/// query-restart path.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Probability that a UD datagram is silently lost in the network.
    pub ud_drop_probability: f64,
    /// Probability that a UD datagram is delayed by a reordering jitter.
    pub ud_reorder_probability: f64,
    /// Maximum extra delay applied to reordered datagrams.
    pub ud_reorder_window: SimDuration,
    /// Seed for the (deterministic) fault RNG.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            ud_drop_probability: 0.0,
            ud_reorder_probability: 0.2,
            ud_reorder_window: SimDuration::from_micros(4),
            seed: 0x5D11_F00D,
        }
    }
}

/// Legacy snapshot of events the application cannot observe directly.
///
/// Since the unified observability layer landed this is a *view* built
/// from the shared [`rshuffle_obs::MetricsRegistry`] (series
/// `verbs.ud_dropped_in_network`, `verbs.ud_unmatched`,
/// `verbs.rnr_retries`, `verbs.ud_reordered`); the runtime keeps no
/// private counters.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    /// UD datagrams lost by fault injection.
    pub ud_dropped_in_network: u64,
    /// UD datagrams dropped because no Receive was posted at the target.
    pub ud_unmatched: u64,
    /// RC receiver-not-ready retries.
    pub rnr_retries: u64,
    /// UD datagrams delivered out of order (delayed by jitter).
    pub ud_reordered: u64,
}

/// Cached registry handles for the delivery hot paths.
pub(crate) struct RtObs {
    pub(crate) obs: Arc<Obs>,
    pub(crate) ud_dropped: Arc<Counter>,
    pub(crate) ud_unmatched: Arc<Counter>,
    pub(crate) rnr_retries: Arc<Counter>,
    pub(crate) ud_reordered: Arc<Counter>,
}

impl RtObs {
    fn new(obs: Arc<Obs>) -> Self {
        RtObs {
            ud_dropped: obs.metrics.counter(names::VERBS_UD_DROPPED, Labels::GLOBAL),
            ud_unmatched: obs.metrics.counter(names::VERBS_UD_UNMATCHED, Labels::GLOBAL),
            rnr_retries: obs.metrics.counter(names::VERBS_RNR_RETRIES, Labels::GLOBAL),
            ud_reordered: obs.metrics.counter(names::VERBS_UD_REORDERED, Labels::GLOBAL),
            obs,
        }
    }
}

/// Cluster-wide verbs state. One per simulated cluster.
pub struct VerbsRuntime {
    cluster: Cluster,
    pub(crate) qps: Mutex<HashMap<(NodeId, u32), Arc<QpInner>>>,
    pub(crate) mrs: Mutex<HashMap<u32, MemoryRegion>>,
    next_qpn: AtomicU32,
    next_rkey: AtomicU32,
    pub(crate) rng: Mutex<StdRng>,
    pub(crate) faults: FaultConfig,
    pub(crate) rt_obs: RtObs,
    /// Currently registered bytes per node.
    registered: Mutex<Vec<usize>>,
    /// High-water mark of registered bytes per node (Figure 9b).
    registered_peak: Mutex<Vec<usize>>,
}

impl VerbsRuntime {
    /// Creates a runtime over `cluster` with default fault injection
    /// (reordering on, loss off).
    pub fn new(cluster: Cluster) -> Arc<Self> {
        Self::with_faults(cluster, FaultConfig::default())
    }

    /// Creates a runtime with explicit fault-injection configuration.
    pub fn with_faults(cluster: Cluster, faults: FaultConfig) -> Arc<Self> {
        let nodes = cluster.nodes();
        let rt_obs = RtObs::new(cluster.obs().clone());
        Arc::new(VerbsRuntime {
            cluster,
            qps: Mutex::new(HashMap::new()),
            mrs: Mutex::new(HashMap::new()),
            next_qpn: AtomicU32::new(1),
            next_rkey: AtomicU32::new(1),
            rng: Mutex::new(StdRng::seed_from_u64(faults.seed)),
            faults,
            rt_obs,
            registered: Mutex::new(vec![0; nodes]),
            registered_peak: Mutex::new(vec![0; nodes]),
        })
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The virtual-time kernel.
    pub fn kernel(&self) -> &Kernel {
        self.cluster.kernel()
    }

    /// The hardware profile.
    pub fn profile(&self) -> &DeviceProfile {
        self.cluster.profile()
    }

    /// Node `node`'s NIC model.
    pub fn nic(&self, node: NodeId) -> &NicModel {
        self.cluster.nic(node)
    }

    /// Returns a device context for `node`.
    pub fn context(self: &Arc<Self>, node: NodeId) -> Context {
        assert!(node < self.cluster.nodes(), "node {node} out of range");
        Context {
            runtime: self.clone(),
            node,
        }
    }

    /// The shared observability context.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.rt_obs.obs
    }

    /// Snapshot of the runtime's fault/delivery counters (view over the
    /// unified registry).
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            ud_dropped_in_network: self.rt_obs.ud_dropped.get(),
            ud_unmatched: self.rt_obs.ud_unmatched.get(),
            rnr_retries: self.rt_obs.rnr_retries.get(),
            ud_reordered: self.rt_obs.ud_reordered.get(),
        }
    }

    /// Currently registered bytes on `node`.
    pub fn registered_bytes(&self, node: NodeId) -> usize {
        self.registered.lock()[node]
    }

    /// High-water mark of registered bytes on `node`.
    pub fn registered_bytes_peak(&self, node: NodeId) -> usize {
        self.registered_peak.lock()[node]
    }

    pub(crate) fn lookup_qp(&self, node: NodeId, qpn: QpNum) -> Option<Arc<QpInner>> {
        self.qps.lock().get(&(node, qpn.0)).cloned()
    }

    pub(crate) fn lookup_mr(&self, rkey: u32) -> Option<MemoryRegion> {
        self.mrs.lock().get(&rkey).cloned()
    }

    /// Samples the UD delivery fate for a datagram sent from `node`:
    /// `None` if the datagram is dropped, otherwise the reordering
    /// jitter to apply.
    pub(crate) fn sample_ud_fate(&self, node: NodeId) -> Option<SimDuration> {
        let mut rng = self.rng.lock();
        if self.faults.ud_drop_probability > 0.0 && rng.gen_bool(self.faults.ud_drop_probability) {
            self.rt_obs.ud_dropped.inc();
            self.rt_obs.obs.recorder.event(
                node as u32,
                HW_TRACK,
                self.kernel().now().as_nanos(),
                EventKind::UdDrop,
                0,
            );
            return None;
        }
        if self.faults.ud_reorder_probability > 0.0
            && rng.gen_bool(self.faults.ud_reorder_probability)
        {
            let window = self.faults.ud_reorder_window.as_nanos();
            if window > 0 {
                let jitter = rng.gen_range(0..=window);
                self.rt_obs.ud_reordered.inc();
                self.rt_obs.obs.recorder.event(
                    node as u32,
                    HW_TRACK,
                    self.kernel().now().as_nanos(),
                    EventKind::UdReordered,
                    jitter,
                );
                return Some(SimDuration::from_nanos(jitter));
            }
        }
        Some(SimDuration::ZERO)
    }
}

/// Per-node device handle (the analogue of an opened `ibv_context`).
#[derive(Clone)]
pub struct Context {
    runtime: Arc<VerbsRuntime>,
    node: NodeId,
}

impl Context {
    /// The node this context belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The shared runtime.
    pub fn runtime(&self) -> &Arc<VerbsRuntime> {
        &self.runtime
    }

    /// The hardware profile.
    pub fn profile(&self) -> &DeviceProfile {
        self.runtime.profile()
    }

    /// Creates a completion queue with the profile's polling costs.
    pub fn create_cq(&self) -> CompletionQueue {
        let p = self.runtime.profile();
        CompletionQueue::new(self.runtime.kernel(), p.completion_latency, p.poll_cq_cpu)
    }

    /// Registers `len` bytes of memory, charging the pinning cost to the
    /// calling thread (`ibv_reg_mr`).
    pub fn register(&self, sim: &SimContext, len: usize) -> MemoryRegion {
        sim.sleep(self.runtime.profile().mr_register_time(len));
        self.register_untimed(len)
    }

    /// Registers memory without charging setup time. Intended for tests and
    /// for harness bookkeeping outside the measured window.
    pub fn register_untimed(&self, len: usize) -> MemoryRegion {
        let rkey = self.runtime.next_rkey.fetch_add(1, Ordering::Relaxed);
        let mr = MemoryRegion::new(self.runtime.kernel(), self.node, rkey, len);
        self.runtime.mrs.lock().insert(rkey, mr.clone());
        let mut reg = self.runtime.registered.lock();
        reg[self.node] += len;
        let mut peak = self.runtime.registered_peak.lock();
        peak[self.node] = peak[self.node].max(reg[self.node]);
        mr
    }

    /// Deregisters a memory region, charging the unpinning cost
    /// (`ibv_dereg_mr`).
    pub fn deregister(&self, sim: &SimContext, mr: MemoryRegion) {
        sim.sleep(self.runtime.profile().mr_deregister_time(mr.len()));
        self.runtime.mrs.lock().remove(&mr.rkey());
        let mut reg = self.runtime.registered.lock();
        reg[self.node] = reg[self.node].saturating_sub(mr.len());
    }

    /// Creates a Queue Pair of `ty` using `send_cq` and `recv_cq`
    /// (`ibv_create_qp`). The QP starts in the RESET state.
    pub fn create_qp(
        &self,
        ty: QpType,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
    ) -> QueuePair {
        let qpn = QpNum(self.runtime.next_qpn.fetch_add(1, Ordering::Relaxed));
        let inner = Arc::new(QpInner::new(self.node, qpn, ty, send_cq, recv_cq));
        self.runtime
            .qps
            .lock()
            .insert((self.node, qpn.0), inner.clone());
        QueuePair::new(inner, self.runtime.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rshuffle_simnet::Cluster;

    fn runtime() -> Arc<VerbsRuntime> {
        VerbsRuntime::new(Cluster::new(2, DeviceProfile::edr()))
    }

    #[test]
    fn registration_tracks_bytes_and_peak() {
        let rt = runtime();
        let ctx = rt.context(0);
        let a = ctx.register_untimed(1024);
        let _b = ctx.register_untimed(2048);
        assert_eq!(rt.registered_bytes(0), 3072);
        assert_eq!(rt.registered_bytes(1), 0);
        // Deregistration needs a sim thread for the timed path; exercise
        // the registry directly.
        let rt2 = rt.clone();
        rt.cluster().spawn(0, "dereg", move |sim| {
            rt2.context(0).deregister(&sim, a);
        });
        rt.cluster().run();
        assert_eq!(rt.registered_bytes(0), 2048);
        assert_eq!(rt.registered_bytes_peak(0), 3072, "peak must persist");
    }

    #[test]
    fn rkeys_are_unique_and_resolvable() {
        let rt = runtime();
        let a = rt.context(0).register_untimed(64);
        let b = rt.context(1).register_untimed(64);
        assert_ne!(a.rkey(), b.rkey());
        assert!(rt.lookup_mr(a.rkey()).is_some());
        assert!(rt.lookup_mr(9999).is_none());
    }

    #[test]
    fn ud_fate_is_deterministic_per_seed() {
        let sample = |seed| {
            let mut f = FaultConfig::default();
            f.seed = seed;
            f.ud_drop_probability = 0.3;
            let rt = VerbsRuntime::with_faults(Cluster::new(2, DeviceProfile::edr()), f);
            (0..64).map(|_| rt.sample_ud_fate(0)).collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let f = FaultConfig {
            ud_drop_probability: 1.0,
            ..FaultConfig::default()
        };
        let rt = VerbsRuntime::with_faults(Cluster::new(2, DeviceProfile::edr()), f);
        for _ in 0..16 {
            assert!(rt.sample_ud_fate(0).is_none());
        }
        assert_eq!(rt.stats().ud_dropped_in_network, 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn context_for_missing_node_panics() {
        let rt = runtime();
        let _ = rt.context(5);
    }
}
