//! The verbs runtime: cluster-wide registries and per-node contexts.
//!
//! [`VerbsRuntime`] owns the QP and memory-region registries that the
//! simulated NICs use to deliver messages and serve one-sided operations.
//! A [`Context`] is the per-node device handle (the analogue of
//! `ibv_context`): it creates completion queues, registers memory and
//! creates Queue Pairs.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rshuffle_audit::ShuffleAuditor;
use rshuffle_obs::{names, Counter, EventKind, HistogramId, Labels, Obs, HW_TRACK};
use rshuffle_simnet::{Cluster, DeviceProfile, FlowId, Kernel, NicModel, SimContext, SimDuration};

use crate::cq::CompletionQueue;
use crate::fault::{FaultEvent, FaultPlan, QpScope, Window};
use crate::mr::MemoryRegion;
use crate::qp::{QpInner, QueuePair};
use crate::types::{QpNum, QpType};
use crate::NodeId;

/// Failure-injection knobs for the Unreliable Datagram service.
///
/// InfiniBand's link-level flow control makes buffer-overflow loss
/// impossible; real loss comes from bit errors and is rare (§4.4.2). The
/// defaults therefore reorder but never drop. Tests raise
/// `ud_drop_probability` to exercise the shuffle operator's
/// query-restart path.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Probability that a UD datagram is silently lost in the network.
    pub ud_drop_probability: f64,
    /// Probability that a UD datagram is delayed by a reordering jitter.
    pub ud_reorder_probability: f64,
    /// Maximum extra delay applied to reordered datagrams.
    pub ud_reorder_window: SimDuration,
    /// Seed for the (deterministic) fault RNG.
    pub seed: u64,
    /// Scheduled fault events executed at their virtual trigger times
    /// (empty by default).
    pub plan: FaultPlan,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            ud_drop_probability: 0.0,
            ud_reorder_probability: 0.2,
            ud_reorder_window: SimDuration::from_micros(4),
            seed: 0x5D11_F00D,
            plan: FaultPlan::new(),
        }
    }
}

/// Legacy snapshot of events the application cannot observe directly.
///
/// Since the unified observability layer landed this is a *view* built
/// from the shared [`rshuffle_obs::MetricsRegistry`] (series
/// `verbs.ud_dropped_in_network`, `verbs.ud_unmatched`,
/// `verbs.rnr_retries`, `verbs.ud_reordered`); the runtime keeps no
/// private counters.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    /// UD datagrams lost by fault injection.
    pub ud_dropped_in_network: u64,
    /// UD datagrams dropped because no Receive was posted at the target.
    pub ud_unmatched: u64,
    /// RC receiver-not-ready retries.
    pub rnr_retries: u64,
    /// UD datagrams delivered out of order (delayed by jitter).
    pub ud_reordered: u64,
}

/// Cached registry handles for the delivery hot paths. Per-message
/// series are interned to dense [`HistogramId`]s at runtime construction
/// so recording a sample never hashes or compares metric-name strings.
pub(crate) struct RtObs {
    pub(crate) obs: Arc<Obs>,
    pub(crate) ud_dropped: Arc<Counter>,
    pub(crate) ud_unmatched: Arc<Counter>,
    pub(crate) rnr_retries: Arc<Counter>,
    pub(crate) ud_reordered: Arc<Counter>,
    /// `verbs.msg_size_bytes{node}` ids, indexed by node.
    pub(crate) msg_size: Vec<HistogramId>,
    /// `verbs.msg_latency_ns{node}` ids, indexed by node.
    pub(crate) msg_latency: Vec<HistogramId>,
}

impl RtObs {
    fn new(obs: Arc<Obs>, nodes: usize) -> Self {
        let msg_size = (0..nodes)
            .map(|n| {
                obs.metrics
                    .histogram_id(names::VERBS_MSG_SIZE_BYTES, Labels::node(n as u32))
            })
            .collect();
        let msg_latency = (0..nodes)
            .map(|n| {
                obs.metrics
                    .histogram_id(names::VERBS_MSG_LATENCY_NS, Labels::node(n as u32))
            })
            .collect();
        RtObs {
            ud_dropped: obs.metrics.counter(names::VERBS_UD_DROPPED, Labels::GLOBAL),
            ud_unmatched: obs.metrics.counter(names::VERBS_UD_UNMATCHED, Labels::GLOBAL),
            rnr_retries: obs.metrics.counter(names::VERBS_RNR_RETRIES, Labels::GLOBAL),
            ud_reordered: obs.metrics.counter(names::VERBS_UD_REORDERED, Labels::GLOBAL),
            msg_size,
            msg_latency,
            obs,
        }
    }
}

/// Cluster-wide verbs state. One per simulated cluster.
pub struct VerbsRuntime {
    cluster: Cluster,
    pub(crate) qps: Mutex<HashMap<(NodeId, u32), Arc<QpInner>>>,
    pub(crate) mrs: Mutex<HashMap<u32, MemoryRegion>>,
    /// rkey → owning flow, for regions registered through a flow-tagged
    /// [`Context`]; lets the scheduler release a whole query's memory.
    mr_flows: Mutex<HashMap<u32, u32>>,
    next_qpn: AtomicU32,
    next_rkey: AtomicU32,
    pub(crate) rng: Mutex<StdRng>,
    pub(crate) faults: FaultConfig,
    pub(crate) rt_obs: RtObs,
    /// Currently registered bytes per node.
    registered: Mutex<Vec<usize>>,
    /// High-water mark of registered bytes per node (Figure 9b).
    registered_peak: Mutex<Vec<usize>>,
    /// Burst UD-loss windows from the fault plan: `(window, drop_prob)`.
    ud_loss_windows: Vec<(Window, f64)>,
    /// Receiver-pause windows from the fault plan.
    recv_pause_windows: Vec<Window>,
    /// Persistent QP-failure windows: any in-scope QP used on the window's
    /// node while it is open is forced into the error state on first touch.
    qp_kill_windows: Vec<(Window, QpScope)>,
    /// Nodes whose QPs have been killed by fault injection since the last
    /// [`VerbsRuntime::clear_failed_qp_nodes`]; the recovery layer reads
    /// this to classify errors as QP-shaped (reconnectable) or not.
    failed_qp_nodes: Mutex<BTreeSet<NodeId>>,
    /// The installed protocol auditor, if any (see `enable_audit`).
    auditor: Mutex<Option<Arc<ShuffleAuditor>>>,
}

impl VerbsRuntime {
    /// Creates a runtime over `cluster` with default fault injection
    /// (reordering on, loss off).
    pub fn new(cluster: Cluster) -> Arc<Self> {
        Self::with_faults(cluster, FaultConfig::default())
    }

    /// Creates a runtime with explicit fault-injection configuration.
    /// Any events in `faults.plan` are installed on the kernel's event
    /// queue and fire deterministically at their virtual trigger times.
    pub fn with_faults(cluster: Cluster, faults: FaultConfig) -> Arc<Self> {
        let nodes = cluster.nodes();
        let rt_obs = RtObs::new(cluster.obs().clone(), nodes);
        let mut ud_loss_windows = Vec::new();
        let mut recv_pause_windows = Vec::new();
        let mut qp_kill_windows = Vec::new();
        for ev in &faults.plan.events {
            match *ev {
                FaultEvent::UdLossBurst {
                    node,
                    at,
                    duration,
                    drop_probability,
                } => ud_loss_windows.push((
                    Window {
                        node,
                        start: at,
                        end: at + duration,
                    },
                    drop_probability,
                )),
                FaultEvent::ReceiverPause { node, at, duration } => {
                    recv_pause_windows.push(Window {
                        node,
                        start: at,
                        end: at + duration,
                    });
                }
                FaultEvent::QpFailureWindow {
                    node,
                    at,
                    duration,
                    scope,
                } => qp_kill_windows.push((
                    Window {
                        node,
                        start: at,
                        end: at + duration,
                    },
                    scope,
                )),
                _ => {}
            }
        }
        let rt = Arc::new(VerbsRuntime {
            cluster,
            qps: Mutex::new(HashMap::new()),
            mrs: Mutex::new(HashMap::new()),
            mr_flows: Mutex::new(HashMap::new()),
            next_qpn: AtomicU32::new(1),
            next_rkey: AtomicU32::new(1),
            rng: Mutex::new(StdRng::seed_from_u64(faults.seed)),
            faults,
            rt_obs,
            registered: Mutex::new(vec![0; nodes]),
            registered_peak: Mutex::new(vec![0; nodes]),
            ud_loss_windows,
            recv_pause_windows,
            qp_kill_windows,
            failed_qp_nodes: Mutex::new(BTreeSet::new()),
            auditor: Mutex::new(None),
        });
        rt.install_fault_plan();
        rt
    }

    /// Schedules the fault plan's events on the kernel. Window faults
    /// only schedule their trace markers (the hot paths consult the
    /// precomputed windows); state-mutating faults schedule the actual
    /// mutation.
    fn install_fault_plan(self: &Arc<Self>) {
        if self.faults.plan.is_empty() {
            return;
        }
        let kernel = self.kernel().clone();
        let origin = kernel.now();
        let obs = self.rt_obs.obs.clone();
        for ev in self.faults.plan.events.clone() {
            let node = ev.node();
            let arg = ev.obs_arg();
            let injected = obs
                .metrics
                .counter(names::FAULT_INJECTED, Labels::node(node as u32));
            // Activation marker (and counter) at the trigger time.
            {
                let obs = obs.clone();
                let kernel_at = kernel.clone();
                kernel.schedule(origin + ev.at(), move || {
                    injected.inc();
                    obs.recorder.event(
                        node as u32,
                        HW_TRACK,
                        kernel_at.now().as_nanos(),
                        EventKind::FaultBegin,
                        arg,
                    );
                });
            }
            // Deactivation marker for window faults.
            let end_at = match ev {
                FaultEvent::QpFailure { .. } => None,
                FaultEvent::LinkFlap { at, duration, .. }
                | FaultEvent::LinkDegrade { at, duration, .. }
                | FaultEvent::UdLossBurst { at, duration, .. }
                | FaultEvent::Straggler { at, duration, .. }
                | FaultEvent::ReceiverPause { at, duration, .. }
                | FaultEvent::QpFailureWindow { at, duration, .. } => Some(at + duration),
            };
            if let Some(end) = end_at {
                let obs = obs.clone();
                let kernel_at = kernel.clone();
                kernel.schedule(origin + end, move || {
                    obs.recorder.event(
                        node as u32,
                        HW_TRACK,
                        kernel_at.now().as_nanos(),
                        EventKind::FaultEnd,
                        arg,
                    );
                });
            }
            // The state mutation itself.
            match ev {
                FaultEvent::LinkFlap { node, at, duration } => {
                    let cluster = self.cluster.clone();
                    let down_until = origin + at + duration;
                    kernel.schedule(origin + at, move || {
                        cluster.fabric().set_port_down_until(node, down_until);
                    });
                }
                FaultEvent::LinkDegrade {
                    node,
                    at,
                    duration,
                    bandwidth_factor,
                    extra_latency,
                } => {
                    let cluster = self.cluster.clone();
                    kernel.schedule(origin + at, move || {
                        cluster
                            .fabric()
                            .set_degradation(node, bandwidth_factor, extra_latency);
                    });
                    let cluster = self.cluster.clone();
                    kernel.schedule(origin + at + duration, move || {
                        cluster.fabric().clear_degradation(node);
                    });
                }
                FaultEvent::Straggler {
                    node,
                    at,
                    duration,
                    slowdown,
                } => {
                    let k = kernel.clone();
                    kernel.schedule(origin + at, move || {
                        k.set_cpu_slowdown(node, slowdown);
                    });
                    let k = kernel.clone();
                    kernel.schedule(origin + at + duration, move || {
                        k.set_cpu_slowdown(node, 1.0);
                    });
                }
                FaultEvent::QpFailure { node, at } => {
                    // Weak: the event queue must not keep the runtime
                    // (and thus the kernel) alive in a reference cycle.
                    let rt = Arc::downgrade(self);
                    kernel.schedule(origin + at, move || {
                        if let Some(rt) = rt.upgrade() {
                            rt.fail_rc_qps(node);
                        }
                    });
                }
                FaultEvent::QpFailureWindow {
                    node, at, scope, ..
                } => {
                    // Kill existing in-scope QPs at the window start; QPs
                    // created (or reconnected) later are caught lazily by
                    // the hot paths consulting `qp_kill_windows`.
                    let rt = Arc::downgrade(self);
                    kernel.schedule(origin + at, move || {
                        if let Some(rt) = rt.upgrade() {
                            rt.fail_qps(node, scope);
                        }
                    });
                }
                // Window faults: the hot paths consult the precomputed
                // windows; nothing to mutate.
                FaultEvent::UdLossBurst { .. } | FaultEvent::ReceiverPause { .. } => {}
            }
        }
    }

    /// Forces every RC QP on `node` into the error state: queued
    /// receives are flushed to their completion queues with
    /// [`crate::WcStatus::Flushed`], and future deliveries targeting
    /// these QPs complete in error at the sender. Iteration is sorted by
    /// QP number so same-seed runs stay byte-identical.
    pub fn fail_rc_qps(&self, node: NodeId) {
        self.fail_qps(node, QpScope::Rc);
    }

    /// Forces every in-scope QP on `node` into the error state (see
    /// [`VerbsRuntime::fail_rc_qps`]) and records the node as QP-failed
    /// for the recovery layer's error classification.
    pub fn fail_qps(&self, node: NodeId, scope: QpScope) {
        let now_ns = self.kernel().now().as_nanos();
        let targets: Vec<Arc<QpInner>> = {
            let qps = self.qps.lock();
            let mut keys: Vec<u32> = qps
                .keys()
                .filter(|&&(n, _)| n == node)
                .map(|&(_, qpn)| qpn)
                .collect();
            keys.sort_unstable();
            keys.iter()
                .filter_map(|&qpn| qps.get(&(node, qpn)).cloned())
                .collect()
        };
        self.failed_qp_nodes.lock().insert(node);
        for qp in targets {
            let in_scope = scope == QpScope::All || qp.ty == QpType::Rc;
            if in_scope && qp.force_error() {
                self.rt_obs.obs.recorder.event(
                    node as u32,
                    HW_TRACK,
                    now_ns,
                    EventKind::QpKilled,
                    qp.qpn.0 as u64,
                );
            }
        }
    }

    /// Whether a QP of type `ty` on `node` is inside an open persistent
    /// QP-failure window at virtual time `now_ns`.
    pub(crate) fn in_kill_window(&self, node: NodeId, now_ns: u64, ty: QpType) -> bool {
        self.qp_kill_windows.iter().any(|(w, scope)| {
            w.contains(node, now_ns) && (*scope == QpScope::All || ty == QpType::Rc)
        })
    }

    /// Lazily enforces an open QP-failure window on `qp`: if its node is
    /// inside a matching window, the QP is forced into the error state
    /// (emitting a `qp_killed` event) and the node is recorded as failed.
    /// Returns whether the QP was (or already is) dead because of a
    /// window. Called from the send and delivery hot paths so QPs built
    /// *after* the window opened — e.g. by a reconnect attempt — still
    /// fail while the fault persists.
    pub(crate) fn enforce_kill_window(&self, qp: &Arc<QpInner>) -> bool {
        if self.qp_kill_windows.is_empty() {
            return false;
        }
        let now_ns = self.kernel().now().as_nanos();
        if !self.in_kill_window(qp.node, now_ns, qp.ty) {
            return false;
        }
        self.failed_qp_nodes.lock().insert(qp.node);
        if qp.force_error() {
            self.rt_obs.obs.recorder.event(
                qp.node as u32,
                HW_TRACK,
                now_ns,
                EventKind::QpKilled,
                qp.qpn.0 as u64,
            );
        }
        true
    }

    /// Nodes whose QPs were killed by fault injection since the last
    /// [`VerbsRuntime::clear_failed_qp_nodes`], in ascending order.
    pub fn failed_qp_nodes(&self) -> Vec<NodeId> {
        self.failed_qp_nodes.lock().iter().copied().collect()
    }

    /// Clears the failed-QP-node set (called by the recovery layer after
    /// it has classified and handled an attempt's failure).
    pub fn clear_failed_qp_nodes(&self) {
        self.failed_qp_nodes.lock().clear();
    }

    /// Whether `node` is inside a receiver-pause window at virtual time
    /// `now_ns`: matching of incoming messages against posted receives
    /// is suspended (RC takes the RNR path, UD drops unmatched).
    pub(crate) fn recv_paused(&self, node: NodeId, now_ns: u64) -> bool {
        self.recv_pause_windows
            .iter()
            .any(|w| w.contains(node, now_ns))
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The virtual-time kernel.
    pub fn kernel(&self) -> &Kernel {
        self.cluster.kernel()
    }

    /// The hardware profile.
    pub fn profile(&self) -> &DeviceProfile {
        self.cluster.profile()
    }

    /// Node `node`'s NIC model.
    pub fn nic(&self, node: NodeId) -> &NicModel {
        self.cluster.nic(node)
    }

    /// Returns a device context for `node` (untagged traffic).
    pub fn context(self: &Arc<Self>, node: NodeId) -> Context {
        self.context_flow(node, FlowId::NONE)
    }

    /// Returns a device context for `node` whose Queue Pairs tag all their
    /// traffic with `flow` for weighted-fair arbitration and per-query
    /// busy-time attribution.
    pub fn context_flow(self: &Arc<Self>, node: NodeId, flow: FlowId) -> Context {
        assert!(node < self.cluster.nodes(), "node {node} out of range");
        Context {
            runtime: self.clone(),
            node,
            flow,
        }
    }

    /// The shared observability context.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.rt_obs.obs
    }

    /// Installs (or replaces) the protocol auditor endpoints consult.
    pub fn install_auditor(&self, auditor: Arc<ShuffleAuditor>) {
        *self.auditor.lock() = Some(auditor);
    }

    /// The installed protocol auditor, if any.
    pub fn auditor(&self) -> Option<Arc<ShuffleAuditor>> {
        self.auditor.lock().clone()
    }

    /// Installs a protocol auditor reporting into this runtime's
    /// observability context, returning the existing one if already
    /// installed. Idempotent, so tests can call it unconditionally.
    pub fn enable_audit(&self) -> Arc<ShuffleAuditor> {
        let mut slot = self.auditor.lock();
        if let Some(existing) = slot.as_ref() {
            return existing.clone();
        }
        let auditor = ShuffleAuditor::new(Some(self.rt_obs.obs.clone()));
        *slot = Some(auditor.clone());
        auditor
    }

    /// Snapshot of the runtime's fault/delivery counters (view over the
    /// unified registry).
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            ud_dropped_in_network: self.rt_obs.ud_dropped.get(),
            ud_unmatched: self.rt_obs.ud_unmatched.get(),
            rnr_retries: self.rt_obs.rnr_retries.get(),
            ud_reordered: self.rt_obs.ud_reordered.get(),
        }
    }

    /// Currently registered bytes on `node`.
    pub fn registered_bytes(&self, node: NodeId) -> usize {
        self.registered.lock()[node]
    }

    /// High-water mark of registered bytes on `node`.
    pub fn registered_bytes_peak(&self, node: NodeId) -> usize {
        self.registered_peak.lock()[node]
    }

    /// Deregisters a memory region without charging virtual time and
    /// without touching the recorder — invisible to traces. Used by the
    /// scheduler to return an exchange's pinned memory to the budget after
    /// a query completes (endpoints register eagerly and historically never
    /// released). Idempotent: deregistering an unknown rkey is a no-op.
    pub fn deregister_untimed(&self, mr: &MemoryRegion) {
        if self.mrs.lock().remove(&mr.rkey()).is_none() {
            return;
        }
        self.mr_flows.lock().remove(&mr.rkey());
        let mut reg = self.registered.lock();
        reg[mr.node()] = reg[mr.node()].saturating_sub(mr.len());
    }

    /// Deregisters every memory region that was registered through a
    /// [`Context`] tagged with `flow`, without charging virtual time (see
    /// [`VerbsRuntime::deregister_untimed`]). Returns the number of bytes
    /// released cluster-wide. A no-op for [`FlowId::NONE`]: untagged
    /// regions are shared harness state, not query state.
    pub fn deregister_flow(&self, flow: FlowId) -> usize {
        if !flow.is_tagged() {
            return 0;
        }
        let mut rkeys: Vec<u32> = self
            .mr_flows
            .lock()
            .iter()
            .filter(|&(_, &f)| f == flow.0)
            .map(|(&rkey, _)| rkey)
            .collect();
        rkeys.sort_unstable();
        let mut freed = 0;
        for rkey in rkeys {
            if let Some(mr) = self.lookup_mr(rkey) {
                freed += mr.len();
                self.deregister_untimed(&mr);
            }
        }
        freed
    }

    pub(crate) fn lookup_qp(&self, node: NodeId, qpn: QpNum) -> Option<Arc<QpInner>> {
        self.qps.lock().get(&(node, qpn.0)).cloned()
    }

    pub(crate) fn lookup_mr(&self, rkey: u32) -> Option<MemoryRegion> {
        self.mrs.lock().get(&rkey).cloned()
    }

    /// Samples the UD delivery fate for a datagram sent from `node`:
    /// `None` if the datagram is dropped, otherwise the reordering
    /// jitter to apply.
    pub(crate) fn sample_ud_fate(&self, node: NodeId) -> Option<SimDuration> {
        let mut rng = self.rng.lock();
        // A burst-loss window raises the flat drop probability for its
        // duration (the probabilities do not stack; the worst applies).
        let mut drop_probability = self.faults.ud_drop_probability;
        if !self.ud_loss_windows.is_empty() {
            let now_ns = self.kernel().now().as_nanos();
            for (w, p) in &self.ud_loss_windows {
                if w.contains(node, now_ns) {
                    drop_probability = drop_probability.max(*p);
                }
            }
        }
        if drop_probability > 0.0 && rng.gen_bool(drop_probability) {
            self.rt_obs.ud_dropped.inc();
            self.rt_obs.obs.recorder.event(
                node as u32,
                HW_TRACK,
                self.kernel().now().as_nanos(),
                EventKind::UdDrop,
                0,
            );
            return None;
        }
        if self.faults.ud_reorder_probability > 0.0
            && rng.gen_bool(self.faults.ud_reorder_probability)
        {
            let window = self.faults.ud_reorder_window.as_nanos();
            if window > 0 {
                let jitter = rng.gen_range(0..=window);
                self.rt_obs.ud_reordered.inc();
                self.rt_obs.obs.recorder.event(
                    node as u32,
                    HW_TRACK,
                    self.kernel().now().as_nanos(),
                    EventKind::UdReordered,
                    jitter,
                );
                return Some(SimDuration::from_nanos(jitter));
            }
        }
        Some(SimDuration::ZERO)
    }
}

/// Per-node device handle (the analogue of an opened `ibv_context`).
#[derive(Clone)]
pub struct Context {
    runtime: Arc<VerbsRuntime>,
    node: NodeId,
    flow: FlowId,
}

impl Context {
    /// The node this context belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The flow this context tags its Queue Pairs' traffic with.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// The shared runtime.
    pub fn runtime(&self) -> &Arc<VerbsRuntime> {
        &self.runtime
    }

    /// The hardware profile.
    pub fn profile(&self) -> &DeviceProfile {
        self.runtime.profile()
    }

    /// Creates a completion queue with the profile's polling costs.
    pub fn create_cq(&self) -> CompletionQueue {
        let p = self.runtime.profile();
        CompletionQueue::new(self.runtime.kernel(), p.completion_latency, p.poll_cq_cpu)
    }

    /// Registers `len` bytes of memory, charging the pinning cost to the
    /// calling thread (`ibv_reg_mr`).
    pub fn register(&self, sim: &SimContext, len: usize) -> MemoryRegion {
        sim.sleep(self.runtime.profile().mr_register_time(len));
        self.register_untimed(len)
    }

    /// Registers memory without charging setup time. Intended for tests and
    /// for harness bookkeeping outside the measured window.
    pub fn register_untimed(&self, len: usize) -> MemoryRegion {
        let rkey = self.runtime.next_rkey.fetch_add(1, Ordering::Relaxed);
        let mr = MemoryRegion::new(self.runtime.kernel(), self.node, rkey, len);
        self.runtime.mrs.lock().insert(rkey, mr.clone());
        if self.flow.is_tagged() {
            self.runtime.mr_flows.lock().insert(rkey, self.flow.0);
        }
        let mut reg = self.runtime.registered.lock();
        reg[self.node] += len;
        let mut peak = self.runtime.registered_peak.lock();
        peak[self.node] = peak[self.node].max(reg[self.node]);
        mr
    }

    /// Deregisters a memory region, charging the unpinning cost
    /// (`ibv_dereg_mr`).
    pub fn deregister(&self, sim: &SimContext, mr: MemoryRegion) {
        sim.sleep(self.runtime.profile().mr_deregister_time(mr.len()));
        self.runtime.mrs.lock().remove(&mr.rkey());
        self.runtime.mr_flows.lock().remove(&mr.rkey());
        let mut reg = self.runtime.registered.lock();
        reg[self.node] = reg[self.node].saturating_sub(mr.len());
    }

    /// Creates a Queue Pair of `ty` using `send_cq` and `recv_cq`
    /// (`ibv_create_qp`). The QP starts in the RESET state.
    pub fn create_qp(
        &self,
        ty: QpType,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
    ) -> QueuePair {
        let qpn = QpNum(self.runtime.next_qpn.fetch_add(1, Ordering::Relaxed));
        let inner = Arc::new(QpInner::new(self.node, qpn, ty, send_cq, recv_cq, self.flow));
        self.runtime
            .qps
            .lock()
            .insert((self.node, qpn.0), inner.clone());
        QueuePair::new(inner, self.runtime.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rshuffle_simnet::Cluster;

    fn runtime() -> Arc<VerbsRuntime> {
        VerbsRuntime::new(Cluster::new(2, DeviceProfile::edr()))
    }

    #[test]
    fn registration_tracks_bytes_and_peak() {
        let rt = runtime();
        let ctx = rt.context(0);
        let a = ctx.register_untimed(1024);
        let _b = ctx.register_untimed(2048);
        assert_eq!(rt.registered_bytes(0), 3072);
        assert_eq!(rt.registered_bytes(1), 0);
        // Deregistration needs a sim thread for the timed path; exercise
        // the registry directly.
        let rt2 = rt.clone();
        rt.cluster().spawn(0, "dereg", move |sim| {
            rt2.context(0).deregister(&sim, a);
        });
        rt.cluster().run();
        assert_eq!(rt.registered_bytes(0), 2048);
        assert_eq!(rt.registered_bytes_peak(0), 3072, "peak must persist");
    }

    #[test]
    fn rkeys_are_unique_and_resolvable() {
        let rt = runtime();
        let a = rt.context(0).register_untimed(64);
        let b = rt.context(1).register_untimed(64);
        assert_ne!(a.rkey(), b.rkey());
        assert!(rt.lookup_mr(a.rkey()).is_some());
        assert!(rt.lookup_mr(9999).is_none());
    }

    #[test]
    fn ud_fate_is_deterministic_per_seed() {
        let sample = |seed| {
            let f = FaultConfig {
                seed,
                ud_drop_probability: 0.3,
                ..FaultConfig::default()
            };
            let rt = VerbsRuntime::with_faults(Cluster::new(2, DeviceProfile::edr()), f);
            (0..64).map(|_| rt.sample_ud_fate(0)).collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let f = FaultConfig {
            ud_drop_probability: 1.0,
            ..FaultConfig::default()
        };
        let rt = VerbsRuntime::with_faults(Cluster::new(2, DeviceProfile::edr()), f);
        for _ in 0..16 {
            assert!(rt.sample_ud_fate(0).is_none());
        }
        assert_eq!(rt.stats().ud_dropped_in_network, 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn context_for_missing_node_panics() {
        let rt = runtime();
        let _ = rt.context(5);
    }
}
