//! QP state-machine conformance: the RESET→INIT→RTR→RTS ladder must be
//! walked in order, RC must be connected before RTR, and illegal
//! transitions are rejected with precise errors.

use std::sync::Arc;

use rshuffle_simnet::{Cluster, DeviceProfile};
use rshuffle_verbs::{AddressHandle, QpNum, QpType, QpState, VerbsError, VerbsRuntime};

fn runtime() -> Arc<VerbsRuntime> {
    VerbsRuntime::new(Cluster::new(2, DeviceProfile::edr()))
}

#[test]
fn happy_path_walks_the_ladder() {
    let rt = runtime();
    let ctx = rt.context(0);
    let cq = ctx.create_cq();
    let qp = ctx.create_qp(QpType::Rc, cq.clone(), cq);
    assert_eq!(qp.state(), QpState::Reset);
    qp.modify_to_init().unwrap();
    assert_eq!(qp.state(), QpState::Init);
    qp.connect(AddressHandle { node: 1, qpn: QpNum(99) }).unwrap();
    qp.modify_to_rtr().unwrap();
    assert_eq!(qp.state(), QpState::ReadyToReceive);
    qp.modify_to_rts().unwrap();
    assert_eq!(qp.state(), QpState::ReadyToSend);
}

#[test]
fn rtr_requires_connection_on_rc() {
    let rt = runtime();
    let ctx = rt.context(0);
    let cq = ctx.create_cq();
    let qp = ctx.create_qp(QpType::Rc, cq.clone(), cq);
    qp.modify_to_init().unwrap();
    assert!(matches!(
        qp.modify_to_rtr().unwrap_err(),
        VerbsError::NotConnected(_)
    ));
}

#[test]
fn ud_does_not_connect() {
    let rt = runtime();
    let ctx = rt.context(0);
    let cq = ctx.create_cq();
    let qp = ctx.create_qp(QpType::Ud, cq.clone(), cq);
    qp.modify_to_init().unwrap();
    assert!(matches!(
        qp.connect(AddressHandle { node: 1, qpn: QpNum(1) })
            .unwrap_err(),
        VerbsError::UnsupportedOp { .. }
    ));
    // UD reaches RTR/RTS without a peer.
    qp.modify_to_rtr().unwrap();
    qp.modify_to_rts().unwrap();
}

#[test]
fn transitions_cannot_be_skipped_or_repeated() {
    let rt = runtime();
    let ctx = rt.context(0);
    let cq = ctx.create_cq();
    let qp = ctx.create_qp(QpType::Ud, cq.clone(), cq);
    // Skip INIT.
    assert!(matches!(
        qp.modify_to_rtr().unwrap_err(),
        VerbsError::InvalidState { .. }
    ));
    qp.modify_to_init().unwrap();
    // Repeat INIT.
    assert!(matches!(
        qp.modify_to_init().unwrap_err(),
        VerbsError::InvalidState { .. }
    ));
    qp.modify_to_rtr().unwrap();
    qp.modify_to_rts().unwrap();
    // Repeat RTS.
    assert!(matches!(
        qp.modify_to_rts().unwrap_err(),
        VerbsError::InvalidState { .. }
    ));
}

#[test]
fn connect_after_init_only() {
    let rt = runtime();
    let ctx = rt.context(0);
    let cq = ctx.create_cq();
    let qp = ctx.create_qp(QpType::Rc, cq.clone(), cq);
    // Too early (RESET).
    assert!(matches!(
        qp.connect(AddressHandle { node: 1, qpn: QpNum(1) })
            .unwrap_err(),
        VerbsError::InvalidState { .. }
    ));
}

#[test]
fn qpns_are_unique_across_nodes() {
    let rt = runtime();
    let mut seen = std::collections::HashSet::new();
    for node in 0..2 {
        let ctx = rt.context(node);
        for _ in 0..8 {
            let cq = ctx.create_cq();
            let qp = ctx.create_qp(QpType::Ud, cq.clone(), cq);
            assert!(seen.insert(qp.qpn()), "duplicate {:?}", qp.qpn());
        }
    }
}
