//! End-to-end transport semantics tests for the verbs layer: real bytes
//! moving between simulated nodes under virtual time.
//!
//! Untimed resource setup (QPs, CQs, MRs, connections) happens on the host
//! thread before the simulation starts; simulated threads then exercise the
//! timed data path. This mirrors how the shuffle operators are driven by
//! the benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_simnet::{Cluster, DeviceProfile, SimDuration};
use rshuffle_verbs::{
    AddressHandle, CompletionQueue, ConnectionManager, FaultConfig, QpType, QueuePair, RecvWr,
    RemoteAddr, SendWr, VerbsError, VerbsRuntime, WcOpcode, WcStatus,
};

fn runtime(nodes: usize) -> Arc<VerbsRuntime> {
    // Reordering off by default for deterministic latency assertions.
    let faults = FaultConfig {
        ud_reorder_probability: 0.0,
        ..FaultConfig::default()
    };
    VerbsRuntime::with_faults(Cluster::new(nodes, DeviceProfile::edr()), faults)
}

/// Creates a connected RC pair: (qp on node a, its cq, qp on node b, its cq).
fn rc_pair(
    rt: &Arc<VerbsRuntime>,
    a: usize,
    b: usize,
) -> (QueuePair, CompletionQueue, QueuePair, CompletionQueue) {
    let ctx_a = rt.context(a);
    let ctx_b = rt.context(b);
    let cq_a = ctx_a.create_cq();
    let cq_b = ctx_b.create_cq();
    let qp_a = ctx_a.create_qp(QpType::Rc, cq_a.clone(), cq_a.clone());
    let qp_b = ctx_b.create_qp(QpType::Rc, cq_b.clone(), cq_b.clone());
    ConnectionManager::activate_untimed(&qp_a, Some(qp_b.address_handle())).unwrap();
    ConnectionManager::activate_untimed(&qp_b, Some(qp_a.address_handle())).unwrap();
    (qp_a, cq_a, qp_b, cq_b)
}

/// Creates a ready UD QP with its CQ on `node`.
fn ud_qp(rt: &Arc<VerbsRuntime>, node: usize) -> (QueuePair, CompletionQueue) {
    let ctx = rt.context(node);
    let cq = ctx.create_cq();
    let qp = ctx.create_qp(QpType::Ud, cq.clone(), cq.clone());
    ConnectionManager::activate_untimed(&qp, None).unwrap();
    (qp, cq)
}

#[test]
fn rc_send_recv_delivers_bytes() {
    let rt = runtime(2);
    let (qp_s, cq_s, qp_r, cq_r) = rc_pair(&rt, 0, 1);
    let recv_mr = rt.context(1).register_untimed(4096);
    let send_mr = rt.context(0).register_untimed(4096);
    send_mr.write(0, b"hello rdma!").unwrap();
    let received = Arc::new(Mutex::new(Vec::new()));

    let out = received.clone();
    let mr = recv_mr.clone();
    rt.cluster().spawn(1, "receiver", move |sim| {
        qp_r.post_recv(
            &sim,
            RecvWr {
                wr_id: 1,
                mr: mr.clone(),
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
        let c = cq_r.next(&sim);
        assert_eq!(c.status, WcStatus::Success);
        assert_eq!(c.opcode, WcOpcode::Recv);
        assert_eq!(c.byte_len, 11);
        assert_eq!(c.src_node, 0);
        assert_eq!(c.imm, Some(99));
        out.lock().extend(mr.read(0, 11).unwrap());
    });

    rt.cluster().spawn(0, "sender", move |sim| {
        // Give the receiver a moment to post its receive.
        sim.sleep(SimDuration::from_micros(10));
        qp_s.post_send(
            &sim,
            SendWr {
                wr_id: 7,
                mr: send_mr,
                offset: 0,
                len: 11,
                imm: Some(99),
                ah: None,
            },
        )
        .unwrap();
        let c = cq_s.next(&sim);
        assert_eq!(c.status, WcStatus::Success);
        assert_eq!(c.opcode, WcOpcode::Send);
    });

    rt.cluster().run();
    assert_eq!(received.lock().as_slice(), b"hello rdma!");
}

#[test]
fn rc_is_ordered_fifo() {
    let rt = runtime(2);
    let (qp_s, cq_s, qp_r, cq_r) = rc_pair(&rt, 0, 1);
    let recv_mr = rt.context(1).register_untimed(64 * 64);
    let send_mr = rt.context(0).register_untimed(64);
    let order = Arc::new(Mutex::new(Vec::new()));

    let order2 = order.clone();
    let mr = recv_mr.clone();
    rt.cluster().spawn(1, "receiver", move |sim| {
        for i in 0..64u64 {
            qp_r.post_recv(
                &sim,
                RecvWr {
                    wr_id: i,
                    mr: mr.clone(),
                    offset: (i as usize) * 64,
                    len: 64,
                },
            )
            .unwrap();
        }
        for _ in 0..64 {
            let c = cq_r.next(&sim);
            assert_eq!(c.status, WcStatus::Success);
            let slot = c.wr_id as usize * 64;
            order2.lock().push(mr.read(slot, 1).unwrap()[0]);
        }
    });

    rt.cluster().spawn(0, "sender", move |sim| {
        sim.sleep(SimDuration::from_micros(20));
        for i in 0..64u8 {
            send_mr.write(0, &[i]).unwrap();
            qp_s.post_send(
                &sim,
                SendWr {
                    wr_id: i as u64,
                    mr: send_mr.clone(),
                    offset: 0,
                    len: 1,
                    imm: None,
                    ah: None,
                },
            )
            .unwrap();
            // Wait for the send completion so reusing the buffer is legal.
            let c = cq_s.next(&sim);
            assert_eq!(c.status, WcStatus::Success);
        }
    });

    rt.cluster().run();
    let seen = order.lock().clone();
    assert_eq!(
        seen,
        (0..64u8).collect::<Vec<_>>(),
        "RC must deliver in order"
    );
}

#[test]
fn ud_unmatched_send_is_dropped() {
    let rt = runtime(2);
    let (qp_r, cq_r) = ud_qp(&rt, 1);
    let (qp_s, cq_s) = ud_qp(&rt, 0);
    let dest = qp_r.address_handle();
    let send_mr = rt.context(0).register_untimed(256);

    rt.cluster().spawn(1, "receiver", move |sim| {
        // Deliberately post NO receive; wait long enough for the message to
        // arrive and be dropped.
        sim.sleep(SimDuration::from_millis(1));
        assert_eq!(cq_r.depth(), 0, "no completion without a posted receive");
        drop(qp_r);
    });
    rt.cluster().spawn(0, "sender", move |sim| {
        qp_s.post_send(
            &sim,
            SendWr {
                wr_id: 1,
                mr: send_mr,
                offset: 0,
                len: 100,
                imm: None,
                ah: Some(dest),
            },
        )
        .unwrap();
        // The sender still gets its local completion (buffer consumed).
        let c = cq_s.next(&sim);
        assert_eq!(c.status, WcStatus::Success);
    });
    rt.cluster().run();
    assert_eq!(rt.stats().ud_unmatched, 1);
}

#[test]
fn ud_rejects_messages_over_mtu() {
    let rt = runtime(2);
    let (qp, _cq) = ud_qp(&rt, 0);
    let mr = rt.context(0).register_untimed(8192);
    rt.cluster().spawn(0, "sender", move |sim| {
        let err = qp
            .post_send(
                &sim,
                SendWr {
                    wr_id: 1,
                    mr,
                    offset: 0,
                    len: 4097,
                    imm: None,
                    ah: Some(AddressHandle {
                        node: 1,
                        qpn: rshuffle_verbs::QpNum(999),
                    }),
                },
            )
            .unwrap_err();
        assert!(matches!(err, VerbsError::MessageTooLarge { max: 4096, .. }));
    });
    rt.cluster().run();
}

#[test]
fn ud_one_qp_receives_from_many_senders() {
    let n = 5;
    let rt = runtime(n);
    let (qp_r, cq_r) = ud_qp(&rt, 0);
    let dest = qp_r.address_handle();
    let recv_mr = rt.context(0).register_untimed(4096 * 64);
    let total = Arc::new(AtomicU64::new(0));

    let total2 = total.clone();
    let mr = recv_mr.clone();
    rt.cluster().spawn(0, "receiver", move |sim| {
        for i in 0..64u64 {
            qp_r.post_recv(
                &sim,
                RecvWr {
                    wr_id: i,
                    mr: mr.clone(),
                    offset: (i as usize) * 4096,
                    len: 4096,
                },
            )
            .unwrap();
        }
        let mut senders_seen = std::collections::HashSet::new();
        for _ in 0..(n - 1) * 4 {
            let c = cq_r.next(&sim);
            assert_eq!(c.status, WcStatus::Success);
            senders_seen.insert(c.src_node);
            total2.fetch_add(c.byte_len as u64, Ordering::SeqCst);
        }
        assert_eq!(senders_seen.len(), n - 1, "one UD QP hears every peer");
    });

    for node in 1..n {
        let (qp_s, cq_s) = ud_qp(&rt, node);
        let mr = rt.context(node).register_untimed(4096);
        rt.cluster()
            .spawn(node, &format!("sender{node}"), move |sim| {
                sim.sleep(SimDuration::from_micros(50));
                for k in 0..4u64 {
                    qp_s.post_send(
                        &sim,
                        SendWr {
                            wr_id: k,
                            mr: mr.clone(),
                            offset: 0,
                            len: 1000,
                            imm: None,
                            ah: Some(dest),
                        },
                    )
                    .unwrap();
                    let _ = cq_s.next(&sim);
                }
            });
    }
    rt.cluster().run();
    assert_eq!(total.load(Ordering::SeqCst), (n as u64 - 1) * 4 * 1000);
}

#[test]
fn rdma_read_pulls_remote_memory() {
    let rt = runtime(2);
    let (qp_reader, cq_reader, _qp_passive, _cq_passive) = rc_pair(&rt, 0, 1);
    let remote_mr = rt.context(1).register_untimed(1024);
    remote_mr.write(128, b"passive data").unwrap();
    let remote = RemoteAddr {
        node: 1,
        rkey: remote_mr.rkey(),
        offset: 128,
    };
    let local = rt.context(0).register_untimed(1024);

    let local2 = local.clone();
    rt.cluster().spawn(0, "reader", move |sim| {
        sim.sleep(SimDuration::from_micros(10));
        qp_reader
            .post_read(&sim, 42, (local2.clone(), 0), remote, 12)
            .unwrap();
        let c = cq_reader.next(&sim);
        assert_eq!(c.status, WcStatus::Success);
        assert_eq!(c.opcode, WcOpcode::Read);
        assert_eq!(c.byte_len, 12);
        assert_eq!(local2.read(0, 12).unwrap(), b"passive data".to_vec());
    });
    // Note: the passive side never spawns a thread at all — the defining
    // property of one-sided communication.
    rt.cluster().run();
}

#[test]
fn rdma_write_updates_remote_memory_and_signals() {
    let rt = runtime(2);
    let (qp_writer, cq_writer, _qp_passive, _cq_passive) = rc_pair(&rt, 0, 1);
    let target_mr = rt.context(1).register_untimed(64);
    let remote = RemoteAddr {
        node: 1,
        rkey: target_mr.rkey(),
        offset: 0,
    };
    let local = rt.context(0).register_untimed(64);
    local.write(0, b"written").unwrap();

    let target2 = target_mr.clone();
    rt.cluster().spawn(1, "poller", move |sim| {
        // Poll local memory for the remote write (ValidArr-style).
        target2.wait_update(&sim);
        assert_eq!(target2.read(0, 7).unwrap(), b"written".to_vec());
    });
    rt.cluster().spawn(0, "writer", move |sim| {
        sim.sleep(SimDuration::from_micros(10));
        qp_writer
            .post_write(&sim, 1, (local, 0), remote, 7)
            .unwrap();
        let c = cq_writer.next(&sim);
        assert_eq!(c.status, WcStatus::Success);
        assert_eq!(c.opcode, WcOpcode::Write);
    });

    rt.cluster().run();
}

#[test]
fn one_sided_ops_rejected_on_ud() {
    let rt = runtime(2);
    let (qp, _cq) = ud_qp(&rt, 0);
    let mr = rt.context(0).register_untimed(64);
    rt.cluster().spawn(0, "t", move |sim| {
        let remote = RemoteAddr {
            node: 1,
            rkey: 1,
            offset: 0,
        };
        let err = qp
            .post_read(&sim, 1, (mr.clone(), 0), remote, 8)
            .unwrap_err();
        assert!(matches!(err, VerbsError::UnsupportedOp { .. }));
        let err = qp
            .post_write(&sim, 1, (mr.clone(), 0), remote, 8)
            .unwrap_err();
        assert!(matches!(err, VerbsError::UnsupportedOp { .. }));
    });
    rt.cluster().run();
}

#[test]
fn post_send_requires_rts() {
    let rt = runtime(2);
    let ctx = rt.context(0);
    let cq = ctx.create_cq();
    let qp = ctx.create_qp(QpType::Ud, cq.clone(), cq.clone());
    let mr = ctx.register_untimed(64);
    rt.cluster().spawn(0, "t", move |sim| {
        let err = qp
            .post_send(
                &sim,
                SendWr {
                    wr_id: 1,
                    mr: mr.clone(),
                    offset: 0,
                    len: 8,
                    imm: None,
                    ah: Some(AddressHandle {
                        node: 1,
                        qpn: rshuffle_verbs::QpNum(1),
                    }),
                },
            )
            .unwrap_err();
        assert!(matches!(err, VerbsError::InvalidState { .. }));
        // post_recv is also rejected in RESET.
        let err = qp
            .post_recv(
                &sim,
                RecvWr {
                    wr_id: 1,
                    mr,
                    offset: 0,
                    len: 8,
                },
            )
            .unwrap_err();
        assert!(matches!(err, VerbsError::InvalidState { .. }));
    });
    rt.cluster().run();
}

#[test]
fn rc_rnr_retries_until_receive_is_posted() {
    let rt = runtime(2);
    let (qp_s, cq_s, qp_r, cq_r) = rc_pair(&rt, 0, 1);
    let recv_mr = rt.context(1).register_untimed(4096);
    let send_mr = rt.context(0).register_untimed(64);

    rt.cluster().spawn(1, "late-receiver", move |sim| {
        // Post the receive LATE: after the message has already arrived and
        // been RNR-ed at least once.
        sim.sleep(SimDuration::from_micros(60));
        qp_r.post_recv(
            &sim,
            RecvWr {
                wr_id: 5,
                mr: recv_mr,
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
        let c = cq_r.next(&sim);
        assert_eq!(c.status, WcStatus::Success, "retry must eventually deliver");
    });

    rt.cluster().spawn(0, "sender", move |sim| {
        qp_s.post_send(
            &sim,
            SendWr {
                wr_id: 1,
                mr: send_mr,
                offset: 0,
                len: 64,
                imm: None,
                ah: None,
            },
        )
        .unwrap();
        let c = cq_s.next(&sim);
        assert_eq!(c.status, WcStatus::Success);
    });

    rt.cluster().run();
    assert!(
        rt.stats().rnr_retries >= 1,
        "at least one RNR retry expected"
    );
}

#[test]
fn rc_sender_fails_if_receiver_never_posts() {
    let rt = runtime(2);
    let (qp_s, cq_s, _qp_r, _cq_r) = rc_pair(&rt, 0, 1);
    let send_mr = rt.context(0).register_untimed(64);

    rt.cluster().spawn(0, "sender", move |sim| {
        qp_s.post_send(
            &sim,
            SendWr {
                wr_id: 1,
                mr: send_mr,
                offset: 0,
                len: 64,
                imm: None,
                ah: None,
            },
        )
        .unwrap();
        let c = cq_s.next(&sim);
        assert_eq!(
            c.status,
            WcStatus::RetryExceeded,
            "RNR retries must exhaust when no receive is ever posted"
        );
    });
    rt.cluster().run();
}

#[test]
fn ud_loss_injection_loses_datagrams() {
    let faults = FaultConfig {
        ud_drop_probability: 0.5,
        ud_reorder_probability: 0.0,
        seed: 1234,
        ..FaultConfig::default()
    };
    let rt = VerbsRuntime::with_faults(Cluster::new(2, DeviceProfile::edr()), faults);
    let (qp_r, cq_r) = ud_qp(&rt, 1);
    let (qp_s, cq_s) = ud_qp(&rt, 0);
    let dest = qp_r.address_handle();
    let recv_mr = rt.context(1).register_untimed(4096 * 128);
    let send_mr = rt.context(0).register_untimed(4096);
    let delivered = Arc::new(AtomicU64::new(0));

    let d = delivered.clone();
    rt.cluster().spawn(1, "receiver", move |sim| {
        for i in 0..128u64 {
            qp_r.post_recv(
                &sim,
                RecvWr {
                    wr_id: i,
                    mr: recv_mr.clone(),
                    offset: i as usize * 4096,
                    len: 4096,
                },
            )
            .unwrap();
        }
        // Count whatever arrives within a grace period.
        while cq_r
            .next_timeout(&sim, SimDuration::from_micros(200))
            .is_some()
        {
            d.fetch_add(1, Ordering::SeqCst);
        }
    });

    rt.cluster().spawn(0, "sender", move |sim| {
        sim.sleep(SimDuration::from_micros(30));
        for k in 0..100u64 {
            qp_s.post_send(
                &sim,
                SendWr {
                    wr_id: k,
                    mr: send_mr.clone(),
                    offset: 0,
                    len: 512,
                    imm: None,
                    ah: Some(dest),
                },
            )
            .unwrap();
            let _ = cq_s.next(&sim);
        }
    });

    rt.cluster().run();
    let got = delivered.load(Ordering::SeqCst);
    let lost = rt.stats().ud_dropped_in_network;
    assert_eq!(
        got + lost,
        100,
        "every datagram is delivered or counted lost"
    );
    assert!(lost > 20 && lost < 80, "≈50% loss expected, got {lost}");
}

#[test]
fn ud_reordering_shuffles_delivery_order() {
    let faults = FaultConfig {
        ud_drop_probability: 0.0,
        ud_reorder_probability: 0.5,
        ud_reorder_window: SimDuration::from_micros(50),
        seed: 99,
        ..FaultConfig::default()
    };
    let rt = VerbsRuntime::with_faults(Cluster::new(2, DeviceProfile::edr()), faults);
    let (qp_r, cq_r) = ud_qp(&rt, 1);
    let (qp_s, cq_s) = ud_qp(&rt, 0);
    let dest = qp_r.address_handle();
    let recv_mr = rt.context(1).register_untimed(4096 * 64);
    let send_mr = rt.context(0).register_untimed(4096);
    let order = Arc::new(Mutex::new(Vec::new()));

    let o = order.clone();
    rt.cluster().spawn(1, "receiver", move |sim| {
        for i in 0..64u64 {
            qp_r.post_recv(
                &sim,
                RecvWr {
                    wr_id: i,
                    mr: recv_mr.clone(),
                    offset: i as usize * 4096,
                    len: 4096,
                },
            )
            .unwrap();
        }
        for _ in 0..64 {
            let c = cq_r.next(&sim);
            // The sequence number travels in the immediate data.
            o.lock().push(c.imm.unwrap());
        }
    });

    rt.cluster().spawn(0, "sender", move |sim| {
        sim.sleep(SimDuration::from_micros(30));
        for k in 0..64u32 {
            qp_s.post_send(
                &sim,
                SendWr {
                    wr_id: k as u64,
                    mr: send_mr.clone(),
                    offset: 0,
                    len: 256,
                    imm: Some(k),
                    ah: Some(dest),
                },
            )
            .unwrap();
            let _ = cq_s.next(&sim);
        }
    });

    rt.cluster().run();
    let seen = order.lock().clone();
    assert_eq!(seen.len(), 64, "reordering must not lose datagrams");
    let mut sorted = seen.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    assert_ne!(seen, sorted, "with 50% jitter some datagrams must reorder");
}

#[test]
fn fault_plan_qp_failure_flushes_receives_and_senders() {
    use rshuffle_verbs::FaultPlan;
    let faults = FaultConfig {
        ud_reorder_probability: 0.0,
        plan: FaultPlan::new().qp_failure(1, SimDuration::from_micros(50)),
        ..FaultConfig::default()
    };
    let rt = VerbsRuntime::with_faults(Cluster::new(2, DeviceProfile::edr()), faults);
    let (qp_s, cq_s, qp_r, cq_r) = rc_pair(&rt, 0, 1);
    let recv_mr = rt.context(1).register_untimed(4096);
    let send_mr = rt.context(0).register_untimed(4096);

    // The receiver posts a receive before the failure, then polls: it must
    // observe a flushed completion, not hang.
    rt.cluster().spawn(1, "receiver", move |sim| {
        qp_r.post_recv(
            &sim,
            RecvWr {
                wr_id: 1,
                mr: recv_mr.clone(),
                offset: 0,
                len: 4096,
            },
        )
        .unwrap();
        let c = cq_r.next(&sim);
        assert_eq!(c.status, WcStatus::Flushed, "queued receive is flushed");
        assert_eq!(c.opcode, WcOpcode::Recv);
    });

    // The sender posts after the failure: its send completes in error.
    rt.cluster().spawn(0, "sender", move |sim| {
        sim.sleep(SimDuration::from_micros(100));
        qp_s.post_send(
            &sim,
            SendWr {
                wr_id: 7,
                mr: send_mr,
                offset: 0,
                len: 64,
                imm: None,
                ah: None,
            },
        )
        .unwrap();
        let c = cq_s.next(&sim);
        assert_eq!(c.status, WcStatus::Flushed, "send to a dead QP flushes");
    });

    rt.cluster().run();
}

#[test]
fn fault_plan_ud_loss_burst_drops_only_in_window() {
    use rshuffle_verbs::FaultPlan;
    // Certain loss inside [1ms, 2ms), zero outside: the window boundary is
    // what is under test, so drop probability is 1.0.
    let faults = FaultConfig {
        ud_drop_probability: 0.0,
        ud_reorder_probability: 0.0,
        plan: FaultPlan::new().ud_loss_burst(
            0,
            SimDuration::from_millis(1),
            SimDuration::from_millis(1),
            1.0,
        ),
        ..FaultConfig::default()
    };
    let rt = VerbsRuntime::with_faults(Cluster::new(2, DeviceProfile::edr()), faults);
    let (qp_r, cq_r) = ud_qp(&rt, 1);
    let (qp_s, cq_s) = ud_qp(&rt, 0);
    let dest = qp_r.address_handle();
    let recv_mr = rt.context(1).register_untimed(64 * 512);
    let send_mr = rt.context(0).register_untimed(64);
    let delivered = Arc::new(AtomicU64::new(0));

    let delivered2 = delivered.clone();
    rt.cluster().spawn(1, "receiver", move |sim| {
        for i in 0..64u64 {
            qp_r.post_recv(
                &sim,
                RecvWr {
                    wr_id: i,
                    mr: recv_mr.clone(),
                    offset: (i as usize) * 64,
                    len: 64,
                },
            )
            .unwrap();
        }
        // Drain until well past the burst window.
        while sim.now() < rshuffle_simnet::SimTime::ZERO + SimDuration::from_millis(4) {
            if cq_r.next_timeout(&sim, SimDuration::from_micros(100)).is_some() {
                delivered2.fetch_add(1, Ordering::Relaxed);
            }
        }
    });

    rt.cluster().spawn(0, "sender", move |sim| {
        sim.sleep(SimDuration::from_micros(10));
        // 10 datagrams before the window, 10 inside, 10 after.
        for phase in 0..3u64 {
            for k in 0..10u64 {
                qp_s.post_send(
                    &sim,
                    SendWr {
                        wr_id: phase * 10 + k,
                        mr: send_mr.clone(),
                        offset: 0,
                        len: 48,
                        imm: Some((phase * 10 + k) as u32),
                        ah: Some(dest),
                    },
                )
                .unwrap();
                let _ = cq_s.next(&sim);
            }
            sim.sleep(SimDuration::from_millis(1));
        }
    });

    rt.cluster().run();
    assert_eq!(
        delivered.load(Ordering::Relaxed),
        20,
        "exactly the in-window datagrams are lost"
    );
    assert_eq!(rt.stats().ud_dropped_in_network, 10);
}
