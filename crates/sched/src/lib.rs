//! Multi-query admission scheduler and fabric resource governor.
//!
//! Parallel database systems never run one query at a time: a shuffle
//! operator shares the NIC, the switch ports and — most scarce of all —
//! the RDMA-registrable memory with every co-running exchange (the paper
//! motivates its memory-frugal designs with exactly this multi-tenancy,
//! §4.3/Figure 9b). This crate adds the missing coordination layer on
//! top of the simulated cluster:
//!
//! * **Admission control** — a configurable concurrency limit with FIFO
//!   or priority queueing ([`QueuePolicy`]). Admission is strict
//!   head-of-queue: a query that does not fit blocks every query behind
//!   it, which is what makes the policy starvation-free.
//! * **Registered-memory governance** — an optional per-node byte
//!   budget. A query declares its per-node requirement up front (from
//!   [`rshuffle::ExchangeConfig::registered_bytes_estimate`]); if the
//!   requirement can never fit — even running alone — admission fails
//!   with the typed [`ShuffleError::BudgetImpossible`] instead of
//!   queueing forever. Otherwise the query waits until enough memory is
//!   released.
//! * **Fabric fairness** — each admitted query's [`FlowId`] is entered
//!   into the cluster's [`FlowTable`] with its weight, switching the NIC
//!   and switch-port arbiters ([`rshuffle_simnet::FairResource`]) into
//!   weighted-fair mode for the duration of the query.
//! * **Attribution** — queue-wait, run time and each query's share of
//!   NIC/port busy time land in the unified metrics registry under
//!   `sched.*` series tagged with a `query` label, and admission
//!   decisions are marked in the flight recorder
//!   (`query_admitted`/`query_deferred`/`query_completed`).
//!
//! The scheduler is **passive shared state**: it owns no simulated
//! thread. All decisions execute on the calling query-coordinator
//! threads, so a single-query workload at concurrency limit 1 is
//! byte-identical in virtual time to the unscheduled path (proved by
//! `tests/sched_identity.rs` in the umbrella crate).

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::ShuffleError;
use rshuffle_obs::{names, Counter, EventKind, Histogram, Labels, Obs};
use rshuffle_simnet::{FlowId, FlowTable, Gate, SimContext, SimDuration, SimTime};
use rshuffle_verbs::VerbsRuntime;

/// How the admission queue is ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Strict arrival order.
    #[default]
    Fifo,
    /// Higher [`QueryRequest::priority`] first; FIFO among equals. A
    /// waiting query is never preempted once admitted.
    Priority,
}

/// Static configuration of a [`Scheduler`].
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Maximum queries running at once (≥ 1).
    pub max_concurrent: usize,
    /// Admission-queue ordering.
    pub policy: QueuePolicy,
    /// Per-node registered-memory budget in bytes; `None` = ungoverned.
    pub mem_budget_per_node: Option<usize>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_concurrent: usize::MAX,
            policy: QueuePolicy::Fifo,
            mem_budget_per_node: None,
        }
    }
}

/// One query's admission request.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// Query id; doubles as the fabric [`FlowId`] (must not be
    /// `u32::MAX`, which is the untagged sentinel).
    pub id: u32,
    /// Weighted-fair bandwidth weight (0 is clamped to 1).
    pub weight: u64,
    /// Priority under [`QueuePolicy::Priority`]; higher runs first.
    pub priority: i32,
    /// Registered-memory requirement per node, in bytes. Length must
    /// equal the cluster's node count.
    pub mem_per_node: Vec<usize>,
}

impl QueryRequest {
    /// A weight-1, priority-0 request with no declared memory need.
    pub fn new(id: u32, nodes: usize) -> Self {
        QueryRequest {
            id,
            weight: 1,
            priority: 0,
            mem_per_node: vec![0; nodes],
        }
    }
}

/// Proof of admission, returned by [`Scheduler::admit`] and consumed by
/// [`Scheduler::release`]. Holds the resources that release must return.
#[derive(Debug)]
pub struct Admission {
    /// The admitted query's id.
    pub query: u32,
    /// When the request entered the queue.
    pub queued_at: SimTime,
    /// When the slot (and memory) was granted.
    pub admitted_at: SimTime,
    mem: Vec<usize>,
}

impl Admission {
    /// How long the query waited in the admission queue.
    pub fn queue_wait(&self) -> SimDuration {
        self.admitted_at - self.queued_at
    }
}

/// What the scheduler can tell the exchange advisor about current
/// load (see [`Scheduler::load_signals`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadSignals {
    /// Queries running or queued besides the one asking.
    pub co_runners: usize,
    /// Smallest per-node headroom under the registered-memory budget,
    /// in bytes; `None` when no budget governs.
    pub mem_headroom: Option<usize>,
}

/// Why a query is giving its slot back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// The query finished; record completion metrics and attribution.
    Completed,
    /// A restartable attempt failed; the query will re-enter admission
    /// at the back of the queue.
    Requeued,
    /// The query gave up (restart budget exhausted or non-restartable
    /// error).
    Failed,
}

struct Waiter {
    ticket: u64,
    priority: i32,
    id: u32,
    weight: u64,
    mem: Vec<usize>,
    gate: Gate<()>,
}

struct SchedState {
    running: usize,
    /// Bytes currently reserved from the budget, per node.
    reserved: Vec<usize>,
    /// High-water mark of `reserved`, per node.
    reserved_peak: Vec<usize>,
    queue: VecDeque<Waiter>,
    next_ticket: u64,
}

/// The admission controller and resource governor. Passive shared
/// state — it owns no simulated thread; admission and release run on the
/// calling query-coordinator threads, so an uncontended scheduler adds
/// zero virtual time.
pub struct Scheduler {
    cfg: SchedulerConfig,
    runtime: Arc<VerbsRuntime>,
    flows: Arc<FlowTable>,
    obs: Arc<Obs>,
    state: Mutex<SchedState>,
    admitted: Arc<Counter>,
    deferred: Arc<Counter>,
    completed: Arc<Counter>,
    wait_hist: Arc<Histogram>,
    /// Per-node peak-reservation counters; monotone adds keep each equal
    /// to the high-water mark.
    mem_peak: Vec<Arc<Counter>>,
}

impl Scheduler {
    /// Creates a scheduler governing `runtime`'s cluster.
    pub fn new(runtime: &Arc<VerbsRuntime>, cfg: SchedulerConfig) -> Arc<Scheduler> {
        assert!(cfg.max_concurrent >= 1, "concurrency limit must be >= 1");
        let nodes = runtime.cluster().nodes();
        let obs = runtime.obs().clone();
        let mem_peak = (0..nodes)
            .map(|n| {
                obs.metrics
                    .counter(names::SCHED_MEM_RESERVED_PEAK, Labels::node(n as u32))
            })
            .collect();
        Arc::new(Scheduler {
            cfg,
            flows: runtime.cluster().flows().clone(),
            admitted: obs.metrics.counter(names::SCHED_ADMITTED, Labels::GLOBAL),
            deferred: obs.metrics.counter(names::SCHED_DEFERRED, Labels::GLOBAL),
            completed: obs.metrics.counter(names::SCHED_COMPLETED, Labels::GLOBAL),
            wait_hist: obs
                .metrics
                .histogram(names::SCHED_QUEUE_WAIT_HIST_NS, Labels::GLOBAL),
            mem_peak,
            obs,
            state: Mutex::new(SchedState {
                running: 0,
                reserved: vec![0; nodes],
                reserved_peak: vec![0; nodes],
                queue: VecDeque::new(),
                next_ticket: 0,
            }),
            runtime: runtime.clone(),
        })
    }

    /// This scheduler's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Bytes currently reserved from the budget on `node`.
    pub fn reserved_bytes(&self, node: usize) -> usize {
        self.state.lock().reserved[node]
    }

    /// High-water mark of budget reservations on `node`.
    pub fn reserved_bytes_peak(&self, node: usize) -> usize {
        self.state.lock().reserved_peak[node]
    }

    /// Queries currently holding an execution slot.
    pub fn running(&self) -> usize {
        self.state.lock().running
    }

    /// Queries waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Cross-query load signals for the exchange advisor: how many
    /// other queries compete for the fabric right now, and the smallest
    /// per-node registered-memory headroom left under the budget
    /// (`None` when the budget is ungoverned).
    pub fn load_signals(&self) -> LoadSignals {
        let state = self.state.lock();
        let co_runners = state.running + state.queue.len();
        let mem_headroom = self.cfg.mem_budget_per_node.map(|budget| {
            state
                .reserved
                .iter()
                .map(|&r| budget.saturating_sub(r))
                .min()
                .unwrap_or(budget)
        });
        LoadSignals {
            co_runners,
            mem_headroom,
        }
    }

    /// Requests admission for `req`, blocking in virtual time until a
    /// slot (and, under a memory budget, the declared bytes) is granted.
    ///
    /// # Errors
    ///
    /// [`ShuffleError::BudgetImpossible`] when some node's requirement
    /// exceeds the per-node budget outright — such a query could never
    /// run and queueing it would deadlock the head of the queue.
    /// [`ShuffleError::Config`] when the request is malformed (wrong
    /// `mem_per_node` length, or the reserved `u32::MAX` id).
    pub fn admit(&self, sim: &SimContext, req: &QueryRequest) -> Result<Admission, ShuffleError> {
        let nodes = self.runtime.cluster().nodes();
        if req.mem_per_node.len() != nodes {
            return Err(ShuffleError::Config(format!(
                "query {}: {} memory declarations for {} nodes",
                req.id,
                req.mem_per_node.len(),
                nodes
            )));
        }
        if !FlowId(req.id).is_tagged() {
            return Err(ShuffleError::Config(
                "query id u32::MAX is reserved for untagged traffic".into(),
            ));
        }
        if let Some(budget) = self.cfg.mem_budget_per_node {
            for (node, &required) in req.mem_per_node.iter().enumerate() {
                if required > budget {
                    return Err(ShuffleError::BudgetImpossible {
                        node,
                        required,
                        budget,
                    });
                }
            }
        }
        let queued_at = sim.now();
        let gate: Gate<()> = Gate::new(sim.kernel(), SimDuration::ZERO);
        {
            let mut st = self.state.lock();
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            let waiter = Waiter {
                ticket,
                priority: req.priority,
                id: req.id,
                weight: req.weight.max(1),
                mem: req.mem_per_node.clone(),
                gate: gate.clone(),
            };
            let pos = match self.cfg.policy {
                QueuePolicy::Fifo => st.queue.len(),
                QueuePolicy::Priority => st
                    .queue
                    .iter()
                    .position(|w| w.priority < req.priority)
                    .unwrap_or(st.queue.len()),
            };
            st.queue.insert(pos, waiter);
            self.grant_ready(&mut st);
        }
        // The cooperative kernel runs one thread at a time, so nothing
        // can slip between this emptiness check and the blocking recv.
        if gate.is_empty() {
            self.deferred.inc();
            self.obs.recorder.event(
                sim.node() as u32,
                sim.id().track(),
                sim.now().as_nanos(),
                EventKind::QueryDeferred,
                req.id as u64,
            );
            gate.recv(sim);
        } else {
            gate.recv(sim);
        }
        let admitted_at = sim.now();
        let wait = admitted_at - queued_at;
        self.admitted.inc();
        self.obs
            .metrics
            .counter(names::SCHED_QUEUE_WAIT_NS, Labels::query(req.id))
            .add(wait.as_nanos());
        self.wait_hist.record(wait.as_nanos());
        self.obs.recorder.event(
            sim.node() as u32,
            sim.id().track(),
            admitted_at.as_nanos(),
            EventKind::QueryAdmitted,
            req.id as u64,
        );
        Ok(Admission {
            query: req.id,
            queued_at,
            admitted_at,
            mem: req.mem_per_node.clone(),
        })
    }

    /// Returns `adm`'s slot, budget reservation and pinned memory (every
    /// region registered under the query's flow tag is deregistered),
    /// clears the query's fairness weight, and grants newly-fitting
    /// waiters. On [`ReleaseOutcome::Completed`] the query's run time
    /// and its attributed share of NIC/port busy time are recorded.
    pub fn release(&self, sim: &SimContext, adm: Admission, outcome: ReleaseOutcome) {
        let flow = FlowId(adm.query);
        self.runtime.deregister_flow(flow);
        self.flows.clear_weight(flow);
        {
            let mut st = self.state.lock();
            st.running -= 1;
            for (node, &m) in adm.mem.iter().enumerate() {
                st.reserved[node] -= m;
            }
            self.grant_ready(&mut st);
        }
        if outcome != ReleaseOutcome::Completed {
            return;
        }
        self.completed.inc();
        let run = sim.now() - adm.admitted_at;
        let q = Labels::query(adm.query);
        self.obs
            .metrics
            .counter(names::SCHED_RUN_NS, q)
            .add(run.as_nanos());
        let cluster = self.runtime.cluster();
        let mut nic_busy = SimDuration::ZERO;
        let mut port_busy = SimDuration::ZERO;
        for node in 0..cluster.nodes() {
            nic_busy += cluster.nic(node).flow_busy(flow);
            port_busy += cluster.fabric().egress_flow_busy(node, flow)
                + cluster.fabric().ingress_flow_busy(node, flow);
        }
        self.obs
            .metrics
            .counter(names::SCHED_NIC_BUSY_NS, q)
            .add(nic_busy.as_nanos());
        self.obs
            .metrics
            .counter(names::SCHED_PORT_BUSY_NS, q)
            .add(port_busy.as_nanos());
        self.obs.recorder.event(
            sim.node() as u32,
            sim.id().track(),
            sim.now().as_nanos(),
            EventKind::QueryCompleted,
            adm.query as u64,
        );
    }

    /// Admits from the head of the queue while the head fits. Strictly
    /// in-order: a head that does not fit blocks everything behind it
    /// (no starvation; ordering is the policy's, not the allocator's).
    fn grant_ready(&self, st: &mut SchedState) {
        while let Some(head) = st.queue.front() {
            if st.running >= self.cfg.max_concurrent {
                break;
            }
            if let Some(budget) = self.cfg.mem_budget_per_node {
                let fits = head
                    .mem
                    .iter()
                    .enumerate()
                    .all(|(node, &m)| st.reserved[node] + m <= budget);
                if !fits {
                    break;
                }
            }
            let w = st.queue.pop_front().expect("front() was Some");
            st.running += 1;
            for (node, &m) in w.mem.iter().enumerate() {
                st.reserved[node] += m;
                if st.reserved[node] > st.reserved_peak[node] {
                    let delta = st.reserved[node] - st.reserved_peak[node];
                    st.reserved_peak[node] = st.reserved[node];
                    self.mem_peak[node].add(delta as u64);
                }
            }
            let _ = w.ticket;
            self.flows.set_weight(FlowId(w.id), w.weight);
            w.gate.push(());
        }
    }
}

/// Modelled per-connection (QP) state footprint, in bytes: the NIC
/// context entry plus the host-memory work-queue descriptors the driver
/// pins per RC connection. A modelling constant, not a measured buffer
/// size — it exists so admission can price *connection count*, which
/// registered-buffer estimates are blind to.
pub const QP_STATE_BYTES: usize = 384;

/// Estimates the per-node QP-state bytes of one shuffle query: `fanout`
/// destination pairs plus `fanin` source pairs, each `lanes` natural
/// connections deep, optionally compressed by a connection-multiplexer
/// cap ([`rshuffle_mux::MuxConfig::effective_slots`]).
///
/// [`rshuffle::ExchangeConfig::registered_bytes_estimate`] is unchanged
/// by multiplexing — slot sharing merges NIC contexts, not message
/// buffers — so a mux-aware admission controller adds this estimate on
/// top of the buffer estimate in [`QueryRequest::mem_per_node`]. The
/// default path (no cap, or callers that never add the term) is
/// untouched.
pub fn qp_state_bytes_estimate(
    lanes: usize,
    fanout: usize,
    fanin: usize,
    mux: Option<rshuffle_mux::MuxConfig>,
) -> usize {
    let per_pair = match mux {
        Some(cap) => cap.effective_slots(lanes),
        None => lanes,
    };
    (fanout + fanin) * per_pair * QP_STATE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use rshuffle_simnet::{Cluster, DeviceProfile};

    fn runtime(nodes: usize) -> Arc<VerbsRuntime> {
        VerbsRuntime::new(Cluster::new(nodes, DeviceProfile::edr()))
    }

    fn req(id: u32, mem: Vec<usize>) -> QueryRequest {
        QueryRequest {
            id,
            weight: 1,
            priority: 0,
            mem_per_node: mem,
        }
    }

    #[test]
    fn impossible_budget_is_a_typed_error_not_a_hang() {
        let rt = runtime(2);
        let sched = Scheduler::new(
            &rt,
            SchedulerConfig {
                mem_budget_per_node: Some(1000),
                ..SchedulerConfig::default()
            },
        );
        let got = Arc::new(Mutex::new(None));
        let g = got.clone();
        rt.cluster().spawn(0, "q0", move |sim| {
            *g.lock() = Some(sched.admit(&sim, &req(0, vec![500, 1001])));
        });
        rt.cluster().run();
        let result = got.lock().take().expect("coordinator ran");
        match result {
            Err(ShuffleError::BudgetImpossible {
                node,
                required,
                budget,
            }) => {
                assert_eq!((node, required, budget), (1, 1001, 1000));
            }
            other => panic!("expected BudgetImpossible, got {other:?}"),
        }
    }

    #[test]
    fn over_budget_query_waits_for_release() {
        let rt = runtime(1);
        let sched = Scheduler::new(
            &rt,
            SchedulerConfig {
                mem_budget_per_node: Some(1000),
                ..SchedulerConfig::default()
            },
        );
        let log = Arc::new(Mutex::new(Vec::new()));
        let hold = SimDuration::from_micros(10);
        for id in 0..2u32 {
            let sched = sched.clone();
            let log = log.clone();
            rt.cluster().spawn(0, &format!("q{id}"), move |sim| {
                let adm = sched.admit(&sim, &req(id, vec![700])).unwrap();
                log.lock().push((id, "admitted", sim.now().as_nanos()));
                sim.sleep(hold);
                sched.release(&sim, adm, ReleaseOutcome::Completed);
            });
        }
        rt.cluster().run();
        let log = log.lock();
        // 700 + 700 > 1000: the second query must wait out the first.
        assert_eq!(log[0], (0, "admitted", 0));
        assert_eq!(log[1].0, 1);
        assert!(
            log[1].2 >= hold.as_nanos(),
            "q1 admitted at {} before q0 released",
            log[1].2
        );
        assert_eq!(sched.reserved_bytes(0), 0, "all reservations returned");
        assert_eq!(sched.reserved_bytes_peak(0), 700);
    }

    #[test]
    fn concurrency_limit_serializes() {
        let rt = runtime(1);
        let sched = Scheduler::new(
            &rt,
            SchedulerConfig {
                max_concurrent: 1,
                ..SchedulerConfig::default()
            },
        );
        let windows = Arc::new(Mutex::new(Vec::new()));
        for id in 0..3u32 {
            let sched = sched.clone();
            let windows = windows.clone();
            rt.cluster().spawn(0, &format!("q{id}"), move |sim| {
                let adm = sched.admit(&sim, &QueryRequest::new(id, 1)).unwrap();
                let start = sim.now().as_nanos();
                sim.sleep(SimDuration::from_micros(5));
                windows.lock().push((id, start, sim.now().as_nanos()));
                sched.release(&sim, adm, ReleaseOutcome::Completed);
            });
        }
        rt.cluster().run();
        let windows = windows.lock().clone();
        assert_eq!(windows.len(), 3);
        for pair in windows.windows(2) {
            assert!(
                pair[1].1 >= pair[0].2,
                "queries overlapped under limit 1: {windows:?}"
            );
        }
        // FIFO: spawn order is admission order.
        assert_eq!(
            windows.iter().map(|w| w.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn priority_queue_reorders_waiters_fifo_does_not() {
        for (policy, expected) in [
            (QueuePolicy::Fifo, vec![0, 1, 2]),
            (QueuePolicy::Priority, vec![0, 2, 1]),
        ] {
            let rt = runtime(1);
            let sched = Scheduler::new(
                &rt,
                SchedulerConfig {
                    max_concurrent: 1,
                    policy,
                    ..SchedulerConfig::default()
                },
            );
            let order = Arc::new(Mutex::new(Vec::new()));
            // q0 occupies the slot; q1 (prio 0) and q2 (prio 5) queue
            // behind it in spawn order.
            for (id, priority) in [(0u32, 0), (1, 0), (2, 5)] {
                let sched = sched.clone();
                let order = order.clone();
                rt.cluster().spawn(0, &format!("q{id}"), move |sim| {
                    let mut r = QueryRequest::new(id, 1);
                    r.priority = priority;
                    let adm = sched.admit(&sim, &r).unwrap();
                    order.lock().push(id);
                    sim.sleep(SimDuration::from_micros(3));
                    sched.release(&sim, adm, ReleaseOutcome::Completed);
                });
            }
            rt.cluster().run();
            assert_eq!(*order.lock(), expected, "policy {policy:?}");
        }
    }

    #[test]
    fn weights_registered_while_running_cleared_after() {
        let rt = runtime(1);
        let flows = rt.cluster().flows().clone();
        let sched = Scheduler::new(&rt, SchedulerConfig::default());
        let observed = Arc::new(Mutex::new(None));
        let obs2 = observed.clone();
        let f = flows.clone();
        rt.cluster().spawn(0, "q7", move |sim| {
            let mut r = QueryRequest::new(7, 1);
            r.weight = 3;
            let adm = sched.admit(&sim, &r).unwrap();
            *obs2.lock() = Some(f.share(FlowId(7)));
            sched.release(&sim, adm, ReleaseOutcome::Completed);
        });
        rt.cluster().run();
        assert_eq!(observed.lock().take(), Some(Some((3, 3))));
        assert!(flows.is_empty(), "weight cleared on release");
    }

    #[test]
    fn requeued_admission_keeps_budget_exact_across_reconnect_cycles() {
        // The recovery orchestrator re-admits a query once per rebuild
        // (partial retry, degradation rung, or full restart), releasing
        // the attempt as Requeued in between. Each cycle must return the
        // previous reservation before taking the next, so the per-node
        // budget never double-counts a reconnecting query and the peak
        // stays at a single admission's worth.
        let rt = runtime(2);
        let sched = Scheduler::new(
            &rt,
            SchedulerConfig {
                mem_budget_per_node: Some(1000),
                ..SchedulerConfig::default()
            },
        );
        let s2 = sched.clone();
        rt.cluster().spawn(0, "recovering-query", move |sim| {
            for cycle in 0..4 {
                let adm = s2.admit(&sim, &req(9, vec![700, 700])).unwrap();
                assert_eq!(s2.reserved_bytes(0), 700, "cycle {cycle}");
                assert_eq!(s2.reserved_bytes(1), 700, "cycle {cycle}");
                s2.release(&sim, adm, ReleaseOutcome::Requeued);
                assert_eq!(
                    s2.reserved_bytes(0),
                    0,
                    "cycle {cycle}: budget returned between attempts"
                );
            }
            let adm = s2.admit(&sim, &req(9, vec![700, 700])).unwrap();
            s2.release(&sim, adm, ReleaseOutcome::Completed);
        });
        rt.cluster().run();
        assert_eq!(sched.reserved_bytes(0), 0);
        assert_eq!(sched.reserved_bytes(1), 0);
        assert_eq!(
            sched.reserved_bytes_peak(0),
            700,
            "reconnect cycles must not double-count the budget"
        );
    }

    #[test]
    fn release_deregisters_the_querys_memory() {
        let rt = runtime(1);
        let sched = Scheduler::new(&rt, SchedulerConfig::default());
        let rt2 = rt.clone();
        rt.cluster().spawn(0, "q3", move |sim| {
            let adm = sched.admit(&sim, &QueryRequest::new(3, 1)).unwrap();
            let ctx = rt2.context_flow(0, FlowId(3));
            let _mr = ctx.register_untimed(4096);
            assert_eq!(rt2.registered_bytes(0), 4096);
            sched.release(&sim, adm, ReleaseOutcome::Completed);
            assert_eq!(rt2.registered_bytes(0), 0, "flow memory returned");
        });
        rt.cluster().run();
        assert_eq!(rt.registered_bytes_peak(0), 4096);
    }

    #[test]
    fn qp_state_pricing_shrinks_under_a_cap() {
        use rshuffle_mux::MuxConfig;
        // 14 lanes to 15 destinations + 15 sources, uncapped.
        let natural = qp_state_bytes_estimate(14, 15, 15, None);
        assert_eq!(natural, 30 * 14 * QP_STATE_BYTES);
        // A cap of 2 collapses each pair to 2 physical connections.
        let capped = qp_state_bytes_estimate(14, 15, 15, Some(MuxConfig::with_cap(2)));
        assert_eq!(capped, 30 * 2 * QP_STATE_BYTES);
        // A cap at or above the lane count prices exactly the direct path.
        let identity = qp_state_bytes_estimate(14, 15, 15, Some(MuxConfig::with_cap(14)));
        assert_eq!(identity, natural);
    }
}
