//! The qperf-style peak-bandwidth probe (§5.1: "the sender in qperf only
//! registers a single buffer for data transfer and keeps posting RDMA Send
//! requests. The receiver continuously posts RDMA Receive requests in an
//! infinite loop and never accesses the transmitted data").
//!
//! The measurement defines the dashed "line rate" reference of Figure 10.
//! It deliberately skips everything a real shuffle must do: no hashing, no
//! copies into transmission buffers, no flow-control protocol, no data
//! consumption.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rshuffle_simnet::{Cluster, DeviceProfile};
use rshuffle_verbs::{
    ConnectionManager, FaultConfig, QpType, RecvWr, SendWr, VerbsRuntime, WcStatus,
};

/// Measures peak point-to-point receive bandwidth (bytes/second) with
/// `message_size`-byte RC messages over `profile`'s hardware.
pub fn qperf_peak_bandwidth(profile: &DeviceProfile, message_size: usize) -> f64 {
    let cluster = Cluster::new(2, profile.clone());
    let runtime = VerbsRuntime::with_faults(
        cluster,
        FaultConfig {
            ud_reorder_probability: 0.0,
            ..FaultConfig::default()
        },
    );

    // Enough traffic to amortize ramp-up.
    let messages: u64 = (256 << 20) as u64 / message_size as u64;
    let window: usize = 64;

    let ctx_s = runtime.context(0);
    let ctx_r = runtime.context(1);
    let cq_s = ctx_s.create_cq();
    let cq_r = ctx_r.create_cq();
    let qp_s = ctx_s.create_qp(QpType::Rc, cq_s.clone(), cq_s.clone());
    let qp_r = ctx_r.create_qp(QpType::Rc, cq_r.clone(), cq_r.clone());
    ConnectionManager::activate_untimed(&qp_s, Some(qp_r.address_handle())).expect("connect");
    ConnectionManager::activate_untimed(&qp_r, Some(qp_s.address_handle())).expect("connect");

    // qperf registers a single send buffer...
    let send_mr = ctx_s.register_untimed(message_size);
    // ...and a ring of receive buffers it never reads.
    let recv_mr = ctx_r.register_untimed(message_size * window);
    for i in 0..window {
        qp_r.post_recv_untimed(RecvWr {
            wr_id: i as u64,
            mr: recv_mr.clone(),
            offset: i * message_size,
            len: message_size,
        })
        .expect("prepost");
    }

    let bytes_done = Arc::new(AtomicU64::new(0));
    let finished_at = Arc::new(AtomicU64::new(0));

    // Receiver: repost blindly, never touch the data.
    {
        let qp_r = qp_r.clone();
        let recv_mr = recv_mr.clone();
        let bytes_done = bytes_done.clone();
        let finished_at = finished_at.clone();
        runtime.cluster().spawn(1, "qperf-recv", move |sim| {
            for _ in 0..messages {
                let c = cq_r.next(&sim);
                assert_eq!(c.status, WcStatus::Success);
                bytes_done.fetch_add(c.byte_len as u64, Ordering::Relaxed);
                qp_r.post_recv(
                    &sim,
                    RecvWr {
                        wr_id: c.wr_id,
                        mr: recv_mr.clone(),
                        offset: c.wr_id as usize,
                        len: message_size,
                    },
                )
                .expect("repost");
            }
            finished_at.store(sim.now().as_nanos(), Ordering::Relaxed);
        });
    }

    // Sender: keep `window/2` sends in flight from the single buffer.
    runtime.cluster().spawn(0, "qperf-send", move |sim| {
        let inflight_target = window / 2;
        let mut inflight = 0usize;
        for _ in 0..messages {
            while inflight >= inflight_target {
                let c = cq_s.next(&sim);
                assert_eq!(c.status, WcStatus::Success);
                inflight -= 1;
            }
            qp_s.post_send(
                &sim,
                SendWr {
                    wr_id: 0,
                    mr: send_mr.clone(),
                    offset: 0,
                    len: message_size,
                    imm: None,
                    ah: None,
                },
            )
            .expect("post");
            inflight += 1;
        }
        while inflight > 0 {
            let _ = cq_s.next(&sim);
            inflight -= 1;
        }
    });

    runtime.cluster().run();
    let bytes = bytes_done.load(Ordering::Relaxed) as f64;
    let secs = finished_at.load(Ordering::Relaxed) as f64 / 1e9;
    assert!(secs > 0.0, "measurement finished instantly");
    bytes / secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rshuffle_simnet::profile::GIB;

    #[test]
    fn qperf_fdr_hits_reference_line() {
        let bw = qperf_peak_bandwidth(&DeviceProfile::fdr(), 64 * 1024) / GIB;
        // The paper's qperf line sits at ≈6 GiB/s on FDR.
        assert!((5.4..6.4).contains(&bw), "FDR qperf measured {bw:.2} GiB/s");
    }

    #[test]
    fn qperf_edr_hits_reference_line() {
        let bw = qperf_peak_bandwidth(&DeviceProfile::edr(), 64 * 1024) / GIB;
        // ≈11.5 GiB/s on EDR.
        assert!(
            (10.5..12.0).contains(&bw),
            "EDR qperf measured {bw:.2} GiB/s"
        );
    }

    #[test]
    fn tiny_messages_are_rate_limited() {
        // At 512 B the per-work-request NIC occupancy exceeds the wire
        // serialization time, so throughput is message-rate-bound and falls
        // well below line rate (4 KiB and larger stay wire-bound, as on
        // real hardware).
        let tiny = qperf_peak_bandwidth(&DeviceProfile::edr(), 512);
        let large = qperf_peak_bandwidth(&DeviceProfile::edr(), 64 * 1024);
        assert!(
            tiny < large * 0.5,
            "tiny {tiny} not rate-limited vs large {large}"
        );
    }
}
