//! An MVAPICH-style MPI baseline (§5.1: "One comparison baseline is the
//! MVAPICH2 implementation of the ubiquitous MPI library that uses RDMA
//! for communication").
//!
//! The library is built on the same Send/Receive-over-RC machinery as the
//! SEMQ/SR endpoint, with the overheads that distinguish an MPI
//! implementation from a bespoke shuffling operator:
//!
//! * **Eager protocol**: small messages are copied into library-internal
//!   buffers (an extra memcpy on the send side and on the receive side).
//! * **Rendezvous protocol**: messages above the eager threshold block the
//!   sender for an RTS/CTS round trip before data moves.
//! * **Progress engine**: one lock per process serializes every library
//!   call (`MPI_THREAD_MULTIPLE` semantics), so communication only
//!   progresses while some thread sits inside the library — the reason MPI
//!   "fail\[s\] to completely overlap communication and computation"
//!   (§5.1.6).
//! * Per-message matching cost (tag/rank lookup).

use std::sync::Arc;

use rshuffle::endpoint::sr_rc::{SrRcConfig, SrRcReceiveEndpoint, SrRcSendEndpoint};
use rshuffle::endpoint::{Delivery, EndpointId, ReceiveEndpoint, SendEndpoint};
use rshuffle::{Buffer, Result, StreamState, TransmissionGroups};
use rshuffle_simnet::{NodeId, SimContext, SimDuration, SimMutex};
use rshuffle_verbs::{ConnectionManager, VerbsRuntime};

/// MPI-library cost constants (taken from the device profile).
#[derive(Clone, Debug)]
struct MpiCosts {
    per_message: SimDuration,
    rendezvous_rtt: SimDuration,
    eager_threshold: usize,
    memcpy_bandwidth: f64,
}

impl MpiCosts {
    fn copy_time(&self, bytes: usize) -> SimDuration {
        rshuffle_simnet::resource::transfer_time(bytes, self.memcpy_bandwidth)
    }
}

/// The sending half of the MPI baseline (`MPI_Send`).
pub struct MpiSendEndpoint {
    inner: Arc<SrRcSendEndpoint>,
    progress: SimMutex<()>,
    costs: MpiCosts,
}

impl SendEndpoint for MpiSendEndpoint {
    fn id(&self) -> EndpointId {
        self.inner.id()
    }

    fn send(
        &self,
        sim: &SimContext,
        buf: Buffer,
        dest: &[NodeId],
        state: StreamState,
    ) -> Result<()> {
        // The library's CPU work (matching, copies, handshakes) is
        // serialized by the progress engine; blocking network waits happen
        // outside the lock so cross-node progress cannot deadlock.
        let guard = self.progress.lock(sim);
        for _ in dest {
            sim.sleep(self.costs.per_message);
            if buf.len() <= self.costs.eager_threshold {
                // Eager: copy into the library's internal buffer.
                sim.sleep(self.costs.copy_time(buf.len()));
            } else {
                // Rendezvous: RTS/CTS round trip before the data moves.
                sim.sleep(self.costs.rendezvous_rtt);
            }
        }
        drop(guard);
        self.inner.send(sim, buf, dest, state)
    }

    fn get_free(&self, sim: &SimContext) -> Result<Buffer> {
        self.inner.get_free(sim)
    }

    fn registered_bytes(&self) -> usize {
        self.inner.registered_bytes()
    }

    fn charge_setup(&self, sim: &SimContext) {
        self.inner.charge_setup(sim);
    }
}

/// The receiving half of the MPI baseline (`MPI_Irecv` + wait).
pub struct MpiReceiveEndpoint {
    inner: Arc<SrRcReceiveEndpoint>,
    progress: SimMutex<()>,
    costs: MpiCosts,
}

impl ReceiveEndpoint for MpiReceiveEndpoint {
    fn id(&self) -> EndpointId {
        self.inner.id()
    }

    fn get_data(&self, sim: &SimContext) -> Result<Option<Delivery>> {
        // Block for data outside the lock (an `MPI_Wait` spin), then charge
        // the library's matching + delivery copy under the progress lock.
        let d = self.inner.get_data(sim)?;
        if let Some(ref delivery) = d {
            let guard = self.progress.lock(sim);
            sim.sleep(self.costs.per_message);
            // The eager path copies out of library buffers; rendezvous
            // transfers land in place but still pay an unpack/match pass.
            sim.sleep(self.costs.copy_time(delivery.local.len()));
            drop(guard);
        }
        Ok(d)
    }

    fn release(&self, sim: &SimContext, remote: u64, local: Buffer, src: EndpointId) -> Result<()> {
        // Reposting and credit write-back are non-blocking library calls.
        let guard = self.progress.lock(sim);
        let r = self.inner.release(sim, remote, local, src);
        drop(guard);
        r
    }

    fn bytes_received(&self) -> u64 {
        self.inner.bytes_received()
    }

    fn registered_bytes(&self) -> usize {
        self.inner.registered_bytes()
    }

    fn charge_setup(&self, sim: &SimContext) {
        self.inner.charge_setup(sim);
    }
}

/// A cluster-wide MPI communicator: one rank per node, single logical
/// endpoint pair per rank (the library is process-level), shared progress
/// engine.
pub struct MpiExchange {
    /// `send[node]`.
    pub send: Vec<Option<Arc<dyn SendEndpoint>>>,
    /// `recv[node]`.
    pub recv: Vec<Option<Arc<dyn ReceiveEndpoint>>>,
    /// Per-node transmission groups.
    pub groups: Vec<TransmissionGroups>,
}

impl MpiExchange {
    /// Builds the communicator for the given per-node groups.
    pub fn build(
        runtime: &Arc<VerbsRuntime>,
        groups: Vec<TransmissionGroups>,
        message_size: usize,
        threads: usize,
    ) -> Result<MpiExchange> {
        let nodes = runtime.cluster().nodes();
        assert_eq!(groups.len(), nodes, "one group set per node");
        let profile = runtime.profile();
        let costs = MpiCosts {
            per_message: profile.mpi_per_message,
            rendezvous_rtt: profile.mpi_rendezvous_rtt,
            eager_threshold: profile.mpi_eager_threshold,
            memcpy_bandwidth: profile.memcpy_bandwidth,
        };
        // The library endpoint serves every thread of the process, so its
        // internal pools scale with the thread count.
        let cfg = SrRcConfig {
            message_size,
            buffers_per_peer: 2 * threads.max(1),
            recv_depth_per_peer: 8 * threads.max(1),
            credit_writeback_frequency: 2,
            ..SrRcConfig::default()
        };

        let dests: Vec<Vec<NodeId>> = groups.iter().map(|g| g.destinations()).collect();
        let mut srcs: Vec<Vec<NodeId>> = vec![Vec::new(); nodes];
        for (a, ds) in dests.iter().enumerate() {
            for &b in ds {
                srcs[b].push(a);
            }
        }

        let mut send_eps: Vec<Option<Arc<SrRcSendEndpoint>>> = Vec::new();
        let mut recv_eps: Vec<Option<Arc<SrRcReceiveEndpoint>>> = Vec::new();
        let mut locks: Vec<SimMutex<()>> = Vec::new();
        for node in 0..nodes {
            let ctx = runtime.context(node);
            locks.push(SimMutex::new(
                runtime.kernel(),
                (),
                SimDuration::from_nanos(100),
            ));
            send_eps.push((!dests[node].is_empty()).then(|| {
                Arc::new(SrRcSendEndpoint::new(
                    &ctx,
                    EndpointId(node as u32 * 2),
                    dests[node].clone(),
                    cfg.clone(),
                ))
            }));
            recv_eps.push((!srcs[node].is_empty()).then(|| {
                Arc::new(SrRcReceiveEndpoint::new(
                    &ctx,
                    EndpointId(node as u32 * 2 + 1),
                    srcs[node].clone(),
                    cfg.clone(),
                ))
            }));
        }
        for a in 0..nodes {
            for &b in &dests[a] {
                let s = send_eps[a].as_ref().expect("sender exists");
                let r = recv_eps[b].as_ref().expect("receiver exists");
                let qp_s = s.qp_for(b);
                let qp_r = r.qp_for(a);
                ConnectionManager::activate_untimed(qp_s, Some(qp_r.address_handle()))?;
                ConnectionManager::activate_untimed(qp_r, Some(qp_s.address_handle()))?;
                let credit = r.bootstrap_src(a, s.credit_slot_for(b))?;
                s.bootstrap_credit(b, credit)?;
            }
        }
        Ok(MpiExchange {
            send: send_eps
                .into_iter()
                .enumerate()
                .map(|(node, e)| {
                    e.map(|inner| {
                        Arc::new(MpiSendEndpoint {
                            inner,
                            progress: locks[node].clone(),
                            costs: costs.clone(),
                        }) as Arc<dyn SendEndpoint>
                    })
                })
                .collect(),
            recv: recv_eps
                .into_iter()
                .enumerate()
                .map(|(node, e)| {
                    e.map(|inner| {
                        Arc::new(MpiReceiveEndpoint {
                            inner,
                            progress: locks[node].clone(),
                            costs: costs.clone(),
                        }) as Arc<dyn ReceiveEndpoint>
                    })
                })
                .collect(),
            groups,
        })
    }
}
