//! The IPoIB baseline: TCP/IP sockets over InfiniBand (§5.1: "This
//! reflects the performance from a network upgrade without any changes in
//! software").
//!
//! The transport rides the same fabric, but the kernel network stack taxes
//! it twice:
//!
//! * every byte costs CPU on the sending and the receiving side
//!   (`tcp_cpu_per_byte`; the paper profiles the IPoIB run at ~2/3 of all
//!   cycles inside `send`/`recv`), and
//! * all inbound traffic at a node serializes through a soft-IRQ/interrupt
//!   path whose effective bandwidth (`ipoib_bandwidth`) is well below line
//!   rate.

use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::endpoint::sr_rc::{SrRcConfig, SrRcReceiveEndpoint, SrRcSendEndpoint};
use rshuffle::endpoint::{Delivery, EndpointId, ReceiveEndpoint, SendEndpoint};
use rshuffle::{Buffer, Result, StreamState, TransmissionGroups};
use rshuffle_simnet::{NodeId, Resource, SimContext, SimDuration};
use rshuffle_verbs::{ConnectionManager, VerbsRuntime};

/// Kernel-stack cost constants.
#[derive(Clone)]
struct TcpStack {
    cpu_per_byte: SimDuration,
    /// Per-node soft-IRQ path shared by every inbound stream.
    softirq: Arc<Mutex<Resource>>,
    softirq_bandwidth: f64,
}

/// The sending half of the IPoIB baseline (`send(2)`).
pub struct IpoibSendEndpoint {
    inner: Arc<SrRcSendEndpoint>,
    stack: TcpStack,
}

impl SendEndpoint for IpoibSendEndpoint {
    fn id(&self) -> EndpointId {
        self.inner.id()
    }

    fn send(
        &self,
        sim: &SimContext,
        buf: Buffer,
        dest: &[NodeId],
        state: StreamState,
    ) -> Result<()> {
        // Kernel send path: per-byte CPU for every destination copy.
        let per_dest =
            SimDuration::from_nanos(self.stack.cpu_per_byte.as_nanos() * buf.len().max(1) as u64);
        sim.sleep(per_dest * dest.len() as u64);
        self.inner.send(sim, buf, dest, state)
    }

    fn get_free(&self, sim: &SimContext) -> Result<Buffer> {
        self.inner.get_free(sim)
    }

    fn registered_bytes(&self) -> usize {
        // Sockets pin no RDMA memory; report the socket buffer footprint.
        self.inner.registered_bytes()
    }

    fn charge_setup(&self, sim: &SimContext) {
        // TCP connection setup is three orders of magnitude cheaper than
        // RDMA (§4.2); charge a token cost.
        sim.sleep(SimDuration::from_micros(200));
    }
}

/// The receiving half of the IPoIB baseline (`select(2)` + `recv(2)`).
pub struct IpoibReceiveEndpoint {
    inner: Arc<SrRcReceiveEndpoint>,
    stack: TcpStack,
}

impl ReceiveEndpoint for IpoibReceiveEndpoint {
    fn id(&self) -> EndpointId {
        self.inner.id()
    }

    fn get_data(&self, sim: &SimContext) -> Result<Option<Delivery>> {
        let d = self.inner.get_data(sim)?;
        if let Some(ref delivery) = d {
            let bytes = delivery.local.len().max(1);
            // Soft-IRQ serialization: all inbound bytes of this node share
            // one kernel path capped below line rate.
            let end = {
                let mut softirq = self.stack.softirq.lock();
                softirq
                    .reserve(
                        sim.now(),
                        rshuffle_simnet::resource::transfer_time(
                            bytes,
                            self.stack.softirq_bandwidth,
                        ),
                    )
                    .end
            };
            if end > sim.now() {
                sim.sleep(end - sim.now());
            }
            // recv(2) copies out of kernel buffers.
            sim.sleep(SimDuration::from_nanos(
                self.stack.cpu_per_byte.as_nanos() * bytes as u64,
            ));
        }
        Ok(d)
    }

    fn release(&self, sim: &SimContext, remote: u64, local: Buffer, src: EndpointId) -> Result<()> {
        self.inner.release(sim, remote, local, src)
    }

    fn bytes_received(&self) -> u64 {
        self.inner.bytes_received()
    }

    fn registered_bytes(&self) -> usize {
        self.inner.registered_bytes()
    }

    fn charge_setup(&self, sim: &SimContext) {
        sim.sleep(SimDuration::from_micros(200));
    }
}

/// A cluster-wide IPoIB exchange: one socket pair per node pair, a shared
/// kernel stack per node.
pub struct IpoibExchange {
    /// `send[node]`.
    pub send: Vec<Option<Arc<dyn SendEndpoint>>>,
    /// `recv[node]`.
    pub recv: Vec<Option<Arc<dyn ReceiveEndpoint>>>,
    /// Per-node transmission groups.
    pub groups: Vec<TransmissionGroups>,
}

impl IpoibExchange {
    /// Builds the exchange for the given per-node groups.
    pub fn build(
        runtime: &Arc<VerbsRuntime>,
        groups: Vec<TransmissionGroups>,
        message_size: usize,
        threads: usize,
    ) -> Result<IpoibExchange> {
        let nodes = runtime.cluster().nodes();
        assert_eq!(groups.len(), nodes, "one group set per node");
        let profile = runtime.profile();
        // Socket buffers serve every thread of the process.
        let cfg = SrRcConfig {
            message_size,
            buffers_per_peer: 2 * threads.max(1),
            recv_depth_per_peer: 8 * threads.max(1),
            credit_writeback_frequency: 1,
            ..SrRcConfig::default()
        };

        let dests: Vec<Vec<NodeId>> = groups.iter().map(|g| g.destinations()).collect();
        let mut srcs: Vec<Vec<NodeId>> = vec![Vec::new(); nodes];
        for (a, ds) in dests.iter().enumerate() {
            for &b in ds {
                srcs[b].push(a);
            }
        }

        let stacks: Vec<TcpStack> = (0..nodes)
            .map(|_| TcpStack {
                cpu_per_byte: profile.tcp_cpu_per_byte,
                softirq: Arc::new(Mutex::new(Resource::new())),
                softirq_bandwidth: profile.ipoib_bandwidth,
            })
            .collect();

        let mut send_eps: Vec<Option<Arc<SrRcSendEndpoint>>> = Vec::new();
        let mut recv_eps: Vec<Option<Arc<SrRcReceiveEndpoint>>> = Vec::new();
        for node in 0..nodes {
            let ctx = runtime.context(node);
            send_eps.push((!dests[node].is_empty()).then(|| {
                Arc::new(SrRcSendEndpoint::new(
                    &ctx,
                    EndpointId(node as u32 * 2),
                    dests[node].clone(),
                    cfg.clone(),
                ))
            }));
            recv_eps.push((!srcs[node].is_empty()).then(|| {
                Arc::new(SrRcReceiveEndpoint::new(
                    &ctx,
                    EndpointId(node as u32 * 2 + 1),
                    srcs[node].clone(),
                    cfg.clone(),
                ))
            }));
        }
        for a in 0..nodes {
            for &b in &dests[a] {
                let s = send_eps[a].as_ref().expect("sender exists");
                let r = recv_eps[b].as_ref().expect("receiver exists");
                let qp_s = s.qp_for(b);
                let qp_r = r.qp_for(a);
                ConnectionManager::activate_untimed(qp_s, Some(qp_r.address_handle()))?;
                ConnectionManager::activate_untimed(qp_r, Some(qp_s.address_handle()))?;
                let credit = r.bootstrap_src(a, s.credit_slot_for(b))?;
                s.bootstrap_credit(b, credit)?;
            }
        }
        Ok(IpoibExchange {
            send: send_eps
                .into_iter()
                .enumerate()
                .map(|(node, e)| {
                    e.map(|inner| {
                        Arc::new(IpoibSendEndpoint {
                            inner,
                            stack: stacks[node].clone(),
                        }) as Arc<dyn SendEndpoint>
                    })
                })
                .collect(),
            recv: recv_eps
                .into_iter()
                .enumerate()
                .map(|(node, e)| {
                    e.map(|inner| {
                        Arc::new(IpoibReceiveEndpoint {
                            inner,
                            stack: stacks[node].clone(),
                        }) as Arc<dyn ReceiveEndpoint>
                    })
                })
                .collect(),
            groups,
        })
    }
}
