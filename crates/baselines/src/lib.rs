//! Comparison baselines from the paper's evaluation (§5.1):
//!
//! * [`mpi`] — an MVAPICH-style MPI library: Send/Receive over Reliable
//!   Connection with eager-copy / rendezvous protocols and a per-process
//!   progress engine that serializes all library calls. This is what makes
//!   MPI unable to fully overlap communication and computation in
//!   Figures 13–14.
//! * [`ipoib`] — TCP/IP over InfiniBand: the kernel network stack charges
//!   CPU per byte on both sides and all inbound traffic serializes through
//!   a soft-IRQ path capped well below line rate (the paper profiles ~2/3
//!   of all cycles inside `send`/`recv`).
//! * [`qperf`] — the peak-bandwidth probe: a sender that blasts one
//!   registered buffer and a receiver that reposts receives and never looks
//!   at the data. Defines the dashed reference line of Figure 10.
//!
//! The MPI and IPoIB baselines implement the same
//! [`SendEndpoint`](rshuffle::SendEndpoint) /
//! [`ReceiveEndpoint`](rshuffle::ReceiveEndpoint) traits as the six RDMA
//! designs, so the benchmark harness drives all of them identically.

#![warn(missing_docs)]

pub mod ipoib;
pub mod mpi;
pub mod qperf;

pub use ipoib::IpoibExchange;
pub use mpi::MpiExchange;
pub use qperf::qperf_peak_bandwidth;
