//! Runtime protocol-invariant auditor for the shuffle endpoints.
//!
//! The paper's correctness argument rests on three delicate protocols:
//! absolute-credit flow control (§4.4.1), message-counting termination
//! via `Depleted` counters (§4.4.2), and the FreeArr/ValidArr circular
//! queue state machine (Algorithm 3, §4.4.3). A bug in any of them used
//! to surface only as a wrong byte count or a chaos-test hang. This
//! crate turns each protocol rule into a checkable invariant:
//!
//! * **Credit conservation** — per flow-control lane, the absolute
//!   credit value a receiver announces never regresses, never exceeds
//!   the receives it actually posted, is never overdrawn by the sender,
//!   and (for reliably-written RC credit slots) never lags the posted
//!   count by more than one write-back period — a lost write-back is
//!   caught online even though absolute credit eventually self-heals.
//! * **Buffer lifecycle** — a sender may only send a buffer it took via
//!   GETFREE and may only recycle a buffer it sent; a receiver releases
//!   every delivered buffer exactly once.
//! * **`Depleted` counter consistency** — the counter a sender
//!   announces must equal the number of data messages it actually sent
//!   to that destination, and a receiver must never count more
//!   messages from a source than the source declared.
//! * **Ring state machine** — FreeArr/ValidArr/grant rings never hold
//!   more in-flight entries than their capacity (a producer overwriting
//!   an unconsumed slot would corrupt the queue), and ValidArr entries
//!   are fully drained at clean termination.
//! * **Virtual-time monotonicity** — events observed by the auditor
//!   carry non-decreasing virtual timestamps within an epoch.
//!
//! Every violation is a typed [`AuditViolation`] naming the offending
//! lane/slot/source plus the virtual timestamp, and is simultaneously
//! fed to the PR-1 observability layer as an
//! `EventKind::AuditViolation` recorder event and an
//! [`AUDIT_VIOLATIONS`] metric. Both are created lazily on the first
//! violation, so a healthy run produces byte-identical snapshots and
//! traces with or without an auditor installed.
//!
//! The auditor is cross-side by construction: identities are derived
//! from shared RDMA facts (an MR's `rkey` plus a byte offset), which
//! both the producer and the consumer of a protocol object know
//! independently. Endpoints call hooks through an [`AuditHandle`],
//! which is a no-op (one branch on an `Option`) when no auditor is
//! installed.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_obs::{EventKind, Labels, Obs, HW_TRACK};

/// Metric name for the total number of audit violations `{node}`.
pub const AUDIT_VIOLATIONS: &str = "audit.violations";

/// Upper bound on stored violations per auditor; beyond this they are
/// counted but dropped, so a pathological run cannot exhaust memory.
pub const MAX_VIOLATIONS: usize = 4096;

/// Identifies one credit flow-control lane.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CreditLane {
    /// An RC credit slot: the credit MR's `rkey` plus the byte offset
    /// of the 8-byte slot the receiver RDMA-writes into. Both sides
    /// compute the same key (the sender owns the MR, the receiver holds
    /// its remote descriptor).
    Slot {
        /// Remote key of the credit memory region.
        rkey: u32,
        /// Byte offset of this peer's slot within the region.
        offset: u64,
    },
    /// A UD credit lane: the data-sending endpoint and the node of the
    /// data receiver that grants it credit datagrams.
    Ud {
        /// Endpoint id of the data sender.
        sender: u64,
        /// Node id of the data receiver granting credits.
        dest: u64,
    },
}

impl fmt::Display for CreditLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CreditLane::Slot { rkey, offset } => write!(f, "rc-slot[rkey={rkey},off={offset}]"),
            CreditLane::Ud { sender, dest } => write!(f, "ud[ep={sender}->node={dest}]"),
        }
    }
}

/// Which circular queue a [`RingKey`] refers to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RingKind {
    /// ValidArr: producer announces filled buffers (Alg. 3 / §7).
    ValidArr,
    /// FreeArr: consumer returns drained buffer offsets (§4.4.3).
    FreeArr,
    /// Grant ring: receiver grants writable remote offsets (§7).
    Grant,
}

impl fmt::Display for RingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingKind::ValidArr => f.write_str("ValidArr"),
            RingKind::FreeArr => f.write_str("FreeArr"),
            RingKind::Grant => f.write_str("Grant"),
        }
    }
}

/// Identity of one circular queue, shared by producer and consumer:
/// the ring MR's `rkey` plus the base byte offset of the ring.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct RingKey {
    /// Remote key of the memory region holding the ring slots.
    pub rkey: u32,
    /// Byte offset of slot 0 within the region.
    pub base: u64,
}

impl fmt::Display for RingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rkey={},base={}", self.rkey, self.base)
    }
}

/// Identity of one message buffer: the pool MR's `rkey` plus the byte
/// offset of the buffer window inside it. Unique cluster-wide because
/// `rkey`s are allocated from a global counter.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct BufId {
    /// Remote key of the buffer pool memory region.
    pub rkey: u32,
    /// Byte offset of the buffer within the pool.
    pub offset: u64,
}

impl fmt::Display for BufId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rkey={},off={}", self.rkey, self.offset)
    }
}

/// A named protocol-invariant violation with the offending lane/slot
/// and the virtual timestamp at which it was observed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AuditViolation {
    /// A sender consumed more credits than its receiver ever granted.
    CreditOverdraft {
        /// The flow-control lane.
        lane: CreditLane,
        /// Cumulative messages sent on the lane.
        consumed: u64,
        /// Cumulative credit granted by the receiver.
        granted: u64,
        /// Virtual nanoseconds.
        at_ns: u64,
    },
    /// An absolute credit announcement went backwards (§4.4.1 credits
    /// are cumulative and must be non-decreasing).
    CreditRegression {
        /// The flow-control lane.
        lane: CreditLane,
        /// Previously announced credit.
        previous: u64,
        /// The regressed announcement.
        granted: u64,
        /// Virtual nanoseconds.
        at_ns: u64,
    },
    /// A receiver granted more credit than receives it had posted.
    CreditOverGrant {
        /// The flow-control lane.
        lane: CreditLane,
        /// The announced credit.
        granted: u64,
        /// Receives actually posted.
        posted: u64,
        /// Virtual nanoseconds.
        at_ns: u64,
    },
    /// A reliably-written RC credit slot lags the receives actually
    /// posted by more than one write-back period — a credit write-back
    /// was skipped or lost.
    CreditWritebackLost {
        /// The flow-control lane.
        lane: CreditLane,
        /// Receives posted so far.
        posted: u64,
        /// Last credit announced.
        granted: u64,
        /// Configured write-back frequency.
        frequency: u64,
        /// Virtual nanoseconds.
        at_ns: u64,
    },
    /// A sender posted a buffer it did not hold (send after release /
    /// send without GETFREE).
    UseAfterFree {
        /// The buffer.
        buf: BufId,
        /// Virtual nanoseconds.
        at_ns: u64,
    },
    /// A send buffer was recycled (completion reaped) while not in the
    /// sent state — a duplicate or spurious completion.
    DoubleFree {
        /// The buffer.
        buf: BufId,
        /// Virtual nanoseconds.
        at_ns: u64,
    },
    /// A receiver released a buffer it was not holding.
    DoubleRelease {
        /// The buffer.
        buf: BufId,
        /// Virtual nanoseconds.
        at_ns: u64,
    },
    /// A receiver delivered a buffer that was already delivered and not
    /// yet released.
    DoubleDelivery {
        /// The buffer.
        buf: BufId,
        /// Virtual nanoseconds.
        at_ns: u64,
    },
    /// At clean termination a buffer never completed its lifecycle: a
    /// GETFREE buffer that was never sent, or a delivered buffer that
    /// was never released.
    BufferLeak {
        /// The buffer.
        buf: BufId,
        /// True for a receive-side leak (delivered, never released).
        held: bool,
    },
    /// A ring producer ran ahead of the consumer by more than the ring
    /// capacity — it would overwrite an unconsumed slot.
    RingOverwrite {
        /// The ring.
        ring: RingKey,
        /// The ring kind.
        kind: RingKind,
        /// Entries produced so far.
        produced: u64,
        /// Entries consumed so far.
        consumed: u64,
        /// Ring capacity in slots.
        capacity: u64,
        /// Virtual nanoseconds.
        at_ns: u64,
    },
    /// At clean termination a ValidArr ring still held announced but
    /// unconsumed entries (or consumed more than was produced).
    RingImbalance {
        /// The ring.
        ring: RingKey,
        /// The ring kind.
        kind: RingKind,
        /// Entries produced.
        produced: u64,
        /// Entries consumed.
        consumed: u64,
    },
    /// A receiver counted more data messages from a source than the
    /// source declared in its `Depleted` counter (§4.4.2).
    DepletedOverrun {
        /// Node id of the source.
        src: u64,
        /// Messages counted.
        received: u64,
        /// Messages the source declared.
        expected: u64,
        /// Virtual nanoseconds.
        at_ns: u64,
    },
    /// The `Depleted` counter a sender announced does not match the
    /// data messages it actually sent to that destination, or at clean
    /// termination a receiver's count differs from the declaration.
    DepletedMismatch {
        /// Endpoint or node id of the sender (context-dependent).
        src: u64,
        /// The announced counter.
        declared: u64,
        /// Messages actually sent/received.
        actual: u64,
        /// Virtual nanoseconds (0 when detected at finalize).
        at_ns: u64,
    },
    /// An audited event carried a virtual timestamp earlier than one
    /// already observed in this epoch.
    TimeRegression {
        /// The regressed timestamp.
        at_ns: u64,
        /// The latest timestamp seen before it.
        last_ns: u64,
    },
}

impl AuditViolation {
    /// Stable short code used in error messages and trace `arg`s.
    pub fn code(&self) -> &'static str {
        match self {
            AuditViolation::CreditOverdraft { .. } => "credit_overdraft",
            AuditViolation::CreditRegression { .. } => "credit_regression",
            AuditViolation::CreditOverGrant { .. } => "credit_over_grant",
            AuditViolation::CreditWritebackLost { .. } => "credit_writeback_lost",
            AuditViolation::UseAfterFree { .. } => "use_after_free",
            AuditViolation::DoubleFree { .. } => "double_free",
            AuditViolation::DoubleRelease { .. } => "double_release",
            AuditViolation::DoubleDelivery { .. } => "double_delivery",
            AuditViolation::BufferLeak { .. } => "buffer_leak",
            AuditViolation::RingOverwrite { .. } => "ring_overwrite",
            AuditViolation::RingImbalance { .. } => "ring_imbalance",
            AuditViolation::DepletedOverrun { .. } => "depleted_overrun",
            AuditViolation::DepletedMismatch { .. } => "depleted_mismatch",
            AuditViolation::TimeRegression { .. } => "time_regression",
        }
    }

    /// Numeric code recorded as the `arg` of the
    /// `EventKind::AuditViolation` recorder event.
    pub fn code_id(&self) -> u64 {
        match self {
            AuditViolation::CreditOverdraft { .. } => 1,
            AuditViolation::CreditRegression { .. } => 2,
            AuditViolation::CreditOverGrant { .. } => 3,
            AuditViolation::CreditWritebackLost { .. } => 4,
            AuditViolation::UseAfterFree { .. } => 5,
            AuditViolation::DoubleFree { .. } => 6,
            AuditViolation::DoubleRelease { .. } => 7,
            AuditViolation::DoubleDelivery { .. } => 8,
            AuditViolation::BufferLeak { .. } => 9,
            AuditViolation::RingOverwrite { .. } => 10,
            AuditViolation::RingImbalance { .. } => 11,
            AuditViolation::DepletedOverrun { .. } => 12,
            AuditViolation::DepletedMismatch { .. } => 13,
            AuditViolation::TimeRegression { .. } => 14,
        }
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::CreditOverdraft { lane, consumed, granted, at_ns } => write!(
                f,
                "credit overdraft on {lane}: consumed {consumed} > granted {granted} at {at_ns}ns"
            ),
            AuditViolation::CreditRegression { lane, previous, granted, at_ns } => write!(
                f,
                "credit regression on {lane}: {granted} after {previous} at {at_ns}ns"
            ),
            AuditViolation::CreditOverGrant { lane, granted, posted, at_ns } => write!(
                f,
                "over-grant on {lane}: granted {granted} > posted {posted} at {at_ns}ns"
            ),
            AuditViolation::CreditWritebackLost { lane, posted, granted, frequency, at_ns } => {
                write!(
                    f,
                    "lost credit write-back on {lane}: posted {posted}, granted {granted}, \
                     frequency {frequency} at {at_ns}ns"
                )
            }
            AuditViolation::UseAfterFree { buf, at_ns } => {
                write!(f, "send of unowned buffer {buf} at {at_ns}ns")
            }
            AuditViolation::DoubleFree { buf, at_ns } => {
                write!(f, "recycle of unsent buffer {buf} at {at_ns}ns")
            }
            AuditViolation::DoubleRelease { buf, at_ns } => {
                write!(f, "double release of buffer {buf} at {at_ns}ns")
            }
            AuditViolation::DoubleDelivery { buf, at_ns } => {
                write!(f, "double delivery of buffer {buf} at {at_ns}ns")
            }
            AuditViolation::BufferLeak { buf, held } => write!(
                f,
                "buffer leak at termination: {buf} ({})",
                if *held { "delivered, never released" } else { "taken, never sent" }
            ),
            AuditViolation::RingOverwrite { ring, kind, produced, consumed, capacity, at_ns } => {
                write!(
                    f,
                    "{kind} ring overwrite [{ring}]: produced {produced} − consumed {consumed} \
                     > capacity {capacity} at {at_ns}ns"
                )
            }
            AuditViolation::RingImbalance { ring, kind, produced, consumed } => write!(
                f,
                "{kind} ring imbalance at termination [{ring}]: produced {produced}, \
                 consumed {consumed}"
            ),
            AuditViolation::DepletedOverrun { src, received, expected, at_ns } => write!(
                f,
                "Depleted overrun from node {src}: received {received} > declared {expected} \
                 at {at_ns}ns"
            ),
            AuditViolation::DepletedMismatch { src, declared, actual, at_ns } => write!(
                f,
                "Depleted counter mismatch for source {src}: declared {declared}, \
                 actual {actual} at {at_ns}ns"
            ),
            AuditViolation::TimeRegression { at_ns, last_ns } => {
                write!(f, "virtual time regression: {at_ns}ns after {last_ns}ns")
            }
        }
    }
}

#[derive(Default)]
struct CreditState {
    granted: Option<u64>,
    consumed: u64,
    posted: u64,
    /// Write-back frequency for reliably-written RC slots; `None` for
    /// lanes whose announcements may be legally lost (UD datagrams).
    frequency: Option<u64>,
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum SendBufState {
    Taken,
    Sent,
}

#[derive(Default)]
struct RingState {
    kind: Option<RingKind>,
    capacity: u64,
    produced: u64,
    consumed: u64,
}

#[derive(Default)]
struct DepletedState {
    received: u64,
    expected: Option<u64>,
}

#[derive(Default)]
struct AuditState {
    last_ns: u64,
    time_flagged: bool,
    credits: HashMap<CreditLane, CreditState>,
    send_bufs: HashMap<BufId, SendBufState>,
    recv_held: HashMap<BufId, bool>,
    rings: HashMap<RingKey, RingState>,
    /// Per-destination data-message counts at the sender, keyed by
    /// `(sender endpoint, destination node)`.
    sent_data: HashMap<(u64, u64), u64>,
    /// Per-source receive counts at a receiver, keyed by
    /// `(receiving node, source node)`.
    depleted: HashMap<(u64, u64), DepletedState>,
    violations: Vec<AuditViolation>,
    dropped: u64,
}

/// The shared invariant checker: one per [`VerbsRuntime`], installed via
/// `runtime.enable_audit()` and consulted by every endpoint through an
/// [`AuditHandle`].
///
/// [`VerbsRuntime`]: https://docs.rs/rshuffle-verbs
pub struct ShuffleAuditor {
    state: Mutex<AuditState>,
    obs: Option<Arc<Obs>>,
}

impl ShuffleAuditor {
    /// Creates an auditor that reports violations into `obs` (recorder
    /// event + metric) in addition to storing them.
    pub fn new(obs: Option<Arc<Obs>>) -> Arc<ShuffleAuditor> {
        Arc::new(ShuffleAuditor { state: Mutex::new(AuditState::default()), obs })
    }

    /// Starts a fresh protocol epoch (one shuffle attempt): clears all
    /// per-run lane/buffer/ring state and resets the monotonicity
    /// watermark, keeping accumulated violations. Called by
    /// `Exchange::build` so restarted attempts do not inherit stale
    /// slot state.
    pub fn begin_epoch(&self) {
        let mut st = self.state.lock();
        st.last_ns = 0;
        st.time_flagged = false;
        st.credits.clear();
        st.send_bufs.clear();
        st.recv_held.clear();
        st.rings.clear();
        st.sent_data.clear();
        st.depleted.clear();
    }

    /// All violations recorded so far (across epochs).
    pub fn violations(&self) -> Vec<AuditViolation> {
        self.state.lock().violations.clone()
    }

    /// Number of violations recorded so far, including any dropped
    /// beyond [`MAX_VIOLATIONS`].
    pub fn violation_count(&self) -> u64 {
        let st = self.state.lock();
        st.violations.len() as u64 + st.dropped
    }

    /// True when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violation_count() == 0
    }

    /// Runs end-of-run checks and returns every violation recorded.
    ///
    /// With `clean = true` the run is claimed to have terminated
    /// normally, so lifecycle completeness is also enforced: no buffer
    /// taken-but-never-sent or delivered-but-never-released, ValidArr
    /// rings fully drained, and every known `Depleted` declaration
    /// matched exactly. With `clean = false` (the run ended in a typed
    /// error) only violations already observed online are returned —
    /// an aborted attempt legally leaves state in flight.
    pub fn finalize(&self, clean: bool) -> Vec<AuditViolation> {
        let mut st = self.state.lock();
        if clean {
            let mut found: Vec<AuditViolation> = Vec::new();
            for (&buf, &state) in &st.send_bufs {
                if state == SendBufState::Taken {
                    found.push(AuditViolation::BufferLeak { buf, held: false });
                }
            }
            for (&buf, &held) in &st.recv_held {
                if held {
                    found.push(AuditViolation::BufferLeak { buf, held: true });
                }
            }
            for (&ring, rs) in &st.rings {
                if rs.kind == Some(RingKind::ValidArr) && rs.produced != rs.consumed {
                    found.push(AuditViolation::RingImbalance {
                        ring,
                        kind: RingKind::ValidArr,
                        produced: rs.produced,
                        consumed: rs.consumed,
                    });
                }
            }
            for (&(_, src), ds) in &st.depleted {
                if let Some(expected) = ds.expected {
                    if ds.received != expected {
                        found.push(AuditViolation::DepletedMismatch {
                            src,
                            declared: expected,
                            actual: ds.received,
                            at_ns: 0,
                        });
                    }
                }
            }
            // Deterministic report order regardless of hash iteration.
            found.sort_by_key(|v| (v.code_id(), format!("{v}")));
            let at_ns = st.last_ns;
            for v in found {
                self.record(&mut st, 0, at_ns, v);
            }
        }
        st.violations.clone()
    }

    fn record(&self, st: &mut AuditState, node: u32, at_ns: u64, v: AuditViolation) {
        if let Some(obs) = &self.obs {
            obs.recorder.event(node, HW_TRACK, at_ns, EventKind::AuditViolation, v.code_id());
            obs.metrics.counter(AUDIT_VIOLATIONS, Labels::node(node)).inc();
        }
        if st.violations.len() < MAX_VIOLATIONS {
            st.violations.push(v);
        } else {
            st.dropped += 1;
        }
    }

    fn observe_time(&self, st: &mut AuditState, node: u32, at_ns: u64) {
        if at_ns < st.last_ns {
            if !st.time_flagged {
                st.time_flagged = true;
                let last_ns = st.last_ns;
                self.record(st, node, at_ns, AuditViolation::TimeRegression { at_ns, last_ns });
            }
        } else {
            st.last_ns = at_ns;
        }
    }

    fn credit_lane(&self, lane: CreditLane, frequency: Option<u64>) {
        let mut st = self.state.lock();
        let entry = st.credits.entry(lane).or_default();
        if frequency.is_some() {
            entry.frequency = frequency;
        }
    }

    fn credit_granted(&self, node: u32, lane: CreditLane, granted: u64, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        let entry = st.credits.entry(lane).or_default();
        let previous = entry.granted;
        let posted = entry.posted;
        let tracked = entry.frequency.is_some();
        entry.granted = Some(entry.granted.unwrap_or(0).max(granted));
        if let Some(previous) = previous {
            if granted < previous {
                self.record(
                    &mut st,
                    node,
                    at_ns,
                    AuditViolation::CreditRegression { lane, previous, granted, at_ns },
                );
                return;
            }
        }
        if tracked && granted > posted {
            self.record(
                &mut st,
                node,
                at_ns,
                AuditViolation::CreditOverGrant { lane, granted, posted, at_ns },
            );
        }
    }

    fn receives_posted(&self, node: u32, lane: CreditLane, n: u64, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        let entry = st.credits.entry(lane).or_default();
        entry.posted += n;
        let posted = entry.posted;
        let granted = entry.granted;
        let frequency = entry.frequency;
        if let (Some(frequency), Some(granted)) = (frequency, granted) {
            if posted - granted > frequency {
                self.record(
                    &mut st,
                    node,
                    at_ns,
                    AuditViolation::CreditWritebackLost { lane, posted, granted, frequency, at_ns },
                );
            }
        }
    }

    fn credit_lane_closed(&self, node: u32, lane: CreditLane, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        let entry = st.credits.entry(lane).or_default();
        let Some(frequency) = entry.frequency else {
            return;
        };
        let posted = entry.posted;
        let granted = entry.granted.unwrap_or(0);
        // A release that lands on a write-back boundary announces the
        // grant in the same atomic step as the audited post, so at any
        // quiescent point the un-announced backlog is strictly below one
        // period. At lane close the receiver stops recycling, which ends
        // online gap checking — a backlog of a full period here means a
        // boundary passed without its write-back ever being announced.
        if posted.saturating_sub(granted) >= frequency {
            self.record(
                &mut st,
                node,
                at_ns,
                AuditViolation::CreditWritebackLost { lane, posted, granted, frequency, at_ns },
            );
        }
    }

    fn credit_consumed(&self, node: u32, lane: CreditLane, consumed: u64, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        let entry = st.credits.entry(lane).or_default();
        entry.consumed = entry.consumed.max(consumed);
        if let Some(granted) = entry.granted {
            if consumed > granted {
                self.record(
                    &mut st,
                    node,
                    at_ns,
                    AuditViolation::CreditOverdraft { lane, consumed, granted, at_ns },
                );
            }
        }
    }

    fn buffer_taken(&self, node: u32, buf: BufId, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        st.send_bufs.insert(buf, SendBufState::Taken);
    }

    fn buffer_sent(&self, node: u32, buf: BufId, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        match st.send_bufs.insert(buf, SendBufState::Sent) {
            Some(SendBufState::Taken) => {}
            _ => self.record(&mut st, node, at_ns, AuditViolation::UseAfterFree { buf, at_ns }),
        }
    }

    fn buffer_recycled(&self, node: u32, buf: BufId, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        match st.send_bufs.remove(&buf) {
            Some(SendBufState::Sent) => {}
            _ => self.record(&mut st, node, at_ns, AuditViolation::DoubleFree { buf, at_ns }),
        }
    }

    fn delivered(&self, node: u32, buf: BufId, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        if st.recv_held.insert(buf, true) == Some(true) {
            self.record(&mut st, node, at_ns, AuditViolation::DoubleDelivery { buf, at_ns });
        }
    }

    fn released(&self, node: u32, buf: BufId, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        if st.recv_held.insert(buf, false) != Some(true) {
            self.record(&mut st, node, at_ns, AuditViolation::DoubleRelease { buf, at_ns });
        }
    }

    fn ring(&self, ring: RingKey, kind: RingKind, capacity: u64) {
        let mut st = self.state.lock();
        let entry = st.rings.entry(ring).or_default();
        entry.kind = Some(kind);
        entry.capacity = entry.capacity.max(capacity);
    }

    fn ring_produced(&self, node: u32, ring: RingKey, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        let entry = st.rings.entry(ring).or_default();
        entry.produced += 1;
        let (produced, consumed, capacity) = (entry.produced, entry.consumed, entry.capacity);
        let kind = entry.kind.unwrap_or(RingKind::ValidArr);
        if capacity > 0 && produced - consumed.min(produced) > capacity {
            self.record(
                &mut st,
                node,
                at_ns,
                AuditViolation::RingOverwrite { ring, kind, produced, consumed, capacity, at_ns },
            );
        }
    }

    fn ring_consumed(&self, node: u32, ring: RingKey, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        st.rings.entry(ring).or_default().consumed += 1;
    }

    fn data_sent(&self, node: u32, sender: u64, dest: u64, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        *st.sent_data.entry((sender, dest)).or_default() += 1;
    }

    fn depleted_announced(&self, node: u32, sender: u64, dest: u64, declared: u64, at_ns: u64) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        let actual = st.sent_data.get(&(sender, dest)).copied().unwrap_or(0);
        if declared != actual {
            self.record(
                &mut st,
                node,
                at_ns,
                AuditViolation::DepletedMismatch { src: sender, declared, actual, at_ns },
            );
        }
    }

    fn counted_receive(
        &self,
        node: u32,
        src: u64,
        received: u64,
        expected: Option<u64>,
        at_ns: u64,
    ) {
        let mut st = self.state.lock();
        self.observe_time(&mut st, node, at_ns);
        let entry = st.depleted.entry((node as u64, src)).or_default();
        entry.received = entry.received.max(received);
        if let Some(expected) = expected {
            entry.expected = Some(expected);
        }
        let received = entry.received;
        if let Some(expected) = entry.expected {
            if received > expected {
                self.record(
                    &mut st,
                    node,
                    at_ns,
                    AuditViolation::DepletedOverrun { src, received, expected, at_ns },
                );
            }
        }
    }
}

/// Per-endpoint handle through which protocol hooks reach the shared
/// [`ShuffleAuditor`]. When no auditor is installed every hook is a
/// single branch on an `Option` — cheap enough to leave compiled in.
#[derive(Clone, Default)]
pub struct AuditHandle {
    auditor: Option<Arc<ShuffleAuditor>>,
    node: u32,
}

impl AuditHandle {
    /// A handle for the endpoint of `node`, auditing into `auditor`
    /// when one is installed.
    pub fn new(auditor: Option<Arc<ShuffleAuditor>>, node: u32) -> AuditHandle {
        AuditHandle { auditor, node }
    }

    /// A permanently disabled handle.
    pub fn disabled() -> AuditHandle {
        AuditHandle::default()
    }

    /// Whether an auditor is attached.
    pub fn enabled(&self) -> bool {
        self.auditor.is_some()
    }

    /// Registers a credit lane; `frequency` is the write-back period
    /// for reliably-written RC slots and `None` for lossy (UD) lanes.
    #[inline]
    pub fn credit_lane(&self, lane: CreditLane, frequency: Option<u64>) {
        if let Some(a) = &self.auditor {
            a.credit_lane(lane, frequency);
        }
    }

    /// The receiver announced an absolute credit value on `lane`.
    #[inline]
    pub fn credit_granted(&self, lane: CreditLane, granted: u64, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.credit_granted(self.node, lane, granted, at_ns);
        }
    }

    /// The receiver posted `n` more receives backing `lane`.
    #[inline]
    pub fn receives_posted(&self, lane: CreditLane, n: u64, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.receives_posted(self.node, lane, n, at_ns);
        }
    }

    /// The source behind `lane` announced end-of-stream: no further
    /// receives will be posted or credit announced, so the lane's last
    /// reached write-back boundary must already have been granted.
    #[inline]
    pub fn credit_lane_closed(&self, lane: CreditLane, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.credit_lane_closed(self.node, lane, at_ns);
        }
    }

    /// The sender's cumulative message count on `lane` reached
    /// `consumed`.
    #[inline]
    pub fn credit_consumed(&self, lane: CreditLane, consumed: u64, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.credit_consumed(self.node, lane, consumed, at_ns);
        }
    }

    /// A sender took `buf` via GETFREE.
    #[inline]
    pub fn buffer_taken(&self, buf: BufId, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.buffer_taken(self.node, buf, at_ns);
        }
    }

    /// A sender posted `buf` to the fabric.
    #[inline]
    pub fn buffer_sent(&self, buf: BufId, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.buffer_sent(self.node, buf, at_ns);
        }
    }

    /// A sender reaped the completion for `buf`, returning it to the
    /// free pool.
    #[inline]
    pub fn buffer_recycled(&self, buf: BufId, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.buffer_recycled(self.node, buf, at_ns);
        }
    }

    /// A receiver handed `buf` to the operator.
    #[inline]
    pub fn delivered(&self, buf: BufId, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.delivered(self.node, buf, at_ns);
        }
    }

    /// A receiver released `buf` back to the transport.
    #[inline]
    pub fn released(&self, buf: BufId, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.released(self.node, buf, at_ns);
        }
    }

    /// Registers a circular queue of `capacity` slots.
    #[inline]
    pub fn ring(&self, ring: RingKey, kind: RingKind, capacity: u64) {
        if let Some(a) = &self.auditor {
            a.ring(ring, kind, capacity);
        }
    }

    /// The producer announced one entry into `ring`.
    #[inline]
    pub fn ring_produced(&self, ring: RingKey, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.ring_produced(self.node, ring, at_ns);
        }
    }

    /// The consumer drained one entry from `ring`.
    #[inline]
    pub fn ring_consumed(&self, ring: RingKey, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.ring_consumed(self.node, ring, at_ns);
        }
    }

    /// A sender endpoint `sender` posted one data message to node
    /// `dest` on a message-counting (UD) design.
    #[inline]
    pub fn data_sent(&self, sender: u64, dest: u64, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.data_sent(self.node, sender, dest, at_ns);
        }
    }

    /// A sender announced its `Depleted` counter `declared` to `dest`.
    #[inline]
    pub fn depleted_announced(&self, sender: u64, dest: u64, declared: u64, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.depleted_announced(self.node, sender, dest, declared, at_ns);
        }
    }

    /// A receiver's per-source message count advanced (`expected` set
    /// once the source's `Depleted` declaration arrives).
    #[inline]
    pub fn counted_receive(&self, src: u64, received: u64, expected: Option<u64>, at_ns: u64) {
        if let Some(a) = &self.auditor {
            a.counted_receive(self.node, src, received, expected, at_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane() -> CreditLane {
        CreditLane::Slot { rkey: 7, offset: 8 }
    }

    fn auditor() -> (Arc<ShuffleAuditor>, AuditHandle) {
        let a = ShuffleAuditor::new(None);
        let h = AuditHandle::new(Some(a.clone()), 0);
        (a, h)
    }

    #[test]
    fn clean_credit_protocol_passes() {
        let (a, h) = auditor();
        h.credit_lane(lane(), Some(4));
        h.receives_posted(lane(), 8, 0);
        h.credit_granted(lane(), 8, 0);
        for sent in 1..=8 {
            h.credit_consumed(lane(), sent, sent * 10);
        }
        for _ in 0..4 {
            h.receives_posted(lane(), 1, 90);
        }
        h.credit_granted(lane(), 12, 100);
        assert!(a.is_clean(), "{:?}", a.violations());
        assert!(a.finalize(true).is_empty());
    }

    #[test]
    fn overdraft_regression_overgrant_are_caught() {
        let (a, h) = auditor();
        h.credit_lane(lane(), Some(4));
        h.receives_posted(lane(), 4, 0);
        h.credit_granted(lane(), 4, 0);
        h.credit_consumed(lane(), 5, 10);
        h.credit_granted(lane(), 3, 20);
        h.credit_granted(lane(), 9, 30);
        let codes: Vec<_> = a.violations().iter().map(|v| v.code()).collect();
        assert!(codes.contains(&"credit_overdraft"), "{codes:?}");
        assert!(codes.contains(&"credit_regression"), "{codes:?}");
        assert!(codes.contains(&"credit_over_grant"), "{codes:?}");
    }

    #[test]
    fn skipped_writeback_is_caught_online() {
        let (a, h) = auditor();
        h.credit_lane(lane(), Some(2));
        h.receives_posted(lane(), 2, 0);
        h.credit_granted(lane(), 2, 0);
        // Two releases re-post receives; the write-back that should have
        // announced credit 4 is "lost". The next re-post exceeds the
        // period and must fire.
        h.receives_posted(lane(), 1, 10);
        h.receives_posted(lane(), 1, 20);
        assert!(a.is_clean());
        h.receives_posted(lane(), 1, 30);
        assert_eq!(a.violations()[0].code(), "credit_writeback_lost");
    }

    #[test]
    fn skipped_writeback_is_caught_at_lane_close() {
        let (a, h) = auditor();
        h.credit_lane(lane(), Some(2));
        h.receives_posted(lane(), 2, 0);
        h.credit_granted(lane(), 2, 0);
        // The releases reach the write-back boundary (posted 4) but the
        // announcement is "lost", and the stream ends before the online
        // gap check could see a third un-granted re-post.
        h.receives_posted(lane(), 1, 10);
        h.receives_posted(lane(), 1, 20);
        assert!(a.is_clean());
        h.credit_lane_closed(lane(), 30);
        assert_eq!(a.violations()[0].code(), "credit_writeback_lost");
    }

    #[test]
    fn clean_lane_close_with_partial_period_is_clean() {
        let (a, h) = auditor();
        h.credit_lane(lane(), Some(2));
        h.receives_posted(lane(), 2, 0);
        h.credit_granted(lane(), 2, 0);
        h.receives_posted(lane(), 1, 10);
        h.receives_posted(lane(), 1, 20);
        h.credit_granted(lane(), 4, 20);
        // One release into the next period when the source depletes:
        // below the boundary, so nothing was owed.
        h.receives_posted(lane(), 1, 30);
        h.credit_lane_closed(lane(), 40);
        assert!(a.is_clean(), "{:?}", a.violations());
    }

    #[test]
    fn buffer_lifecycle_violations() {
        let (a, h) = auditor();
        let b = BufId { rkey: 1, offset: 64 };
        h.buffer_taken(b, 0);
        h.buffer_sent(b, 1);
        h.buffer_recycled(b, 2);
        assert!(a.is_clean());
        h.buffer_sent(b, 3); // never re-taken
        h.buffer_recycled(b, 4);
        h.buffer_recycled(b, 5); // double free
        let codes: Vec<_> = a.violations().iter().map(|v| v.code()).collect();
        assert_eq!(codes, vec!["use_after_free", "double_free"]);
    }

    #[test]
    fn release_state_machine() {
        let (a, h) = auditor();
        let b = BufId { rkey: 2, offset: 0 };
        h.delivered(b, 0);
        h.released(b, 1);
        h.delivered(b, 2);
        h.delivered(b, 3); // double delivery
        h.released(b, 4);
        h.released(b, 5); // double release
        let codes: Vec<_> = a.violations().iter().map(|v| v.code()).collect();
        assert_eq!(codes, vec!["double_delivery", "double_release"]);
    }

    #[test]
    fn ring_overwrite_and_imbalance() {
        let (a, h) = auditor();
        let r = RingKey { rkey: 3, base: 0 };
        h.ring(r, RingKind::ValidArr, 2);
        h.ring_produced(r, 0);
        h.ring_produced(r, 1);
        h.ring_consumed(r, 2);
        h.ring_produced(r, 3);
        assert!(a.is_clean());
        h.ring_produced(r, 4); // 3 in flight > capacity 2
        assert_eq!(a.violations()[0].code(), "ring_overwrite");
        let finals = a.finalize(true);
        assert!(finals.iter().any(|v| v.code() == "ring_imbalance"), "{finals:?}");
    }

    #[test]
    fn depleted_counting() {
        let (a, h) = auditor();
        h.data_sent(4, 1, 0);
        h.data_sent(4, 1, 1);
        h.depleted_announced(4, 1, 2, 2);
        h.counted_receive(0, 1, None, 3);
        h.counted_receive(0, 2, Some(2), 4);
        assert!(a.is_clean(), "{:?}", a.violations());
        h.counted_receive(0, 3, None, 5);
        assert_eq!(a.violations()[0].code(), "depleted_overrun");
        let (a2, h2) = auditor();
        h2.data_sent(4, 1, 0);
        h2.depleted_announced(4, 1, 0, 1);
        assert_eq!(a2.violations()[0].code(), "depleted_mismatch");
    }

    #[test]
    fn epoch_reset_clears_lanes_but_keeps_violations() {
        let (a, h) = auditor();
        h.credit_lane(lane(), Some(1));
        h.receives_posted(lane(), 1, 0);
        h.credit_granted(lane(), 3, 0); // over-grant
        assert_eq!(a.violation_count(), 1);
        a.begin_epoch();
        h.credit_lane(lane(), Some(1));
        h.receives_posted(lane(), 1, 0);
        h.credit_granted(lane(), 1, 0);
        assert_eq!(a.violation_count(), 1, "old lane state must not leak");
    }

    #[test]
    fn time_regression_flagged_once_per_epoch() {
        let (a, h) = auditor();
        h.buffer_taken(BufId { rkey: 1, offset: 0 }, 100);
        h.buffer_sent(BufId { rkey: 1, offset: 0 }, 50);
        h.buffer_recycled(BufId { rkey: 1, offset: 0 }, 40);
        let codes: Vec<_> = a.violations().iter().map(|v| v.code()).collect();
        assert_eq!(codes.iter().filter(|c| **c == "time_regression").count(), 1);
    }
}
