//! `chrome://tracing` / Perfetto export of the flight recorder.
//!
//! Produces the JSON *array* flavour of the Trace Event Format: a list
//! of objects with `name`, `ph`, `ts`, `pid`, `tid` (and `dur` for
//! complete spans). Timestamps are microseconds; virtual nanoseconds are
//! divided by 1000 with fractional precision preserved, so event order
//! survives the unit change. Output is deterministic: tracks are walked
//! in `(node, tid)` order and records in recording order.

use serde::Value;

use crate::recorder::{FlightRecorder, Record};

fn micros(ns: u64) -> Value {
    // Exactly representable for any plausible virtual time (f64 holds
    // integers up to 2^53 exactly; ns/1000.0 only adds thousandths).
    Value::Float(ns as f64 / 1000.0)
}

/// Builds the Chrome trace document for everything currently recorded.
///
/// Per track a `thread_name` metadata record is emitted (and a
/// `process_name` per node), then each [`Record`]: spans become `"X"`
/// complete events with a `dur`, instants become `"i"` thread-scoped
/// events carrying their argument under `args.arg`.
pub fn chrome_trace(recorder: &FlightRecorder) -> Value {
    let mut out: Vec<Value> = Vec::new();
    let mut last_node = None;
    for (node, tid, name, records, dropped) in recorder.dump() {
        if last_node != Some(node) {
            last_node = Some(node);
            out.push(Value::Object(vec![
                ("name".into(), Value::Str("process_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("ts".into(), Value::UInt(0)),
                ("pid".into(), Value::UInt(node as u64)),
                ("tid".into(), Value::UInt(0)),
                (
                    "args".into(),
                    Value::Object(vec![(
                        "name".into(),
                        Value::Str(format!("node{node}")),
                    )]),
                ),
            ]));
        }
        let track_name = if name.is_empty() {
            if tid == crate::recorder::HW_TRACK {
                "hw".to_string()
            } else {
                format!("track{tid}")
            }
        } else {
            name
        };
        out.push(Value::Object(vec![
            ("name".into(), Value::Str("thread_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("ts".into(), Value::UInt(0)),
            ("pid".into(), Value::UInt(node as u64)),
            ("tid".into(), Value::UInt(tid as u64)),
            (
                "args".into(),
                Value::Object(vec![("name".into(), Value::Str(track_name))]),
            ),
        ]));
        for rec in records {
            out.push(match rec {
                Record::Instant { at_ns, kind, arg } => Value::Object(vec![
                    ("name".into(), Value::Str(kind.name().into())),
                    ("ph".into(), Value::Str("i".into())),
                    ("ts".into(), micros(at_ns)),
                    ("pid".into(), Value::UInt(node as u64)),
                    ("tid".into(), Value::UInt(tid as u64)),
                    ("s".into(), Value::Str("t".into())),
                    (
                        "args".into(),
                        Value::Object(vec![("arg".into(), Value::UInt(arg))]),
                    ),
                ]),
                Record::Span {
                    name,
                    start_ns,
                    end_ns,
                } => Value::Object(vec![
                    ("name".into(), Value::Str(name)),
                    ("ph".into(), Value::Str("X".into())),
                    ("ts".into(), micros(start_ns)),
                    ("dur".into(), micros(end_ns - start_ns)),
                    ("pid".into(), Value::UInt(node as u64)),
                    ("tid".into(), Value::UInt(tid as u64)),
                ]),
            });
        }
        if dropped > 0 {
            out.push(Value::Object(vec![
                ("name".into(), Value::Str("ring_dropped".into())),
                ("ph".into(), Value::Str("i".into())),
                ("ts".into(), Value::UInt(0)),
                ("pid".into(), Value::UInt(node as u64)),
                ("tid".into(), Value::UInt(tid as u64)),
                ("s".into(), Value::Str("t".into())),
                (
                    "args".into(),
                    Value::Object(vec![("arg".into(), Value::UInt(dropped))]),
                ),
            ]));
        }
    }
    Value::Array(out)
}

/// [`chrome_trace`] rendered as a compact JSON string, ready to be
/// written to a `trace.json` and loaded in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn chrome_trace_string(recorder: &FlightRecorder) -> String {
    serde_json::to_string(&chrome_trace(recorder)).expect("trace serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::EventKind;

    #[test]
    fn trace_has_required_fields_and_is_deterministic() {
        let rec = FlightRecorder::new(16);
        rec.name_track(0, 1, "worker");
        rec.event(0, 1, 1500, EventKind::SendPosted, 4096);
        rec.span(0, 1, "credit_stall", 2000, 5000);
        let v = chrome_trace(&rec);
        let Value::Array(events) = &v else {
            panic!("trace must be a JSON array")
        };
        // process_name + thread_name + instant + span.
        assert_eq!(events.len(), 4);
        for ev in events {
            let Value::Object(fields) = ev else {
                panic!("each event must be an object")
            };
            for required in ["name", "ph", "ts", "pid", "tid"] {
                assert!(
                    fields.iter().any(|(k, _)| k == required),
                    "missing field {required}"
                );
            }
        }
        assert_eq!(chrome_trace_string(&rec), chrome_trace_string(&rec));
        let s = chrome_trace_string(&rec);
        assert!(s.contains("\"send_posted\""));
        assert!(s.contains("\"credit_stall\""));
        assert!(s.contains("\"dur\":3"));
        assert!(s.contains("\"ts\":1.5"));
    }

    #[test]
    fn unnamed_tracks_get_fallback_names() {
        let rec = FlightRecorder::new(4);
        rec.event(2, 0, 0, EventKind::QpCacheMiss, 1);
        rec.event(2, 3, 0, EventKind::RnrRetry, 1);
        let s = chrome_trace_string(&rec);
        assert!(s.contains("\"hw\""));
        assert!(s.contains("\"track3\""));
        assert!(s.contains("\"node2\""));
    }
}
