//! Lock-cheap metrics registry: atomic counters and fixed-bucket
//! histograms keyed by `node/lane/endpoint` labels.
//!
//! Hot paths hold an `Arc<Counter>` / `Arc<Histogram>` handle obtained
//! once from the [`MetricsRegistry`]; recording is then a single atomic
//! RMW with no lock. The registry itself is only locked when a handle is
//! first created or when a [`Snapshot`] is taken.
//!
//! Snapshots are deterministic: metrics are emitted in lexicographic
//! `(name, labels)` order, so two runs that perform the same recordings
//! produce byte-identical JSON.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Serialize, Value};

/// Sentinel meaning "this label dimension is not set".
pub const NO_LABEL: u32 = u32::MAX;

/// Label set identifying one metric series: which node, which lane
/// (destination / channel index) and which endpoint the sample belongs
/// to. Unset dimensions use [`NO_LABEL`] and are omitted from rendered
/// keys.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Labels {
    /// Node (simulated machine) the sample was taken on.
    pub node: u32,
    /// Lane: destination index / channel within the shuffle.
    pub lane: u32,
    /// Endpoint identifier (matches `EndpointId` in the core crate).
    pub endpoint: u32,
    /// Query (tenant) the sample is attributed to — set by the multi-query
    /// scheduler; [`NO_LABEL`] for single-query runs, so every series key
    /// that existed before the scheduler landed renders unchanged.
    pub query: u32,
}

impl Labels {
    /// No labels at all: a process-global series.
    pub const GLOBAL: Labels = Labels {
        node: NO_LABEL,
        lane: NO_LABEL,
        endpoint: NO_LABEL,
        query: NO_LABEL,
    };

    /// A per-node series.
    pub fn node(node: u32) -> Labels {
        Labels {
            node,
            ..Labels::GLOBAL
        }
    }

    /// A per-node, per-lane series.
    pub fn lane(node: u32, lane: u32) -> Labels {
        Labels {
            node,
            lane,
            ..Labels::GLOBAL
        }
    }

    /// A per-node, per-endpoint series.
    pub fn endpoint(node: u32, endpoint: u32) -> Labels {
        Labels {
            node,
            endpoint,
            ..Labels::GLOBAL
        }
    }

    /// A per-query (tenant) series.
    pub fn query(query: u32) -> Labels {
        Labels {
            query,
            ..Labels::GLOBAL
        }
    }

    /// This label set additionally attributed to `query`.
    pub fn with_query(self, query: u32) -> Labels {
        Labels { query, ..self }
    }

    /// Renders the label suffix, e.g. `{node=2,lane=0}`. Empty string
    /// when no dimension is set.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        if self.node != NO_LABEL {
            parts.push(format!("node={}", self.node));
        }
        if self.lane != NO_LABEL {
            parts.push(format!("lane={}", self.lane));
        }
        if self.endpoint != NO_LABEL {
            parts.push(format!("endpoint={}", self.endpoint));
        }
        if self.query != NO_LABEL {
            parts.push(format!("query={}", self.query));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power-of-two octave (log-linear bucketing, the
/// HdrHistogram layout): every recorded value keeps its top
/// `SUB_BUCKET_BITS + 1` significant bits, bounding the quantization
/// error of any percentile estimate to `1/SUB_BUCKETS` (6.25%) before
/// in-bucket interpolation.
pub const SUB_BUCKET_BITS: usize = 4;
/// `2^SUB_BUCKET_BITS`.
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Number of histogram buckets. Values below [`SUB_BUCKETS`] get one
/// exact bucket each (bucket 0 holds exact zeros); every octave
/// `[2^o, 2^(o+1))` for `o in SUB_BUCKET_BITS..64` is split into
/// [`SUB_BUCKETS`] linear sub-buckets. The top octave's upper edge is
/// open so `u64::MAX` lands in the last bucket.
pub const HISTOGRAM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BUCKET_BITS) * SUB_BUCKETS;

/// Index of the bucket a value falls into. Total function over `u64`,
/// monotone, and exact for every value with at most
/// `SUB_BUCKET_BITS + 1` significant bits (`bucket_lower_bound`
/// round-trips it).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as usize;
    let sub = ((value >> (octave - SUB_BUCKET_BITS)) as usize) & (SUB_BUCKETS - 1);
    SUB_BUCKETS + (octave - SUB_BUCKET_BITS) * SUB_BUCKETS + sub
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let octave = SUB_BUCKET_BITS + (i - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = ((i - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    ((SUB_BUCKETS as u64) + sub) << (octave - SUB_BUCKET_BITS)
}

/// Inclusive upper bound of bucket `i` (the last bucket's edge is open,
/// so it reports `u64::MAX`).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 < HISTOGRAM_BUCKETS {
        bucket_lower_bound(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// A fixed-size log-linear histogram. Recording is a handful of relaxed
/// atomic operations; no lock, no allocation, independent of the value
/// distribution — safe on the per-message hot path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Wrapping on purpose: the sum is diagnostic, not load-bearing.
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshot of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of a [`Histogram`]. Only non-empty buckets are
/// kept, as `(inclusive lower bound, count)` pairs in ascending order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets: `(inclusive lower bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Value at quantile `q` in `[0, 1]`, by rank-walk over the buckets
    /// with linear interpolation inside the target bucket. The result is
    /// clamped to the observed `[min, max]`, monotone in `q`, and exact
    /// whenever the target bucket holds a single distinct value. Returns
    /// 0 on an empty snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lb, n) in &self.buckets {
            if seen + n >= rank {
                let lo = lb.max(self.min);
                let hi = bucket_upper_bound(bucket_index(lb)).min(self.max);
                if hi <= lo || n == 1 {
                    return lo;
                }
                // Spread the bucket's n samples evenly over [lo, hi];
                // the target rank is sample `pos` (0-based) of those.
                let pos = (rank - seen - 1) as u128;
                let est = lo + ((hi - lo) as u128 * pos / (n - 1) as u128) as u64;
                return est.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Folds `other` into `self`: bucket-wise union, counts add, sum
    /// wraps, min/max widen. Merging is associative and commutative, so
    /// per-node snapshots can be combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut buckets: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(lb, n) in &other.buckets {
            *buckets.entry(lb).or_insert(0) += n;
        }
        self.buckets = buckets.into_iter().collect();
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Compact percentile summary for reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.mean(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            p999: self.p999(),
        }
    }

    /// The distribution recorded since `earlier` (bucket-wise and
    /// scalar-wise difference; min/max are taken from `self` since the
    /// true interval extrema are not recoverable).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for (lb, n) in &earlier.buckets {
            let e = buckets.entry(*lb).or_insert(0);
            *e = e.saturating_sub(*n);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets: buckets.into_iter().filter(|&(_, n)| n > 0).collect(),
        }
    }
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("sum".to_string(), Value::UInt(self.sum)),
            ("min".to_string(), Value::UInt(self.min)),
            ("max".to_string(), Value::UInt(self.max)),
            (
                "buckets".to_string(),
                Value::Array(
                    self.buckets
                        .iter()
                        .map(|&(lb, n)| Value::Array(vec![Value::UInt(lb), Value::UInt(n)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Percentile digest of one histogram series, as written into bench
/// reports and the `perfdiff` baseline.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct HistogramSummary {
    /// Total observations.
    pub count: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Mean of the recorded values.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

enum Metric {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
}

/// Dense handle to an interned counter series. Obtained once via
/// [`MetricsRegistry::counter_id`]; recording through the id does no
/// string hashing or allocation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// Dense handle to an interned histogram series. Obtained once via
/// [`MetricsRegistry::histogram_id`]; recording through the id does no
/// string hashing or allocation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct HistogramId(u32);

/// Registry of named metric series. Handle creation and snapshots take
/// a lock; recording through the returned handles does not.
///
/// Series can additionally be *interned* to dense integer ids
/// ([`CounterId`] / [`HistogramId`]): the name→handle resolution is paid
/// once at registration, and [`add`](Self::add) /
/// [`record`](Self::record) are then a slab index under a read lock —
/// no string hashing, comparison, or allocation per sample.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<(&'static str, Labels), Metric>>,
    counter_ids: Mutex<BTreeMap<(&'static str, Labels), CounterId>>,
    histogram_ids: Mutex<BTreeMap<(&'static str, Labels), HistogramId>>,
    counter_slab: RwLock<Vec<Arc<Counter>>>,
    histogram_slab: RwLock<Vec<Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns (creating if needed) the counter for `(name, labels)`.
    ///
    /// Panics if the series already exists as a histogram.
    pub fn counter(&self, name: &'static str, labels: Labels) -> Arc<Counter> {
        let mut m = self.metrics.lock();
        match m
            .entry((name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            Metric::Histogram(_) => panic!("metric {name} already registered as a histogram"),
        }
    }

    /// Returns (creating if needed) the histogram for `(name, labels)`.
    ///
    /// Panics if the series already exists as a counter.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Arc<Histogram> {
        let mut m = self.metrics.lock();
        match m
            .entry((name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            Metric::Counter(_) => panic!("metric {name} already registered as a counter"),
        }
    }

    /// Interns the counter `(name, labels)` to a dense id. Idempotent:
    /// the same series always yields the same id. The id stays valid for
    /// the registry's lifetime and aliases the [`counter`](Self::counter)
    /// handle for the same series.
    pub fn counter_id(&self, name: &'static str, labels: Labels) -> CounterId {
        let mut ids = self.counter_ids.lock();
        if let Some(&id) = ids.get(&(name, labels)) {
            return id;
        }
        let handle = self.counter(name, labels);
        let mut slab = self.counter_slab.write();
        let id = CounterId(slab.len() as u32);
        slab.push(handle);
        ids.insert((name, labels), id);
        id
    }

    /// Interns the histogram `(name, labels)` to a dense id. Idempotent;
    /// aliases the [`histogram`](Self::histogram) handle for the series.
    pub fn histogram_id(&self, name: &'static str, labels: Labels) -> HistogramId {
        let mut ids = self.histogram_ids.lock();
        if let Some(&id) = ids.get(&(name, labels)) {
            return id;
        }
        let handle = self.histogram(name, labels);
        let mut slab = self.histogram_slab.write();
        let id = HistogramId(slab.len() as u32);
        slab.push(handle);
        ids.insert((name, labels), id);
        id
    }

    /// Adds `n` to an interned counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.counter_slab.read()[id.0 as usize].add(n);
    }

    /// Records one observation into an interned histogram.
    #[inline]
    pub fn record(&self, id: HistogramId, value: u64) {
        self.histogram_slab.read()[id.0 as usize].record(value);
    }

    /// Current value of a counter series (0 if it does not exist).
    pub fn counter_value(&self, name: &'static str, labels: Labels) -> u64 {
        match self.metrics.lock().get(&(name, labels)) {
            Some(Metric::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Sum of a counter's value across every label combination it was
    /// recorded under (e.g. total bytes over all lanes).
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.metrics
            .lock()
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => c.get(),
                Metric::Histogram(_) => 0,
            })
            .sum()
    }

    /// Merged distribution of a histogram across every label
    /// combination it was recorded under (empty snapshot if none).
    pub fn histogram_merged(&self, name: &'static str) -> HistogramSnapshot {
        let m = self.metrics.lock();
        let mut out = HistogramSnapshot::empty();
        for ((n, _), metric) in m.iter() {
            if *n == name {
                if let Metric::Histogram(h) = metric {
                    out.merge(&h.snapshot());
                }
            }
        }
        out
    }

    /// Takes a deterministic point-in-time snapshot of every series.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock();
        let mut counters = Vec::new();
        let mut histograms = Vec::new();
        for ((name, labels), metric) in m.iter() {
            let key = format!("{name}{}", labels.render());
            match metric {
                Metric::Counter(c) => counters.push((key, c.get())),
                Metric::Histogram(h) => histograms.push((key, h.snapshot())),
            }
        }
        Snapshot {
            counters,
            histograms,
        }
    }
}

/// Deterministic point-in-time view of a [`MetricsRegistry`]: every
/// series in lexicographic `(name, labels)` order.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `name{labels}` → value, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// `name{labels}` → distribution, sorted by key.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Looks up a counter by its rendered key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram by its rendered key.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, h)| h)
    }

    /// The activity between `earlier` and `self`. Series absent from
    /// `earlier` are taken whole; series that vanished are dropped.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let ec: BTreeMap<&str, u64> = earlier
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        let eh: BTreeMap<&str, &HistogramSnapshot> = earlier
            .histograms
            .iter()
            .map(|(k, h)| (k.as_str(), h))
            .collect();
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.saturating_sub(ec.get(k.as_str()).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let d = match eh.get(k.as_str()) {
                        Some(e) => h.delta(e),
                        None => h.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }

    /// A copy of the snapshot with every series whose name starts with
    /// `prefix` removed. Used to compare runs modulo an optional
    /// instrumentation layer (e.g. `without_prefix("stage.")`).
    pub fn without_prefix(&self, prefix: &str) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| !k.starts_with(prefix))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| !k.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }

    /// Renders the snapshot as deterministic pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }
}

impl Serialize for Snapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "counters".to_string(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        // Values below SUB_BUCKETS get one exact bucket each.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32); // 33 shares [32, 34) with 32
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_index((1 << 32) - 1), 463);
        assert_eq!(bucket_index(1 << 32), 464);
        assert_eq!(bucket_index((1 << 63) - 1), 959);
        assert_eq!(bucket_index(1 << 63), 960);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_index_is_monotone_and_tight() {
        // Octave boundaries and their neighbours, across the range.
        let mut prev = 0usize;
        for shift in 4..64 {
            for v in [(1u64 << shift) - 1, 1u64 << shift, (1u64 << shift) + 1] {
                let i = bucket_index(v);
                assert!(i >= prev, "bucket_index not monotone at {v}");
                assert!(bucket_lower_bound(i) <= v);
                assert!(v <= bucket_upper_bound(i));
                // Relative bucket width stays within 1/SUB_BUCKETS.
                let width = bucket_upper_bound(i) - bucket_lower_bound(i);
                assert!(width <= bucket_lower_bound(i).max(1) / SUB_BUCKETS as u64 + 1);
                prev = i;
            }
        }
    }

    #[test]
    fn bucket_bounds_round_trip() {
        for i in 0..HISTOGRAM_BUCKETS {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lower bound of bucket {i}");
        }
    }

    #[test]
    fn histogram_extremes() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets, vec![(0, 1), (31u64 << 59, 1)]);
        // Wrapping sum: 0 + MAX.
        assert_eq!(s.sum, u64::MAX);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_stable() {
        let r = MetricsRegistry::new();
        r.counter("z.last", Labels::GLOBAL).add(3);
        r.counter("a.first", Labels::node(1)).add(1);
        r.counter("a.first", Labels::node(0)).add(2);
        let s = r.snapshot();
        let keys: Vec<&str> = s.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a.first{node=0}", "a.first{node=1}", "z.last"]);
        assert_eq!(s.counter("a.first{node=0}"), Some(2));
        assert_eq!(s.to_json(), r.snapshot().to_json());
    }

    #[test]
    fn handles_share_state() {
        let r = MetricsRegistry::new();
        let a = r.counter("hits", Labels::GLOBAL);
        let b = r.counter("hits", Labels::GLOBAL);
        a.inc();
        b.add(2);
        assert_eq!(r.counter_value("hits", Labels::GLOBAL), 3);
    }

    #[test]
    fn counter_total_sums_labels() {
        let r = MetricsRegistry::new();
        r.counter("bytes", Labels::lane(0, 0)).add(10);
        r.counter("bytes", Labels::lane(0, 1)).add(5);
        r.counter("other", Labels::GLOBAL).add(100);
        assert_eq!(r.counter_total("bytes"), 15);
    }

    #[test]
    fn snapshot_delta() {
        let r = MetricsRegistry::new();
        let c = r.counter("n", Labels::GLOBAL);
        let h = r.histogram("lat", Labels::GLOBAL);
        c.add(5);
        h.record(7);
        let before = r.snapshot();
        c.add(2);
        h.record(7);
        h.record(100);
        let d = r.snapshot().delta(&before);
        assert_eq!(d.counter("n"), Some(2));
        let dh = d.histogram("lat").unwrap();
        assert_eq!(dh.count, 2);
        assert_eq!(dh.buckets, vec![(7, 1), (100, 1)]);
    }

    #[test]
    fn percentiles_exact_for_distinct_small_values() {
        let h = Histogram::new();
        // 100 distinct values, 1k..100k: log-linear quantization keeps
        // every percentile within one bucket width (6.25%).
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        let p50 = s.p50() as f64;
        let p99 = s.p99() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.07, "p50={p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.07, "p99={p99}");
        assert_eq!(s.percentile(0.0), 1000);
        assert_eq!(s.percentile(1.0), 100_000);
        // Monotone in q.
        let mut last = 0;
        for i in 0..=100 {
            let p = s.percentile(i as f64 / 100.0);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn percentile_single_value() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(777);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 777);
        assert_eq!(s.p999(), 777);
        assert_eq!(HistogramSnapshot::empty().p99(), 0);
    }

    #[test]
    fn merge_combines_distributions() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(20);
        b.record(5);
        b.record(1 << 20);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.min, 5);
        assert_eq!(m.max, 1 << 20);
        assert_eq!(m.sum, 10 + 20 + 5 + (1 << 20));
        // Identity + commutativity.
        let mut e = HistogramSnapshot::empty();
        e.merge(&m);
        assert_eq!(e, m);
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ba, m);
    }

    #[test]
    fn interned_ids_alias_named_handles() {
        let r = MetricsRegistry::new();
        let id = r.counter_id("hits", Labels::node(3));
        assert_eq!(id, r.counter_id("hits", Labels::node(3)));
        r.add(id, 2);
        r.counter("hits", Labels::node(3)).inc();
        assert_eq!(r.counter_value("hits", Labels::node(3)), 3);

        let hid = r.histogram_id("lat", Labels::GLOBAL);
        r.record(hid, 42);
        assert_eq!(r.histogram("lat", Labels::GLOBAL).count(), 1);
    }

    #[test]
    fn histogram_merged_spans_labels() {
        let r = MetricsRegistry::new();
        r.histogram("lat", Labels::node(0)).record(10);
        r.histogram("lat", Labels::node(1)).record(30);
        r.histogram("other", Labels::GLOBAL).record(999);
        let m = r.histogram_merged("lat");
        assert_eq!(m.count, 2);
        assert_eq!(m.min, 10);
        assert_eq!(m.max, 30);
    }

    #[test]
    fn without_prefix_filters_series() {
        let r = MetricsRegistry::new();
        r.counter("stage.credit_wait_ns.count", Labels::GLOBAL).inc();
        r.counter("verbs.msgs", Labels::GLOBAL).inc();
        r.histogram("stage.cq_wait_ns", Labels::node(0)).record(1);
        r.histogram("verbs.msg_latency_ns", Labels::node(0)).record(1);
        let s = r.snapshot().without_prefix("stage.");
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.histograms.len(), 1);
        assert!(s.counter("verbs.msgs").is_some());
        assert!(s.histogram("verbs.msg_latency_ns{node=0}").is_some());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_confusion_panics() {
        let r = MetricsRegistry::new();
        r.counter("x", Labels::GLOBAL);
        r.histogram("x", Labels::GLOBAL);
    }
}
