//! Lock-cheap metrics registry: atomic counters and fixed-bucket
//! histograms keyed by `node/lane/endpoint` labels.
//!
//! Hot paths hold an `Arc<Counter>` / `Arc<Histogram>` handle obtained
//! once from the [`MetricsRegistry`]; recording is then a single atomic
//! RMW with no lock. The registry itself is only locked when a handle is
//! first created or when a [`Snapshot`] is taken.
//!
//! Snapshots are deterministic: metrics are emitted in lexicographic
//! `(name, labels)` order, so two runs that perform the same recordings
//! produce byte-identical JSON.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Serialize, Value};

/// Sentinel meaning "this label dimension is not set".
pub const NO_LABEL: u32 = u32::MAX;

/// Label set identifying one metric series: which node, which lane
/// (destination / channel index) and which endpoint the sample belongs
/// to. Unset dimensions use [`NO_LABEL`] and are omitted from rendered
/// keys.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Labels {
    /// Node (simulated machine) the sample was taken on.
    pub node: u32,
    /// Lane: destination index / channel within the shuffle.
    pub lane: u32,
    /// Endpoint identifier (matches `EndpointId` in the core crate).
    pub endpoint: u32,
    /// Query (tenant) the sample is attributed to — set by the multi-query
    /// scheduler; [`NO_LABEL`] for single-query runs, so every series key
    /// that existed before the scheduler landed renders unchanged.
    pub query: u32,
}

impl Labels {
    /// No labels at all: a process-global series.
    pub const GLOBAL: Labels = Labels {
        node: NO_LABEL,
        lane: NO_LABEL,
        endpoint: NO_LABEL,
        query: NO_LABEL,
    };

    /// A per-node series.
    pub fn node(node: u32) -> Labels {
        Labels {
            node,
            ..Labels::GLOBAL
        }
    }

    /// A per-node, per-lane series.
    pub fn lane(node: u32, lane: u32) -> Labels {
        Labels {
            node,
            lane,
            ..Labels::GLOBAL
        }
    }

    /// A per-node, per-endpoint series.
    pub fn endpoint(node: u32, endpoint: u32) -> Labels {
        Labels {
            node,
            endpoint,
            ..Labels::GLOBAL
        }
    }

    /// A per-query (tenant) series.
    pub fn query(query: u32) -> Labels {
        Labels {
            query,
            ..Labels::GLOBAL
        }
    }

    /// This label set additionally attributed to `query`.
    pub fn with_query(self, query: u32) -> Labels {
        Labels { query, ..self }
    }

    /// Renders the label suffix, e.g. `{node=2,lane=0}`. Empty string
    /// when no dimension is set.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        if self.node != NO_LABEL {
            parts.push(format!("node={}", self.node));
        }
        if self.lane != NO_LABEL {
            parts.push(format!("lane={}", self.lane));
        }
        if self.endpoint != NO_LABEL {
            parts.push(format!("endpoint={}", self.endpoint));
        }
        if self.query != NO_LABEL {
            parts.push(format!("query={}", self.query));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i`
/// (1..=64) holds values in `[2^(i-1), 2^i)`; bucket 64's upper edge is
/// open so `u64::MAX` lands there.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Index of the bucket a value falls into. Total function over `u64`:
/// `0 -> 0`, `v -> floor(log2(v)) + 1` otherwise (so `1 -> 1`,
/// `2..=3 -> 2`, ..., `u64::MAX -> 64`).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// A fixed-bucket (power-of-two) histogram. Recording is a handful of
/// relaxed atomic operations; no lock, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Wrapping on purpose: the sum is diagnostic, not load-bearing.
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshot of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of a [`Histogram`]. Only non-empty buckets are
/// kept, as `(inclusive lower bound, count)` pairs in ascending order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets: `(inclusive lower bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The distribution recorded since `earlier` (bucket-wise and
    /// scalar-wise difference; min/max are taken from `self` since the
    /// true interval extrema are not recoverable).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for (lb, n) in &earlier.buckets {
            let e = buckets.entry(*lb).or_insert(0);
            *e = e.saturating_sub(*n);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets: buckets.into_iter().filter(|&(_, n)| n > 0).collect(),
        }
    }
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("sum".to_string(), Value::UInt(self.sum)),
            ("min".to_string(), Value::UInt(self.min)),
            ("max".to_string(), Value::UInt(self.max)),
            (
                "buckets".to_string(),
                Value::Array(
                    self.buckets
                        .iter()
                        .map(|&(lb, n)| Value::Array(vec![Value::UInt(lb), Value::UInt(n)]))
                        .collect(),
                ),
            ),
        ])
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
}

/// Registry of named metric series. Handle creation and snapshots take
/// a lock; recording through the returned handles does not.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<(&'static str, Labels), Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns (creating if needed) the counter for `(name, labels)`.
    ///
    /// Panics if the series already exists as a histogram.
    pub fn counter(&self, name: &'static str, labels: Labels) -> Arc<Counter> {
        let mut m = self.metrics.lock();
        match m
            .entry((name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            Metric::Histogram(_) => panic!("metric {name} already registered as a histogram"),
        }
    }

    /// Returns (creating if needed) the histogram for `(name, labels)`.
    ///
    /// Panics if the series already exists as a counter.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Arc<Histogram> {
        let mut m = self.metrics.lock();
        match m
            .entry((name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            Metric::Counter(_) => panic!("metric {name} already registered as a counter"),
        }
    }

    /// Current value of a counter series (0 if it does not exist).
    pub fn counter_value(&self, name: &'static str, labels: Labels) -> u64 {
        match self.metrics.lock().get(&(name, labels)) {
            Some(Metric::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Sum of a counter's value across every label combination it was
    /// recorded under (e.g. total bytes over all lanes).
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.metrics
            .lock()
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => c.get(),
                Metric::Histogram(_) => 0,
            })
            .sum()
    }

    /// Takes a deterministic point-in-time snapshot of every series.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock();
        let mut counters = Vec::new();
        let mut histograms = Vec::new();
        for ((name, labels), metric) in m.iter() {
            let key = format!("{name}{}", labels.render());
            match metric {
                Metric::Counter(c) => counters.push((key, c.get())),
                Metric::Histogram(h) => histograms.push((key, h.snapshot())),
            }
        }
        Snapshot {
            counters,
            histograms,
        }
    }
}

/// Deterministic point-in-time view of a [`MetricsRegistry`]: every
/// series in lexicographic `(name, labels)` order.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `name{labels}` → value, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// `name{labels}` → distribution, sorted by key.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Looks up a counter by its rendered key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram by its rendered key.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, h)| h)
    }

    /// The activity between `earlier` and `self`. Series absent from
    /// `earlier` are taken whole; series that vanished are dropped.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let ec: BTreeMap<&str, u64> = earlier
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        let eh: BTreeMap<&str, &HistogramSnapshot> = earlier
            .histograms
            .iter()
            .map(|(k, h)| (k.as_str(), h))
            .collect();
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.saturating_sub(ec.get(k.as_str()).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let d = match eh.get(k.as_str()) {
                        Some(e) => h.delta(e),
                        None => h.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }

    /// Renders the snapshot as deterministic pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }
}

impl Serialize for Snapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "counters".to_string(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 32) - 1), 32);
        assert_eq!(bucket_index(1 << 32), 33);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_round_trip() {
        for i in 0..HISTOGRAM_BUCKETS {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lower bound of bucket {i}");
        }
    }

    #[test]
    fn histogram_extremes() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets, vec![(0, 1), (1 << 63, 1)]);
        // Wrapping sum: 0 + MAX.
        assert_eq!(s.sum, u64::MAX);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_stable() {
        let r = MetricsRegistry::new();
        r.counter("z.last", Labels::GLOBAL).add(3);
        r.counter("a.first", Labels::node(1)).add(1);
        r.counter("a.first", Labels::node(0)).add(2);
        let s = r.snapshot();
        let keys: Vec<&str> = s.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a.first{node=0}", "a.first{node=1}", "z.last"]);
        assert_eq!(s.counter("a.first{node=0}"), Some(2));
        assert_eq!(s.to_json(), r.snapshot().to_json());
    }

    #[test]
    fn handles_share_state() {
        let r = MetricsRegistry::new();
        let a = r.counter("hits", Labels::GLOBAL);
        let b = r.counter("hits", Labels::GLOBAL);
        a.inc();
        b.add(2);
        assert_eq!(r.counter_value("hits", Labels::GLOBAL), 3);
    }

    #[test]
    fn counter_total_sums_labels() {
        let r = MetricsRegistry::new();
        r.counter("bytes", Labels::lane(0, 0)).add(10);
        r.counter("bytes", Labels::lane(0, 1)).add(5);
        r.counter("other", Labels::GLOBAL).add(100);
        assert_eq!(r.counter_total("bytes"), 15);
    }

    #[test]
    fn snapshot_delta() {
        let r = MetricsRegistry::new();
        let c = r.counter("n", Labels::GLOBAL);
        let h = r.histogram("lat", Labels::GLOBAL);
        c.add(5);
        h.record(7);
        let before = r.snapshot();
        c.add(2);
        h.record(7);
        h.record(100);
        let d = r.snapshot().delta(&before);
        assert_eq!(d.counter("n"), Some(2));
        let dh = d.histogram("lat").unwrap();
        assert_eq!(dh.count, 2);
        assert_eq!(dh.buckets, vec![(4, 1), (64, 1)]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_confusion_panics() {
        let r = MetricsRegistry::new();
        r.counter("x", Labels::GLOBAL);
        r.histogram("x", Labels::GLOBAL);
    }
}
