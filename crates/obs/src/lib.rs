//! Deterministic virtual-time observability for the RDMA shuffle stack.
//!
//! Three pieces, all driven by the simulation's virtual clock and free
//! of wall-clock reads so that a fixed seed yields byte-identical
//! output:
//!
//! * [`MetricsRegistry`] — atomic counters and power-of-two-bucket
//!   histograms keyed by `node/lane/endpoint` [`Labels`], snapshotted
//!   deterministically ([`Snapshot`]).
//! * [`FlightRecorder`] — bounded drop-oldest rings of typed
//!   [`EventKind`] events and named spans, one ring per `(node, tid)`
//!   track.
//! * [`trace::chrome_trace`] — export of the recorder as a
//!   `chrome://tracing` / Perfetto compatible JSON array.
//!
//! This crate sits *below* the simulator so every tier (simnet, verbs,
//! core endpoints, engine) can record into one shared [`Obs`] instance;
//! timestamps are plain virtual nanoseconds (`SimTime::as_nanos()`).

#![warn(missing_docs)]

pub mod metrics;
pub mod recorder;
pub mod trace;

pub use metrics::{
    Counter, Histogram, HistogramSnapshot, Labels, MetricsRegistry, Snapshot, NO_LABEL,
};
pub use recorder::{EventKind, FlightRecorder, Record, HW_TRACK};

use std::sync::Arc;

/// Canonical metric names, shared by all instrumented crates so series
/// line up across tiers and figures.
pub mod names {
    /// Work requests processed by a NIC pipeline `{node}`.
    pub const NIC_WORK_REQUESTS: &str = "nic.work_requests";
    /// QP context cache hits `{node}` (Figure 11).
    pub const NIC_QP_CACHE_HITS: &str = "nic.qp_cache_hits";
    /// QP context cache misses `{node}` (Figure 11).
    pub const NIC_QP_CACHE_MISSES: &str = "nic.qp_cache_misses";
    /// Virtual nanoseconds simulated threads spent busy `{node}`.
    pub const KERNEL_BUSY_NS: &str = "kernel.busy_ns";
    /// Virtual nanoseconds simulated threads spent blocked `{node}`.
    pub const KERNEL_IDLE_NS: &str = "kernel.idle_ns";
    /// Simulated threads that ran to completion `{node}`.
    pub const KERNEL_THREADS_FINISHED: &str = "kernel.threads_finished";
    /// UD datagrams dropped in the network by fault injection.
    pub const VERBS_UD_DROPPED: &str = "verbs.ud_dropped_in_network";
    /// UD datagrams that found no posted receive (receiver overrun).
    pub const VERBS_UD_UNMATCHED: &str = "verbs.ud_unmatched";
    /// UD datagrams delayed out of order by fault injection.
    pub const VERBS_UD_REORDERED: &str = "verbs.ud_reordered";
    /// Receiver-not-ready retries on RC QPs.
    pub const VERBS_RNR_RETRIES: &str = "verbs.rnr_retries";
    /// Two-sided message latency, post → delivery, ns `{node}` of the
    /// receiver.
    pub const VERBS_MSG_LATENCY_NS: &str = "verbs.msg_latency_ns";
    /// Payload size of posted sends, bytes `{node}`.
    pub const VERBS_MSG_SIZE_BYTES: &str = "verbs.msg_size_bytes";
    /// Payload bytes pushed by a send endpoint `{node,lane}`.
    pub const EP_BYTES_SENT: &str = "endpoint.bytes_sent";
    /// Messages pushed by a send endpoint `{node,lane}`.
    pub const EP_MESSAGES_SENT: &str = "endpoint.messages_sent";
    /// Payload bytes accepted by a receive endpoint `{node,endpoint}`.
    pub const EP_BYTES_RECEIVED: &str = "endpoint.bytes_received";
    /// Messages accepted by a receive endpoint `{node,endpoint}`.
    pub const EP_MESSAGES_RECEIVED: &str = "endpoint.messages_received";
    /// Number of credit stalls at a sender `{node,endpoint}` (Figure 8).
    pub const EP_CREDIT_STALLS: &str = "endpoint.credit_stalls";
    /// Total virtual ns spent stalled on credits `{node,endpoint}`.
    pub const EP_CREDIT_STALL_NS: &str = "endpoint.credit_stall_ns";
    /// Distribution of individual credit stalls, ns `{node,endpoint}`.
    pub const EP_CREDIT_STALL_HIST_NS: &str = "endpoint.credit_stall_hist_ns";
    /// FreeArr slot polls in the RDMA Read circular queue `{node,endpoint}`.
    pub const EP_FREEARR_POLLS: &str = "endpoint.freearr_polls";
    /// ValidArr slot polls in the circular queues `{node,endpoint}`.
    pub const EP_VALIDARR_POLLS: &str = "endpoint.validarr_polls";
    /// Rows drained by an operator fragment `{node}`.
    pub const ENGINE_ROWS: &str = "engine.rows";
    /// Bytes drained by an operator fragment `{node}`.
    pub const ENGINE_BYTES: &str = "engine.bytes";
    /// Fragment errors observed `{node}`.
    pub const ENGINE_ERRORS: &str = "engine.errors";
    /// Fault-plan events that fired `{node}`.
    pub const FAULT_INJECTED: &str = "fault.injected";
    /// Fragment restarts performed by the recovery orchestrator `{node}`.
    pub const ENGINE_RESTARTS: &str = "engine.restarts";
    /// Virtual ns from first fragment failure to successful completion
    /// `{node}`.
    pub const ENGINE_RECOVERY_NS: &str = "engine.recovery_ns";
    /// Queries admitted by the workload scheduler.
    pub const SCHED_ADMITTED: &str = "sched.admitted";
    /// Admission decisions that deferred a query (slot or memory wait).
    pub const SCHED_DEFERRED: &str = "sched.deferred";
    /// Queries completed and released by the scheduler.
    pub const SCHED_COMPLETED: &str = "sched.completed";
    /// Virtual ns a query waited in the admission queue `{query}`.
    pub const SCHED_QUEUE_WAIT_NS: &str = "sched.queue_wait_ns";
    /// Distribution of admission-queue waits, ns.
    pub const SCHED_QUEUE_WAIT_HIST_NS: &str = "sched.queue_wait_hist_ns";
    /// Virtual ns a query held an execution slot `{query}`.
    pub const SCHED_RUN_NS: &str = "sched.run_ns";
    /// NIC pipeline busy ns attributed to a query `{query}` (summed over
    /// nodes).
    pub const SCHED_NIC_BUSY_NS: &str = "sched.nic_busy_ns";
    /// Fabric port busy ns attributed to a query `{query}` (egress +
    /// ingress, summed over nodes).
    pub const SCHED_PORT_BUSY_NS: &str = "sched.port_busy_ns";
    /// Peak bytes of registered memory reserved from the budget `{node}`.
    pub const SCHED_MEM_RESERVED_PEAK: &str = "sched.mem_reserved_peak";
}

/// One shared observability context: the metrics registry plus the
/// flight recorder. Created by the cluster and threaded through every
/// tier.
#[derive(Default)]
pub struct Obs {
    /// The unified metrics registry.
    pub metrics: MetricsRegistry,
    /// The flight recorder.
    pub recorder: FlightRecorder,
}

impl Obs {
    /// Creates a fresh context with default recorder capacity.
    pub fn new() -> Arc<Obs> {
        Arc::new(Obs::default())
    }

    /// Creates a context with a specific per-track ring capacity.
    pub fn with_ring_capacity(capacity: usize) -> Arc<Obs> {
        Arc::new(Obs {
            metrics: MetricsRegistry::new(),
            recorder: FlightRecorder::new(capacity),
        })
    }

    /// Deterministic JSON rendering of the current metrics snapshot.
    pub fn snapshot_json(&self) -> String {
        self.metrics.snapshot().to_json()
    }

    /// Deterministic Chrome-trace JSON of everything recorded so far.
    pub fn chrome_trace_json(&self) -> String {
        trace::chrome_trace_string(&self.recorder)
    }
}
