//! Deterministic virtual-time observability for the RDMA shuffle stack.
//!
//! Three pieces, all driven by the simulation's virtual clock and free
//! of wall-clock reads so that a fixed seed yields byte-identical
//! output:
//!
//! * [`MetricsRegistry`] — atomic counters and fixed-size log-linear
//!   histograms (p50/p90/p99/p999-capable, mergeable) keyed by
//!   `node/lane/endpoint` [`Labels`], snapshotted deterministically
//!   ([`Snapshot`]). Hot paths record through interned integer ids —
//!   no string hashing or allocation per sample.
//! * [`FlightRecorder`] — bounded drop-oldest rings of typed
//!   [`EventKind`] events and named spans, one ring per `(node, tid)`
//!   track.
//! * [`trace::chrome_trace`] — export of the recorder as a
//!   `chrome://tracing` / Perfetto compatible JSON array.
//!
//! This crate sits *below* the simulator so every tier (simnet, verbs,
//! core endpoints, engine) can record into one shared [`Obs`] instance;
//! timestamps are plain virtual nanoseconds (`SimTime::as_nanos()`).

#![warn(missing_docs)]

pub mod metrics;
pub mod recorder;
pub mod stage;
pub mod trace;

pub use metrics::{
    Counter, CounterId, Histogram, HistogramId, HistogramSnapshot, HistogramSummary, Labels,
    MetricsRegistry, Snapshot, NO_LABEL,
};
pub use recorder::{EventKind, FlightRecorder, Record, HW_TRACK};
pub use stage::Stage;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Canonical metric names, shared by all instrumented crates so series
/// line up across tiers and figures.
pub mod names {
    /// Work requests processed by a NIC pipeline `{node}`.
    pub const NIC_WORK_REQUESTS: &str = "nic.work_requests";
    /// QP context cache hits `{node}` (Figure 11).
    pub const NIC_QP_CACHE_HITS: &str = "nic.qp_cache_hits";
    /// QP context cache misses `{node}` (Figure 11).
    pub const NIC_QP_CACHE_MISSES: &str = "nic.qp_cache_misses";
    /// Virtual nanoseconds simulated threads spent busy `{node}`.
    pub const KERNEL_BUSY_NS: &str = "kernel.busy_ns";
    /// Virtual nanoseconds simulated threads spent blocked `{node}`.
    pub const KERNEL_IDLE_NS: &str = "kernel.idle_ns";
    /// Simulated threads that ran to completion `{node}`.
    pub const KERNEL_THREADS_FINISHED: &str = "kernel.threads_finished";
    /// UD datagrams dropped in the network by fault injection.
    pub const VERBS_UD_DROPPED: &str = "verbs.ud_dropped_in_network";
    /// UD datagrams that found no posted receive (receiver overrun).
    pub const VERBS_UD_UNMATCHED: &str = "verbs.ud_unmatched";
    /// UD datagrams delayed out of order by fault injection.
    pub const VERBS_UD_REORDERED: &str = "verbs.ud_reordered";
    /// Receiver-not-ready retries on RC QPs.
    pub const VERBS_RNR_RETRIES: &str = "verbs.rnr_retries";
    /// Two-sided message latency, post → delivery, ns `{node}` of the
    /// receiver.
    pub const VERBS_MSG_LATENCY_NS: &str = "verbs.msg_latency_ns";
    /// Payload size of posted sends, bytes `{node}`.
    pub const VERBS_MSG_SIZE_BYTES: &str = "verbs.msg_size_bytes";
    /// Payload bytes pushed by a send endpoint `{node,lane}`.
    pub const EP_BYTES_SENT: &str = "endpoint.bytes_sent";
    /// Messages pushed by a send endpoint `{node,lane}`.
    pub const EP_MESSAGES_SENT: &str = "endpoint.messages_sent";
    /// Payload bytes accepted by a receive endpoint `{node,endpoint}`.
    pub const EP_BYTES_RECEIVED: &str = "endpoint.bytes_received";
    /// Messages accepted by a receive endpoint `{node,endpoint}`.
    pub const EP_MESSAGES_RECEIVED: &str = "endpoint.messages_received";
    /// Number of credit stalls at a sender `{node,endpoint}` (Figure 8).
    pub const EP_CREDIT_STALLS: &str = "endpoint.credit_stalls";
    /// Total virtual ns spent stalled on credits `{node,endpoint}`.
    pub const EP_CREDIT_STALL_NS: &str = "endpoint.credit_stall_ns";
    /// Distribution of individual credit stalls, ns `{node,endpoint}`.
    pub const EP_CREDIT_STALL_HIST_NS: &str = "endpoint.credit_stall_hist_ns";
    /// FreeArr slot polls in the RDMA Read circular queue `{node,endpoint}`.
    pub const EP_FREEARR_POLLS: &str = "endpoint.freearr_polls";
    /// ValidArr slot polls in the circular queues `{node,endpoint}`.
    pub const EP_VALIDARR_POLLS: &str = "endpoint.validarr_polls";
    /// Rows drained by an operator fragment `{node}`.
    pub const ENGINE_ROWS: &str = "engine.rows";
    /// Bytes drained by an operator fragment `{node}`.
    pub const ENGINE_BYTES: &str = "engine.bytes";
    /// Fragment errors observed `{node}`.
    pub const ENGINE_ERRORS: &str = "engine.errors";
    /// Fault-plan events that fired `{node}`.
    pub const FAULT_INJECTED: &str = "fault.injected";
    /// Fragment restarts performed by the recovery orchestrator `{node}`.
    pub const ENGINE_RESTARTS: &str = "engine.restarts";
    /// Virtual ns from first fragment failure to successful completion
    /// `{node}`.
    pub const ENGINE_RECOVERY_NS: &str = "engine.recovery_ns";
    /// Queries admitted by the workload scheduler.
    pub const SCHED_ADMITTED: &str = "sched.admitted";
    /// Admission decisions that deferred a query (slot or memory wait).
    pub const SCHED_DEFERRED: &str = "sched.deferred";
    /// Queries completed and released by the scheduler.
    pub const SCHED_COMPLETED: &str = "sched.completed";
    /// Virtual ns a query waited in the admission queue `{query}`.
    pub const SCHED_QUEUE_WAIT_NS: &str = "sched.queue_wait_ns";
    /// Distribution of admission-queue waits, ns.
    pub const SCHED_QUEUE_WAIT_HIST_NS: &str = "sched.queue_wait_hist_ns";
    /// Virtual ns a query held an execution slot `{query}`.
    pub const SCHED_RUN_NS: &str = "sched.run_ns";
    /// NIC pipeline busy ns attributed to a query `{query}` (summed over
    /// nodes).
    pub const SCHED_NIC_BUSY_NS: &str = "sched.nic_busy_ns";
    /// Fabric port busy ns attributed to a query `{query}` (egress +
    /// ingress, summed over nodes).
    pub const SCHED_PORT_BUSY_NS: &str = "sched.port_busy_ns";
    /// Peak bytes of registered memory reserved from the budget `{node}`.
    pub const SCHED_MEM_RESERVED_PEAK: &str = "sched.mem_reserved_peak";
    /// Stage histogram: virtual ns a sender spent blocked on credits
    /// before a post `{node}` (see [`crate::Stage::CreditWait`]).
    pub const STAGE_CREDIT_WAIT_NS: &str = "stage.credit_wait_ns";
    /// Stage histogram: doorbell → NIC-accept WR batching delay, ns
    /// `{node}` (see [`crate::Stage::WrBatch`]).
    pub const STAGE_WR_BATCH_NS: &str = "stage.wr_batch_ns";
    /// Stage histogram: NIC-accept → completion-deposit latency, ns
    /// `{node}` (see [`crate::Stage::PostToCompletion`]).
    pub const STAGE_POST_TO_COMPLETION_NS: &str = "stage.post_to_completion_ns";
    /// Stage histogram: completion-deposit → poll delay, ns `{node}`
    /// (see [`crate::Stage::CqWait`]).
    pub const STAGE_CQ_WAIT_NS: &str = "stage.cq_wait_ns";
    /// End-to-end query latency observed by the engine, ns.
    pub const ENGINE_QUERY_LATENCY_NS: &str = "engine.query_latency_ns";
    /// Stale-epoch arrivals dropped by a receive endpoint
    /// `{node,endpoint}`: leftovers of a failed flow attempt, fenced by
    /// the header epoch so a retry delivers exactly once.
    pub const EP_STALE_EPOCH_DROPS: &str = "endpoint.stale_epoch_drops";
    /// Per-flow partial retries performed by the recovery orchestrator
    /// `{node}` (epoch bump + replay, no global restart).
    pub const ENGINE_PARTIAL_RETRIES: &str = "engine.partial_retries";
    /// QP reconnect attempts performed during recovery `{node}`.
    pub const ENGINE_QP_RECONNECTS: &str = "engine.qp_reconnects";
    /// Mid-query degradations to a sturdier shuffle configuration
    /// `{node}` (e.g. zero-copy Read → copy-based Send/Receive).
    pub const ENGINE_DEGRADED: &str = "engine.degraded";
    /// Payload bytes redelivered during recovery that produced no new
    /// user-visible rows `{node}` (the waste a partial retry contains).
    pub const ENGINE_REDONE_BYTES: &str = "engine.redone_bytes";
    /// Payload bytes whose rows survived from failed attempts `{node}`
    /// (work a full restart would have thrown away).
    pub const ENGINE_KEPT_BYTES: &str = "engine.kept_bytes";
    /// Distinct shared QP slots the multiplexer materialized `{node}`
    /// (the effective QP-context population after leasing).
    pub const MUX_QP_COUNT: &str = "mux.qp_count";
    /// Virtual endpoints bound onto shared slots `{node}`.
    pub const MUX_LEASES: &str = "mux.leases";
    /// Leases that had to share an already-occupied slot `{node}` — each
    /// one is a virtual endpoint serialized behind a stranger's traffic.
    pub const MUX_LEASE_WAITS: &str = "mux.lease_waits";
    /// Natural (un-multiplexed) QP demand the lease table saw `{node}`;
    /// `mux.qp_count / mux.natural_qps` is the context-compression ratio.
    pub const MUX_NATURAL_QPS: &str = "mux.natural_qps";
    /// Communication phases completed by a phase-scheduled exchange
    /// (one increment per sender thread per barrier crossing).
    pub const EXCHANGE_PHASES_RUN: &str = "exchange.phases_run";
    /// Virtual ns a sender thread spent parked at the phase barrier.
    pub const EXCHANGE_PHASE_BARRIER_WAIT_NS: &str = "exchange.phase_barrier_wait_ns";
    /// Algorithm recommendations issued by the `AlgorithmAdvisor`.
    pub const ADVISOR_DECISIONS: &str = "advisor.decisions";
}

/// One shared observability context: the metrics registry plus the
/// flight recorder. Created by the cluster and threaded through every
/// tier.
pub struct Obs {
    /// The unified metrics registry.
    pub metrics: MetricsRegistry,
    /// The flight recorder.
    pub recorder: FlightRecorder,
    /// Stage latency histograms on/off (default on). Toggle *before*
    /// constructing runtimes: when off, no `stage.*` series is ever
    /// registered, so snapshots match an uninstrumented run exactly.
    stage_histograms: AtomicBool,
    /// Stage Chrome-trace spans on/off (default off — spans are bulky).
    stage_spans: AtomicBool,
    /// Lazily grown per-node table of interned stage histogram ids,
    /// indexed `[node][stage as usize]`.
    stage_ids: RwLock<Vec<[HistogramId; Stage::COUNT]>>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs {
            metrics: MetricsRegistry::new(),
            recorder: FlightRecorder::default(),
            stage_histograms: AtomicBool::new(true),
            stage_spans: AtomicBool::new(false),
            stage_ids: RwLock::new(Vec::new()),
        }
    }
}

impl Obs {
    /// Creates a fresh context with default recorder capacity.
    pub fn new() -> Arc<Obs> {
        Arc::new(Obs::default())
    }

    /// Creates a context with a specific per-track ring capacity.
    pub fn with_ring_capacity(capacity: usize) -> Arc<Obs> {
        Arc::new(Obs {
            recorder: FlightRecorder::new(capacity),
            ..Obs::default()
        })
    }

    /// Enables or disables stage latency histograms. Flip before the
    /// first message flows: a disabled run registers no `stage.*`
    /// series at all.
    pub fn set_stage_histograms(&self, on: bool) {
        self.stage_histograms.store(on, Ordering::Relaxed);
    }

    /// Whether stage latency histograms are being recorded.
    #[inline]
    pub fn stage_histograms_enabled(&self) -> bool {
        self.stage_histograms.load(Ordering::Relaxed)
    }

    /// Enables or disables per-interval stage spans in the flight
    /// recorder (off by default).
    pub fn set_stage_spans(&self, on: bool) {
        self.stage_spans.store(on, Ordering::Relaxed);
    }

    /// Whether stage spans are being recorded.
    #[inline]
    pub fn stage_spans_enabled(&self) -> bool {
        self.stage_spans.load(Ordering::Relaxed)
    }

    /// Interned histogram id for `(stage, node)`. The whole node row is
    /// registered on first touch; callers on very hot paths may cache
    /// the returned id and use [`MetricsRegistry::record`] directly.
    pub fn stage_histogram_id(&self, stage: Stage, node: u32) -> HistogramId {
        {
            let table = self.stage_ids.read();
            if let Some(row) = table.get(node as usize) {
                return row[stage as usize];
            }
        }
        let mut table = self.stage_ids.write();
        while table.len() <= node as usize {
            let n = table.len() as u32;
            let row = Stage::ALL.map(|s| self.metrics.histogram_id(s.metric_name(), Labels::node(n)));
            table.push(row);
        }
        table[node as usize][stage as usize]
    }

    /// Records one stage latency sample for `node`. A no-op (single
    /// atomic load) when stage histograms are disabled; never advances
    /// virtual time.
    #[inline]
    pub fn record_stage(&self, stage: Stage, node: u32, ns: u64) {
        if !self.stage_histograms_enabled() {
            return;
        }
        let id = self.stage_histogram_id(stage, node);
        self.metrics.record(id, ns);
    }

    /// Records a stage interval as a Chrome-trace span on `(node, tid)`.
    /// A no-op unless stage spans are enabled.
    #[inline]
    pub fn stage_span(&self, stage: Stage, node: u32, tid: u32, start_ns: u64, end_ns: u64) {
        if !self.stage_spans_enabled() {
            return;
        }
        self.recorder.span(node, tid, stage.span_name(), start_ns, end_ns);
    }

    /// Deterministic JSON rendering of the current metrics snapshot.
    pub fn snapshot_json(&self) -> String {
        self.metrics.snapshot().to_json()
    }

    /// Deterministic Chrome-trace JSON of everything recorded so far.
    pub fn chrome_trace_json(&self) -> String {
        trace::chrome_trace_string(&self.recorder)
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;

    #[test]
    fn disabled_stage_histograms_register_nothing() {
        let obs = Obs::new();
        obs.set_stage_histograms(false);
        obs.record_stage(Stage::CqWait, 0, 100);
        assert!(obs.metrics.snapshot().histograms.is_empty());

        obs.set_stage_histograms(true);
        obs.record_stage(Stage::CqWait, 1, 100);
        let snap = obs.metrics.snapshot();
        // The whole row for node 1 (and the filler row for node 0) is
        // registered on first touch, but only one sample was recorded.
        assert_eq!(
            snap.histogram("stage.cq_wait_ns{node=1}").unwrap().count,
            1
        );
        assert_eq!(
            snap.histogram("stage.credit_wait_ns{node=1}").unwrap().count,
            0
        );
    }

    #[test]
    fn stage_spans_default_off() {
        let obs = Obs::new();
        obs.stage_span(Stage::WrBatch, 0, 1, 10, 20);
        assert!(obs.recorder.is_empty());
        obs.set_stage_spans(true);
        obs.stage_span(Stage::WrBatch, 0, 1, 10, 20);
        assert_eq!(obs.recorder.len(), 1);
    }
}
