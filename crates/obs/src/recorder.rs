//! Bounded flight recorder: typed events and spans stamped with virtual
//! time, kept in a drop-oldest ring per track.
//!
//! A *track* is one timeline in the exported trace — `(node, tid)` maps
//! directly onto Chrome trace `pid`/`tid`. Track 0 on each node is the
//! hardware track (NIC pipeline, fault injection); simulated threads get
//! `tid = thread index + 1`.
//!
//! The simulation kernel runs one simulated thread at a time, so the
//! single mutex here is effectively uncontended and recording order is
//! deterministic for a fixed seed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::collections::VecDeque;

use parking_lot::Mutex;

/// Hardware track id (`tid` 0) used for NIC and fault-injection events.
pub const HW_TRACK: u32 = 0;

/// Default per-track ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// The typed event taxonomy recorded by the shuffle stack.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A Send work request was posted (`arg` = payload bytes).
    SendPosted,
    /// A Receive work request was posted (`arg` = buffer bytes).
    RecvPosted,
    /// A completion was polled from a CQ (`arg` = byte length).
    CompletionPolled,
    /// A sender began stalling for send credits (`arg` = destination).
    CreditStallBegin,
    /// The stall ended (`arg` = stall nanoseconds).
    CreditStallEnd,
    /// Receiver-not-ready hardware retry on an RC QP (`arg` = attempt).
    RnrRetry,
    /// A UD datagram was dropped in the network (`arg` = 0) or arrived
    /// with no matching posted receive (`arg` = 1).
    UdDrop,
    /// A UD datagram was reordered by fault injection.
    UdReordered,
    /// The NIC had to fetch a QP context from host memory (`arg` = QP
    /// context key) — the cache-thrashing signal behind Figure 11.
    QpCacheMiss,
    /// A queue pair changed state (`arg` = encoded `from << 8 | to`).
    QpTransition,
    /// One poll of a FreeArr slot in the RDMA Read circular queue
    /// (`arg` = slot index).
    FreeArrPoll,
    /// One poll of a ValidArr slot (`arg` = slot index).
    ValidArrPoll,
    /// A simulated thread finished (`arg` = busy nanoseconds).
    ThreadFinished,
    /// An operator fragment drained to its sink (`arg` = rows).
    FragmentDone,
    /// An injected fault became active (`arg` = `fault_code << 32 | node`).
    FaultBegin,
    /// An injected fault window ended (`arg` = `fault_code << 32 | node`).
    FaultEnd,
    /// A queue pair was forced into the error state by fault injection
    /// (`arg` = QP number).
    QpKilled,
    /// The restart orchestrator tore a fragment down for a retry
    /// (`arg` = attempt number, starting at 1).
    QueryRestart,
    /// A restarted fragment completed successfully (`arg` = recovery
    /// latency in nanoseconds, measured from the first failure).
    QueryRecovered,
    /// The protocol auditor observed an invariant violation (`arg` =
    /// the violation's numeric code).
    AuditViolation,
    /// The workload scheduler admitted a query (`arg` = query id).
    QueryAdmitted,
    /// The workload scheduler deferred a query — no free slot or not
    /// enough registered-memory budget (`arg` = query id).
    QueryDeferred,
    /// A scheduled query completed and released its slot, memory and
    /// flow weight (`arg` = query id).
    QueryCompleted,
    /// The recovery orchestrator re-established a failed queue pair
    /// (`arg` = reconnect attempt number, starting at 1).
    QpReconnect,
    /// A partially-retried flow resumed past its delivered watermark
    /// (`arg` = the flow's new epoch).
    FlowResumed,
    /// The orchestrator began a per-flow partial retry (`arg` = the
    /// attempt's epoch).
    PartialRetry,
    /// The query degraded mid-run to a sturdier shuffle configuration
    /// (`arg` = the new configuration's algorithm code).
    QueryDegraded,
    /// A sender thread entered a new communication phase of a
    /// phase-scheduled exchange (`arg` = phase index).
    PhaseBegin,
    /// The algorithm advisor issued a recommendation (`arg` = the
    /// picked configuration's algorithm code).
    AdvisorDecision,
}

impl EventKind {
    /// Stable display name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SendPosted => "send_posted",
            EventKind::RecvPosted => "recv_posted",
            EventKind::CompletionPolled => "completion_polled",
            EventKind::CreditStallBegin => "credit_stall_begin",
            EventKind::CreditStallEnd => "credit_stall_end",
            EventKind::RnrRetry => "rnr_retry",
            EventKind::UdDrop => "ud_drop",
            EventKind::UdReordered => "ud_reordered",
            EventKind::QpCacheMiss => "qp_cache_miss",
            EventKind::QpTransition => "qp_transition",
            EventKind::FreeArrPoll => "freearr_poll",
            EventKind::ValidArrPoll => "validarr_poll",
            EventKind::ThreadFinished => "thread_finished",
            EventKind::FragmentDone => "fragment_done",
            EventKind::FaultBegin => "fault_begin",
            EventKind::FaultEnd => "fault_end",
            EventKind::QpKilled => "qp_killed",
            EventKind::QueryRestart => "query_restart",
            EventKind::QueryRecovered => "query_recovered",
            EventKind::AuditViolation => "audit_violation",
            EventKind::QueryAdmitted => "query_admitted",
            EventKind::QueryDeferred => "query_deferred",
            EventKind::QueryCompleted => "query_completed",
            EventKind::QpReconnect => "qp_reconnect",
            EventKind::FlowResumed => "flow_resumed",
            EventKind::PartialRetry => "partial_retry",
            EventKind::QueryDegraded => "query_degraded",
            EventKind::PhaseBegin => "phase_begin",
            EventKind::AdvisorDecision => "advisor_decision",
        }
    }
}

/// One recorded entry: an instantaneous event or a completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A point event at `at_ns` (virtual nanoseconds).
    Instant {
        /// Virtual timestamp in nanoseconds.
        at_ns: u64,
        /// What happened.
        kind: EventKind,
        /// Kind-specific argument (see [`EventKind`] docs).
        arg: u64,
    },
    /// A named interval `[start_ns, end_ns]` in virtual time.
    Span {
        /// Interval name (shown as the slice label in trace viewers).
        name: String,
        /// Virtual start, nanoseconds.
        start_ns: u64,
        /// Virtual end, nanoseconds.
        end_ns: u64,
    },
}

#[derive(Default)]
struct Track {
    name: String,
    ring: VecDeque<Record>,
    dropped: u64,
}

#[derive(Default)]
struct RecorderState {
    tracks: BTreeMap<(u32, u32), Track>,
}

/// The flight recorder. Cheap to record into, bounded in memory, and
/// exportable as a `chrome://tracing` JSON document (see
/// [`crate::trace::chrome_trace`]).
pub struct FlightRecorder {
    state: Mutex<RecorderState>,
    capacity: usize,
    enabled: AtomicBool,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_RING_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a recorder whose per-track rings hold at most `capacity`
    /// records (oldest records are dropped and counted).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            state: Mutex::new(RecorderState::default()),
            capacity: capacity.max(1),
            enabled: AtomicBool::new(true),
        }
    }

    /// Globally enables or disables recording. Disabled recording is a
    /// single atomic load per call site.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Names a track for trace exports (e.g. the simulated thread name).
    pub fn name_track(&self, node: u32, tid: u32, name: &str) {
        let mut st = self.state.lock();
        st.tracks.entry((node, tid)).or_default().name = name.to_string();
    }

    /// Records a point event on `(node, tid)` at virtual time `at_ns`.
    #[inline]
    pub fn event(&self, node: u32, tid: u32, at_ns: u64, kind: EventKind, arg: u64) {
        if !self.enabled() {
            return;
        }
        self.push(node, tid, Record::Instant { at_ns, kind, arg });
    }

    /// Records a completed span on `(node, tid)`.
    #[inline]
    pub fn span(&self, node: u32, tid: u32, name: &str, start_ns: u64, end_ns: u64) {
        if !self.enabled() {
            return;
        }
        self.push(
            node,
            tid,
            Record::Span {
                name: name.to_string(),
                start_ns,
                end_ns: end_ns.max(start_ns),
            },
        );
    }

    fn push(&self, node: u32, tid: u32, rec: Record) {
        let mut st = self.state.lock();
        let track = st.tracks.entry((node, tid)).or_default();
        if track.ring.len() == self.capacity {
            track.ring.pop_front();
            track.dropped += 1;
        }
        track.ring.push_back(rec);
    }

    /// Copies out one track's records in recording order.
    pub fn records(&self, node: u32, tid: u32) -> Vec<Record> {
        self.state
            .lock()
            .tracks
            .get(&(node, tid))
            .map(|t| t.ring.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// All tracks, in `(node, tid)` order:
    /// `(node, tid, name, records, dropped)`.
    pub fn dump(&self) -> Vec<(u32, u32, String, Vec<Record>, u64)> {
        self.state
            .lock()
            .tracks
            .iter()
            .map(|(&(node, tid), t)| {
                (
                    node,
                    tid,
                    t.name.clone(),
                    t.ring.iter().cloned().collect(),
                    t.dropped,
                )
            })
            .collect()
    }

    /// Total records currently held across all rings.
    pub fn len(&self) -> usize {
        self.state.lock().tracks.values().map(|t| t.ring.len()).sum()
    }

    /// True when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events that matched `kind` across all rings.
    pub fn count_events(&self, kind: EventKind) -> usize {
        self.state
            .lock()
            .tracks
            .values()
            .flat_map(|t| t.ring.iter())
            .filter(|r| matches!(r, Record::Instant { kind: k, .. } if *k == kind))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let rec = FlightRecorder::new(2);
        for i in 0..5u64 {
            rec.event(0, 1, i, EventKind::SendPosted, i);
        }
        let records = rec.records(0, 1);
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0],
            Record::Instant {
                at_ns: 3,
                kind: EventKind::SendPosted,
                arg: 3
            }
        );
        let dump = rec.dump();
        assert_eq!(dump[0].4, 3, "three oldest records dropped");
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::new(16);
        rec.set_enabled(false);
        rec.event(0, 0, 1, EventKind::UdDrop, 0);
        rec.span(0, 0, "s", 0, 10);
        assert!(rec.is_empty());
        rec.set_enabled(true);
        rec.event(0, 0, 2, EventKind::UdDrop, 0);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn spans_clamp_negative_duration() {
        let rec = FlightRecorder::new(16);
        rec.span(1, 2, "backwards", 10, 5);
        match &rec.records(1, 2)[0] {
            Record::Span { start_ns, end_ns, .. } => {
                assert_eq!((*start_ns, *end_ns), (10, 10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_events_filters_by_kind() {
        let rec = FlightRecorder::new(16);
        rec.event(0, 0, 1, EventKind::QpCacheMiss, 7);
        rec.event(0, 1, 2, EventKind::QpCacheMiss, 8);
        rec.event(0, 1, 3, EventKind::RnrRetry, 0);
        assert_eq!(rec.count_events(EventKind::QpCacheMiss), 2);
        assert_eq!(rec.count_events(EventKind::RnrRetry), 1);
    }
}
