//! Stage taxonomy for per-message latency decomposition.
//!
//! A two-sided message's virtual-time lifetime is split into four
//! segments, matching where the paper's evaluation says shuffle time
//! goes (credit stalls, NIC processing, CQ polling):
//!
//! ```text
//!  app wants to send ──CreditWait──▶ doorbell ──WrBatch──▶ NIC accepts
//!      ──PostToCompletion──▶ completion deposited ──CqWait──▶ polled
//! ```
//!
//! Each stage is surfaced as a per-node `stage.*_ns` histogram (see
//! [`crate::names`]) and, optionally, as Chrome-trace spans. Recording
//! is gated by two flags on [`crate::Obs`]:
//!
//! * `stage_histograms` (default **on**) — per-stage latency
//!   histograms. When off, no `stage.*` series is ever registered, so a
//!   disabled run's snapshot is byte-identical to one from a build
//!   without the instrumentation.
//! * `stage_spans` (default **off**) — per-interval spans in the flight
//!   recorder for trace viewers. Spans are bulkier than histogram
//!   increments, so they are opt-in.
//!
//! All timestamps are virtual nanoseconds; recording never advances the
//! simulated clock, which is what makes the instrumentation observably
//! free (`tests/determinism.rs` proves it).

/// One segment of a message's lifetime.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Sender blocked waiting for flow-control credits before it could
    /// post (zero for sends that never stalled).
    CreditWait,
    /// Doorbell ring until the NIC pipeline accepts the work request —
    /// the WR-post batching / pipeline-occupancy delay.
    WrBatch,
    /// NIC accepts the work request until the completion is deposited
    /// in the CQ (wire time + remote processing for two-sided ops).
    PostToCompletion,
    /// Completion sits in the CQ until the consumer polls it out.
    CqWait,
}

impl Stage {
    /// Number of stages (rows in per-node id tables).
    pub const COUNT: usize = 4;

    /// Every stage, in lifetime order; `ALL[s as usize] == s`.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::CreditWait,
        Stage::WrBatch,
        Stage::PostToCompletion,
        Stage::CqWait,
    ];

    /// Canonical metric series name (`{node}`-labelled histogram).
    pub fn metric_name(self) -> &'static str {
        match self {
            Stage::CreditWait => crate::names::STAGE_CREDIT_WAIT_NS,
            Stage::WrBatch => crate::names::STAGE_WR_BATCH_NS,
            Stage::PostToCompletion => crate::names::STAGE_POST_TO_COMPLETION_NS,
            Stage::CqWait => crate::names::STAGE_CQ_WAIT_NS,
        }
    }

    /// Slice label used for Chrome-trace spans.
    pub fn span_name(self) -> &'static str {
        match self {
            Stage::CreditWait => "stage.credit_wait",
            Stage::WrBatch => "stage.wr_batch",
            Stage::PostToCompletion => "stage.post_to_completion",
            Stage::CqWait => "stage.cq_wait",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_indexable_by_discriminant() {
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s as usize, i);
        }
    }

    #[test]
    fn names_live_under_stage_prefix() {
        for s in Stage::ALL {
            assert!(s.metric_name().starts_with("stage."));
            assert!(s.metric_name().ends_with("_ns"));
            assert!(s.span_name().starts_with("stage."));
        }
    }
}
