//! TPC-H substrate for the paper's §5.2 evaluation: a dbgen-style data
//! generator for the tables and columns Q3, Q4 and Q10 touch, random-node
//! tuple placement (with NATION/REGION replicated), and the physical query
//! plans the paper evaluates.
//!
//! "We distribute each tuple of every table in TPC-H to a random node in
//! the cluster, except for the NATION and REGION tables which we replicate
//! to all nodes [...] We pre-project all unused columns as a column-store
//! database would." (§5.2)

#![warn(missing_docs)]

pub mod gen;
pub mod queries;

pub use gen::{date, Dataset, GenConfig, Placement};
pub use queries::{run_query, QueryId, QueryResult, QueryTransport};
