//! Physical plans for TPC-H Q3, Q4 and Q10 (§5.2).
//!
//! The plans follow the structure a commercial optimizer produces for the
//! paper's random-placement setup: selections are pushed below the
//! shuffles, both join inputs are hash-repartitioned on the join key, and
//! aggregation runs locally after the final join (the tiny global merge of
//! partial aggregates is done by the coordinator and is not part of the
//! measured fragment time).
//!
//! * **Q4** — ORDERS ⋉ LINEITEM (EXISTS) on the order key, COUNT(*) by
//!   order priority. The "local data" variant runs without any shuffle on a
//!   co-partitioned database (Figure 14a/b).
//! * **Q3** — CUSTOMER ⋈ ORDERS on the customer key (semi: the customer
//!   side carries no payload after pre-projection), then ⋈ LINEITEM on the
//!   order key, SUM(revenue) by order (three tables, two shuffle rounds
//!   plus a re-shuffle of the first join's output).
//! * **Q10** — ORDERS ⋈ LINEITEM on the order key, re-shuffled on the
//!   customer key into CUSTOMER (⋈ the replicated NATION locally),
//!   SUM(revenue) by customer (four tables).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::{
    CostModel, EndpointMode, Exchange, ExchangeConfig, Operator, ReceiveEndpoint, ReceiveOperator,
    SendEndpoint, ShuffleAlgorithm, ShuffleOperator, TransmissionGroups,
};
use rshuffle_baselines::MpiExchange;
use rshuffle_engine::{
    drive_to_sink, Filter, HashAggregate, HashJoin, HashSemiJoin, MemScan, Project,
};
use rshuffle_simnet::{Cluster, DeviceProfile, SimDuration};
use rshuffle_verbs::{FaultConfig, VerbsRuntime};

use crate::gen::{self, Dataset};

/// Which query to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QueryId {
    /// TPC-H Q3 (shipping priority).
    Q3,
    /// TPC-H Q4 (order priority checking).
    Q4,
    /// TPC-H Q10 (returned item reporting).
    Q10,
}

/// Transport for the query's shuffles.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QueryTransport {
    /// One of the RDMA shuffle designs (the paper evaluates MESQ/SR).
    Rdma(ShuffleAlgorithm),
    /// The MPI baseline.
    Mpi,
    /// No shuffling: the database is co-partitioned ("local data",
    /// Figure 14a/b; only meaningful for Q4).
    LocalData,
}

impl std::fmt::Display for QueryTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryTransport::Rdma(a) => write!(f, "{a}"),
            QueryTransport::Mpi => write!(f, "MPI"),
            QueryTransport::LocalData => write!(f, "local data"),
        }
    }
}

/// Result of a query run.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// End-to-end response time (all fragments drained).
    pub response_time: SimDuration,
    /// Globally merged aggregate: group key → aggregate value
    /// (Q4: priority → count; Q3: orderkey → revenue; Q10: custkey →
    /// revenue).
    pub groups: HashMap<u64, i64>,
}

/// Q3/Q10 constants.
const MKTSEGMENT_BUILDING: u8 = 0;

fn revenue(price: i64, discount_bp: i64) -> i64 {
    price * (10_000 - discount_bp) / 10_000
}

/// Lane-indexed endpoints of one shuffle stage.
struct Stage {
    send: Vec<Vec<Arc<dyn SendEndpoint>>>,
    recv: Vec<Vec<Arc<dyn ReceiveEndpoint>>>,
    mode: EndpointMode,
    groups: Vec<TransmissionGroups>,
}

fn build_stage(runtime: &Arc<VerbsRuntime>, transport: QueryTransport, threads: usize) -> Stage {
    let nodes = runtime.cluster().nodes();
    let groups: Vec<TransmissionGroups> = (0..nodes)
        .map(|_| TransmissionGroups::partition(nodes))
        .collect();
    match transport {
        QueryTransport::Rdma(algorithm) => {
            let cfg = ExchangeConfig::with_groups(algorithm, threads, groups.clone());
            let ex = Exchange::build(runtime, &cfg).expect("stage exchange builds");
            Stage {
                send: ex.send,
                recv: ex.recv,
                mode: algorithm.mode,
                groups,
            }
        }
        QueryTransport::Mpi => {
            let ex = MpiExchange::build(runtime, groups.clone(), 64 * 1024, threads)
                .expect("mpi stage builds");
            Stage {
                send: ex
                    .send
                    .into_iter()
                    .map(|e| e.into_iter().collect())
                    .collect(),
                recv: ex
                    .recv
                    .into_iter()
                    .map(|e| e.into_iter().collect())
                    .collect(),
                mode: EndpointMode::Single,
                groups,
            }
        }
        QueryTransport::LocalData => unreachable!("local plans build no stages"),
    }
}

/// Spawns a sender fragment: `source` → SHUFFLE through `stage`.
fn spawn_shuffle(
    runtime: &Arc<VerbsRuntime>,
    stage: &Stage,
    node: usize,
    name: &str,
    source: Arc<dyn Operator>,
    threads: usize,
    cost: &CostModel,
) {
    let shuffle = Arc::new(ShuffleOperator::new(
        stage.mode,
        source,
        stage.send[node].clone(),
        stage.groups[node].clone(),
        threads,
        cost.clone(),
    ));
    drive_to_sink(runtime.cluster(), node, name, shuffle, threads, |_, _| {});
}

/// A RECEIVE operator over `stage` on `node` producing `row_size`-byte
/// rows.
fn receive_op(
    stage: &Stage,
    node: usize,
    row_size: usize,
    threads: usize,
    cost: &CostModel,
) -> Arc<dyn Operator> {
    Arc::new(ReceiveOperator::new(
        stage.mode,
        stage.recv[node].clone(),
        row_size,
        2048,
        threads,
        cost.clone(),
    ))
}

/// Shared aggregate sink: folds per-node partial aggregates into the
/// global map (the coordinator's trivial final merge).
type GroupSink = Arc<Mutex<HashMap<u64, i64>>>;

#[allow(clippy::too_many_arguments)]
fn collect_groups(
    runtime: &Arc<VerbsRuntime>,
    node: usize,
    name: &str,
    op: Arc<dyn Operator>,
    threads: usize,
    key_at: usize,
    val_at: usize,
    sink: GroupSink,
) {
    drive_to_sink(
        runtime.cluster(),
        node,
        name,
        op,
        threads,
        move |_, batch| {
            let mut sink = sink.lock();
            for row in batch.iter() {
                let k = u64::from_le_bytes(row[key_at..key_at + 8].try_into().expect("8 bytes"));
                let v = i64::from_le_bytes(row[val_at..val_at + 8].try_into().expect("8 bytes"));
                *sink.entry(k).or_insert(0) += v;
            }
        },
    );
}

/// Runs `query` over `dataset` on a fresh simulated cluster.
///
/// # Panics
///
/// Panics if `transport` is [`QueryTransport::LocalData`] for a query other
/// than Q4 (Q3 and Q10 join on different keys, so co-partitioning without
/// replication is impossible — §5.2.2).
pub fn run_query(
    profile: DeviceProfile,
    dataset: &Dataset,
    query: QueryId,
    transport: QueryTransport,
    threads: usize,
) -> QueryResult {
    let nodes = dataset.lineitem.len();
    let cluster = Cluster::new(nodes, profile);
    let runtime = VerbsRuntime::with_faults(
        cluster,
        FaultConfig {
            ud_reorder_probability: 0.05,
            ..FaultConfig::default()
        },
    );
    let cost = CostModel::from_profile(runtime.profile());
    let scan_bw = runtime.profile().memcpy_bandwidth;
    let hash_cost = runtime.profile().hash_per_tuple;
    let tick = SimDuration::from_nanos(2);
    let groups: GroupSink = Arc::new(Mutex::new(HashMap::new()));

    match (query, transport) {
        (QueryId::Q4, QueryTransport::LocalData) => {
            for node in 0..nodes {
                let (li_src, o_src) = q4_sources(dataset, node, threads, scan_bw, tick);
                let semi = Arc::new(HashSemiJoin::new(
                    runtime.kernel(),
                    li_src,
                    o_src,
                    q_key8,
                    q_key8,
                    threads,
                    hash_cost,
                ));
                let agg = q4_aggregate(&runtime, semi, threads, hash_cost);
                collect_groups(
                    &runtime,
                    node,
                    &format!("q4-agg-{node}"),
                    agg,
                    threads,
                    0,
                    8,
                    groups.clone(),
                );
            }
        }
        (QueryId::Q4, transport) => {
            let li_stage = build_stage(&runtime, transport, threads);
            let o_stage = build_stage(&runtime, transport, threads);
            for node in 0..nodes {
                let (li_src, o_src) = q4_sources(dataset, node, threads, scan_bw, tick);
                spawn_shuffle(
                    &runtime,
                    &li_stage,
                    node,
                    &format!("q4-li-{node}"),
                    li_src,
                    threads,
                    &cost,
                );
                spawn_shuffle(
                    &runtime,
                    &o_stage,
                    node,
                    &format!("q4-o-{node}"),
                    o_src,
                    threads,
                    &cost,
                );
                let li_recv = receive_op(&li_stage, node, 8, threads, &cost);
                let o_recv = receive_op(&o_stage, node, 9, threads, &cost);
                let semi = Arc::new(HashSemiJoin::new(
                    runtime.kernel(),
                    li_recv,
                    o_recv,
                    q_key8,
                    q_key8,
                    threads,
                    hash_cost,
                ));
                let agg = q4_aggregate(&runtime, semi, threads, hash_cost);
                collect_groups(
                    &runtime,
                    node,
                    &format!("q4-agg-{node}"),
                    agg,
                    threads,
                    0,
                    8,
                    groups.clone(),
                );
            }
        }
        (QueryId::Q3, QueryTransport::LocalData) | (QueryId::Q10, QueryTransport::LocalData) => {
            panic!("Q3/Q10 join on different keys; co-partitioning is impossible (§5.2.2)")
        }
        (QueryId::Q3, transport) => {
            let cut = gen::date(1995, 3, 15);
            let c_stage = build_stage(&runtime, transport, threads);
            let o_stage = build_stage(&runtime, transport, threads);
            let j_stage = build_stage(&runtime, transport, threads);
            let li_stage = build_stage(&runtime, transport, threads);
            for node in 0..nodes {
                // Customer: σ(mktsegment = BUILDING) → π(custkey) → shuffle.
                let c_scan = Arc::new(MemScan::new(
                    dataset.customer[node].clone(),
                    threads,
                    scan_bw,
                ));
                let c_filt = Arc::new(Filter::new(
                    c_scan,
                    |r| gen::c_mktsegment(r) == MKTSEGMENT_BUILDING,
                    tick,
                ));
                let c_proj = Arc::new(Project::new(
                    c_filt,
                    8,
                    |r, out| out.extend_from_slice(&r[0..8]),
                    tick,
                ));
                spawn_shuffle(
                    &runtime,
                    &c_stage,
                    node,
                    &format!("q3-c-{node}"),
                    c_proj,
                    threads,
                    &cost,
                );

                // Orders: σ(orderdate < cut) → π(custkey, okey, date, prio)
                // partitioned on the customer key.
                let o_scan = Arc::new(MemScan::new(dataset.orders[node].clone(), threads, scan_bw));
                let o_filt = Arc::new(Filter::new(
                    o_scan,
                    move |r| gen::o_orderdate(r) < cut,
                    tick,
                ));
                let o_proj = Arc::new(Project::new(
                    o_filt,
                    21,
                    |r, out| {
                        out.extend_from_slice(&gen::o_custkey(r).to_le_bytes());
                        out.extend_from_slice(&gen::o_orderkey(r).to_le_bytes());
                        out.extend_from_slice(&gen::o_orderdate(r).to_le_bytes());
                        out.push(gen::o_shippriority(r));
                    },
                    tick,
                ));
                spawn_shuffle(
                    &runtime,
                    &o_stage,
                    node,
                    &format!("q3-o-{node}"),
                    o_proj,
                    threads,
                    &cost,
                );

                // Join 1 (semi on custkey) → re-key output on the order key
                // → shuffle.
                let c_recv = receive_op(&c_stage, node, 8, threads, &cost);
                let o_recv = receive_op(&o_stage, node, 21, threads, &cost);
                let semi = Arc::new(HashSemiJoin::new(
                    runtime.kernel(),
                    c_recv,
                    o_recv,
                    q_key8,
                    q_key8,
                    threads,
                    hash_cost,
                ));
                let rekey = Arc::new(Project::new(
                    semi,
                    13,
                    |r, out| out.extend_from_slice(&r[8..21]),
                    tick,
                ));
                spawn_shuffle(
                    &runtime,
                    &j_stage,
                    node,
                    &format!("q3-j-{node}"),
                    rekey,
                    threads,
                    &cost,
                );

                // Lineitem: σ(shipdate > cut) → π(okey, revenue) → shuffle.
                let li_scan = Arc::new(MemScan::new(
                    dataset.lineitem[node].clone(),
                    threads,
                    scan_bw,
                ));
                let li_filt = Arc::new(Filter::new(
                    li_scan,
                    move |r| gen::l_shipdate(r) > cut,
                    tick,
                ));
                let li_proj = Arc::new(Project::new(
                    li_filt,
                    16,
                    |r, out| {
                        out.extend_from_slice(&gen::l_orderkey(r).to_le_bytes());
                        out.extend_from_slice(
                            &revenue(gen::l_extendedprice(r), gen::l_discount(r)).to_le_bytes(),
                        );
                    },
                    tick,
                ));
                spawn_shuffle(
                    &runtime,
                    &li_stage,
                    node,
                    &format!("q3-li-{node}"),
                    li_proj,
                    threads,
                    &cost,
                );

                // Join 2 on the order key, then SUM(revenue) by order.
                let j_recv = receive_op(&j_stage, node, 13, threads, &cost);
                let li_recv = receive_op(&li_stage, node, 16, threads, &cost);
                let join = Arc::new(HashJoin::new(
                    runtime.kernel(),
                    j_recv,
                    li_recv,
                    q_key8,
                    q_key8,
                    |orders_row, li_row, out| {
                        out.extend_from_slice(&li_row[0..16]); // okey, revenue
                        out.extend_from_slice(&orders_row[8..13]); // date, prio
                    },
                    21,
                    threads,
                    hash_cost,
                ));
                let agg = Arc::new(HashAggregate::new(
                    runtime.kernel(),
                    join,
                    q_key8,
                    |row| {
                        let mut acc = row[0..8].to_vec(); // okey
                        acc.extend_from_slice(&row[8..16]); // revenue
                        acc.extend_from_slice(&row[16..21]); // date, prio
                        acc
                    },
                    |acc, row| {
                        let cur = i64::from_le_bytes(acc[8..16].try_into().expect("8 bytes"));
                        let add = i64::from_le_bytes(row[8..16].try_into().expect("8 bytes"));
                        acc[8..16].copy_from_slice(&(cur + add).to_le_bytes());
                    },
                    21,
                    threads,
                    hash_cost,
                ));
                collect_groups(
                    &runtime,
                    node,
                    &format!("q3-agg-{node}"),
                    agg,
                    threads,
                    0,
                    8,
                    groups.clone(),
                );
            }
        }
        (QueryId::Q10, transport) => {
            let lo = gen::date(1993, 10, 1);
            let hi = gen::date(1994, 1, 1);
            let o_stage = build_stage(&runtime, transport, threads);
            let li_stage = build_stage(&runtime, transport, threads);
            let j_stage = build_stage(&runtime, transport, threads);
            let c_stage = build_stage(&runtime, transport, threads);
            for node in 0..nodes {
                // Orders: σ(date ∈ [lo, hi)) → π(okey, custkey) on okey.
                let o_scan = Arc::new(MemScan::new(dataset.orders[node].clone(), threads, scan_bw));
                let o_filt = Arc::new(Filter::new(
                    o_scan,
                    move |r| (lo..hi).contains(&gen::o_orderdate(r)),
                    tick,
                ));
                let o_proj = Arc::new(Project::new(
                    o_filt,
                    16,
                    |r, out| {
                        out.extend_from_slice(&gen::o_orderkey(r).to_le_bytes());
                        out.extend_from_slice(&gen::o_custkey(r).to_le_bytes());
                    },
                    tick,
                ));
                spawn_shuffle(
                    &runtime,
                    &o_stage,
                    node,
                    &format!("q10-o-{node}"),
                    o_proj,
                    threads,
                    &cost,
                );

                // Lineitem: σ(returnflag = 'R') → π(okey, revenue) on okey.
                let li_scan = Arc::new(MemScan::new(
                    dataset.lineitem[node].clone(),
                    threads,
                    scan_bw,
                ));
                let li_filt =
                    Arc::new(Filter::new(li_scan, |r| gen::l_returnflag(r) == b'R', tick));
                let li_proj = Arc::new(Project::new(
                    li_filt,
                    16,
                    |r, out| {
                        out.extend_from_slice(&gen::l_orderkey(r).to_le_bytes());
                        out.extend_from_slice(
                            &revenue(gen::l_extendedprice(r), gen::l_discount(r)).to_le_bytes(),
                        );
                    },
                    tick,
                ));
                spawn_shuffle(
                    &runtime,
                    &li_stage,
                    node,
                    &format!("q10-li-{node}"),
                    li_proj,
                    threads,
                    &cost,
                );

                // Join 1 on okey → π(custkey, revenue) re-shuffled on the
                // customer key.
                let o_recv = receive_op(&o_stage, node, 16, threads, &cost);
                let li_recv = receive_op(&li_stage, node, 16, threads, &cost);
                let join1 = Arc::new(HashJoin::new(
                    runtime.kernel(),
                    o_recv,
                    li_recv,
                    q_key8,
                    q_key8,
                    |o_row, li_row, out| {
                        out.extend_from_slice(&o_row[8..16]); // custkey
                        out.extend_from_slice(&li_row[8..16]); // revenue
                    },
                    16,
                    threads,
                    hash_cost,
                ));
                spawn_shuffle(
                    &runtime,
                    &j_stage,
                    node,
                    &format!("q10-j-{node}"),
                    join1,
                    threads,
                    &cost,
                );

                // Customer ⋈ NATION locally (NATION is replicated), then
                // shuffled on the customer key.
                let n_scan = Arc::new(MemScan::new(dataset.nation.clone(), threads, scan_bw));
                let c_scan = Arc::new(MemScan::new(
                    dataset.customer[node].clone(),
                    threads,
                    scan_bw,
                ));
                let c_nation = Arc::new(HashJoin::new(
                    runtime.kernel(),
                    n_scan,
                    c_scan,
                    |n| u32::from_le_bytes(n[0..4].try_into().expect("4 bytes")) as u64,
                    |c| gen::c_nationkey(c) as u64,
                    |_n_row, c_row, out| {
                        out.extend_from_slice(&c_row[0..8]); // custkey
                    },
                    8,
                    threads,
                    hash_cost,
                ));
                spawn_shuffle(
                    &runtime,
                    &c_stage,
                    node,
                    &format!("q10-c-{node}"),
                    c_nation,
                    threads,
                    &cost,
                );

                // Final join on custkey, SUM(revenue) by customer.
                let c_recv = receive_op(&c_stage, node, 8, threads, &cost);
                let j_recv = receive_op(&j_stage, node, 16, threads, &cost);
                let join2 = Arc::new(HashJoin::new(
                    runtime.kernel(),
                    c_recv,
                    j_recv,
                    q_key8,
                    q_key8,
                    |_c_row, j_row, out| out.extend_from_slice(&j_row[0..16]),
                    16,
                    threads,
                    hash_cost,
                ));
                let agg = Arc::new(HashAggregate::new(
                    runtime.kernel(),
                    join2,
                    q_key8,
                    |row| row[0..16].to_vec(),
                    |acc, row| {
                        let cur = i64::from_le_bytes(acc[8..16].try_into().expect("8 bytes"));
                        let add = i64::from_le_bytes(row[8..16].try_into().expect("8 bytes"));
                        acc[8..16].copy_from_slice(&(cur + add).to_le_bytes());
                    },
                    16,
                    threads,
                    hash_cost,
                ));
                collect_groups(
                    &runtime,
                    node,
                    &format!("q10-agg-{node}"),
                    agg,
                    threads,
                    0,
                    8,
                    groups.clone(),
                );
            }
        }
    }

    runtime.cluster().run();
    let response_time = runtime.kernel().now() - rshuffle_simnet::SimTime::ZERO;
    let groups = Arc::try_unwrap(groups)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    QueryResult {
        response_time,
        groups,
    }
}

/// Q4 source fragments on one node: the filtered/projected LINEITEM and
/// ORDERS streams.
fn q4_sources(
    dataset: &Dataset,
    node: usize,
    threads: usize,
    scan_bw: f64,
    tick: SimDuration,
) -> (Arc<dyn Operator>, Arc<dyn Operator>) {
    let lo = gen::date(1993, 7, 1);
    let hi = gen::date(1993, 10, 1);
    let li_scan = Arc::new(MemScan::new(
        dataset.lineitem[node].clone(),
        threads,
        scan_bw,
    ));
    let li_filt = Arc::new(Filter::new(
        li_scan,
        |r| gen::l_commitdate(r) < gen::l_receiptdate(r),
        tick,
    ));
    let li_proj = Arc::new(Project::new(
        li_filt,
        8,
        |r, out| out.extend_from_slice(&r[0..8]),
        tick,
    ));
    let o_scan = Arc::new(MemScan::new(dataset.orders[node].clone(), threads, scan_bw));
    let o_filt = Arc::new(Filter::new(
        o_scan,
        move |r| (lo..hi).contains(&gen::o_orderdate(r)),
        tick,
    ));
    let o_proj = Arc::new(Project::new(
        o_filt,
        9,
        |r, out| {
            out.extend_from_slice(&gen::o_orderkey(r).to_le_bytes());
            out.push(gen::o_orderpriority(r));
        },
        tick,
    ));
    (li_proj, o_proj)
}

/// Q4's aggregation: COUNT(*) by order priority over the semi-join output.
fn q4_aggregate(
    runtime: &Arc<VerbsRuntime>,
    semi: Arc<dyn Operator>,
    threads: usize,
    hash_cost: SimDuration,
) -> Arc<dyn Operator> {
    Arc::new(HashAggregate::new(
        runtime.kernel(),
        semi,
        |row| row[8] as u64, // o_orderpriority
        |row| {
            let mut acc = (row[8] as u64).to_le_bytes().to_vec();
            acc.extend_from_slice(&1i64.to_le_bytes());
            acc
        },
        |acc, _row| {
            let cur = i64::from_le_bytes(acc[8..16].try_into().expect("8 bytes"));
            acc[8..16].copy_from_slice(&(cur + 1).to_le_bytes());
        },
        16,
        threads,
        hash_cost,
    ))
}

fn q_key8(row: &[u8]) -> u64 {
    u64::from_le_bytes(row[0..8].try_into().expect("8 bytes"))
}

/// Host-side reference execution for validation: computes the same
/// aggregate map directly from the generated data.
pub fn reference(dataset: &Dataset, query: QueryId) -> HashMap<u64, i64> {
    let mut out = HashMap::new();
    match query {
        QueryId::Q4 => {
            let lo = gen::date(1993, 7, 1);
            let hi = gen::date(1993, 10, 1);
            let mut has_late_line = std::collections::HashSet::new();
            for frag in &dataset.lineitem {
                for r in frag.iter() {
                    if gen::l_commitdate(r) < gen::l_receiptdate(r) {
                        has_late_line.insert(gen::l_orderkey(r));
                    }
                }
            }
            for frag in &dataset.orders {
                for r in frag.iter() {
                    if (lo..hi).contains(&gen::o_orderdate(r))
                        && has_late_line.contains(&gen::o_orderkey(r))
                    {
                        *out.entry(gen::o_orderpriority(r) as u64).or_insert(0) += 1;
                    }
                }
            }
        }
        QueryId::Q3 => {
            let cut = gen::date(1995, 3, 15);
            let mut building = std::collections::HashSet::new();
            for frag in &dataset.customer {
                for r in frag.iter() {
                    if gen::c_mktsegment(r) == MKTSEGMENT_BUILDING {
                        building.insert(gen::c_custkey(r));
                    }
                }
            }
            let mut qualifying_orders = std::collections::HashSet::new();
            for frag in &dataset.orders {
                for r in frag.iter() {
                    if gen::o_orderdate(r) < cut && building.contains(&gen::o_custkey(r)) {
                        qualifying_orders.insert(gen::o_orderkey(r));
                    }
                }
            }
            for frag in &dataset.lineitem {
                for r in frag.iter() {
                    if gen::l_shipdate(r) > cut && qualifying_orders.contains(&gen::l_orderkey(r)) {
                        *out.entry(gen::l_orderkey(r)).or_insert(0) +=
                            revenue(gen::l_extendedprice(r), gen::l_discount(r));
                    }
                }
            }
        }
        QueryId::Q10 => {
            let lo = gen::date(1993, 10, 1);
            let hi = gen::date(1994, 1, 1);
            let mut order_cust = HashMap::new();
            for frag in &dataset.orders {
                for r in frag.iter() {
                    if (lo..hi).contains(&gen::o_orderdate(r)) {
                        order_cust.insert(gen::o_orderkey(r), gen::o_custkey(r));
                    }
                }
            }
            for frag in &dataset.lineitem {
                for r in frag.iter() {
                    if gen::l_returnflag(r) == b'R' {
                        if let Some(&ck) = order_cust.get(&gen::l_orderkey(r)) {
                            *out.entry(ck).or_insert(0) +=
                                revenue(gen::l_extendedprice(r), gen::l_discount(r));
                        }
                    }
                }
            }
        }
    }
    out
}
