//! dbgen-style generator for the pre-projected TPC-H subset.
//!
//! Cardinalities per scale factor follow the TPC-H specification:
//! 150 000 customers, 1 500 000 orders, and 1–7 lineitems per order
//! (≈6 000 000). Value distributions are simplified but preserve what the
//! queries select on: date ranges, market segments, order priorities,
//! return flags, discounts and prices.
//!
//! Row formats (little-endian, fixed width, pre-projected):
//!
//! * LINEITEM (37 B): `l_orderkey` u64, `l_extendedprice` i64 (cents),
//!   `l_discount` i64 (basis points), `l_shipdate` u32, `l_commitdate`
//!   u32, `l_receiptdate` u32, `l_returnflag` u8
//! * ORDERS (22 B): `o_orderkey` u64, `o_custkey` u64, `o_orderdate` u32,
//!   `o_orderpriority` u8, `o_shippriority` u8
//! * CUSTOMER (21 B): `c_custkey` u64, `c_acctbal` i64 (cents),
//!   `c_nationkey` u32, `c_mktsegment` u8
//! * NATION (8 B): `n_nationkey` u32, `n_regionkey` u32 — replicated
//! * REGION (4 B): `r_regionkey` u32 — replicated

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rshuffle_engine::table::TableBuilder;
use rshuffle_engine::Table;

/// LINEITEM row width.
pub const LINEITEM_ROW: usize = 37;
/// ORDERS row width.
pub const ORDERS_ROW: usize = 22;
/// CUSTOMER row width.
pub const CUSTOMER_ROW: usize = 21;
/// NATION row width.
pub const NATION_ROW: usize = 8;
/// REGION row width.
pub const REGION_ROW: usize = 4;

/// Days since 1992-01-01 for the given date (validity unchecked beyond
/// month lengths; TPC-H dates fall in 1992–1998).
pub fn date(y: u32, m: u32, d: u32) -> u32 {
    // Cumulative days per month (non-leap).
    const CUM: [u32; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];
    assert!((1992..=1998).contains(&y) && (1..=12).contains(&m) && (1..=31).contains(&d));
    let mut days = 0;
    for year in 1992..y {
        days += if year % 4 == 0 { 366 } else { 365 };
    }
    days += CUM[(m - 1) as usize];
    if y.is_multiple_of(4) && m > 2 {
        days += 1;
    }
    days + d - 1
}

/// How tuples are placed on the cluster.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Every tuple to a (seeded) random node — the paper's setup.
    Random,
    /// ORDERS and LINEITEM co-partitioned on the order key, CUSTOMER on the
    /// customer key: the "local data" plan of Figure 14 needs no shuffle
    /// for the order–lineitem join.
    CoPartitioned,
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Scale factor (1.0 = 6M lineitems). Fractional SFs scale all row
    /// counts linearly.
    pub scale: f64,
    /// Cluster size.
    pub nodes: usize,
    /// Tuple placement policy.
    pub placement: Placement,
    /// RNG seed.
    pub seed: u64,
}

/// One node's fragments of the database.
#[derive(Clone)]
pub struct Dataset {
    /// LINEITEM fragments, one per node.
    pub lineitem: Vec<Table>,
    /// ORDERS fragments, one per node.
    pub orders: Vec<Table>,
    /// CUSTOMER fragments, one per node.
    pub customer: Vec<Table>,
    /// NATION, replicated (same on every node).
    pub nation: Table,
    /// REGION, replicated.
    pub region: Table,
}

// ---- field accessors ----

/// `l_orderkey` of a LINEITEM row.
pub fn l_orderkey(row: &[u8]) -> u64 {
    u64::from_le_bytes(row[0..8].try_into().expect("8 bytes"))
}
/// `l_extendedprice` in cents.
pub fn l_extendedprice(row: &[u8]) -> i64 {
    i64::from_le_bytes(row[8..16].try_into().expect("8 bytes"))
}
/// `l_discount` in basis points (0–1000).
pub fn l_discount(row: &[u8]) -> i64 {
    i64::from_le_bytes(row[16..24].try_into().expect("8 bytes"))
}
/// `l_shipdate` (days since 1992-01-01).
pub fn l_shipdate(row: &[u8]) -> u32 {
    u32::from_le_bytes(row[24..28].try_into().expect("4 bytes"))
}
/// `l_commitdate`.
pub fn l_commitdate(row: &[u8]) -> u32 {
    u32::from_le_bytes(row[28..32].try_into().expect("4 bytes"))
}
/// `l_receiptdate`.
pub fn l_receiptdate(row: &[u8]) -> u32 {
    u32::from_le_bytes(row[32..36].try_into().expect("4 bytes"))
}
/// `l_returnflag` (b'R', b'A' or b'N').
pub fn l_returnflag(row: &[u8]) -> u8 {
    row[36]
}

/// `o_orderkey` of an ORDERS row.
pub fn o_orderkey(row: &[u8]) -> u64 {
    u64::from_le_bytes(row[0..8].try_into().expect("8 bytes"))
}
/// `o_custkey`.
pub fn o_custkey(row: &[u8]) -> u64 {
    u64::from_le_bytes(row[8..16].try_into().expect("8 bytes"))
}
/// `o_orderdate`.
pub fn o_orderdate(row: &[u8]) -> u32 {
    u32::from_le_bytes(row[16..20].try_into().expect("4 bytes"))
}
/// `o_orderpriority` (0–4, mapping to 1-URGENT … 5-LOW).
pub fn o_orderpriority(row: &[u8]) -> u8 {
    row[20]
}
/// `o_shippriority` (always 0 in TPC-H).
pub fn o_shippriority(row: &[u8]) -> u8 {
    row[21]
}

/// `c_custkey` of a CUSTOMER row.
pub fn c_custkey(row: &[u8]) -> u64 {
    u64::from_le_bytes(row[0..8].try_into().expect("8 bytes"))
}
/// `c_acctbal` in cents.
pub fn c_acctbal(row: &[u8]) -> i64 {
    i64::from_le_bytes(row[8..16].try_into().expect("8 bytes"))
}
/// `c_nationkey`.
pub fn c_nationkey(row: &[u8]) -> u32 {
    u32::from_le_bytes(row[16..20].try_into().expect("4 bytes"))
}
/// `c_mktsegment` (0–4; 0 = BUILDING).
pub fn c_mktsegment(row: &[u8]) -> u8 {
    row[20]
}

impl Dataset {
    /// Generates the database per `cfg`.
    pub fn generate(cfg: &GenConfig) -> Dataset {
        assert!(cfg.scale > 0.0, "scale must be positive");
        assert!(cfg.nodes > 0, "need at least one node");
        let customers = (150_000.0 * cfg.scale) as u64;
        let orders = (1_500_000.0 * cfg.scale) as u64;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut li_builders: Vec<TableBuilder> = (0..cfg.nodes)
            .map(|_| TableBuilder::new(LINEITEM_ROW))
            .collect();
        let mut o_builders: Vec<TableBuilder> = (0..cfg.nodes)
            .map(|_| TableBuilder::new(ORDERS_ROW))
            .collect();
        let mut c_builders: Vec<TableBuilder> = (0..cfg.nodes)
            .map(|_| TableBuilder::new(CUSTOMER_ROW))
            .collect();

        let place = |rng: &mut StdRng, key: u64, cfg: &GenConfig| -> usize {
            match cfg.placement {
                Placement::Random => rng.gen_range(0..cfg.nodes),
                Placement::CoPartitioned => {
                    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % cfg.nodes as u64) as usize
                }
            }
        };

        // CUSTOMER.
        for ck in 1..=customers {
            let mut row = [0u8; CUSTOMER_ROW];
            row[0..8].copy_from_slice(&ck.to_le_bytes());
            let acctbal: i64 = rng.gen_range(-99_999..=999_999);
            row[8..16].copy_from_slice(&acctbal.to_le_bytes());
            let nation: u32 = rng.gen_range(0..25);
            row[16..20].copy_from_slice(&nation.to_le_bytes());
            row[20] = rng.gen_range(0..5u8);
            let node = place(&mut rng, ck, cfg);
            c_builders[node].push(&row);
        }

        // ORDERS + LINEITEM. Order dates span 1992-01-01 .. 1998-08-02.
        let last_orderdate = date(1998, 8, 2) - 121;
        for ok in 1..=orders {
            let custkey = rng.gen_range(1..=customers);
            let orderdate = rng.gen_range(0..=last_orderdate);
            let mut row = [0u8; ORDERS_ROW];
            row[0..8].copy_from_slice(&ok.to_le_bytes());
            row[8..16].copy_from_slice(&custkey.to_le_bytes());
            row[16..20].copy_from_slice(&orderdate.to_le_bytes());
            row[20] = rng.gen_range(0..5u8);
            row[21] = 0;
            let node = place(&mut rng, ok, cfg);
            o_builders[node].push(&row);

            let lines: u32 = rng.gen_range(1..=7);
            for _ in 0..lines {
                let mut li = [0u8; LINEITEM_ROW];
                li[0..8].copy_from_slice(&ok.to_le_bytes());
                let price: i64 = rng.gen_range(90_000..=10_500_000);
                li[8..16].copy_from_slice(&price.to_le_bytes());
                let discount: i64 = rng.gen_range(0..=1_000); // 0–10% in bp.
                li[16..24].copy_from_slice(&discount.to_le_bytes());
                let shipdate = orderdate + rng.gen_range(1..=121);
                li[24..28].copy_from_slice(&shipdate.to_le_bytes());
                let commitdate = orderdate + rng.gen_range(30..=90);
                li[28..32].copy_from_slice(&commitdate.to_le_bytes());
                let receiptdate = shipdate + rng.gen_range(1..=30);
                li[32..36].copy_from_slice(&receiptdate.to_le_bytes());
                li[36] = match rng.gen_range(0..4u8) {
                    // ~25% returned, per the spec's R/A/N mix on old orders.
                    0 => b'R',
                    1 => b'A',
                    _ => b'N',
                };
                let node = place(&mut rng, ok, cfg);
                li_builders[node].push(&li);
            }
        }

        // NATION and REGION, replicated (25 and 5 rows).
        let mut nation = TableBuilder::new(NATION_ROW);
        for nk in 0..25u32 {
            let mut row = [0u8; NATION_ROW];
            row[0..4].copy_from_slice(&nk.to_le_bytes());
            row[4..8].copy_from_slice(&(nk % 5).to_le_bytes());
            nation.push(&row);
        }
        let mut region = TableBuilder::new(REGION_ROW);
        for rk in 0..5u32 {
            region.push(&rk.to_le_bytes());
        }

        Dataset {
            lineitem: li_builders.into_iter().map(TableBuilder::build).collect(),
            orders: o_builders.into_iter().map(TableBuilder::build).collect(),
            customer: c_builders.into_iter().map(TableBuilder::build).collect(),
            nation: nation.build(),
            region: region.build(),
        }
    }

    /// Total LINEITEM rows across all nodes.
    pub fn lineitem_rows(&self) -> usize {
        self.lineitem.iter().map(Table::rows).sum()
    }

    /// Total ORDERS rows across all nodes.
    pub fn orders_rows(&self) -> usize {
        self.orders.iter().map(Table::rows).sum()
    }

    /// Total CUSTOMER rows across all nodes.
    pub fn customer_rows(&self) -> usize {
        self.customer.iter().map(Table::rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::generate(&GenConfig {
            scale: 0.01,
            nodes: 4,
            placement: Placement::Random,
            seed: 7,
        })
    }

    #[test]
    fn cardinalities_match_spec_ratios() {
        let d = tiny();
        assert_eq!(d.customer_rows(), 1_500);
        assert_eq!(d.orders_rows(), 15_000);
        let li = d.lineitem_rows();
        // 1–7 lines per order, expectation 4.
        assert!((45_000..75_000).contains(&li), "lineitems: {li}");
        assert_eq!(d.nation.rows(), 25);
        assert_eq!(d.region.rows(), 5);
    }

    #[test]
    fn random_placement_spreads_tuples() {
        let d = tiny();
        for node in 0..4 {
            let frac = d.orders[node].rows() as f64 / d.orders_rows() as f64;
            assert!((0.2..0.3).contains(&frac), "node {node} holds {frac}");
        }
    }

    #[test]
    fn co_partitioning_places_order_and_lines_together() {
        let d = Dataset::generate(&GenConfig {
            scale: 0.01,
            nodes: 4,
            placement: Placement::CoPartitioned,
            seed: 7,
        });
        // Every lineitem's order key must hash to its own node.
        for node in 0..4 {
            for row in d.lineitem[node].iter() {
                let key = l_orderkey(row);
                let expect = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 4) as usize;
                assert_eq!(expect, node);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        for node in 0..4 {
            assert_eq!(a.lineitem[node].rows(), b.lineitem[node].rows());
            if a.lineitem[node].rows() > 0 {
                assert_eq!(a.lineitem[node].row(0), b.lineitem[node].row(0));
            }
        }
    }

    #[test]
    fn date_arithmetic() {
        assert_eq!(date(1992, 1, 1), 0);
        assert_eq!(date(1992, 2, 1), 31);
        assert_eq!(date(1993, 1, 1), 366); // 1992 is a leap year.
        assert!(date(1995, 3, 15) > date(1995, 3, 14));
        assert!(date(1998, 8, 2) > date(1993, 7, 1));
    }

    #[test]
    fn lineitem_dates_are_consistent() {
        let d = tiny();
        for node in 0..4 {
            for row in d.lineitem[node].iter() {
                assert!(l_receiptdate(row) > l_shipdate(row));
                assert!(l_commitdate(row) > 0);
                assert!([b'R', b'A', b'N'].contains(&l_returnflag(row)));
                assert!((0..=1_000).contains(&l_discount(row)));
            }
        }
    }
}
