//! Distributed TPC-H queries return exactly the single-node reference
//! answer, for every transport and for the co-partitioned local plan.

use rshuffle::ShuffleAlgorithm;
use rshuffle_simnet::DeviceProfile;
use rshuffle_tpch::queries::reference;
use rshuffle_tpch::{run_query, Dataset, GenConfig, Placement, QueryId, QueryTransport};

fn dataset(nodes: usize, placement: Placement) -> Dataset {
    Dataset::generate(&GenConfig {
        scale: 0.01,
        nodes,
        placement,
        seed: 11,
    })
}

fn check(query: QueryId, transport: QueryTransport, placement: Placement) {
    let nodes = 3;
    let d = dataset(nodes, placement);
    let expect = reference(&d, query);
    let result = run_query(DeviceProfile::edr(), &d, query, transport, 2);
    assert!(!expect.is_empty(), "reference result must be non-trivial");
    assert_eq!(
        result.groups, expect,
        "{query:?} over {transport} disagrees with the reference"
    );
    assert!(result.response_time.as_nanos() > 0);
}

#[test]
fn q4_mesq_sr_matches_reference() {
    check(
        QueryId::Q4,
        QueryTransport::Rdma(ShuffleAlgorithm::MESQ_SR),
        Placement::Random,
    );
}

#[test]
fn q4_memq_sr_matches_reference() {
    check(
        QueryId::Q4,
        QueryTransport::Rdma(ShuffleAlgorithm::MEMQ_SR),
        Placement::Random,
    );
}

#[test]
fn q4_memq_rd_matches_reference() {
    check(
        QueryId::Q4,
        QueryTransport::Rdma(ShuffleAlgorithm::MEMQ_RD),
        Placement::Random,
    );
}

#[test]
fn q4_mpi_matches_reference() {
    check(QueryId::Q4, QueryTransport::Mpi, Placement::Random);
}

#[test]
fn q4_local_data_matches_reference_when_co_partitioned() {
    check(
        QueryId::Q4,
        QueryTransport::LocalData,
        Placement::CoPartitioned,
    );
}

#[test]
fn q3_mesq_sr_matches_reference() {
    check(
        QueryId::Q3,
        QueryTransport::Rdma(ShuffleAlgorithm::MESQ_SR),
        Placement::Random,
    );
}

#[test]
fn q3_mpi_matches_reference() {
    check(QueryId::Q3, QueryTransport::Mpi, Placement::Random);
}

#[test]
fn q10_mesq_sr_matches_reference() {
    check(
        QueryId::Q10,
        QueryTransport::Rdma(ShuffleAlgorithm::MESQ_SR),
        Placement::Random,
    );
}

#[test]
fn q10_mpi_matches_reference() {
    check(QueryId::Q10, QueryTransport::Mpi, Placement::Random);
}

#[test]
#[should_panic(expected = "co-partitioning is impossible")]
fn q3_local_data_is_rejected() {
    let d = dataset(2, Placement::CoPartitioned);
    let _ = run_query(
        DeviceProfile::edr(),
        &d,
        QueryId::Q3,
        QueryTransport::LocalData,
        2,
    );
}

#[test]
fn mesq_sr_is_not_slower_than_mpi_on_q4() {
    let d = dataset(3, Placement::Random);
    let rdma = run_query(
        DeviceProfile::edr(),
        &d,
        QueryId::Q4,
        QueryTransport::Rdma(ShuffleAlgorithm::MESQ_SR),
        2,
    );
    let mpi = run_query(
        DeviceProfile::edr(),
        &d,
        QueryId::Q4,
        QueryTransport::Mpi,
        2,
    );
    assert!(
        rdma.response_time <= mpi.response_time,
        "MESQ/SR {:?} slower than MPI {:?}",
        rdma.response_time,
        mpi.response_time
    );
}
