//! Connection multiplexing: bounded shared-QP pools between the shuffle
//! endpoints and the verbs layer.
//!
//! The paper's reliable designs open one RC Queue Pair per
//! `(sender lane, destination)` pair, so QP state grows as `N × T` per
//! node and the NIC's QP-context cache starts thrashing well before the
//! fabric saturates (Figure 11; RDMAvisor calls QP-count explosion *the*
//! RDMA scalability wall). This crate virtualizes endpoints over a
//! bounded pool of shared physical connections:
//!
//! * A [`Multiplexer`] owns, per *directed node pair* `(src, dst)`, a
//!   pool of at most [`MuxConfig::qp_cap_per_pair`] **slots**. A slot
//!   models one real RC connection: one NIC QP context on each side and
//!   one delivery-order clock (see
//!   [`rshuffle_verbs::SharedQpSlot`]).
//! * Each virtual endpoint **leases** a slot at wiring time. Leasing is
//!   LRU-style: a vacant pool position materializes a fresh slot; once
//!   the pool is full, the least-recently-leased slot is shared (a
//!   *lease wait*, counted — each one is a virtual endpoint serialized
//!   behind a stranger's traffic).
//! * Demultiplexing rides the existing `MsgHeader` `src_tid` / flow
//!   machinery: virtual QPs keep their **own** receive queues,
//!   completion queues and credit state, so slot sharing never merges
//!   credit pools and every invariant checked by `crates/audit` holds
//!   unchanged. The [`CreditBook`] records the per-virtual-endpoint
//!   grants so the aggregate posted-receive demand behind each shared
//!   slot stays observable (and so tests can assert conservation).
//!
//! When the cap is at least as large as the natural lane count, the
//! exchange skips the multiplexer entirely and the data path is
//! byte-identical to the direct wiring — the identity the conformance
//! suite pins.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_obs::{names, Labels, Obs};
use rshuffle_verbs::{NodeId, SharedQpSlot};

/// Multiplexer configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MuxConfig {
    /// Maximum physical QP slots per directed node pair. Virtual
    /// endpoints beyond the cap share the least-recently-leased slot.
    pub qp_cap_per_pair: usize,
}

impl MuxConfig {
    /// A config capping each directed node pair at `cap` physical QPs
    /// (clamped to at least 1 — a pair always needs one connection).
    pub fn with_cap(cap: usize) -> MuxConfig {
        MuxConfig {
            qp_cap_per_pair: cap.max(1),
        }
    }

    /// Whether multiplexing changes anything for a pair with `lanes`
    /// natural connections. When it does not, callers skip the lease
    /// table entirely and the wiring is byte-identical to the direct
    /// path.
    pub fn applies(&self, lanes: usize) -> bool {
        lanes > self.qp_cap_per_pair
    }

    /// Physical QPs a pair with `lanes` natural connections ends up
    /// with under this cap.
    pub fn effective_slots(&self, lanes: usize) -> usize {
        lanes.min(self.qp_cap_per_pair)
    }
}

/// One materialized shared-connection slot in a pair pool.
struct SlotState {
    /// Sender-side shared context + order clock (at `src`'s NIC).
    send_slot: Arc<SharedQpSlot>,
    /// Receiver-side shared context (at `dst`'s NIC).
    recv_slot: Arc<SharedQpSlot>,
    /// Current number of virtual endpoints bound to the slot.
    members: u32,
    /// Lease clock value of the most recent lease (LRU victim choice).
    last_leased: u64,
    /// Sum of the members' posted-receive credits (conservation check).
    credit_demand: u32,
}

/// Pool of slots for one directed node pair.
#[derive(Default)]
struct PairPool {
    slots: Vec<SlotState>,
}

/// Per-source-node lease statistics.
#[derive(Default, Clone, Copy)]
struct NodeStats {
    /// Virtual endpoints leased (what the direct path would have opened).
    natural: u64,
    /// Physical slots materialized.
    slots: u64,
    /// Leases that had to share an occupied slot.
    waits: u64,
}

/// A granted lease: which slot a virtual endpoint was bound to.
///
/// The caller binds its send-side QP to [`Lease::send_slot`] and the
/// matching receive-side QP to [`Lease::recv_slot`]
/// (via [`rshuffle_verbs::QueuePair::bind_shared_slot`]).
pub struct Lease {
    /// The directed pair the lease belongs to.
    pub pair: (NodeId, NodeId),
    /// Slot index within the pair's pool.
    pub slot: usize,
    /// Whether the slot already had another member (a lease wait).
    pub shared: bool,
    /// Sender-side slot to bind the local QP to.
    pub send_slot: Arc<SharedQpSlot>,
    /// Receiver-side slot to bind the remote QP to.
    pub recv_slot: Arc<SharedQpSlot>,
}

/// The connection multiplexer: per-pair slot pools plus lease stats.
pub struct Multiplexer {
    config: MuxConfig,
    /// Slot pools keyed by directed pair. BTreeMap so any aggregate
    /// iteration is in deterministic key order.
    pairs: Mutex<BTreeMap<(NodeId, NodeId), PairPool>>,
    /// Monotone lease clock (LRU recency).
    clock: AtomicU64,
    /// Per-source-node stats, deterministic order.
    stats: Mutex<BTreeMap<NodeId, NodeStats>>,
}

impl Multiplexer {
    /// Creates a multiplexer with `config`.
    pub fn new(config: MuxConfig) -> Arc<Multiplexer> {
        Arc::new(Multiplexer {
            config,
            pairs: Mutex::new(BTreeMap::new()),
            clock: AtomicU64::new(0),
            stats: Mutex::new(BTreeMap::new()),
        })
    }

    /// The configured cap.
    pub fn config(&self) -> MuxConfig {
        self.config
    }

    /// Leases a slot for one virtual endpoint on the directed pair
    /// `src → dst`, registering `credits` posted-receive credits in the
    /// slot's demand book. Deterministic: a vacant pool position is
    /// materialized first (lowest index); a full pool shares its
    /// least-recently-leased slot, ties broken by lowest index.
    pub fn lease(&self, src: NodeId, dst: NodeId, credits: u32) -> Lease {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut pairs = self.pairs.lock();
        let pool = pairs.entry((src, dst)).or_default();
        let mut stats = self.stats.lock();
        let node = stats.entry(src).or_default();
        node.natural += 1;
        let (slot_id, shared) = if pool.slots.len() < self.config.qp_cap_per_pair {
            pool.slots.push(SlotState {
                send_slot: SharedQpSlot::new(),
                recv_slot: SharedQpSlot::new(),
                members: 0,
                last_leased: 0,
                credit_demand: 0,
            });
            node.slots += 1;
            (pool.slots.len() - 1, false)
        } else {
            // LRU victim: least-recently-leased, lowest index on ties.
            let victim = pool
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(i, s)| (s.last_leased, *i))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let shared = pool.slots[victim].members > 0;
            if shared {
                node.waits += 1;
            }
            (victim, shared)
        };
        let slot = &mut pool.slots[slot_id];
        slot.members += 1;
        slot.last_leased = stamp;
        slot.credit_demand += credits;
        Lease {
            pair: (src, dst),
            slot: slot_id,
            shared,
            send_slot: slot.send_slot.clone(),
            recv_slot: slot.recv_slot.clone(),
        }
    }

    /// Returns a lease: the member leaves the slot and its `credits`
    /// are removed from the demand book. The slot itself stays
    /// materialized (a warm context, like a cached NIC entry); a later
    /// lease may reuse it. No-op on an unknown pair/slot.
    pub fn release(&self, lease: &Lease, credits: u32) {
        let mut pairs = self.pairs.lock();
        let Some(pool) = pairs.get_mut(&lease.pair) else {
            return;
        };
        let Some(slot) = pool.slots.get_mut(lease.slot) else {
            return;
        };
        slot.members = slot.members.saturating_sub(1);
        slot.credit_demand = slot.credit_demand.saturating_sub(credits);
    }

    /// Aggregate posted-receive credit demand behind one slot (the sum
    /// of its members' per-virtual-endpoint grants). `None` for an
    /// unknown pair or slot.
    pub fn slot_demand(&self, src: NodeId, dst: NodeId, slot: usize) -> Option<u32> {
        self.pairs
            .lock()
            .get(&(src, dst))
            .and_then(|p| p.slots.get(slot))
            .map(|s| s.credit_demand)
    }

    /// Current member count of one slot. `None` for an unknown
    /// pair or slot.
    pub fn slot_members(&self, src: NodeId, dst: NodeId, slot: usize) -> Option<u32> {
        self.pairs
            .lock()
            .get(&(src, dst))
            .and_then(|p| p.slots.get(slot))
            .map(|s| s.members)
    }

    /// Total physical slots materialized across all pairs.
    pub fn qp_count(&self) -> u64 {
        self.stats.lock().values().map(|s| s.slots).sum()
    }

    /// Total leases granted (the QP count the direct path would have).
    pub fn natural_qps(&self) -> u64 {
        self.stats.lock().values().map(|s| s.natural).sum()
    }

    /// Total leases that had to share an occupied slot.
    pub fn lease_waits(&self) -> u64 {
        self.stats.lock().values().map(|s| s.waits).sum()
    }

    /// Publishes per-node `mux.*` counters into `obs`.
    ///
    /// Intentionally lazy: a no-op unless at least one lease actually
    /// shared a slot, so a run whose cap never binds anything — the
    /// byte-identity configuration — registers no `mux.*` series and
    /// its snapshot matches the direct path exactly.
    pub fn publish(&self, obs: &Obs) {
        if self.lease_waits() == 0 {
            return;
        }
        let stats = self.stats.lock();
        for (&node, s) in stats.iter() {
            let labels = Labels::node(node as u32);
            obs.metrics
                .counter(names::MUX_NATURAL_QPS, labels)
                .add(s.natural);
            obs.metrics
                .counter(names::MUX_QP_COUNT, labels)
                .add(s.slots);
            obs.metrics
                .counter(names::MUX_LEASES, labels)
                .add(s.natural);
            obs.metrics
                .counter(names::MUX_LEASE_WAITS, labels)
                .add(s.waits);
        }
    }
}

/// Per-virtual-endpoint credit ledger.
///
/// Slot sharing must never merge credit pools: each virtual endpoint
/// owns its grants, and the sum of member grants equals the slot's
/// aggregate demand. The book records grants keyed by an opaque virtual
/// endpoint id so tests (and the auditor's credit-conservation check)
/// can assert exactly that.
#[derive(Default)]
pub struct CreditBook {
    grants: Mutex<BTreeMap<u64, u32>>,
}

impl CreditBook {
    /// An empty book.
    pub fn new() -> CreditBook {
        CreditBook::default()
    }

    /// Registers `credits` for virtual endpoint `vep`, replacing any
    /// previous grant. Returns the previous grant, if any.
    pub fn grant(&self, vep: u64, credits: u32) -> Option<u32> {
        self.grants.lock().insert(vep, credits)
    }

    /// Removes and returns the grant of virtual endpoint `vep`.
    pub fn revoke(&self, vep: u64) -> Option<u32> {
        self.grants.lock().remove(&vep)
    }

    /// Current grant of virtual endpoint `vep`.
    pub fn credits(&self, vep: u64) -> Option<u32> {
        self.grants.lock().get(&vep).copied()
    }

    /// Sum of all outstanding grants (must equal the aggregate slot
    /// demand the [`Multiplexer`] tracks for the same endpoints).
    pub fn total(&self) -> u64 {
        self.grants.lock().values().map(|&c| c as u64).sum()
    }

    /// Number of virtual endpoints holding grants.
    pub fn endpoints(&self) -> usize {
        self.grants.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_is_clamped_to_one() {
        assert_eq!(MuxConfig::with_cap(0).qp_cap_per_pair, 1);
        assert_eq!(MuxConfig::with_cap(7).qp_cap_per_pair, 7);
    }

    #[test]
    fn applies_only_when_lanes_exceed_cap() {
        let c = MuxConfig::with_cap(4);
        assert!(!c.applies(3));
        assert!(!c.applies(4));
        assert!(c.applies(5));
        assert_eq!(c.effective_slots(3), 3);
        assert_eq!(c.effective_slots(9), 4);
    }

    #[test]
    fn leases_materialize_then_share_lru() {
        let mux = Multiplexer::new(MuxConfig::with_cap(2));
        let a = mux.lease(0, 1, 2);
        let b = mux.lease(0, 1, 2);
        // First two leases fill the pool without sharing.
        assert_eq!((a.slot, a.shared), (0, false));
        assert_eq!((b.slot, b.shared), (1, false));
        // Third lease shares the least-recently-leased slot (slot 0).
        let c = mux.lease(0, 1, 2);
        assert_eq!((c.slot, c.shared), (0, true));
        // Fourth shares slot 1 (now the LRU one).
        let d = mux.lease(0, 1, 2);
        assert_eq!((d.slot, d.shared), (1, true));
        assert_eq!(mux.qp_count(), 2);
        assert_eq!(mux.natural_qps(), 4);
        assert_eq!(mux.lease_waits(), 2);
    }

    #[test]
    fn lease_sequences_are_deterministic() {
        let run = || {
            let mux = Multiplexer::new(MuxConfig::with_cap(3));
            let mut picks = Vec::new();
            for dst in 1..4usize {
                for _ in 0..5 {
                    let l = mux.lease(0, dst, 1);
                    picks.push((l.pair, l.slot, l.shared));
                }
            }
            picks
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pairs_are_directed_and_independent() {
        let mux = Multiplexer::new(MuxConfig::with_cap(1));
        let fwd = mux.lease(0, 1, 1);
        let rev = mux.lease(1, 0, 1);
        assert!(!fwd.shared);
        assert!(!rev.shared, "reverse direction has its own pool");
        assert_eq!(mux.qp_count(), 2);
    }

    #[test]
    fn credit_demand_is_conserved_per_slot() {
        let mux = Multiplexer::new(MuxConfig::with_cap(1));
        let a = mux.lease(0, 1, 4);
        let b = mux.lease(0, 1, 6);
        assert_eq!(mux.slot_demand(0, 1, 0), Some(10));
        assert_eq!(mux.slot_members(0, 1, 0), Some(2));
        mux.release(&a, 4);
        assert_eq!(mux.slot_demand(0, 1, 0), Some(6));
        mux.release(&b, 6);
        assert_eq!(mux.slot_demand(0, 1, 0), Some(0));
        assert_eq!(mux.slot_members(0, 1, 0), Some(0));
        // The slot stays materialized for reuse.
        assert_eq!(mux.qp_count(), 1);
        let c = mux.lease(0, 1, 2);
        assert_eq!(c.slot, 0);
        assert!(!c.shared, "an empty slot is reused without a wait");
    }

    #[test]
    fn release_of_unknown_slot_is_a_noop() {
        let mux = Multiplexer::new(MuxConfig::with_cap(1));
        let l = mux.lease(0, 1, 1);
        let bogus = Lease {
            pair: (9, 9),
            slot: 3,
            shared: false,
            send_slot: l.send_slot.clone(),
            recv_slot: l.recv_slot.clone(),
        };
        mux.release(&bogus, 1);
        assert_eq!(mux.slot_members(0, 1, 0), Some(1));
    }

    #[test]
    fn credit_book_conserves_totals() {
        let book = CreditBook::new();
        assert_eq!(book.grant(1, 4), None);
        assert_eq!(book.grant(2, 6), None);
        assert_eq!(book.total(), 10);
        assert_eq!(book.endpoints(), 2);
        // Re-granting replaces, not accumulates.
        assert_eq!(book.grant(1, 8), Some(4));
        assert_eq!(book.total(), 14);
        assert_eq!(book.revoke(2), Some(6));
        assert_eq!(book.total(), 8);
        assert_eq!(book.credits(1), Some(8));
        assert_eq!(book.credits(2), None);
    }

    #[test]
    fn publish_is_lazy_without_sharing() {
        let obs = Obs::new();
        let mux = Multiplexer::new(MuxConfig::with_cap(8));
        for dst in 1..4usize {
            let _ = mux.lease(0, dst, 2);
        }
        mux.publish(&obs);
        let snap = obs.metrics.snapshot();
        assert!(
            !snap.counters.iter().any(|(k, _)| k.starts_with("mux.")),
            "no mux.* series may appear when nothing shared a slot"
        );
    }

    #[test]
    fn publish_reports_sharing() {
        let obs = Obs::new();
        let mux = Multiplexer::new(MuxConfig::with_cap(1));
        let _ = mux.lease(0, 1, 2);
        let _ = mux.lease(0, 1, 2);
        mux.publish(&obs);
        let snap = obs.metrics.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k.starts_with(name))
                .map(|(_, v)| *v)
        };
        assert_eq!(get(names::MUX_QP_COUNT), Some(1));
        assert_eq!(get(names::MUX_NATURAL_QPS), Some(2));
        assert_eq!(get(names::MUX_LEASE_WAITS), Some(1));
    }
}
