//! Benchmark harness for the paper's evaluation (§5).
//!
//! [`workload`] drives the synthetic receive-throughput experiment that
//! §5.1 uses everywhere: every node scans a synthetic table R(a, b) and
//! repartitions (or broadcasts) it by R.a; the metric is receive throughput
//! per node. One binary per paper figure/table lives in `src/bin/`.

pub mod perf;
pub mod report;
pub mod skew;
pub mod workload;

pub use workload::{run_shuffle_workload, Pattern, Transport, WorkloadConfig, WorkloadResult};
