//! Perf-trajectory records: machine-readable `BENCH_*.json` emission,
//! parsing, and regression diffing.
//!
//! A [`BenchReport`] captures one measurement session under the stable
//! `rshuffle-bench/1` schema: the git commit, one [`BenchRun`] per
//! benchmark binary, and per-configuration [`BenchResult`] rows holding
//! scalar metrics (latency percentiles, throughput) plus per-stage
//! latency digests ([`HistogramSummary`]). Because the simulator is
//! deterministic, re-running the same collectors on the same tree
//! reproduces the report bit-for-bit — the committed baseline
//! (`BENCH_0008.json`) is therefore an exact perf contract that
//! `perfdiff` enforces in CI with a configurable tolerance.
//!
//! The measurement loops of the `concurrency` and `fig09_msgsize`
//! binaries live here ([`run_concurrency_matrix`],
//! [`run_msgsize_sweep`]) so the binaries, the `perfdiff` gate, and the
//! baseline recorder all drive the identical code path.

use std::sync::Arc;

use rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm};
use rshuffle_engine::ops::Generator;
use rshuffle_engine::workload::{run_workload, QuerySpec};
use rshuffle_obs::{stage::Stage, HistogramSnapshot, HistogramSummary, Snapshot};
use rshuffle_sched::{Scheduler, SchedulerConfig};
use rshuffle_simnet::DeviceProfile;
use serde::{Serialize, Value};

use crate::workload::{run_shuffle_workload, Transport, WorkloadConfig};

/// Schema tag written into every report; bump on breaking layout
/// changes so `perfdiff` refuses to compare across formats.
pub const SCHEMA: &str = "rshuffle-bench/1";

/// One scalar metric row with its explicit gating direction.
///
/// The direction is part of the record, not inferred from the name at
/// diff time: a metric named `throughput_ns` would be ambiguous under
/// name inference, and silently guessing wrong would flip the gate.
/// Name inference survives only as a parse-time fallback for baselines
/// recorded before the `directions` field existed.
#[derive(Clone, Debug)]
pub struct MetricRow {
    /// Metric name, unique within its result row.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Which way the gate lets this metric move.
    pub direction: Direction,
}

impl MetricRow {
    /// A latency-like metric: regression when it goes up.
    pub fn lower(name: &str, value: f64) -> Self {
        MetricRow {
            name: name.to_string(),
            value,
            direction: Direction::LowerIsBetter,
        }
    }

    /// A throughput-like metric: regression when it goes down.
    pub fn higher(name: &str, value: f64) -> Self {
        MetricRow {
            name: name.to_string(),
            value,
            direction: Direction::HigherIsBetter,
        }
    }

    /// A tracked-but-never-gated metric (e.g. memory footprints).
    pub fn info(name: &str, value: f64) -> Self {
        MetricRow {
            name: name.to_string(),
            value,
            direction: Direction::Informational,
        }
    }
}

/// One measured configuration of a benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Stable row id, e.g. `"MESQ/SR/N=2"` or `"MEMQ/RD/msg=64KiB"`.
    pub id: String,
    /// Gated scalar metrics.
    pub metrics: Vec<MetricRow>,
    /// Per-stage latency digests (informational; not gated).
    pub stages: Vec<(String, HistogramSummary)>,
}

/// One benchmark binary's worth of results.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Benchmark id, e.g. `"concurrency"`.
    pub bench: String,
    /// The configuration the rows were measured under.
    pub config: Vec<(String, Value)>,
    /// Measured rows.
    pub results: Vec<BenchResult>,
}

/// A full measurement session: what `BENCH_*.json` holds.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Git commit of the measured tree (`"unknown"` outside a repo).
    /// Informational: `perfdiff` ignores it when comparing.
    pub commit: String,
    /// One entry per benchmark.
    pub benches: Vec<BenchRun>,
}

impl BenchReport {
    /// An empty report stamped with the current commit.
    pub fn new() -> Self {
        BenchReport {
            schema: SCHEMA.to_string(),
            commit: commit_id(),
            benches: Vec::new(),
        }
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }
}

impl Default for BenchReport {
    fn default() -> Self {
        Self::new()
    }
}

impl Serialize for BenchResult {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), Value::Str(self.id.clone())),
            (
                "metrics".to_string(),
                Value::Object(
                    self.metrics
                        .iter()
                        .map(|m| (m.name.clone(), Value::Float(m.value)))
                        .collect(),
                ),
            ),
            (
                "directions".to_string(),
                Value::Object(
                    self.metrics
                        .iter()
                        .map(|m| (m.name.clone(), Value::Str(m.direction.tag().to_string())))
                        .collect(),
                ),
            ),
            (
                "stages".to_string(),
                Value::Object(
                    self.stages
                        .iter()
                        .map(|(k, s)| (k.clone(), s.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Serialize for BenchRun {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bench".to_string(), Value::Str(self.bench.clone())),
            ("config".to_string(), Value::Object(self.config.clone())),
            (
                "results".to_string(),
                Value::Array(self.results.iter().map(|r| r.to_value()).collect()),
            ),
        ])
    }
}

impl Serialize for BenchReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".to_string(), Value::Str(self.schema.clone())),
            ("commit".to_string(), Value::Str(self.commit.clone())),
            (
                "benches".to_string(),
                Value::Array(self.benches.iter().map(|b| b.to_value()).collect()),
            ),
        ])
    }
}

/// The current git commit, or `"unknown"` when not in a repository.
/// `RSHUFFLE_COMMIT` overrides (useful for reproducible fixtures).
pub fn commit_id() -> String {
    if let Ok(c) = std::env::var("RSHUFFLE_COMMIT") {
        return c;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Merges every labelled series of each stage histogram in `snapshot`
/// and returns the non-empty digests, keyed by the stage metric name.
pub fn stage_summaries(snapshot: &Snapshot) -> Vec<(String, HistogramSummary)> {
    Stage::ALL
        .iter()
        .filter_map(|stage| {
            let name = stage.metric_name();
            let mut merged = HistogramSnapshot::empty();
            for (key, h) in &snapshot.histograms {
                if key == name || key.starts_with(&format!("{name}{{")) {
                    merged.merge(h);
                }
            }
            (merged.count > 0).then(|| (name.to_string(), merged.summary()))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Concurrency matrix (the `concurrency` binary's measurement loop).
// ---------------------------------------------------------------------------

/// Cluster size of the concurrency benchmark.
pub const CONCURRENCY_NODES: usize = 3;
/// Worker threads per node of the concurrency benchmark.
pub const CONCURRENCY_THREADS: usize = 2;
/// Row size streamed by the concurrency benchmark.
pub const CONCURRENCY_ROW: usize = 16;
/// Concurrency levels of the smoke (CI) matrix.
pub const SMOKE_LEVELS: &[usize] = &[1, 2];
/// Rows per thread of the smoke (CI) matrix.
pub const SMOKE_ROWS_PER_THREAD: usize = 200;

/// One cell of the concurrency matrix: an `(algorithm, N)` run.
#[derive(Clone, Debug)]
pub struct ConcurrencyCell {
    /// Algorithm under test.
    pub algorithm: ShuffleAlgorithm,
    /// Concurrent queries.
    pub n: usize,
    /// Median submission-to-completion virtual latency.
    pub p50_ns: u64,
    /// Tail submission-to-completion virtual latency.
    pub p99_ns: u64,
    /// Virtual time from first admission to last completion.
    pub makespan_ns: u64,
    /// Aggregate delivered throughput over the makespan.
    pub agg_mbps: f64,
    /// Peak registered bytes across nodes.
    pub peak_bytes: usize,
    /// Invariant violations and per-query failures (empty on success).
    pub violations: Vec<String>,
    /// Per-stage latency digests for this cell's run.
    pub stages: Vec<(String, HistogramSummary)>,
}

/// Runs the scheduler-driven concurrency matrix: every algorithm at
/// every level of `levels`, `rows_per_thread` rows per worker. Each
/// cell gets a fresh cluster; the memory budget exactly fits N
/// concurrent copies of the query, so one byte of over-pinning trips a
/// violation.
pub fn run_concurrency_matrix(levels: &[usize], rows_per_thread: usize) -> Vec<ConcurrencyCell> {
    let mut cells = Vec::new();
    for algorithm in ShuffleAlgorithm::ALL {
        for &n in levels {
            cells.push(run_concurrency_cell(algorithm, n, rows_per_thread));
        }
    }
    cells
}

fn run_concurrency_cell(
    algorithm: ShuffleAlgorithm,
    n: usize,
    rows_per_thread: usize,
) -> ConcurrencyCell {
    let mut config =
        ExchangeConfig::repartition(algorithm, CONCURRENCY_NODES, CONCURRENCY_THREADS);
    config.message_size = 4096;
    let runtime = config.build_runtime(DeviceProfile::edr());
    let est_max = (0..CONCURRENCY_NODES)
        .map(|node| config.registered_bytes_estimate(runtime.profile(), node))
        .max()
        .unwrap();
    let budget = est_max * n;
    let sched = Scheduler::new(
        &runtime,
        SchedulerConfig {
            max_concurrent: n,
            mem_budget_per_node: Some(budget),
            ..SchedulerConfig::default()
        },
    );
    let queries = (0..n as u32)
        .map(|id| QuerySpec::new(id, config.clone(), CONCURRENCY_ROW))
        .collect();
    let handles = run_workload(
        &runtime,
        &sched,
        queries,
        move |query, _, node| {
            Arc::new(Generator::new(
                rows_per_thread,
                CONCURRENCY_THREADS,
                node as u64 ^ (query as u64) << 16,
            )) as Arc<dyn Operator>
        },
        |_, _, _, _, _| {},
    );
    runtime.cluster().run();

    let expected_rows = (CONCURRENCY_NODES * CONCURRENCY_THREADS * rows_per_thread) as u64;
    let mut violations = Vec::new();
    let mut latencies = Vec::new();
    let mut total_bytes = 0u64;
    let mut windows = Vec::new();
    let mut makespan_end = 0u64;
    for h in &handles {
        let rep = h.report.lock();
        let t = h.timing.lock();
        if !rep.succeeded() || rep.rows != expected_rows {
            violations.push(format!(
                "{algorithm} N={n} query {}: rows {}/{} failure {:?}",
                h.query, rep.rows, expected_rows, rep.failure
            ));
            continue;
        }
        let lat = t.latency().expect("completed query has a latency");
        latencies.push(lat.as_nanos());
        total_bytes += rep.bytes;
        let start = t.first_admitted.expect("admitted").as_nanos();
        let end = t.completed.expect("completed").as_nanos();
        windows.push((start, end));
        makespan_end = makespan_end.max(end);
    }
    // Invariant: with N >= 2 slots and N queries, at least one pair must
    // overlap in virtual time — the scheduler runs them concurrently,
    // not back to back.
    if latencies.len() == n && n >= 2 {
        let overlap = windows
            .iter()
            .enumerate()
            .any(|(i, a)| windows[i + 1..].iter().any(|b| a.0 < b.1 && b.0 < a.1));
        if !overlap {
            violations.push(format!(
                "{algorithm} N={n}: no two queries overlapped: {windows:?}"
            ));
        }
    }
    // Invariant: the budget holds at all times on every node.
    let mut peak = 0usize;
    for node in 0..CONCURRENCY_NODES {
        let p = runtime.registered_bytes_peak(node);
        peak = peak.max(p);
        if p > budget {
            violations.push(format!(
                "{algorithm} N={n}: node {node} peak {p} exceeds budget {budget}"
            ));
        }
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).max(1) - 1;
        latencies[idx.min(latencies.len() - 1)]
    };
    let agg_mbps = if makespan_end > 0 {
        total_bytes as f64 / (makespan_end as f64 / 1e9) / 1e6
    } else {
        0.0
    };
    ConcurrencyCell {
        algorithm,
        n,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        makespan_ns: makespan_end,
        agg_mbps,
        peak_bytes: peak,
        violations,
        stages: stage_summaries(&runtime.obs().metrics.snapshot()),
    }
}

/// Packages concurrency cells as a [`BenchRun`].
pub fn concurrency_bench_run(
    cells: &[ConcurrencyCell],
    levels: &[usize],
    rows_per_thread: usize,
) -> BenchRun {
    BenchRun {
        bench: "concurrency".to_string(),
        config: vec![
            ("nodes".to_string(), Value::UInt(CONCURRENCY_NODES as u64)),
            (
                "threads".to_string(),
                Value::UInt(CONCURRENCY_THREADS as u64),
            ),
            (
                "rows_per_thread".to_string(),
                Value::UInt(rows_per_thread as u64),
            ),
            (
                "levels".to_string(),
                Value::Array(levels.iter().map(|&n| Value::UInt(n as u64)).collect()),
            ),
        ],
        results: cells
            .iter()
            .map(|c| BenchResult {
                id: format!("{}/N={}", c.algorithm, c.n),
                metrics: vec![
                    MetricRow::lower("p50_ns", c.p50_ns as f64),
                    MetricRow::lower("p99_ns", c.p99_ns as f64),
                    MetricRow::lower("makespan_ns", c.makespan_ns as f64),
                    MetricRow::higher("agg_mbps", c.agg_mbps),
                    MetricRow::info("peak_bytes", c.peak_bytes as f64),
                ],
                stages: c.stages.clone(),
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Message-size sweep (the `fig09_msgsize` binary's measurement loop).
// ---------------------------------------------------------------------------

/// Message sizes of the smoke (CI) sweep.
pub const SMOKE_MSG_SIZES: &[usize] = &[16 << 10, 64 << 10];
/// Cluster size of the smoke (CI) sweep.
pub const SMOKE_MSG_NODES: usize = 4;
/// Per-node table volume of the smoke (CI) sweep (fixed, independent of
/// `RSHUFFLE_BENCH_MIB`, so baseline and candidate always agree).
pub const SMOKE_MSG_BYTES_PER_NODE: usize = 4 << 20;

/// One cell of the message-size sweep: an `(algorithm, msg_size)` run.
#[derive(Clone, Debug)]
pub struct MsgSizeCell {
    /// Algorithm under test.
    pub algorithm: ShuffleAlgorithm,
    /// RC message size (header + payload).
    pub msg_size: usize,
    /// Receive throughput per node, GiB/s (the paper's metric).
    pub gib_per_sec: f64,
    /// End-to-end virtual response time.
    pub response_ns: u64,
    /// RDMA-registered bytes per node (Figure 9b).
    pub registered_bytes: usize,
    /// Worker errors rendered as strings (empty on success).
    pub errors: Vec<String>,
    /// Per-stage latency digests for this cell's run.
    pub stages: Vec<(String, HistogramSummary)>,
}

/// Runs the §5.1.2 message-size sweep for every algorithm: double
/// buffering, `recv_depth_per_peer = 4`, sizes from `sizes`.
/// `bytes_per_node = None` uses the workload default
/// (`RSHUFFLE_BENCH_MIB`).
pub fn run_msgsize_sweep(
    sizes: &[usize],
    nodes: usize,
    bytes_per_node: Option<usize>,
) -> Vec<MsgSizeCell> {
    let mut cells = Vec::new();
    for a in ShuffleAlgorithm::ALL {
        for &msg in sizes {
            let mut cfg = WorkloadConfig::new(DeviceProfile::edr(), nodes, Transport::Rdma(a));
            cfg.message_size = msg;
            cfg.buffers_per_peer = 2;
            cfg.recv_depth_per_peer = 4;
            if let Some(b) = bytes_per_node {
                cfg.bytes_per_node = b;
            }
            let r = run_shuffle_workload(&cfg);
            cells.push(MsgSizeCell {
                algorithm: a,
                msg_size: msg,
                gib_per_sec: r.gib_per_sec(),
                response_ns: r.response_time.as_nanos(),
                registered_bytes: r.registered_bytes_per_node,
                errors: r.errors.iter().map(|e| e.to_string()).collect(),
                stages: stage_summaries(&r.metrics),
            });
        }
    }
    cells
}

/// Packages message-size cells as a [`BenchRun`].
pub fn msgsize_bench_run(
    cells: &[MsgSizeCell],
    nodes: usize,
    bytes_per_node: Option<usize>,
) -> BenchRun {
    BenchRun {
        bench: "fig09_msgsize".to_string(),
        config: vec![
            ("nodes".to_string(), Value::UInt(nodes as u64)),
            (
                "bytes_per_node".to_string(),
                match bytes_per_node {
                    Some(b) => Value::UInt(b as u64),
                    None => Value::Null,
                },
            ),
            (
                "sizes".to_string(),
                Value::Array(
                    cells
                        .iter()
                        .map(|c| c.msg_size)
                        .collect::<std::collections::BTreeSet<_>>()
                        .into_iter()
                        .map(|s| Value::UInt(s as u64))
                        .collect(),
                ),
            ),
        ],
        results: cells
            .iter()
            .map(|c| {
                let mut metrics = vec![
                    MetricRow::higher("gib_per_sec", c.gib_per_sec),
                    MetricRow::lower("response_ns", c.response_ns as f64),
                    MetricRow::info("registered_bytes", c.registered_bytes as f64),
                ];
                // Promote the sender-side batching stages from the
                // informational digests to gated scalars: doorbell
                // coalescing and post-to-completion latency are exactly
                // what the hot-path work optimises, so a regression
                // there must fail the build even when end-to-end
                // throughput hides it.
                for stage in ["stage.wr_batch_ns", "stage.post_to_completion_ns"] {
                    if let Some((_, s)) = c.stages.iter().find(|(k, _)| k == stage) {
                        metrics.push(MetricRow::lower(&format!("{stage}_p50"), s.p50 as f64));
                    }
                }
                BenchResult {
                    id: format!("{}/msg={}KiB", c.algorithm, c.msg_size >> 10),
                    metrics,
                    stages: c.stages.clone(),
                }
            })
            .collect(),
    }
}

/// Runs the full smoke measurement session — exactly what the committed
/// baseline records and what `perfdiff` regenerates as the candidate.
pub fn smoke_report() -> BenchReport {
    let mut report = BenchReport::new();
    let cells = run_concurrency_matrix(SMOKE_LEVELS, SMOKE_ROWS_PER_THREAD);
    report
        .benches
        .push(concurrency_bench_run(&cells, SMOKE_LEVELS, SMOKE_ROWS_PER_THREAD));
    let cells = run_msgsize_sweep(
        SMOKE_MSG_SIZES,
        SMOKE_MSG_NODES,
        Some(SMOKE_MSG_BYTES_PER_NODE),
    );
    report.benches.push(msgsize_bench_run(
        &cells,
        SMOKE_MSG_NODES,
        Some(SMOKE_MSG_BYTES_PER_NODE),
    ));
    report
}

// ---------------------------------------------------------------------------
// Parsing and diffing.
// ---------------------------------------------------------------------------

/// One metric read back from a report file.
#[derive(Clone, Debug)]
pub struct ParsedMetric {
    /// `(bench, result id, metric name)` — the comparison key.
    pub key: (String, String, String),
    /// Recorded value.
    pub value: f64,
    /// Gating direction: the file's explicit `directions` entry, or the
    /// name-inferred fallback for pre-`directions` baselines.
    pub direction: Direction,
}

/// A report read back from disk, flattened for comparison.
#[derive(Clone, Debug)]
pub struct ParsedReport {
    /// Schema tag found in the file.
    pub schema: String,
    /// Commit the file was recorded at.
    pub commit: String,
    /// Every metric, in file order.
    pub metrics: Vec<ParsedMetric>,
}

impl ParsedReport {
    /// Parses `BENCH_*.json` text. Fails on malformed JSON, a missing
    /// or unknown schema tag, non-numeric metric values, unknown
    /// direction tags, or (for files without a `directions` field) an
    /// ambiguous metric name.
    pub fn parse(text: &str) -> Result<ParsedReport, String> {
        let root = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let Value::Object(fields) = root else {
            return Err("report root is not an object".to_string());
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let schema = match get("schema") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err("missing schema tag".to_string()),
        };
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (want {SCHEMA:?})"));
        }
        let commit = match get("commit") {
            Some(Value::Str(s)) => s.clone(),
            _ => "unknown".to_string(),
        };
        let Some(Value::Array(benches)) = get("benches") else {
            return Err("missing benches array".to_string());
        };
        let mut metrics = Vec::new();
        for bench in benches {
            let Value::Object(bf) = bench else {
                return Err("bench entry is not an object".to_string());
            };
            let bget = |key: &str| bf.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let Some(Value::Str(bench_id)) = bget("bench") else {
                return Err("bench entry without a bench id".to_string());
            };
            let Some(Value::Array(results)) = bget("results") else {
                return Err(format!("bench {bench_id}: missing results"));
            };
            for result in results {
                let Value::Object(rf) = result else {
                    return Err(format!("bench {bench_id}: result is not an object"));
                };
                let rget = |key: &str| rf.iter().find(|(k, _)| k == key).map(|(_, v)| v);
                let Some(Value::Str(id)) = rget("id") else {
                    return Err(format!("bench {bench_id}: result without an id"));
                };
                let Some(Value::Object(ms)) = rget("metrics") else {
                    return Err(format!("bench {bench_id}/{id}: missing metrics"));
                };
                // Explicit per-metric directions (absent in baselines
                // recorded before the field existed).
                let directions = match rget("directions") {
                    Some(Value::Object(ds)) => Some(ds),
                    Some(_) => {
                        return Err(format!("bench {bench_id}/{id}: directions is not an object"))
                    }
                    None => None,
                };
                for (name, value) in ms {
                    let v = match value {
                        Value::Float(f) => *f,
                        Value::UInt(u) => *u as f64,
                        Value::Int(i) => *i as f64,
                        _ => {
                            return Err(format!(
                                "bench {bench_id}/{id}: metric {name} is not numeric"
                            ))
                        }
                    };
                    let direction = match directions {
                        Some(ds) => match ds.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
                            Some(Value::Str(tag)) => Direction::from_tag(tag)
                                .map_err(|e| format!("bench {bench_id}/{id}/{name}: {e}"))?,
                            Some(_) => {
                                return Err(format!(
                                    "bench {bench_id}/{id}: direction of {name} is not a string"
                                ))
                            }
                            None => {
                                return Err(format!(
                                    "bench {bench_id}/{id}: metric {name} has no direction entry"
                                ))
                            }
                        },
                        None => infer_direction(name)
                            .map_err(|e| format!("bench {bench_id}/{id}: {e}"))?,
                    };
                    metrics.push(ParsedMetric {
                        key: (bench_id.clone(), id.clone(), name.clone()),
                        value: v,
                        direction,
                    });
                }
                // Surface each stage digest's p50 as an informational
                // metric so stage-level movement shows up in the diff
                // even against baselines that never promoted them. A
                // result that promotes a stage p50 into its gated
                // metrics wins: the flattened copy is skipped.
                if let Some(Value::Object(stages)) = rget("stages") {
                    for (sname, sval) in stages {
                        let Value::Object(sf) = sval else { continue };
                        let p50 = sf.iter().find(|(k, _)| k == "p50").map(|(_, v)| v);
                        let v = match p50 {
                            Some(Value::Float(f)) => *f,
                            Some(Value::UInt(u)) => *u as f64,
                            Some(Value::Int(i)) => *i as f64,
                            _ => continue,
                        };
                        let name = format!("{sname}_p50");
                        if ms.iter().any(|(k, _)| *k == name) {
                            continue;
                        }
                        metrics.push(ParsedMetric {
                            key: (bench_id.clone(), id.clone(), name),
                            value: v,
                            direction: Direction::Informational,
                        });
                    }
                }
            }
        }
        Ok(ParsedReport {
            schema,
            commit,
            metrics,
        })
    }
}

/// Which way a metric is allowed to move.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Latency-like: a candidate above baseline + tolerance regresses.
    LowerIsBetter,
    /// Throughput-like: a candidate below baseline − tolerance regresses.
    HigherIsBetter,
    /// Tracked but never gated (e.g. memory footprints).
    Informational,
}

impl Direction {
    /// The stable tag written into the report's `directions` field.
    pub fn tag(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower_is_better",
            Direction::HigherIsBetter => "higher_is_better",
            Direction::Informational => "informational",
        }
    }

    /// Parses a `directions` tag; unknown tags are a parse error, not a
    /// silent informational downgrade.
    pub fn from_tag(tag: &str) -> Result<Direction, String> {
        match tag {
            "lower_is_better" => Ok(Direction::LowerIsBetter),
            "higher_is_better" => Ok(Direction::HigherIsBetter),
            "informational" => Ok(Direction::Informational),
            other => Err(format!("unknown metric direction tag {other:?}")),
        }
    }
}

/// Infers a gating direction from a metric name — the fallback for
/// baselines recorded before the explicit `directions` field existed.
/// `*_ns` names are lower-is-better, throughput-ish names are
/// higher-is-better, everything else is informational. A name matching
/// *both* rules (e.g. `throughput_ns`) is ambiguous and fails loudly:
/// guessing would silently flip the gate for that metric.
pub fn infer_direction(name: &str) -> Result<Direction, String> {
    let latency_like = name.ends_with("_ns");
    let throughput_like =
        name.contains("mbps") || name.contains("gib_per_sec") || name.contains("throughput");
    match (latency_like, throughput_like) {
        (true, true) => Err(format!(
            "metric name {name:?} is ambiguous (latency-like and throughput-like); \
             re-record the baseline with explicit directions"
        )),
        (true, false) => Ok(Direction::LowerIsBetter),
        (false, true) => Ok(Direction::HigherIsBetter),
        (false, false) => Ok(Direction::Informational),
    }
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// Benchmark id.
    pub bench: String,
    /// Result row id.
    pub id: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value (`None` when the metric vanished).
    pub cand: Option<f64>,
    /// Signed relative change in percent (0 when base is 0).
    pub delta_pct: f64,
    /// Gating direction of the metric.
    pub direction: Direction,
    /// Whether this line violates the tolerance.
    pub regressed: bool,
}

/// Compares `cand` against `base`: every baseline metric must exist in
/// the candidate and stay within `tolerance_pct` in its gating
/// direction. Candidate-only metrics are ignored (adding coverage is
/// never a regression).
pub fn diff_reports(base: &ParsedReport, cand: &ParsedReport, tolerance_pct: f64) -> Vec<DiffLine> {
    let tol = tolerance_pct / 100.0;
    base.metrics
        .iter()
        .map(|bm| {
            let (bench, id, metric) = &bm.key;
            // The baseline's recorded direction governs the gate.
            let direction = bm.direction;
            let b = bm.value;
            let cv = cand
                .metrics
                .iter()
                .find(|m| m.key == bm.key)
                .map(|m| m.value);
            let (delta_pct, regressed) = match cv {
                // A vanished gated metric is a regression; a vanished
                // informational one (e.g. a stage digest that recorded
                // no samples this time) is not.
                None => (0.0, direction != Direction::Informational),
                Some(c) => {
                    let delta = if b != 0.0 { (c - b) / b * 100.0 } else { 0.0 };
                    let regressed = match direction {
                        Direction::LowerIsBetter => {
                            if b == 0.0 {
                                c > 0.0
                            } else {
                                c > b * (1.0 + tol)
                            }
                        }
                        Direction::HigherIsBetter => c < b * (1.0 - tol),
                        Direction::Informational => false,
                    };
                    (delta, regressed)
                }
            };
            DiffLine {
                bench: bench.clone(),
                id: id.clone(),
                metric: metric.clone(),
                base: b,
                cand: cv,
                delta_pct,
                direction,
                regressed,
            }
        })
        .collect()
}

/// Extracts `--emit PATH` from an argument list, returning the
/// remaining arguments and the path (if given). Shared by the bench
/// binaries.
pub fn take_emit_flag(args: Vec<String>) -> (Vec<String>, Option<String>) {
    let mut rest = Vec::new();
    let mut emit = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--emit" {
            emit = it.next();
            if emit.is_none() {
                eprintln!("--emit requires a path");
                std::process::exit(2);
            }
        } else {
            rest.push(a);
        }
    }
    (rest, emit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            commit: "deadbeef".to_string(),
            benches: vec![BenchRun {
                bench: "concurrency".to_string(),
                config: vec![("nodes".to_string(), Value::UInt(3))],
                results: vec![BenchResult {
                    id: "MESQ/SR/N=1".to_string(),
                    metrics: vec![
                        MetricRow::lower("p99_ns", 1000.0),
                        MetricRow::higher("agg_mbps", 50.0),
                        MetricRow::info("peak_bytes", 4096.0),
                    ],
                    stages: vec![(
                        "stage.cq_wait_ns".to_string(),
                        HistogramSummary {
                            count: 8,
                            min: 10,
                            max: 90,
                            mean: 40.0,
                            p50: 40,
                            p90: 80,
                            p99: 90,
                            p999: 90,
                        },
                    )],
                }],
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = fixture();
        let parsed = ParsedReport::parse(&report.to_json()).expect("parses");
        assert_eq!(parsed.schema, SCHEMA);
        assert_eq!(parsed.commit, "deadbeef");
        // 3 scalar metrics + the flattened stage.cq_wait_ns_p50 digest.
        assert_eq!(parsed.metrics.len(), 4);
        let flattened = &parsed.metrics[3];
        assert_eq!(flattened.key.2, "stage.cq_wait_ns_p50");
        assert_eq!(flattened.value, 40.0);
        assert_eq!(flattened.direction, Direction::Informational);
        assert_eq!(
            parsed.metrics[0].key,
            (
                "concurrency".to_string(),
                "MESQ/SR/N=1".to_string(),
                "p99_ns".to_string()
            )
        );
        assert_eq!(parsed.metrics[0].value, 1000.0);
        // The explicit directions round-trip, including the one a name
        // inference could not have produced for `peak_bytes`.
        assert_eq!(parsed.metrics[0].direction, Direction::LowerIsBetter);
        assert_eq!(parsed.metrics[1].direction, Direction::HigherIsBetter);
        assert_eq!(parsed.metrics[2].direction, Direction::Informational);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let text = r#"{"schema":"rshuffle-bench/99","commit":"x","benches":[]}"#;
        assert!(ParsedReport::parse(text).is_err());
        assert!(ParsedReport::parse("{}").is_err());
        assert!(ParsedReport::parse("not json").is_err());
    }

    #[test]
    fn identical_reports_never_regress() {
        let report = fixture();
        let parsed = ParsedReport::parse(&report.to_json()).unwrap();
        let lines = diff_reports(&parsed, &parsed, 10.0);
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| !l.regressed));
    }

    #[test]
    fn vanished_stage_digest_is_not_a_regression() {
        // Stage digests are informational: one recording no samples in
        // the candidate must not fail the gate, unlike a vanished gated
        // metric (covered by `missing_metric_is_a_regression`).
        let base = ParsedReport::parse(&fixture().to_json()).unwrap();
        let mut cand = base.clone();
        cand.metrics.retain(|m| m.key.2 != "stage.cq_wait_ns_p50");
        let lines = diff_reports(&base, &cand, 10.0);
        let stage = lines
            .iter()
            .find(|l| l.metric == "stage.cq_wait_ns_p50")
            .unwrap();
        assert!(stage.cand.is_none());
        assert!(!stage.regressed);
    }

    #[test]
    fn latency_regression_is_caught_and_direction_matters() {
        let base = ParsedReport::parse(&fixture().to_json()).unwrap();
        let mut cand = base.clone();
        for m in &mut cand.metrics {
            if m.key.2 == "p99_ns" {
                m.value *= 2.0; // 2x slowdown
            }
        }
        let lines = diff_reports(&base, &cand, 10.0);
        let p99 = lines.iter().find(|l| l.metric == "p99_ns").unwrap();
        assert!(p99.regressed);
        assert_eq!(p99.direction, Direction::LowerIsBetter);
        // A 2x latency *improvement* is not a regression.
        let mut faster = base.clone();
        for m in &mut faster.metrics {
            if m.key.2 == "p99_ns" {
                m.value /= 2.0;
            }
        }
        assert!(diff_reports(&base, &faster, 10.0)
            .iter()
            .all(|l| !l.regressed));
    }

    #[test]
    fn throughput_drop_regresses_and_informational_never_does() {
        let base = ParsedReport::parse(&fixture().to_json()).unwrap();
        let mut cand = base.clone();
        for m in &mut cand.metrics {
            if m.key.2 == "agg_mbps" {
                m.value *= 0.5;
            }
            if m.key.2 == "peak_bytes" {
                m.value *= 100.0;
            }
        }
        let lines = diff_reports(&base, &cand, 10.0);
        assert!(lines.iter().find(|l| l.metric == "agg_mbps").unwrap().regressed);
        assert!(!lines.iter().find(|l| l.metric == "peak_bytes").unwrap().regressed);
    }

    #[test]
    fn missing_metric_is_a_regression() {
        let base = ParsedReport::parse(&fixture().to_json()).unwrap();
        let mut cand = base.clone();
        cand.metrics.retain(|m| m.key.2 != "p99_ns");
        let lines = diff_reports(&base, &cand, 10.0);
        let p99 = lines.iter().find(|l| l.metric == "p99_ns").unwrap();
        assert!(p99.regressed);
        assert!(p99.cand.is_none());
    }

    #[test]
    fn direction_inference() {
        assert_eq!(infer_direction("p50_ns"), Ok(Direction::LowerIsBetter));
        assert_eq!(infer_direction("makespan_ns"), Ok(Direction::LowerIsBetter));
        assert_eq!(infer_direction("agg_mbps"), Ok(Direction::HigherIsBetter));
        assert_eq!(infer_direction("gib_per_sec"), Ok(Direction::HigherIsBetter));
        assert_eq!(infer_direction("peak_bytes"), Ok(Direction::Informational));
    }

    #[test]
    fn ambiguous_metric_name_fails_loudly_without_directions() {
        // An old-format baseline (no `directions` field) with a name
        // that is simultaneously latency-like and throughput-like must
        // be rejected at parse time, never silently gated one way.
        assert!(infer_direction("throughput_ns").is_err());
        let text = r#"{
            "schema": "rshuffle-bench/1",
            "commit": "x",
            "benches": [{
                "bench": "b",
                "config": {},
                "results": [{
                    "id": "r",
                    "metrics": {"throughput_ns": 1.0},
                    "stages": {}
                }]
            }]
        }"#;
        let err = ParsedReport::parse(text).unwrap_err();
        assert!(err.contains("ambiguous"), "got: {err}");
    }

    #[test]
    fn explicit_direction_overrides_name_inference() {
        // With an explicit direction the same ambiguous name is fine,
        // and the recorded direction — not the name — drives the gate.
        let text = r#"{
            "schema": "rshuffle-bench/1",
            "commit": "x",
            "benches": [{
                "bench": "b",
                "config": {},
                "results": [{
                    "id": "r",
                    "metrics": {"throughput_ns": 100.0},
                    "directions": {"throughput_ns": "higher_is_better"},
                    "stages": {}
                }]
            }]
        }"#;
        let base = ParsedReport::parse(text).expect("explicit direction parses");
        assert_eq!(base.metrics[0].direction, Direction::HigherIsBetter);
        let mut cand = base.clone();
        cand.metrics[0].value = 50.0; // halved "throughput" regresses
        assert!(diff_reports(&base, &cand, 10.0)[0].regressed);
        let mut up = base.clone();
        up.metrics[0].value = 200.0; // doubled does not
        assert!(!diff_reports(&base, &up, 10.0)[0].regressed);
    }

    #[test]
    fn unknown_direction_tag_is_rejected() {
        let text = r#"{
            "schema": "rshuffle-bench/1",
            "commit": "x",
            "benches": [{
                "bench": "b",
                "config": {},
                "results": [{
                    "id": "r",
                    "metrics": {"p99_ns": 1.0},
                    "directions": {"p99_ns": "sideways"},
                    "stages": {}
                }]
            }]
        }"#;
        let err = ParsedReport::parse(text).unwrap_err();
        assert!(err.contains("unknown metric direction"), "got: {err}");
    }

    #[test]
    fn directions_present_but_metric_unlisted_is_rejected() {
        let text = r#"{
            "schema": "rshuffle-bench/1",
            "commit": "x",
            "benches": [{
                "bench": "b",
                "config": {},
                "results": [{
                    "id": "r",
                    "metrics": {"p99_ns": 1.0},
                    "directions": {},
                    "stages": {}
                }]
            }]
        }"#;
        let err = ParsedReport::parse(text).unwrap_err();
        assert!(err.contains("no direction entry"), "got: {err}");
    }

    #[test]
    fn old_baseline_without_directions_still_parses() {
        // BENCH_0006-era files carry no `directions` field; unambiguous
        // names fall back to inference.
        let text = r#"{
            "schema": "rshuffle-bench/1",
            "commit": "x",
            "benches": [{
                "bench": "b",
                "config": {},
                "results": [{
                    "id": "r",
                    "metrics": {"p99_ns": 1.0, "agg_mbps": 2.0},
                    "stages": {}
                }]
            }]
        }"#;
        let parsed = ParsedReport::parse(text).expect("old format parses");
        let dir = |name: &str| {
            parsed
                .metrics
                .iter()
                .find(|m| m.key.2 == name)
                .unwrap()
                .direction
        };
        assert_eq!(dir("p99_ns"), Direction::LowerIsBetter);
        assert_eq!(dir("agg_mbps"), Direction::HigherIsBetter);
    }
}
