//! The synthetic shuffle workload of §5.1.
//!
//! "We generate a synthetic table R with two long integer attributes R.a
//! and R.b [...] all the nodes scan the local fragment of table R and
//! repartition R using R.a as the key. [...] We calculate the total
//! throughput as the reciprocal of the query response time and divide by
//! the total number of nodes in the cluster."
//!
//! The table volume is scaled down from the paper's 160 GiB per node: the
//! simulator reaches steady state within tens of MiB and throughput is
//! volume-independent from there (`RSHUFFLE_BENCH_MIB` overrides the
//! default).

use std::sync::Arc;

use rshuffle::{
    CostModel, Exchange, ExchangeConfig, PhasePolicy, PhaseRunner, PhaseSchedule,
    ReceiveOperator, ShuffleAlgorithm, ShuffleError, ShuffleOperator, TransmissionGroups,
};
use rshuffle_baselines::{IpoibExchange, MpiExchange};
use rshuffle_engine::{drive_to_sink, ComputeStage, Generator};
use rshuffle_mux::MuxConfig;
use rshuffle_simnet::{Cluster, DeviceProfile, SimDuration, Topology};
use rshuffle_verbs::{FaultConfig, VerbsRuntime};

use crate::skew::{zipf_partition_rows, SkewSpec, StragglerPlan};

/// Bytes per row of the synthetic table R(a, b): two long integers.
pub const ROW_BYTES: usize = 16;

/// Communication pattern under test.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// Each node repartitions its fragment across the other nodes
    /// (Figure 3a).
    Repartition,
    /// Each node broadcasts its fragment to every other node (Figure 3c).
    Broadcast,
}

/// Which transport drives the shuffle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Transport {
    /// One of the six RDMA designs (plus the MQ/WR extension).
    Rdma(ShuffleAlgorithm),
    /// The MVAPICH-style MPI baseline.
    Mpi,
    /// TCP/IP over InfiniBand.
    Ipoib,
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transport::Rdma(a) => write!(f, "{a}"),
            Transport::Mpi => write!(f, "MPI"),
            Transport::Ipoib => write!(f, "IPoIB"),
        }
    }
}

/// Configuration of one workload run.
#[derive(Clone)]
pub struct WorkloadConfig {
    /// Hardware generation.
    pub profile: DeviceProfile,
    /// Cluster size.
    pub nodes: usize,
    /// Worker threads per fragment (defaults to the profile's).
    pub threads: usize,
    /// Transport under test.
    pub transport: Transport,
    /// Communication pattern.
    pub pattern: Pattern,
    /// Bytes each node transmits per destination-set pass (the local table
    /// fragment size).
    pub bytes_per_node: usize,
    /// RC message size (header + payload).
    pub message_size: usize,
    /// Send buffers per peer (RC designs).
    pub buffers_per_peer: usize,
    /// Receive depth per peer.
    pub recv_depth_per_peer: usize,
    /// UD send buffers / receive window.
    pub ud_send_buffers: usize,
    /// UD receive window per source.
    pub ud_recv_window: usize,
    /// Credit write-back frequency (Figure 8).
    pub credit_writeback_frequency: u32,
    /// Extra compute charged per 32 KiB batch at the receiving fragment
    /// (Figure 13).
    pub compute_per_batch: SimDuration,
    /// Rows per receive-operator output batch.
    pub batch_rows: usize,
    /// Endpoint lanes per operator (Figure 11); `None` = derived from the
    /// algorithm's mode.
    pub lanes: Option<usize>,
    /// Whether the sender skips the copy into RDMA-registered buffers.
    /// `None` picks the per-design default: zero copy for the reliable
    /// (RC) designs, whose pooled registered buffers let tuples be staged
    /// in place (§4.3.1 allows it there), and the classic copy path for
    /// UD designs and the MPI/IPoIB baselines. `Some(_)` forces one side,
    /// which is what the §4.3.1 ablation uses.
    pub zero_copy: Option<bool>,
    /// Use native switch multicast for UD group sends (§7 extension).
    pub ud_native_multicast: bool,
    /// Maximum per-batch OS-scheduling jitter at the receiving fragment
    /// (seeded, uniform). Real shared clusters are never perfectly
    /// balanced; this is what starves the one-sided designs of free
    /// buffers in the broadcast pattern (§5.1.3).
    pub receiver_jitter: SimDuration,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Connection-multiplexing cap handed to the RC exchanges (see
    /// [`rshuffle::ExchangeConfig::mux`]); `None` = direct wiring.
    pub mux: Option<MuxConfig>,
    /// Switch topology ([`Topology::SingleSwitch`] = the paper's
    /// full-bisection testbed; fat trees for the scale-out sweeps).
    pub topology: Topology,
    /// Per-node volume skew: split the cluster's total table volume by a
    /// seeded Zipf histogram instead of evenly. `None` = uniform.
    pub skew: Option<SkewSpec>,
    /// Phase scheduling of the all-to-all ([`PhasePolicy::Off`] = the
    /// classic interleaved transmission). Skew-aware schedules derive
    /// their byte estimate from the configured [`WorkloadConfig::skew`]
    /// split, exactly what a planner's table statistics would predict.
    pub phase: PhasePolicy,
    /// Straggler injection applied to the kernel before the run.
    pub stragglers: Option<StragglerPlan>,
}

impl WorkloadConfig {
    /// The defaults of §5.1.2–5.1.3: 64 KiB RC messages, double buffering,
    /// credit write-back every 2 receives.
    pub fn new(profile: DeviceProfile, nodes: usize, transport: Transport) -> Self {
        let threads = profile.threads_per_node;
        WorkloadConfig {
            profile,
            nodes,
            threads,
            transport,
            pattern: Pattern::Repartition,
            bytes_per_node: default_volume(),
            message_size: 64 * 1024,
            buffers_per_peer: 2,
            recv_depth_per_peer: 16,
            ud_send_buffers: 16,
            ud_recv_window: 16,
            credit_writeback_frequency: 2,
            compute_per_batch: SimDuration::ZERO,
            batch_rows: 2048, // 32 KiB of 16-byte rows (the L1-sized batch).
            lanes: None,
            zero_copy: None,
            ud_native_multicast: false,
            receiver_jitter: SimDuration::from_micros(3),
            faults: FaultConfig {
                ud_reorder_probability: 0.05,
                ..FaultConfig::default()
            },
            mux: None,
            topology: Topology::SingleSwitch,
            skew: None,
            phase: PhasePolicy::Off,
            stragglers: None,
        }
    }

    /// The effective copy/zero-copy decision after applying the
    /// per-design default (see [`WorkloadConfig::zero_copy`]).
    pub fn resolved_zero_copy(&self) -> bool {
        self.zero_copy.unwrap_or(match self.transport {
            Transport::Rdma(a) => a.reliable_transport(),
            Transport::Mpi | Transport::Ipoib => false,
        })
    }
}

/// Default per-node table volume (bytes); override with
/// `RSHUFFLE_BENCH_MIB`.
pub fn default_volume() -> usize {
    let mib = std::env::var("RSHUFFLE_BENCH_MIB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(48);
    mib << 20
}

/// Result of one workload run.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Receive throughput per node, bytes/second (the paper's metric).
    pub receive_throughput: f64,
    /// End-to-end response time.
    pub response_time: SimDuration,
    /// Payload bytes received per node (average).
    pub bytes_received_per_node: f64,
    /// RDMA-registered bytes per node for the shuffle (Figure 9b).
    pub registered_bytes_per_node: usize,
    /// Errors raised by any worker (empty on success).
    pub errors: Vec<ShuffleError>,
    /// Physical QPs the multiplexer materialized (0 on the direct path).
    pub mux_qp_count: u64,
    /// QPs the direct path would have opened (0 on the direct path).
    pub mux_natural_qps: u64,
    /// Leases that had to share an occupied slot (0 on the direct path).
    pub mux_lease_waits: u64,
    /// Unified metrics snapshot taken after the run (all tiers).
    pub metrics: rshuffle_obs::Snapshot,
}

impl WorkloadResult {
    /// Receive throughput in GiB/s.
    pub fn gib_per_sec(&self) -> f64 {
        self.receive_throughput / (1u64 << 30) as f64
    }
}

/// Runs the synthetic shuffle workload and reports receive throughput.
pub fn run_shuffle_workload(cfg: &WorkloadConfig) -> WorkloadResult {
    let cluster = Cluster::with_topology(cfg.nodes, cfg.profile.clone(), cfg.topology.clone());
    let runtime = VerbsRuntime::with_faults(cluster, cfg.faults.clone());
    if let Some(plan) = &cfg.stragglers {
        plan.apply(runtime.kernel());
    }
    let groups: Vec<TransmissionGroups> = (0..cfg.nodes)
        .map(|me| match cfg.pattern {
            Pattern::Repartition => TransmissionGroups::repartition(me, cfg.nodes),
            Pattern::Broadcast => TransmissionGroups::broadcast(me, cfg.nodes),
        })
        .collect();
    let cost = CostModel::from_profile(runtime.profile());
    // Per-node fragment sizes: even by default, or a seeded Zipf split of
    // the same cluster-wide total when volume skew is configured.
    let uniform_rows_per_thread = cfg.bytes_per_node / ROW_BYTES / cfg.threads;
    let skewed_rows: Option<Vec<u64>> = cfg.skew.map(|s| {
        let total = (cfg.bytes_per_node / ROW_BYTES) as u64 * cfg.nodes as u64;
        zipf_partition_rows(total, cfg.nodes, s.theta, s.seed)
    });
    let rows_per_thread_on = |node: usize| match &skewed_rows {
        Some(rows) => rows[node] as usize / cfg.threads,
        None => uniform_rows_per_thread,
    };

    // Build endpoints for the chosen transport.
    let mut phases: Option<std::sync::Arc<PhaseRunner>> = None;
    let (send_eps, recv_eps, mode, registered, mux_stats) = match cfg.transport {
        Transport::Rdma(algorithm) => {
            let mut xcfg = ExchangeConfig::with_groups(algorithm, cfg.threads, groups.clone());
            xcfg.message_size = cfg.message_size;
            xcfg.buffers_per_peer = cfg.buffers_per_peer;
            xcfg.recv_depth_per_peer = cfg.recv_depth_per_peer;
            xcfg.ud_send_buffers = cfg.ud_send_buffers;
            xcfg.ud_recv_window = cfg.ud_recv_window;
            xcfg.credit_writeback_frequency = cfg.credit_writeback_frequency;
            xcfg.lanes_override = cfg.lanes;
            xcfg.ud_native_multicast = cfg.ud_native_multicast;
            xcfg.mux = cfg.mux;
            xcfg.phase = cfg.phase;
            if cfg.phase.enabled() {
                // The skew-aware schedule sees exactly what a planner's
                // table statistics would predict: the per-node byte
                // totals of the configured Zipf split.
                if let Some(rows) = &skewed_rows {
                    let totals: Vec<u64> = rows.iter().map(|&r| r * ROW_BYTES as u64).collect();
                    xcfg.phase_bytes =
                        Some(Arc::new(PhaseSchedule::estimate_from_source_totals(&totals)));
                }
            }
            let exchange = Exchange::build(&runtime, &xcfg).expect("exchange builds");
            let registered = exchange.registered_bytes(0);
            let mux_stats = exchange.mux.as_ref().map_or((0, 0, 0), |m| {
                (m.qp_count(), m.natural_qps(), m.lease_waits())
            });
            phases = exchange.phases.clone();
            (
                exchange.send.clone(),
                exchange.recv.clone(),
                algorithm.mode,
                registered,
                mux_stats,
            )
        }
        Transport::Mpi => {
            let ex = MpiExchange::build(&runtime, groups.clone(), cfg.message_size, cfg.threads)
                .expect("mpi exchange builds");
            let registered = ex.send[0].as_ref().map_or(0, |e| e.registered_bytes())
                + ex.recv[0].as_ref().map_or(0, |e| e.registered_bytes());
            (
                ex.send
                    .into_iter()
                    .map(|e| e.into_iter().collect())
                    .collect(),
                ex.recv
                    .into_iter()
                    .map(|e| e.into_iter().collect())
                    .collect(),
                rshuffle::EndpointMode::Single,
                registered,
                (0, 0, 0),
            )
        }
        Transport::Ipoib => {
            let ex = IpoibExchange::build(&runtime, groups.clone(), cfg.message_size, cfg.threads)
                .expect("ipoib exchange builds");
            let registered = ex.send[0].as_ref().map_or(0, |e| e.registered_bytes())
                + ex.recv[0].as_ref().map_or(0, |e| e.registered_bytes());
            (
                ex.send
                    .into_iter()
                    .map(|e| e.into_iter().collect())
                    .collect(),
                ex.recv
                    .into_iter()
                    .map(|e| e.into_iter().collect())
                    .collect(),
                rshuffle::EndpointMode::Single,
                registered,
                (0, 0, 0),
            )
        }
    };

    let mut recv_stats = Vec::new();
    let mut send_stats = Vec::new();
    for node in 0..cfg.nodes {
        let generator = Arc::new(Generator::new(
            rows_per_thread_on(node),
            cfg.threads,
            0xACE0_BA5E ^ (node as u64) << 16,
        ));
        let _ = mode;
        let send_cost = if cfg.resolved_zero_copy() {
            // Zero copy: tuples are transmitted in place; only hashing
            // remains on the sender's critical path.
            CostModel {
                memcpy_bandwidth: 1e18,
                ..cost.clone()
            }
        } else {
            cost.clone()
        };
        let mut shuffle_op = ShuffleOperator::with_lanes(
            generator,
            send_eps[node].clone(),
            groups[node].clone(),
            cfg.threads,
            send_cost,
        );
        if let Some(runner) = &phases {
            shuffle_op = shuffle_op.with_phases(runner.clone(), node);
        }
        let shuffle = Arc::new(shuffle_op);
        send_stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("shuffle-{node}"),
            shuffle,
            cfg.threads,
            |_, _| {},
        ));

        let receive = Arc::new(ReceiveOperator::with_lanes(
            recv_eps[node].clone(),
            ROW_BYTES,
            cfg.batch_rows,
            cfg.threads,
            cost.clone(),
        ));
        let mut staged: Arc<dyn rshuffle::Operator> = receive;
        if cfg.receiver_jitter > SimDuration::ZERO {
            staged = Arc::new(JitterStage::new(
                staged,
                cfg.receiver_jitter,
                0xBEEF ^ node as u64,
            ));
        }
        if cfg.compute_per_batch > SimDuration::ZERO {
            staged = Arc::new(ComputeStage::new(staged, cfg.compute_per_batch));
        }
        recv_stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("receive-{node}"),
            staged,
            cfg.threads,
            |_, _| {},
        ));
    }

    runtime.cluster().run();

    let response_time = runtime.kernel().now() - rshuffle_simnet::SimTime::ZERO;
    let mut errors = Vec::new();
    let mut bytes_total = 0u64;
    for s in recv_stats.iter().chain(send_stats.iter()) {
        let s = s.lock();
        errors.extend(s.errors.iter().cloned());
        // Only count receive-fragment bytes below.
    }
    for s in &recv_stats {
        bytes_total += s.lock().bytes;
    }
    let per_node = bytes_total as f64 / cfg.nodes as f64;
    WorkloadResult {
        receive_throughput: per_node / response_time.as_secs_f64(),
        response_time,
        bytes_received_per_node: per_node,
        registered_bytes_per_node: registered,
        errors,
        mux_qp_count: mux_stats.0,
        mux_natural_qps: mux_stats.1,
        mux_lease_waits: mux_stats.2,
        metrics: runtime.obs().metrics.snapshot(),
    }
}

/// Adds seeded, uniformly distributed per-batch delays to a pipeline,
/// modelling OS-scheduling noise on a shared cluster.
struct JitterStage {
    child: Arc<dyn rshuffle::Operator>,
    max: SimDuration,
    rng: parking_lot::Mutex<rand::rngs::StdRng>,
}

impl JitterStage {
    fn new(child: Arc<dyn rshuffle::Operator>, max: SimDuration, seed: u64) -> Self {
        use rand::SeedableRng;
        JitterStage {
            child,
            max,
            rng: parking_lot::Mutex::new(rand::rngs::StdRng::seed_from_u64(seed)),
        }
    }
}

impl rshuffle::Operator for JitterStage {
    fn next(
        &self,
        sim: &rshuffle_simnet::SimContext,
        tid: usize,
    ) -> rshuffle::Result<(rshuffle::StreamState, rshuffle::RowBatch)> {
        let (state, batch) = self.child.next(sim, tid)?;
        if !batch.is_empty() {
            use rand::Rng;
            let ns = self.rng.lock().gen_range(0..=self.max.as_nanos());
            sim.sleep(SimDuration::from_nanos(ns));
        }
        Ok((state, batch))
    }
}
