//! Skewed-workload generators for the scale-out experiments.
//!
//! Real repartition exchanges are rarely uniform: join keys follow
//! power-law distributions, so a few partitions (and hence a few
//! receiving nodes) absorb a disproportionate share of the data, and
//! individual nodes straggle for reasons unrelated to the shuffle
//! (background compaction, co-tenants, thermal throttling). This module
//! generates both perturbations deterministically from a seed so the
//! scale benchmarks can replay them bit-for-bit:
//!
//! * [`zipf_weights`] / [`zipf_partition_rows`] — Zipfian partition
//!   histograms with a configurable exponent `theta` (0 = uniform;
//!   ~1 = classic web-like skew). The heavy ranks are assigned to
//!   partition ids by a seeded permutation so the hot partition moves
//!   around the cluster as the seed changes.
//! * [`straggler_plan`] — picks a deterministic subset of nodes and a
//!   CPU slowdown factor for each, applied to the virtual-time kernel
//!   via [`StragglerPlan::apply`] (which drives
//!   `Kernel::set_cpu_slowdown`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rshuffle_simnet::{Kernel, NodeId};

/// Normalized Zipf weights for `partitions` ranks with exponent `theta`:
/// rank `k` (1-based) gets weight proportional to `1 / k^theta`. The
/// returned vector sums to 1.0 (up to floating-point rounding) and is
/// sorted heaviest-first (rank order, *not* partition order — see
/// [`zipf_partition_rows`] for the seeded placement).
///
/// `theta = 0` is exactly uniform; larger exponents concentrate mass in
/// the leading ranks monotonically.
///
/// # Panics
///
/// Panics if `partitions` is zero or `theta` is negative/non-finite.
pub fn zipf_weights(partitions: usize, theta: f64) -> Vec<f64> {
    assert!(partitions > 0, "zipf_weights: need at least one partition");
    assert!(
        theta >= 0.0 && theta.is_finite(),
        "zipf_weights: exponent {theta} out of range"
    );
    let raw: Vec<f64> = (1..=partitions)
        .map(|k| (k as f64).powf(-theta))
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Splits `total_rows` across `partitions` partitions by Zipf(`theta`),
/// with the heavy ranks placed on a seeded permutation of the partition
/// ids. Row counts are integral and sum to exactly `total_rows`
/// (largest-remainder apportionment), and the whole histogram is a pure
/// function of its arguments — the same seed replays the same skew.
///
/// # Panics
///
/// Panics if `partitions` is zero or `theta` is negative/non-finite.
pub fn zipf_partition_rows(
    total_rows: u64,
    partitions: usize,
    theta: f64,
    seed: u64,
) -> Vec<u64> {
    let weights = zipf_weights(partitions, theta);
    // Integral apportionment: floor everything, then hand the leftover
    // rows to the largest remainders (ties to the lower rank — still a
    // pure function of the inputs).
    let mut rows: Vec<u64> = weights
        .iter()
        .map(|w| (w * total_rows as f64).floor() as u64)
        .collect();
    let assigned: u64 = rows.iter().sum();
    let mut leftover = total_rows - assigned;
    let mut by_remainder: Vec<usize> = (0..partitions).collect();
    by_remainder.sort_by(|&a, &b| {
        let ra = weights[a] * total_rows as f64 - rows[a] as f64;
        let rb = weights[b] * total_rows as f64 - rows[b] as f64;
        rb.partial_cmp(&ra)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &idx in by_remainder.iter().cycle().take(partitions.max(1)) {
        if leftover == 0 {
            break;
        }
        rows[idx] += 1;
        leftover -= 1;
    }
    // Seeded Fisher–Yates permutation: which partition id holds rank k.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut placement: Vec<usize> = (0..partitions).collect();
    for i in (1..partitions).rev() {
        let j = rng.gen_range(0..=i);
        placement.swap(i, j);
    }
    let mut out = vec![0u64; partitions];
    for (rank, &pid) in placement.iter().enumerate() {
        out[pid] = rows[rank];
    }
    out
}

/// Max-to-mean ratio of a partition histogram: 1.0 for a perfectly
/// uniform split, growing with skew. Returns 0.0 for an empty or
/// all-zero histogram.
pub fn skew_ratio(rows: &[u64]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let total: u64 = rows.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mean = total as f64 / rows.len() as f64;
    let max = rows.iter().copied().max().unwrap_or(0) as f64;
    max / mean
}

/// Per-node volume skew for the workload driver: the cluster's total
/// table volume is split across the nodes' local fragments by a seeded
/// Zipf histogram instead of evenly (see
/// [`zipf_partition_rows`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SkewSpec {
    /// Zipf exponent (0 = uniform; ~1 = classic web-like skew).
    pub theta: f64,
    /// Placement seed: which nodes hold the heavy fragments.
    pub seed: u64,
}

/// A deterministic straggler injection plan: which nodes run slow, and
/// by how much.
#[derive(Clone, Debug, PartialEq)]
pub struct StragglerPlan {
    /// `(node, factor)` pairs, sorted by node id; every listed factor is
    /// `> 1.0` (a node that isn't slowed simply isn't listed).
    pub slowdowns: Vec<(NodeId, f64)>,
}

impl StragglerPlan {
    /// Installs the plan on `kernel`: each listed node's subsequent CPU
    /// work stretches by its factor.
    pub fn apply(&self, kernel: &Kernel) {
        for &(node, factor) in &self.slowdowns {
            kernel.set_cpu_slowdown(node, factor);
        }
    }

    /// Removes the plan from `kernel` (factors back to 1.0).
    pub fn clear(&self, kernel: &Kernel) {
        for &(node, _) in &self.slowdowns {
            kernel.set_cpu_slowdown(node, 1.0);
        }
    }
}

/// Picks `count` distinct straggler nodes out of `nodes` (seeded,
/// deterministic) and assigns each the CPU slowdown `factor`. `count`
/// is clamped to `nodes`; a factor at or below 1.0 yields an empty plan
/// (nothing to slow down).
pub fn straggler_plan(nodes: usize, count: usize, factor: f64, seed: u64) -> StragglerPlan {
    if nodes == 0 || count == 0 || !factor.is_finite() || factor <= 1.0 {
        return StragglerPlan {
            slowdowns: Vec::new(),
        };
    }
    let count = count.min(nodes);
    // Seeded partial Fisher–Yates: the first `count` entries of a
    // seeded permutation of 0..nodes.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<NodeId> = (0..nodes).collect();
    for i in 0..count {
        let j = rng.gen_range(i..nodes);
        ids.swap(i, j);
    }
    let mut picked: Vec<NodeId> = ids[..count].to_vec();
    picked.sort_unstable();
    StragglerPlan {
        slowdowns: picked.into_iter().map(|n| (n, factor)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rshuffle_simnet::SimDuration;

    #[test]
    fn uniform_theta_splits_evenly() {
        let rows = zipf_partition_rows(1000, 8, 0.0, 7);
        assert_eq!(rows.iter().sum::<u64>(), 1000);
        for &r in &rows {
            assert_eq!(r, 125, "theta=0 must split exactly evenly: {rows:?}");
        }
        assert!((skew_ratio(&rows) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_theta_concentrates_mass() {
        let rows = zipf_partition_rows(100_000, 16, 1.2, 3);
        assert_eq!(rows.iter().sum::<u64>(), 100_000);
        assert!(
            skew_ratio(&rows) > 4.0,
            "theta=1.2 over 16 partitions must be strongly skewed, got ratio {}",
            skew_ratio(&rows)
        );
    }

    #[test]
    fn seed_moves_the_hot_partition() {
        let a = zipf_partition_rows(10_000, 32, 1.0, 1);
        let b = zipf_partition_rows(10_000, 32, 1.0, 2);
        let hot = |rows: &[u64]| {
            rows.iter()
                .enumerate()
                .max_by_key(|(i, &r)| (r, usize::MAX - i))
                .map(|(i, _)| i)
        };
        // Same multiset of counts, different placement (with 32 slots two
        // seeds landing the maximum on the same id is a 1/32 accident —
        // these two seeds differ).
        let (mut sa, mut sb) = (a.clone(), b.clone());
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb, "placement must not change the histogram shape");
        assert_ne!(hot(&a), hot(&b), "seed must move the heavy partition");
    }

    #[test]
    fn straggler_plan_is_seeded_and_clamped() {
        let p = straggler_plan(16, 3, 4.0, 9);
        assert_eq!(p, straggler_plan(16, 3, 4.0, 9));
        assert_eq!(p.slowdowns.len(), 3);
        let nodes: Vec<NodeId> = p.slowdowns.iter().map(|&(n, _)| n).collect();
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(nodes, sorted, "nodes sorted and distinct");
        assert!(nodes.iter().all(|&n| n < 16));
        // Clamp: asking for more stragglers than nodes slows every node.
        assert_eq!(straggler_plan(4, 99, 2.0, 0).slowdowns.len(), 4);
        // A non-slowing factor yields an empty plan.
        assert!(straggler_plan(8, 2, 1.0, 0).slowdowns.is_empty());
    }

    #[test]
    fn plan_apply_stretches_cpu_work_on_the_kernel() {
        let kernel = Kernel::new();
        let plan = StragglerPlan {
            slowdowns: vec![(0, 3.0)],
        };
        plan.apply(&kernel);
        kernel.spawn(0, "slow", |sim| {
            sim.sleep(SimDuration::from_nanos(100));
            assert_eq!(sim.now().as_nanos(), 300, "3x straggler factor");
        });
        kernel.spawn(1, "fast", |sim| {
            sim.sleep(SimDuration::from_nanos(100));
            assert_eq!(sim.now().as_nanos(), 100, "other nodes unaffected");
        });
        kernel.run();
        plan.clear(&kernel);
        assert_eq!(kernel.cpu_slowdown(0), 1.0);
    }
}
