//! Table/series formatting shared by the figure binaries, plus JSON
//! emission so EXPERIMENTS.md can record machine-readable results.

use std::fmt::Write as _;

use serde::Serialize;

/// One measured series (a line or bar group in a figure).
#[derive(Clone, Debug, Serialize)]
pub struct Series {
    /// Series label, e.g. "MESQ/SR".
    pub label: String,
    /// (x, y) points; x meaning is figure-specific.
    pub points: Vec<(f64, f64)>,
}

/// A figure's worth of measurements.
#[derive(Clone, Debug, Serialize)]
pub struct Figure {
    /// Identifier, e.g. "fig10a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The measured series.
    pub series: Vec<Series>,
    /// Optional unified metrics snapshot taken after the run that
    /// produced this figure (None when the binary does not attach one).
    pub metrics: Option<rshuffle_obs::Snapshot>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
            metrics: None,
        }
    }

    /// Adds a series.
    pub fn push(&mut self, label: &str, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.to_string(),
            points,
        });
    }

    /// Attaches a metrics snapshot to the figure's JSON record.
    pub fn attach_metrics(&mut self, snapshot: rshuffle_obs::Snapshot) {
        self.metrics = Some(snapshot);
    }

    /// Renders an aligned text table: one row per x, one column per
    /// series.
    pub fn render_table(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = write!(out, "{:<18}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>12}", s.label);
        }
        let _ = writeln!(out);
        for &x in &xs {
            let _ = write!(out, "{x:<18}");
            for s in &self.series {
                match s.points.iter().find(|p| p.0 == x) {
                    Some(&(_, y)) => {
                        let _ = write!(out, "{y:>12.3}");
                    }
                    None => {
                        let _ = write!(out, "{:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "(y: {})", self.y_label);
        out
    }

    /// Prints the table to stdout and appends the JSON record to
    /// `target/bench-results/<id>.json` (best effort).
    pub fn emit(&self) {
        println!("{}", self.render_table());
        let dir = std::path::Path::new("target/bench-results");
        if std::fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{}.json", self.id));
            if let Ok(json) = serde_json::to_string_pretty(self) {
                let _ = std::fs::write(path, json);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_series_and_points() {
        let mut fig = Figure::new("t", "test", "nodes", "GiB/s");
        fig.push("A", vec![(2.0, 1.5), (4.0, 2.5)]);
        fig.push("B", vec![(2.0, 1.0)]);
        let table = fig.render_table();
        assert!(table.contains("A"));
        assert!(table.contains("B"));
        assert!(table.contains("1.500"));
        assert!(table.contains("2.500"));
        assert!(table.contains('-'), "missing point renders as dash");
    }
}
