//! Diagnostic probe: per-run fabric/NIC utilization, thread stats, the
//! full unified metrics snapshot and a Chrome-trace dump for one
//! transport. Not a paper figure.
//!
//! Usage: `diag [ALGORITHM] [NODES] [TRACE_PATH] [FAULT]`
//! (defaults: `MESQ_SR 8 trace.json` with no injected fault).
//! `diag --topology [NODES] [OVERSUB] [HOSTS_PER_LEAF]` dumps the
//! fabric layout; `diag --phases [NODES] [POLICY] [THETA]` dumps a
//! phase schedule (per-phase byte totals, exempted sources) together
//! with the advisor's signal→decision table for the same shape.
//! `FAULT` selects a canned ride-out-able fault plan (`link-flap`,
//! `link-degrade` or `straggler`) whose injection markers then appear on
//! the hardware track of the exported trace; the active plan is echoed
//! in the header. Faults needing the recovery orchestrator (QP failures,
//! UD bursts) belong to the `chaos` binary instead.
//!
//! The trace file is in the Chrome Trace Event Format: open it at
//! `chrome://tracing` or <https://ui.perfetto.dev> (drag-and-drop the
//! file). Processes map to simulated nodes; thread 0 is the node's
//! hardware track (NIC pipeline, QP transitions, fault injection) and
//! the remaining threads are the simulated worker threads, with credit
//! stalls, completions and fragment spans on their own tracks.

use rshuffle::{AdvisorSignals, AlgorithmAdvisor, PhasePolicy, PhaseSchedule, ShuffleAlgorithm};
use rshuffle_bench::skew::{skew_ratio, zipf_partition_rows};
use rshuffle_bench::{Pattern, Transport, WorkloadConfig};
use rshuffle_simnet::{DeviceProfile, IncastModel, SimDuration, Topology};
use rshuffle_verbs::FaultPlan;

/// Canned fault plans selectable by name. Diagnostic runs have no
/// restart orchestration, so only faults the transports ride out
/// in-place are offered here.
fn canned_plan(name: &str) -> Option<FaultPlan> {
    let us = SimDuration::from_micros;
    match name {
        "link-flap" => Some(FaultPlan::new().link_flap(1, us(10), us(150))),
        "link-degrade" => Some(FaultPlan::new().link_degrade(1, us(5), us(400), 0.25, us(2))),
        "straggler" => Some(FaultPlan::new().straggler(2, us(5), us(500), 4.0)),
        _ => None,
    }
}

/// `diag --phases [NODES] [POLICY] [THETA]`: build the schedule a phased
/// exchange would follow for a Zipf-skewed repartition of that size and
/// dump it round by round, then show how the advisor reads the same
/// shape. No workload runs.
fn dump_phases(args: &[String]) {
    let nodes: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(16);
    let policy = args
        .get(1)
        .and_then(|s| PhasePolicy::parse(s))
        .unwrap_or(PhasePolicy::SkewAware);
    let theta: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let bytes_per_node = 8usize << 20;
    let totals = zipf_partition_rows(
        (nodes * bytes_per_node / 16) as u64,
        nodes,
        theta,
        0x5CA1E,
    );
    let matrix = PhaseSchedule::estimate_from_source_totals(&totals);
    let schedule = match PhaseSchedule::build(policy, &matrix) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot build schedule: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "{} schedule, N={nodes}, Zipf θ={theta} (row estimates in 16-byte rows):",
        policy.label()
    );
    let free = schedule.free_sources();
    if free.is_empty() {
        println!("  exempted sources: none");
    } else {
        println!(
            "  exempted sources (stream unphased): {:?} — row totals {:?}",
            free,
            free.iter().map(|&n| totals[n]).collect::<Vec<_>>()
        );
    }
    println!(
        "  {:>5} {:>7} {:>14} {:>14}",
        "phase", "edges", "total bytes", "max edge"
    );
    for (p, phase) in schedule.phases().iter().enumerate() {
        println!(
            "  {p:>5} {:>7} {:>14} {:>14}",
            phase.edges.len(),
            phase.total_bytes(),
            phase.max_edge_bytes()
        );
    }
    println!(
        "  {} phases, worst round {} bytes",
        schedule.num_phases(),
        schedule.worst_phase_len()
    );

    // The advisor's view of the same shape: congested fat tree, the
    // measured skew ratio, and its rule-by-rule decision trail.
    let topology = Topology::fat_tree(16, 4.0).with_incast(IncastModel::new(4));
    let mut signals = AdvisorSignals::baseline(nodes, 4, 16 * 1024);
    signals.oversubscription = topology.oversubscription();
    signals.incast = topology.incast().is_some();
    signals.skew = skew_ratio(&totals);
    let advice = AlgorithmAdvisor::advise(&signals);
    println!("--- advisor decision table ---");
    print!("{}", AlgorithmAdvisor::table(&signals, &advice));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).is_some_and(|a| a == "--phases") {
        dump_phases(&args[2..]);
        return;
    }
    if args.get(1).is_some_and(|a| a == "--topology") {
        // `diag --topology [NODES] [OVERSUB] [HOSTS_PER_LEAF]`: dump the
        // simulated fabric layout (leaf/spine structure, per-link
        // capacities, oversubscription) without running a workload.
        let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
        let oversub: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4.0);
        let hosts: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(16);
        let profile = DeviceProfile::edr();
        println!(
            "single-switch: {}",
            rshuffle_simnet::Topology::SingleSwitch.describe(nodes, profile.payload_bandwidth)
        );
        println!(
            "fat-tree:      {}",
            rshuffle_simnet::Topology::fat_tree(hosts, oversub)
                .describe(nodes, profile.payload_bandwidth)
        );
        return;
    }
    let alg = args
        .get(1)
        .and_then(|s| ShuffleAlgorithm::parse(s))
        .unwrap_or(ShuffleAlgorithm::MESQ_SR);
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let trace_path = args
        .get(3)
        .cloned()
        .unwrap_or_else(|| "trace.json".to_string());

    let mut cfg = WorkloadConfig::new(DeviceProfile::edr(), nodes, Transport::Rdma(alg));
    cfg.pattern = Pattern::Repartition;
    if let Some(name) = args.get(4) {
        match canned_plan(name) {
            Some(plan) => cfg.faults.plan = plan,
            None => {
                eprintln!("unknown fault plan {name:?}; known: link-flap, link-degrade, straggler");
                std::process::exit(2);
            }
        }
    }
    if cfg.faults.plan.is_empty() {
        println!("fault plan: none");
    } else {
        for ev in &cfg.faults.plan.events {
            println!("fault plan: {ev}");
        }
    }

    // Inline a copy of the workload with extra reporting.
    let cluster = rshuffle_simnet::Cluster::new(cfg.nodes, cfg.profile.clone());
    let runtime = rshuffle_verbs::VerbsRuntime::with_faults(cluster, cfg.faults.clone());
    let groups: Vec<rshuffle::TransmissionGroups> = (0..cfg.nodes)
        .map(|me| rshuffle::TransmissionGroups::repartition(me, cfg.nodes))
        .collect();
    let cost = rshuffle::CostModel::from_profile(runtime.profile());
    let rows_per_thread = cfg.bytes_per_node / 16 / cfg.threads;
    let mut xcfg = rshuffle::ExchangeConfig::with_groups(alg, cfg.threads, groups.clone());
    xcfg.message_size = cfg.message_size;
    let exchange = rshuffle::Exchange::build(&runtime, &xcfg).unwrap();
    for (node, group) in groups.iter().enumerate() {
        let gen = std::sync::Arc::new(rshuffle_engine::Generator::new(
            rows_per_thread,
            cfg.threads,
            node as u64,
        ));
        let shuffle = std::sync::Arc::new(rshuffle::ShuffleOperator::new(
            alg.mode,
            gen,
            exchange.send[node].clone(),
            group.clone(),
            cfg.threads,
            cost.clone(),
        ));
        rshuffle_engine::drive_to_sink(
            runtime.cluster(),
            node,
            &format!("s{node}"),
            shuffle,
            cfg.threads,
            |_, _| {},
        );
        let recv = std::sync::Arc::new(rshuffle::ReceiveOperator::new(
            alg.mode,
            exchange.recv[node].clone(),
            16,
            2048,
            cfg.threads,
            cost.clone(),
        ));
        rshuffle_engine::drive_to_sink(
            runtime.cluster(),
            node,
            &format!("r{node}"),
            recv,
            cfg.threads,
            |_, _| {},
        );
    }
    runtime.cluster().run();
    let t_end = runtime.kernel().now();
    let bytes = exchange.bytes_received(0);
    let total: u64 = (0..cfg.nodes).map(|n| exchange.bytes_received(n)).sum();
    println!(
        "total received {:.2} MiB (expected {:.2} MiB); stats {:?}",
        total as f64 / 1048576.0,
        (rows_per_thread * cfg.threads * 16 * cfg.nodes) as f64 / 1048576.0,
        runtime.stats()
    );
    println!(
        "{alg}: {:.2} GiB/s per node, response {}",
        bytes as f64 / t_end.as_secs_f64() / (1u64 << 30) as f64,
        rshuffle_simnet::SimDuration::from_nanos(t_end.as_nanos())
    );
    let node = 0usize;
    println!(
        "node {node}: egress {:.1}%  ingress {:.1}%",
        runtime.cluster().fabric().egress_utilization(node, t_end) * 100.0,
        runtime.cluster().fabric().ingress_utilization(node, t_end) * 100.0
    );
    let n = runtime.nic(node).stats();
    println!(
        "  nic: wrs {}  qp hits {}  misses {}",
        n.work_requests, n.qp_cache_hits, n.qp_cache_misses
    );
    // Thread busy/idle summary for node 0.
    let mut send_busy = (0.0, 0.0);
    let mut recv_busy = (0.0, 0.0);
    for st in runtime.kernel().stats() {
        if st.node != 0 {
            continue;
        }
        let total = st.busy.as_secs_f64() + st.idle.as_secs_f64();
        if st.name.starts_with('s') {
            send_busy.0 += st.busy.as_secs_f64();
            send_busy.1 += total;
        } else {
            recv_busy.0 += st.busy.as_secs_f64();
            recv_busy.1 += total;
        }
    }
    println!(
        "  send threads busy {:.0}%  recv threads busy {:.0}%",
        100.0 * send_busy.0 / send_busy.1.max(1e-12),
        100.0 * recv_busy.0 / recv_busy.1.max(1e-12)
    );

    // Unified metrics snapshot: every counter and histogram the stack
    // recorded, across all tiers (NIC, kernel, verbs, endpoints, engine).
    let obs = runtime.obs();
    println!("--- metrics snapshot ---");
    println!("{}", obs.snapshot_json());

    // Latency percentile digest of every non-empty histogram series.
    let snapshot = obs.metrics.snapshot();
    println!("--- histogram percentiles ---");
    println!(
        "{:<55} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "series", "count", "p50", "p90", "p99", "p999", "max"
    );
    for (key, h) in &snapshot.histograms {
        if h.count == 0 {
            continue;
        }
        let s = h.summary();
        println!(
            "{key:<55} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
            s.count, s.p50, s.p90, s.p99, s.p999, s.max
        );
    }

    // Stage-span breakdown: where a message's lifetime goes, merged
    // across nodes (credit wait -> WR batching -> post-to-completion ->
    // CQ wait).
    let stages = rshuffle_bench::perf::stage_summaries(&snapshot);
    let total_mean: f64 = stages.iter().map(|(_, s)| s.mean * s.count as f64).sum();
    println!("--- stage breakdown (all nodes) ---");
    println!(
        "{:<30} {:>9} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "stage", "count", "mean(ns)", "p50", "p99", "p999", "share"
    );
    for (name, s) in &stages {
        let share = if total_mean > 0.0 {
            s.mean * s.count as f64 / total_mean * 100.0
        } else {
            0.0
        };
        println!(
            "{name:<30} {:>9} {:>12.1} {:>10} {:>10} {:>10} {share:>7.1}%",
            s.count, s.mean, s.p50, s.p99, s.p999
        );
    }

    // Flight-recorder export for chrome://tracing / Perfetto.
    let trace = obs.chrome_trace_json();
    match std::fs::write(&trace_path, &trace) {
        Ok(()) => println!(
            "wrote {} ({} bytes) — open at chrome://tracing or https://ui.perfetto.dev",
            trace_path,
            trace.len()
        ),
        Err(e) => eprintln!("failed to write {trace_path}: {e}"),
    }
}
