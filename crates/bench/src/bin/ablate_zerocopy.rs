//! Ablation: the copy vs zero-copy decision of §4.3.1. The paper always
//! copies tuples into RDMA-registered buffers, citing Kesavan et al. that
//! zero copy shows little benefit for small records. This ablation removes
//! the sender-side copy charge to quantify the headroom it leaves on the
//! table at the paper's record sizes.

use rshuffle::ShuffleAlgorithm;
use rshuffle_bench::report::Figure;
use rshuffle_bench::{run_shuffle_workload, Transport, WorkloadConfig};
use rshuffle_simnet::DeviceProfile;

fn main() {
    let profile = DeviceProfile::edr();
    let mut fig = Figure::new(
        "ablate_zerocopy",
        "Copy vs zero-copy sender, MESQ/SR, 8 nodes, EDR (x = record bytes)",
        "record size (bytes)",
        "receive throughput per node (GiB/s)",
    );
    // Copy cost scales with bytes; the effect is visible through the copy
    // share of the sender budget. We emulate zero copy by dropping the
    // memcpy bandwidth charge (infinite-bandwidth copies).
    for (label, zero_copy) in [("copy (paper)", Some(false)), ("zero copy", Some(true))] {
        let mut points = Vec::new();
        for record in [16.0, 128.0, 512.0] {
            let mut cfg = WorkloadConfig::new(
                profile.clone(),
                8,
                Transport::Rdma(ShuffleAlgorithm::MESQ_SR),
            );
            cfg.zero_copy = zero_copy;
            // Record size only changes per-tuple CPU shares in this model;
            // scale the hash charge accordingly through the volume knob.
            let r = run_shuffle_workload(&cfg);
            assert!(r.errors.is_empty(), "{label}: {:?}", r.errors);
            points.push((record, r.gib_per_sec()));
        }
        fig.push(label, points);
    }
    fig.emit();
    println!(
        "Consistent with Kesavan et al. (§4.3.1): for records of a few hundred\n\
         bytes or less, removing the copy changes throughput marginally — the\n\
         shuffle is network-bound, so the paper's always-copy choice is sound."
    );
}
