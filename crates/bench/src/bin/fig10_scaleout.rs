//! Figure 10: receive throughput when changing the number of nodes in the
//! cluster — repartition and broadcast, FDR and EDR, the six RDMA designs
//! plus MPI and IPoIB, with the qperf line as the peak reference.

use rshuffle::ShuffleAlgorithm;
use rshuffle_baselines::qperf_peak_bandwidth;
use rshuffle_bench::report::Figure;
use rshuffle_bench::{run_shuffle_workload, Pattern, Transport, WorkloadConfig};
use rshuffle_simnet::profile::GIB;
use rshuffle_simnet::DeviceProfile;

fn main() {
    let cluster_sizes = [2usize, 4, 8, 16];
    let transports: Vec<Transport> = [
        ShuffleAlgorithm::MEMQ_SR,
        ShuffleAlgorithm::MEMQ_RD,
        ShuffleAlgorithm::MESQ_SR,
        ShuffleAlgorithm::SEMQ_SR,
        ShuffleAlgorithm::SEMQ_RD,
        ShuffleAlgorithm::SESQ_SR,
    ]
    .into_iter()
    .map(Transport::Rdma)
    .chain([Transport::Mpi, Transport::Ipoib])
    .collect();

    let cases = [
        ("fig10a", DeviceProfile::fdr(), Pattern::Repartition),
        ("fig10b", DeviceProfile::fdr(), Pattern::Broadcast),
        ("fig10c", DeviceProfile::edr(), Pattern::Repartition),
        ("fig10d", DeviceProfile::edr(), Pattern::Broadcast),
    ];
    for (id, profile, pattern) in cases {
        let mut fig = Figure::new(
            id,
            &format!(
                "{:?} throughput vs cluster size, {} InfiniBand",
                pattern, profile.name
            ),
            "nodes",
            "receive throughput per node (GiB/s)",
        );
        for &t in &transports {
            let mut points = Vec::new();
            for &n in &cluster_sizes {
                let mut cfg = WorkloadConfig::new(profile.clone(), n, t);
                cfg.pattern = pattern;
                if pattern == Pattern::Broadcast {
                    // Every node transmits its fragment to n-1 peers; keep
                    // total simulated traffic bounded.
                    cfg.bytes_per_node =
                        (rshuffle_bench::workload::default_volume() / (n - 1)).max(4 << 20);
                }
                let r = run_shuffle_workload(&cfg);
                assert!(r.errors.is_empty(), "{t} n={n}: {:?}", r.errors);
                points.push((n as f64, r.gib_per_sec()));
                eprintln!("[{id}] {t} n={n}: {:.2} GiB/s", r.gib_per_sec());
            }
            fig.push(&t.to_string(), points);
        }
        if pattern == Pattern::Repartition {
            // qperf does not support the broadcast pattern (§5.1.3).
            let q = qperf_peak_bandwidth(&profile, 64 * 1024) / GIB;
            fig.push(
                "qperf",
                cluster_sizes.iter().map(|&n| (n as f64, q)).collect(),
            );
        }
        fig.emit();
    }
}
