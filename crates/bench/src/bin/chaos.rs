//! Chaos benchmark: runs every shuffle algorithm under a matrix of seeded
//! fault plans through the query-restart orchestrator and reports restart
//! counts, recovery latency, and delivered-row verification.
//!
//! Usage: `chaos [--smoke]`. `--smoke` runs a single composite fault plan
//! across all six algorithms (the CI gate); the default runs the full
//! plan matrix.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm};
use rshuffle_engine::ops::Generator;
use rshuffle_engine::restart::{run_shuffle_with_restart, RestartPolicy};
use rshuffle_simnet::{DeviceProfile, SimDuration};
use rshuffle_verbs::{FaultConfig, FaultPlan};

const NODES: usize = 3;
const THREADS: usize = 2;
const ROWS_PER_THREAD: usize = 2000;
const ROW: usize = 16;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

fn fault_matrix() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::new()),
        ("link-flap", FaultPlan::new().link_flap(1, us(10), us(150))),
        (
            "link-degrade",
            FaultPlan::new().link_degrade(1, us(5), us(400), 0.25, us(2)),
        ),
        (
            "straggler",
            FaultPlan::new().straggler(2, us(5), us(500), 4.0),
        ),
        (
            "receiver-pause",
            FaultPlan::new().receiver_pause(1, us(10), us(300)),
        ),
        ("qp-failure", FaultPlan::new().qp_failure(1, us(20))),
        (
            "ud-loss-burst",
            FaultPlan::new().ud_loss_burst(0, us(10), us(120), 1.0),
        ),
    ]
}

fn composite_plan() -> (&'static str, FaultPlan) {
    (
        "composite",
        FaultPlan::new()
            .link_flap(1, us(10), us(150))
            .straggler(2, us(5), us(500), 4.0)
            .qp_failure(1, us(20))
            .ud_loss_burst(0, us(10), us(120), 1.0),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let plans = if smoke {
        vec![composite_plan()]
    } else {
        fault_matrix()
    };
    let expected_rows = (NODES * THREADS * ROWS_PER_THREAD) as u64;
    println!(
        "{:<15} {:<10} {:>9} {:>9} {:>13} {:>12}  outcome",
        "plan", "algorithm", "restarts", "rows", "recovery(µs)", "virtual(µs)"
    );
    let mut failures = 0u32;
    for (plan_name, plan) in &plans {
        for algorithm in ShuffleAlgorithm::ALL {
            let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
            config.message_size = 4096;
            config.stall_timeout = SimDuration::from_millis(2);
            config.depleted_timeout = us(500);
            config.faults = FaultConfig {
                seed: 42,
                plan: plan.clone(),
                ..FaultConfig::default()
            };
            let runtime = config.build_runtime(DeviceProfile::edr());
            let delivered: Arc<Mutex<HashMap<u32, u64>>> = Arc::new(Mutex::new(HashMap::new()));
            let d = delivered.clone();
            let report = run_shuffle_with_restart(
                &runtime,
                &config,
                RestartPolicy {
                    max_restarts: 6,
                    initial_backoff: us(50),
                    max_backoff: SimDuration::from_millis(1),
                },
                ROW,
                |_, node| {
                    Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64))
                        as Arc<dyn Operator>
                },
                move |attempt, _, _, batch| {
                    *d.lock().entry(attempt).or_default() += batch.rows() as u64;
                },
            );
            runtime.cluster().run();
            let rep = report.lock().clone();
            let winning = delivered.lock().get(&rep.restarts).copied().unwrap_or(0);
            let ok = rep.succeeded() && winning == expected_rows;
            if !ok {
                failures += 1;
            }
            let outcome = match &rep.failure {
                None if winning == expected_rows => "ok".to_string(),
                None => format!("ROW MISMATCH ({winning}/{expected_rows})"),
                Some(e) => format!("FAILED: {e}"),
            };
            println!(
                "{:<15} {:<10} {:>9} {:>9} {:>13} {:>12.1}  {}",
                plan_name,
                algorithm.to_string(),
                rep.restarts,
                rep.rows,
                rep.recovery
                    .map(|r| format!("{:.1}", r.as_nanos() as f64 / 1e3))
                    .unwrap_or_else(|| "-".to_string()),
                runtime.cluster().kernel().now().as_nanos() as f64 / 1e3,
                outcome
            );
        }
    }
    if failures > 0 {
        eprintln!("chaos: {failures} run(s) failed");
        std::process::exit(1);
    }
}
