//! Chaos benchmark: runs every shuffle algorithm under a matrix of seeded
//! fault plans through the partial-failure recovery orchestrator and
//! reports partial retries, full restarts, QP reconnects, redone bytes,
//! recovery latency, and delivered-row verification.
//!
//! Usage: `chaos [--smoke] [--emit PATH]`. `--smoke` runs a composite
//! fault plan plus a partial-recovery (QP-failure-window) plan across all
//! six algorithms (the CI gate); the default runs the full plan matrix.
//! `--emit` writes the per-run recovery metrics as an `rshuffle-bench/1`
//! report for `perfdiff`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm};
use rshuffle_bench::perf::{take_emit_flag, BenchReport, BenchResult, BenchRun, MetricRow};
use serde::Value;
use rshuffle_engine::ops::Generator;
use rshuffle_engine::recovery::{run_shuffle_with_recovery, RecoveryPolicy};
use rshuffle_simnet::{DeviceProfile, SimDuration};
use rshuffle_verbs::{FaultConfig, FaultPlan, QpScope};

const NODES: usize = 3;
const THREADS: usize = 2;
const ROWS_PER_THREAD: usize = 2000;
const ROW: usize = 16;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

fn fault_matrix() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::new()),
        ("link-flap", FaultPlan::new().link_flap(1, us(10), us(150))),
        (
            "link-degrade",
            FaultPlan::new().link_degrade(1, us(5), us(400), 0.25, us(2)),
        ),
        (
            "straggler",
            FaultPlan::new().straggler(2, us(5), us(500), 4.0),
        ),
        (
            "receiver-pause",
            FaultPlan::new().receiver_pause(1, us(10), us(300)),
        ),
        ("qp-failure", FaultPlan::new().qp_failure(1, us(20))),
        (
            "ud-loss-burst",
            FaultPlan::new().ud_loss_burst(0, us(10), us(120), 1.0),
        ),
        partial_recovery_plan(),
    ]
}

fn composite_plan() -> (&'static str, FaultPlan) {
    (
        "composite",
        FaultPlan::new()
            .link_flap(1, us(10), us(150))
            .straggler(2, us(5), us(500), 4.0)
            .qp_failure(1, us(20))
            .ud_loss_burst(0, us(10), us(120), 1.0),
    )
}

/// A transient whole-node QP outage: the plan the partial-retry rung
/// exists for. Runs under this plan must contain the failure — at least
/// one partial retry, no full restart.
fn partial_recovery_plan() -> (&'static str, FaultPlan) {
    (
        "partial-recovery",
        FaultPlan::new().qp_failure_window(1, us(10), us(200), QpScope::All),
    )
}

fn main() {
    let (args, emit) = take_emit_flag(std::env::args().skip(1).collect());
    let smoke = args.iter().any(|a| a == "--smoke");
    let plans = if smoke {
        vec![composite_plan(), partial_recovery_plan()]
    } else {
        fault_matrix()
    };
    let expected_rows = (NODES * THREADS * ROWS_PER_THREAD) as u64;
    let mut failures = 0u32;
    let mut rows_out: Vec<BenchResult> = Vec::new();
    for (plan_name, plan) in &plans {
        let described: Vec<String> = plan.events.iter().map(|e| e.to_string()).collect();
        println!(
            "plan {plan_name}: {}",
            if described.is_empty() {
                "no injected faults".to_string()
            } else {
                described.join("; ")
            }
        );
        println!(
            "  {:<10} {:>7} {:>8} {:>10} {:>10} {:>9} {:>13} {:>12}  outcome",
            "algorithm",
            "partial",
            "restarts",
            "reconnects",
            "redone(B)",
            "rows",
            "recovery(µs)",
            "virtual(µs)"
        );
        for algorithm in ShuffleAlgorithm::ALL {
            let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
            config.message_size = 4096;
            config.stall_timeout = SimDuration::from_millis(2);
            config.depleted_timeout = us(500);
            config.faults = FaultConfig {
                seed: 42,
                plan: plan.clone(),
                ..FaultConfig::default()
            };
            let runtime = config.build_runtime(DeviceProfile::edr());
            let delivered: Arc<Mutex<HashMap<u32, u64>>> = Arc::new(Mutex::new(HashMap::new()));
            let d = delivered.clone();
            let report = run_shuffle_with_recovery(
                &runtime,
                &config,
                RecoveryPolicy {
                    max_partial_retries: 6,
                    max_full_restarts: 6,
                    ..RecoveryPolicy::default()
                },
                ROW,
                |_, node| {
                    Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64))
                        as Arc<dyn Operator>
                },
                move |generation, _, _, batch| {
                    *d.lock().entry(generation).or_default() += batch.rows() as u64;
                },
            );
            runtime.cluster().run();
            let rep = report.lock().clone();
            let winning = delivered.lock().get(&rep.generation).copied().unwrap_or(0);
            // The partial-recovery plan is a containment gate: the
            // failure must be absorbed without a full restart.
            let contained = *plan_name != "partial-recovery"
                || (rep.partial_retries >= 1 && rep.full_restarts == 0);
            let ok = rep.succeeded() && winning == expected_rows && contained;
            if !ok {
                failures += 1;
            }
            let outcome = match &rep.failure {
                None if winning != expected_rows => {
                    format!("ROW MISMATCH ({winning}/{expected_rows})")
                }
                None if !contained => format!(
                    "NOT CONTAINED ({} partial, {} full)",
                    rep.partial_retries, rep.full_restarts
                ),
                None => "ok".to_string(),
                Some(e) => format!("FAILED: {e}"),
            };
            let recovery_ns = rep.recovery.map(|r| r.as_nanos()).unwrap_or(0);
            println!(
                "  {:<10} {:>7} {:>8} {:>10} {:>10} {:>9} {:>13} {:>12.1}  {}",
                algorithm.to_string(),
                rep.partial_retries,
                rep.full_restarts,
                rep.qp_reconnects,
                rep.redone_bytes,
                rep.rows,
                if recovery_ns == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", recovery_ns as f64 / 1e3)
                },
                runtime.cluster().kernel().now().as_nanos() as f64 / 1e3,
                outcome
            );
            rows_out.push(BenchResult {
                id: format!("{plan_name}/{algorithm}"),
                metrics: vec![
                    MetricRow::lower("engine.recovery_ns", recovery_ns as f64),
                    MetricRow::info("engine.partial_retries", rep.partial_retries as f64),
                    MetricRow::info("engine.restarts", rep.full_restarts as f64),
                    MetricRow::info("engine.qp_reconnects", rep.qp_reconnects as f64),
                    MetricRow::info("engine.redone_bytes", rep.redone_bytes as f64),
                    MetricRow::info("engine.kept_bytes", rep.kept_bytes as f64),
                    MetricRow::info("rows", rep.rows as f64),
                ],
                stages: Vec::new(),
            });
        }
    }
    if let Some(path) = emit {
        let mut report = BenchReport::new();
        report.benches.push(BenchRun {
            bench: "chaos".to_string(),
            config: vec![
                ("nodes".to_string(), Value::UInt(NODES as u64)),
                ("threads".to_string(), Value::UInt(THREADS as u64)),
                (
                    "rows_per_thread".to_string(),
                    Value::UInt(ROWS_PER_THREAD as u64),
                ),
                ("row_size".to_string(), Value::UInt(ROW as u64)),
                ("smoke".to_string(), Value::Bool(smoke)),
            ],
            results: rows_out,
        });
        if let Err(e) = report.write(&path) {
            eprintln!("chaos: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
    if failures > 0 {
        eprintln!("chaos: {failures} run(s) failed");
        std::process::exit(1);
    }
}
