//! Concurrent-workload benchmark: N identical shuffle queries run
//! through the admission scheduler on one simulated cluster, for every
//! algorithm and N ∈ {1, 2, 4, 8}.
//!
//! Reports per-query virtual latency (p50/p99 across the queries of a
//! run) and aggregate delivered throughput, and asserts the two
//! scheduler invariants: at least two queries genuinely overlap in
//! virtual time whenever N ≥ 2, and the per-node registered-memory peak
//! never exceeds the configured budget.
//!
//! Usage: `concurrency [--smoke]`. `--smoke` trims the matrix to
//! N ∈ {1, 2} with small inputs (the CI gate).

use std::sync::Arc;

use rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm};
use rshuffle_engine::ops::Generator;
use rshuffle_engine::workload::{run_workload, QuerySpec};
use rshuffle_sched::{Scheduler, SchedulerConfig};
use rshuffle_simnet::DeviceProfile;

const NODES: usize = 3;
const THREADS: usize = 2;
const ROW: usize = 16;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let levels: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let rows_per_thread = if smoke { 200 } else { 800 };
    println!(
        "{:<10} {:>2} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "algorithm", "N", "p50(µs)", "p99(µs)", "makespan(µs)", "agg(MB/s)", "peak(MiB)"
    );
    let mut failures = 0u32;
    for algorithm in ShuffleAlgorithm::ALL {
        for &n in levels {
            let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
            config.message_size = 4096;
            let runtime = config.build_runtime(DeviceProfile::edr());
            // Budget exactly fits N concurrent copies of this query: the
            // scheduler may admit everything at once, but one byte of
            // over-pinning would trip the peak assertion below.
            let est_max = (0..NODES)
                .map(|node| config.registered_bytes_estimate(runtime.profile(), node))
                .max()
                .unwrap();
            let budget = est_max * n;
            let sched = Scheduler::new(
                &runtime,
                SchedulerConfig {
                    max_concurrent: n,
                    mem_budget_per_node: Some(budget),
                    ..SchedulerConfig::default()
                },
            );
            let queries = (0..n as u32)
                .map(|id| QuerySpec::new(id, config.clone(), ROW))
                .collect();
            let handles = run_workload(
                &runtime,
                &sched,
                queries,
                move |query, _, node| {
                    Arc::new(Generator::new(
                        rows_per_thread,
                        THREADS,
                        node as u64 ^ (query as u64) << 16,
                    )) as Arc<dyn Operator>
                },
                |_, _, _, _, _| {},
            );
            runtime.cluster().run();

            let expected_rows = (NODES * THREADS * rows_per_thread) as u64;
            let mut latencies = Vec::new();
            let mut total_bytes = 0u64;
            let mut windows = Vec::new();
            let mut makespan_end = 0u64;
            for h in &handles {
                let rep = h.report.lock();
                let t = h.timing.lock();
                if !rep.succeeded() || rep.rows != expected_rows {
                    eprintln!(
                        "{algorithm} N={n} query {}: rows {}/{} failure {:?}",
                        h.query, rep.rows, expected_rows, rep.failure
                    );
                    failures += 1;
                    continue;
                }
                let lat = t.latency().expect("completed query has a latency");
                latencies.push(lat.as_nanos());
                total_bytes += rep.bytes;
                let start = t.first_admitted.expect("admitted").as_nanos();
                let end = t.completed.expect("completed").as_nanos();
                windows.push((start, end));
                makespan_end = makespan_end.max(end);
            }
            if latencies.len() != n {
                continue;
            }
            // Invariant: with N >= 2 slots and N queries, at least one
            // pair must overlap in virtual time — the scheduler runs
            // them concurrently, not back to back.
            if n >= 2 {
                let overlap = windows.iter().enumerate().any(|(i, a)| {
                    windows[i + 1..]
                        .iter()
                        .any(|b| a.0 < b.1 && b.0 < a.1)
                });
                if !overlap {
                    eprintln!("{algorithm} N={n}: no two queries overlapped: {windows:?}");
                    failures += 1;
                }
            }
            // Invariant: the budget holds at all times on every node.
            let mut peak = 0usize;
            for node in 0..NODES {
                let p = runtime.registered_bytes_peak(node);
                peak = peak.max(p);
                if p > budget {
                    eprintln!(
                        "{algorithm} N={n}: node {node} peak {p} exceeds budget {budget}"
                    );
                    failures += 1;
                }
            }
            latencies.sort_unstable();
            let p50 = percentile(&latencies, 0.50);
            let p99 = percentile(&latencies, 0.99);
            let makespan = makespan_end;
            let mbps = if makespan > 0 {
                total_bytes as f64 / (makespan as f64 / 1e9) / 1e6
            } else {
                0.0
            };
            println!(
                "{:<10} {:>2} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>10.2}",
                algorithm.to_string(),
                n,
                p50 as f64 / 1e3,
                p99 as f64 / 1e3,
                makespan as f64 / 1e3,
                mbps,
                peak as f64 / (1024.0 * 1024.0)
            );
        }
    }
    if failures > 0 {
        eprintln!("concurrency: {failures} invariant violation(s)");
        std::process::exit(1);
    }
}
