//! Concurrent-workload benchmark: N identical shuffle queries run
//! through the admission scheduler on one simulated cluster, for every
//! algorithm and N ∈ {1, 2, 4, 8}.
//!
//! Reports per-query virtual latency (p50/p99 across the queries of a
//! run) and aggregate delivered throughput, and asserts the two
//! scheduler invariants: at least two queries genuinely overlap in
//! virtual time whenever N ≥ 2, and the per-node registered-memory peak
//! never exceeds the configured budget. The measurement loop itself
//! lives in [`rshuffle_bench::perf::run_concurrency_matrix`], shared
//! with the `perfdiff` regression gate.
//!
//! Usage: `concurrency [--smoke] [--emit BENCH.json]`. `--smoke` trims
//! the matrix to N ∈ {1, 2} with small inputs (the CI gate); `--emit`
//! additionally writes the machine-readable perf-trajectory record.

use rshuffle_bench::perf::{
    concurrency_bench_run, run_concurrency_matrix, take_emit_flag, BenchReport,
    SMOKE_LEVELS, SMOKE_ROWS_PER_THREAD,
};

fn main() {
    let (args, emit) = take_emit_flag(std::env::args().skip(1).collect());
    let smoke = args.iter().any(|a| a == "--smoke");
    let levels: &[usize] = if smoke { SMOKE_LEVELS } else { &[1, 2, 4, 8] };
    let rows_per_thread = if smoke { SMOKE_ROWS_PER_THREAD } else { 800 };

    let cells = run_concurrency_matrix(levels, rows_per_thread);

    println!(
        "{:<10} {:>2} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "algorithm", "N", "p50(µs)", "p99(µs)", "makespan(µs)", "agg(MB/s)", "peak(MiB)"
    );
    let mut failures = 0u32;
    for c in &cells {
        for v in &c.violations {
            eprintln!("{v}");
            failures += 1;
        }
        if !c.violations.is_empty() {
            continue;
        }
        println!(
            "{:<10} {:>2} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>10.2}",
            c.algorithm.to_string(),
            c.n,
            c.p50_ns as f64 / 1e3,
            c.p99_ns as f64 / 1e3,
            c.makespan_ns as f64 / 1e3,
            c.agg_mbps,
            c.peak_bytes as f64 / (1024.0 * 1024.0)
        );
    }

    if let Some(path) = emit {
        let mut report = BenchReport::new();
        report
            .benches
            .push(concurrency_bench_run(&cells, levels, rows_per_thread));
        match report.write(&path) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("concurrency: cannot write {path}: {e}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("concurrency: {failures} invariant violation(s)");
        std::process::exit(1);
    }
}
