//! Figure 9: effect of the message size for EDR InfiniBand (8 nodes,
//! double buffering): (a) receive throughput, (b) memory registered for
//! RDMA communication. The measurement loop lives in
//! [`rshuffle_bench::perf::run_msgsize_sweep`], shared with the
//! `perfdiff` regression gate.
//!
//! Usage: `fig09_msgsize [--smoke] [--emit BENCH.json]`. `--smoke`
//! shrinks the sweep to the deterministic CI matrix (4 nodes, fixed
//! 4 MiB/node volume, two sizes); `--emit` additionally writes the
//! machine-readable perf-trajectory record.

use rshuffle_bench::perf::{
    msgsize_bench_run, run_msgsize_sweep, take_emit_flag, BenchReport, SMOKE_MSG_BYTES_PER_NODE,
    SMOKE_MSG_NODES, SMOKE_MSG_SIZES,
};
use rshuffle_bench::report::Figure;

fn main() {
    let (args, emit) = take_emit_flag(std::env::args().skip(1).collect());
    let smoke = args.iter().any(|a| a == "--smoke");
    let (sizes, nodes, volume): (&[usize], usize, Option<usize>) = if smoke {
        (SMOKE_MSG_SIZES, SMOKE_MSG_NODES, Some(SMOKE_MSG_BYTES_PER_NODE))
    } else {
        (
            &[4usize << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20],
            8,
            None,
        )
    };

    let cells = run_msgsize_sweep(sizes, nodes, volume);
    let mut failures = 0u32;
    for c in &cells {
        for e in &c.errors {
            eprintln!("{} msg {}: {e}", c.algorithm, c.msg_size);
            failures += 1;
        }
    }

    let mut thr = Figure::new(
        "fig09a",
        "Message size vs receive throughput, EDR",
        "message size (KiB)",
        "receive throughput per node (GiB/s)",
    );
    let mut mem = Figure::new(
        "fig09b",
        "Message size vs RDMA-registered memory, EDR",
        "message size (KiB)",
        "memory consumption (MiB per node)",
    );
    for a in cells
        .iter()
        .map(|c| c.algorithm)
        .collect::<Vec<_>>()
        .into_iter()
        .fold(Vec::new(), |mut acc, a| {
            if !acc.contains(&a) {
                acc.push(a);
            }
            acc
        })
    {
        let thr_pts = cells
            .iter()
            .filter(|c| c.algorithm == a)
            .map(|c| (c.msg_size as f64 / 1024.0, c.gib_per_sec))
            .collect();
        let mem_pts = cells
            .iter()
            .filter(|c| c.algorithm == a)
            .map(|c| {
                (
                    c.msg_size as f64 / 1024.0,
                    c.registered_bytes as f64 / (1 << 20) as f64,
                )
            })
            .collect();
        thr.push(&a.to_string(), thr_pts);
        mem.push(&a.to_string(), mem_pts);
    }
    thr.emit();
    mem.emit();

    if let Some(path) = emit {
        let mut report = BenchReport::new();
        report.benches.push(msgsize_bench_run(&cells, nodes, volume));
        match report.write(&path) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("fig09_msgsize: cannot write {path}: {e}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        std::process::exit(1);
    }
}
