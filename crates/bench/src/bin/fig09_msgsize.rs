//! Figure 9: effect of the message size for EDR InfiniBand (8 nodes,
//! double buffering): (a) receive throughput, (b) memory registered for
//! RDMA communication.

use rshuffle::ShuffleAlgorithm;
use rshuffle_bench::report::Figure;
use rshuffle_bench::{run_shuffle_workload, Transport, WorkloadConfig};
use rshuffle_simnet::DeviceProfile;

fn main() {
    let sizes = [4usize << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20];
    let mut thr = Figure::new(
        "fig09a",
        "Message size vs receive throughput, 8 nodes, EDR",
        "message size (KiB)",
        "receive throughput per node (GiB/s)",
    );
    let mut mem = Figure::new(
        "fig09b",
        "Message size vs RDMA-registered memory, 8 nodes, EDR",
        "message size (KiB)",
        "memory consumption (MiB per node)",
    );
    for a in ShuffleAlgorithm::ALL {
        let mut thr_pts = Vec::new();
        let mut mem_pts = Vec::new();
        for &msg in &sizes {
            let mut cfg = WorkloadConfig::new(DeviceProfile::edr(), 8, Transport::Rdma(a));
            // §5.1.2: double buffering, message size swept. The UD designs
            // are pinned to the MTU regardless.
            cfg.message_size = msg;
            cfg.buffers_per_peer = 2;
            cfg.recv_depth_per_peer = 4;
            let r = run_shuffle_workload(&cfg);
            assert!(r.errors.is_empty(), "{a} msg {msg}: {:?}", r.errors);
            thr_pts.push((msg as f64 / 1024.0, r.gib_per_sec()));
            mem_pts.push((
                msg as f64 / 1024.0,
                r.registered_bytes_per_node as f64 / (1 << 20) as f64,
            ));
        }
        thr.push(&a.to_string(), thr_pts);
        mem.push(&a.to_string(), mem_pts);
    }
    thr.emit();
    mem.emit();
}
