//! Figure 14: TPC-H query response time.
//!
//! (a) Q4 on 8 nodes: FDR vs EDR, MPI vs MESQ/SR vs "local data".
//! (b)–(d) Q4/Q3/Q10 on the EDR cluster scaling 2→16 nodes with the
//! database growing proportionally.
//!
//! The scale factor is reduced from the paper's 100 GiB/node so the run
//! fits one simulation host; response-time *ratios* are the reproduced
//! quantity (see EXPERIMENTS.md). `RSHUFFLE_TPCH_SF_PER_NODE` overrides
//! the per-node scale factor.

use rshuffle::ShuffleAlgorithm;
use rshuffle_bench::report::Figure;
use rshuffle_simnet::DeviceProfile;
use rshuffle_tpch::{run_query, Dataset, GenConfig, Placement, QueryId, QueryTransport};

fn sf_per_node() -> f64 {
    std::env::var("RSHUFFLE_TPCH_SF_PER_NODE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.08)
}

fn dataset(nodes: usize, placement: Placement) -> Dataset {
    Dataset::generate(&GenConfig {
        scale: sf_per_node() * nodes as f64,
        nodes,
        placement,
        seed: 0x7C9,
    })
}

fn main() {
    let mesq = QueryTransport::Rdma(ShuffleAlgorithm::MESQ_SR);

    // ---- (a) Q4, 8 nodes, FDR vs EDR ----
    let mut fig_a = Figure::new(
        "fig14a",
        "TPC-H Q4 response time, 8 nodes, FDR vs EDR (x: 0 = FDR, 1 = EDR)",
        "cluster (0=FDR, 1=EDR)",
        "response time (ms)",
    );
    for (label, transport, placement) in [
        ("MPI", QueryTransport::Mpi, Placement::Random),
        ("MESQ/SR", mesq, Placement::Random),
        (
            "local data",
            QueryTransport::LocalData,
            Placement::CoPartitioned,
        ),
    ] {
        let mut points = Vec::new();
        for (x, profile) in [(0.0, DeviceProfile::fdr()), (1.0, DeviceProfile::edr())] {
            let d = dataset(8, placement);
            let threads = profile.threads_per_node;
            let r = run_query(profile, &d, QueryId::Q4, transport, threads);
            points.push((x, r.response_time.as_millis_f64()));
            eprintln!("[fig14a] {label} x={x}: {:?}", r.response_time);
        }
        fig_a.push(label, points);
    }
    fig_a.emit();

    // ---- (b)–(d): scale-out on EDR ----
    let cluster_sizes = [2usize, 4, 8, 16];
    for (id, query, with_local) in [
        ("fig14b", QueryId::Q4, true),
        ("fig14c", QueryId::Q3, false),
        ("fig14d", QueryId::Q10, false),
    ] {
        let mut fig = Figure::new(
            id,
            &format!("TPC-H {query:?} response time vs cluster size, EDR (DB grows with cluster)"),
            "cluster size",
            "response time (ms)",
        );
        let mut variants: Vec<(&str, QueryTransport, Placement)> = vec![
            ("MPI", QueryTransport::Mpi, Placement::Random),
            ("MESQ/SR", mesq, Placement::Random),
        ];
        if with_local {
            variants.push((
                "local data",
                QueryTransport::LocalData,
                Placement::CoPartitioned,
            ));
        }
        for (label, transport, placement) in variants {
            let mut points = Vec::new();
            for &n in &cluster_sizes {
                let d = dataset(n, placement);
                let profile = DeviceProfile::edr();
                let threads = profile.threads_per_node;
                let r = run_query(profile, &d, query, transport, threads);
                points.push((n as f64, r.response_time.as_millis_f64()));
                eprintln!("[{id}] {label} n={n}: {:?}", r.response_time);
            }
            fig.push(label, points);
        }
        fig.emit();
    }
}
