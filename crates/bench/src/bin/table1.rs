//! Table 1: alternative data shuffling operator designs for a cluster with
//! `n` nodes and `t` threads per query fragment.

use rshuffle::{Contention, ShuffleAlgorithm};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let t: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(14);

    println!("== Table 1 — design alternatives (n = {n} nodes, t = {t} threads) ==");
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>14} {:>26}",
        "design", "QPs per node", "QP class", "contention", "messaging", "transport"
    );
    for a in ShuffleAlgorithm::ALL {
        let qps = a.qps_per_node(n, t);
        let class = match qps {
            q if q >= (n - 1) * t => "excessive",
            q if q > 1 => "moderate",
            _ => "minimal",
        };
        let contention = match a.contention() {
            Contention::None => "none",
            Contention::Moderate => "moderate",
            Contention::Excessive => "excessive",
        };
        let (messaging, transport) = if a.reliable_transport() {
            (
                "round-trip",
                "Reliable Connection (RC), error control in hardware",
            )
        } else {
            (
                "half-trip",
                "Unreliable Datagram (UD), error control in software",
            )
        };
        println!(
            "{:<10} {qps:>14} {class:>12} {contention:>12} {messaging:>14} {transport:>26}",
            a.to_string()
        );
    }
    println!(
        "\nmax message: RC up to 1 GiB; UD up to the 4 KiB MTU.\n\
         one-sided designs (MQ/RD) coordinate periodically through FreeArr/ValidArr;\n\
         two-sided designs (SR) coordinate continuously through credit."
    );
}
