//! `scale` — the 32–512-node scale-out matrix.
//!
//! Sweeps cluster sizes far beyond the paper's 16-node testbed over a
//! two-tier fat-tree fabric, with and without the connection
//! multiplexer's QP cap, and reports where the chunked-message designs
//! stop paying for their per-pair QP state: the MESQ/SR (UD) vs MEMQ/RD
//! (RC) crossover that §7's scalability discussion predicts.
//!
//! ```text
//! scale [--smoke] [--full] [--single-switch] [--oversub X]
//!       [--hosts-per-leaf H] [--skew-theta T] [--stragglers K]
//!       [--straggler-factor F] [--emit BENCH.json]
//! ```
//!
//! * Default/`--full`: 32/64/128/256/512 nodes; all six designs up to
//!   128 nodes, the crossover pair (MESQ/SR, MEMQ/RD) at 256/512 where
//!   a full six-way sweep would be wall-clock prohibitive (the dropped
//!   cells are logged, not silently skipped).
//! * `--smoke`: 32 nodes, crossover pair only — the deterministic CI
//!   configuration gated by `perfdiff` against `BENCH_SCALE_0009.json`.
//! * `--emit` writes an `rshuffle-bench/1` report. Virtual-time metrics
//!   (`gib_per_sec`, `response_virt_ns`) are gated; `qp_count`,
//!   `mux_lease_waits` and the host `wall_clock_ms` are informational
//!   (wall-clock depends on the host machine, never on the simulation).

use rshuffle::ShuffleAlgorithm;
use rshuffle_bench::perf::{take_emit_flag, BenchReport, BenchResult, BenchRun, MetricRow};
use rshuffle_bench::skew::{straggler_plan, SkewSpec};
use rshuffle_bench::{run_shuffle_workload, Transport, WorkloadConfig};
use rshuffle_mux::MuxConfig;
use rshuffle_simnet::{DeviceProfile, Topology};
use serde::Value;

/// Worker threads per node: 2 lanes for the ME designs, so a QP cap of
/// 1 genuinely halves the per-pair connection count.
const THREADS: usize = 2;

/// `(bytes_per_node, rc_message_size)` for a cluster size: strong
/// scaling (a fixed per-node table, so per-pair volume shrinks with N —
/// that amortization squeeze is what moves the crossover), with the two
/// largest sizes dropped to a smaller table and message so a 512-node
/// cell stays in minutes of host wall-clock and gigabytes of send/recv
/// pool memory. Both shrink *after* the crossover (which lands at N=64),
/// so every per-N comparison still runs both designs at identical
/// settings; cross-N throughput curves are only comparable within a
/// tier. The reduction is logged at run time, never silent.
fn volume_for(nodes: usize) -> (usize, usize) {
    match nodes {
        n if n <= 128 => (8 << 20, 16 * 1024),
        256 => (2 << 20, 4 * 1024),
        _ => (1 << 20, 4 * 1024),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: scale [--smoke | --full] [--single-switch] [--oversub X]\n\
         \x20           [--hosts-per-leaf H] [--skew-theta T] [--stragglers K]\n\
         \x20           [--straggler-factor F] [--emit BENCH.json]"
    );
    std::process::exit(2);
}

struct Cell {
    algorithm: ShuffleAlgorithm,
    nodes: usize,
    cap: Option<usize>,
    gib_per_sec: f64,
    response_ns: u64,
    qp_count: u64,
    lease_waits: u64,
    wall_ms: f64,
    bytes_per_node: usize,
}

impl Cell {
    fn id(&self) -> String {
        match self.cap {
            Some(c) => format!("{}/N={}/cap={c}", self.algorithm, self.nodes),
            None => format!("{}/N={}", self.algorithm, self.nodes),
        }
    }
}

fn main() {
    let (args, emit) = take_emit_flag(std::env::args().skip(1).collect());
    let mut smoke = false;
    let mut single_switch = false;
    let mut oversub = 4.0f64;
    let mut hosts_per_leaf = 16usize;
    let mut skew_theta = 0.0f64;
    let mut stragglers = 0usize;
    let mut straggler_factor = 3.0f64;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--full" => smoke = false,
            "--single-switch" => single_switch = true,
            "--oversub" => oversub = value().parse().unwrap_or_else(|_| usage()),
            "--hosts-per-leaf" => hosts_per_leaf = value().parse().unwrap_or_else(|_| usage()),
            "--skew-theta" => skew_theta = value().parse().unwrap_or_else(|_| usage()),
            "--stragglers" => stragglers = value().parse().unwrap_or_else(|_| usage()),
            "--straggler-factor" => {
                straggler_factor = value().parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let profile = DeviceProfile::edr();
    let topology = if single_switch {
        Topology::SingleSwitch
    } else {
        Topology::fat_tree(hosts_per_leaf, oversub)
    };
    let crossover_pair = [ShuffleAlgorithm::MESQ_SR, ShuffleAlgorithm::MEMQ_RD];
    let all_six = [
        ShuffleAlgorithm::MEMQ_SR,
        ShuffleAlgorithm::MEMQ_RD,
        ShuffleAlgorithm::SEMQ_SR,
        ShuffleAlgorithm::SEMQ_RD,
        ShuffleAlgorithm::MESQ_SR,
        ShuffleAlgorithm::SESQ_SR,
    ];
    let node_counts: &[usize] = if smoke { &[32] } else { &[32, 64, 128, 256, 512] };
    // QP-cap settings: the direct path and a cap of 1 per directed pair
    // (half the ME designs' natural 2 lanes). Caps never apply to the
    // SE designs (1 lane) or to UD, so those run once.
    let caps: &[Option<usize>] = &[None, Some(1)];

    let mut cells: Vec<Cell> = Vec::new();
    for &nodes in node_counts {
        let algorithms: &[ShuffleAlgorithm] = if smoke || nodes <= 128 {
            &all_six
        } else {
            eprintln!(
                "[scale] N={nodes}: restricting to the crossover pair \
                 (MESQ/SR, MEMQ/RD); a six-way sweep at this size is \
                 wall-clock prohibitive on one core"
            );
            &crossover_pair
        };
        let algorithms: Vec<ShuffleAlgorithm> = if smoke {
            crossover_pair.to_vec()
        } else {
            algorithms.to_vec()
        };
        let (bytes_per_node, message_size) = volume_for(nodes);
        if bytes_per_node < volume_for(32).0 {
            eprintln!(
                "[scale] N={nodes}: per-node volume reduced to {} MiB and RC \
                 messages to {} KiB for wall-clock/memory tractability (both \
                 designs at this N run identical settings)",
                bytes_per_node >> 20,
                message_size >> 10,
            );
        }
        for &algorithm in &algorithms {
            let lanes = algorithm.endpoints(THREADS);
            for &cap in caps {
                // A cap at or above the lane count (and any cap on UD) is
                // the direct path — skip the duplicate run.
                let applies = cap
                    .map(|c| algorithm.reliable_transport() && c < lanes)
                    .unwrap_or(false);
                if cap.is_some() && !applies {
                    continue;
                }
                let mut cfg =
                    WorkloadConfig::new(profile.clone(), nodes, Transport::Rdma(algorithm));
                cfg.threads = THREADS;
                cfg.message_size = message_size;
                cfg.bytes_per_node = bytes_per_node;
                cfg.topology = topology.clone();
                cfg.mux = cap.map(MuxConfig::with_cap);
                if skew_theta > 0.0 {
                    cfg.skew = Some(SkewSpec {
                        theta: skew_theta,
                        seed: 0x5CA1E,
                    });
                }
                if stragglers > 0 {
                    cfg.stragglers =
                        Some(straggler_plan(nodes, stragglers, straggler_factor, 0x51F7));
                }
                let start = std::time::Instant::now();
                let r = run_shuffle_workload(&cfg);
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                assert!(r.errors.is_empty(), "{algorithm} N={nodes}: {:?}", r.errors);
                // Physical send-side QPs cluster-wide: what the NIC
                // context caches actually hold.
                let qp_count = if r.mux_qp_count > 0 {
                    r.mux_qp_count
                } else if algorithm.reliable_transport() {
                    (nodes * (nodes - 1) * lanes) as u64
                } else {
                    (nodes * lanes) as u64
                };
                let cell = Cell {
                    algorithm,
                    nodes,
                    cap: cap.filter(|_| applies),
                    gib_per_sec: r.gib_per_sec(),
                    response_ns: r.response_time.as_nanos(),
                    qp_count,
                    lease_waits: r.mux_lease_waits,
                    wall_ms,
                    bytes_per_node,
                };
                eprintln!(
                    "[scale] {} : {:.3} GiB/s/node, {} QPs, {} lease waits, {:.0} ms wall",
                    cell.id(),
                    cell.gib_per_sec,
                    cell.qp_count,
                    cell.lease_waits,
                    cell.wall_ms,
                );
                cells.push(cell);
            }
        }
    }

    // Crossover report: smallest cluster size at which the UD design
    // (MESQ/SR) matches or beats the RC design (MEMQ/RD), per cap.
    println!("scale-out matrix ({}):", topology_label(&topology));
    for &nodes in node_counts {
        for cell in cells.iter().filter(|c| c.nodes == nodes) {
            println!(
                "  {:24} {:>8.3} GiB/s/node  {:>8} QPs  {:>6} waits",
                cell.id(),
                cell.gib_per_sec,
                cell.qp_count,
                cell.lease_waits
            );
        }
    }
    // Direction-tagged crossover summary, one row per cap: the
    // UD-over-RC throughput ratio at the largest common size (higher is
    // better — UD catching up, then winning) and, when the sweep spans
    // several sizes, the first size where MESQ/SR wins (lower is
    // better — the §7 prediction that QP state pushes the crossover
    // left; "not reached" is penalized as twice the largest size so a
    // regression can never hide behind a missing value).
    struct Crossover {
        id: String,
        first_win: Option<usize>,
        ratio_at_last: f64,
        last_n: usize,
    }
    let mut crossovers: Vec<Crossover> = Vec::new();
    for cap in [None, Some(1usize)] {
        let ud = |n: usize| {
            cells
                .iter()
                .find(|c| c.algorithm == ShuffleAlgorithm::MESQ_SR && c.nodes == n)
                .map(|c| c.gib_per_sec)
        };
        let rc = |n: usize| {
            cells
                .iter()
                .find(|c| {
                    c.algorithm == ShuffleAlgorithm::MEMQ_RD && c.nodes == n && c.cap == cap
                })
                .map(|c| c.gib_per_sec)
        };
        let crossover = node_counts
            .iter()
            .find(|&&n| matches!((ud(n), rc(n)), (Some(u), Some(r)) if u >= r));
        let label = match cap {
            Some(c) => format!("MEMQ/RD capped at {c} QP/pair"),
            None => "MEMQ/RD direct".to_string(),
        };
        if rc(node_counts[0]).is_none() {
            continue; // cap never applied (e.g. smoke without that cell)
        }
        match crossover {
            Some(n) => println!("  crossover vs {label}: MESQ/SR wins from N={n}"),
            None => println!(
                "  crossover vs {label}: not reached by N={}",
                node_counts.last().unwrap_or(&0)
            ),
        }
        let last_n = *node_counts
            .iter()
            .rev()
            .find(|&&n| ud(n).is_some() && rc(n).is_some())
            .unwrap_or(&node_counts[0]);
        let ratio = match (ud(last_n), rc(last_n)) {
            (Some(u), Some(r)) if r > 0.0 => u / r,
            _ => 0.0,
        };
        crossovers.push(Crossover {
            id: match cap {
                Some(c) => format!("crossover/cap={c}"),
                None => "crossover/direct".to_string(),
            },
            first_win: crossover.copied(),
            ratio_at_last: ratio,
            last_n,
        });
    }

    if let Some(path) = emit {
        let mut report = BenchReport::new();
        report.benches.push(BenchRun {
            bench: "scale".to_string(),
            config: vec![
                ("profile".to_string(), Value::Str(profile.name.to_string())),
                ("threads".to_string(), Value::UInt(THREADS as u64)),
                ("topology".to_string(), Value::Str(topology_label(&topology))),
                ("smoke".to_string(), Value::Bool(smoke)),
            ],
            results: cells
                .iter()
                .map(|c| BenchResult {
                    id: c.id(),
                    metrics: vec![
                        MetricRow::higher("gib_per_sec", c.gib_per_sec),
                        MetricRow::lower("response_virt_ns", c.response_ns as f64),
                        MetricRow::info("qp_count", c.qp_count as f64),
                        MetricRow::info("mux_lease_waits", c.lease_waits as f64),
                        MetricRow::info("wall_clock_ms", c.wall_ms),
                        MetricRow::info("bytes_per_node", c.bytes_per_node as f64),
                    ],
                    stages: Vec::new(),
                })
                .chain(crossovers.iter().map(|x| BenchResult {
                    id: x.id.clone(),
                    metrics: {
                        let mut m = vec![
                            MetricRow::higher("ud_over_rc_gibps_ratio", x.ratio_at_last),
                            MetricRow::info("ratio_at_n", x.last_n as f64),
                        ];
                        if node_counts.len() > 1 {
                            let n = x.first_win.unwrap_or(node_counts.last().unwrap() * 2);
                            m.push(MetricRow::lower("crossover_n", n as f64));
                        }
                        m
                    },
                    stages: Vec::new(),
                }))
                .collect(),
        });
        if let Err(e) = report.write(&path) {
            eprintln!("scale: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[scale] wrote {path}");
    }
}

fn topology_label(t: &Topology) -> String {
    match t {
        Topology::SingleSwitch => "single-switch".to_string(),
        Topology::FatTree {
            hosts_per_leaf,
            oversubscription,
            ..
        } => format!("fat-tree/{hosts_per_leaf}-per-leaf/{oversubscription}:1"),
    }
}
