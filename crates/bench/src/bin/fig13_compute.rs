//! Figure 13: performance for compute-intensive queries — repartition on 8
//! EDR nodes, varying the compute demand of the receiving fragment. The
//! vertical axis is the shuffling throughput relative to the processing
//! throughput of the receiving fragment; 100% means communication and
//! computation completely overlap.

use rshuffle::ShuffleAlgorithm;
use rshuffle_bench::report::Figure;
use rshuffle_bench::{run_shuffle_workload, Transport, WorkloadConfig};
use rshuffle_simnet::{DeviceProfile, SimDuration};

fn main() {
    let profile = DeviceProfile::edr();
    let nodes = 8usize;
    // Average time to retrieve the next 32 KiB batch, in µs (the x axis).
    let compute_us = [0.5f64, 1.0, 2.0, 4.0, 6.0, 9.0, 12.0, 15.0];
    let batch_bytes = 32.0 * 1024.0;

    let transports: Vec<Transport> = ShuffleAlgorithm::ALL
        .iter()
        .map(|&a| Transport::Rdma(a))
        .chain([Transport::Mpi, Transport::Ipoib])
        .collect();

    let mut fig = Figure::new(
        "fig13",
        "Compute-intensive receiving fragment, 8 nodes, EDR",
        "time to retrieve next 32 KiB batch (us)",
        "relative shuffling throughput (%)",
    );
    for &t in &transports {
        let mut points = Vec::new();
        for &us in &compute_us {
            let mut cfg = WorkloadConfig::new(profile.clone(), nodes, t);
            // The x axis is the average time the whole fragment takes to
            // retrieve the next 32 KiB batch; with t threads snatching
            // batches concurrently, each thread's per-batch compute is
            // x · t (§5.1.6).
            cfg.compute_per_batch =
                SimDuration::from_nanos((us * 1000.0) as u64 * profile.threads_per_node as u64);
            let r = run_shuffle_workload(&cfg);
            assert!(r.errors.is_empty(), "{t} compute {us}us: {:?}", r.errors);
            // Processing capacity of the receiving fragment: one 32 KiB
            // batch per x.
            let capacity = batch_bytes / (us * 1e-6);
            let relative = (r.receive_throughput / capacity * 100.0).min(100.0);
            points.push((us, relative));
            eprintln!(
                "[fig13] {t} x={us}us: {:.1}% ({:.2} GiB/s)",
                relative,
                r.gib_per_sec()
            );
        }
        fig.push(&t.to_string(), points);
    }
    fig.emit();
}
