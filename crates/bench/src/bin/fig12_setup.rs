//! Figure 12: time to build the RDMA connections as the cluster grows
//! (EDR; QP creation, out-of-band exchange, state transitions and memory
//! registration, per Table 1's QP counts).

use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::{Exchange, ExchangeConfig, ShuffleAlgorithm};
use rshuffle_bench::report::Figure;
use rshuffle_simnet::{Cluster, DeviceProfile, SimTime};
use rshuffle_verbs::VerbsRuntime;

fn main() {
    let profile = DeviceProfile::edr();
    let cluster_sizes = [2usize, 4, 6, 8, 10, 12, 14, 16];
    let mut fig = Figure::new(
        "fig12",
        "Time to build RDMA connections vs cluster size, EDR",
        "cluster size",
        "time (ms)",
    );
    for a in ShuffleAlgorithm::ALL {
        let mut points = Vec::new();
        for &n in &cluster_sizes {
            let cluster = Cluster::new(n, profile.clone());
            let runtime = VerbsRuntime::new(cluster);
            let config = ExchangeConfig::repartition(a, n, profile.threads_per_node);
            let exchange = Arc::new(Exchange::build(&runtime, &config).expect("builds"));
            let setup_ms = Arc::new(Mutex::new(0.0f64));
            // Every node runs its connection setup concurrently; the figure
            // reports the per-node wall time (max across nodes).
            for node in 0..n {
                let ex = exchange.clone();
                let out = setup_ms.clone();
                runtime
                    .cluster()
                    .spawn(node, &format!("setup-{node}"), move |sim| {
                        ex.charge_setup(&sim, node);
                        let ms = (sim.now() - SimTime::ZERO).as_millis_f64();
                        let mut o = out.lock();
                        if ms > *o {
                            *o = ms;
                        }
                    });
            }
            runtime.cluster().run();
            points.push((n as f64, *setup_ms.lock()));
        }
        fig.push(&a.to_string(), points);
    }
    fig.emit();
}
