//! `adaptive` — phase-scheduled all-to-all proof and advisor accuracy
//! matrix.
//!
//! Two experiments in one deterministic binary:
//!
//! 1. **Phased sweep** — MESQ/SR with and without phase scheduling on
//!    the 4:1-oversubscribed fat tree with the incast collapse model
//!    enabled and a Zipf-skewed table. An unphased all-to-all drives
//!    every ingress port past its concurrent-sender knee and pays the
//!    serialization penalty; the phased transfer keeps one bulk sender
//!    per port and never does. The `phased_speedup` metric (unphased
//!    response / phased response) must stay strictly above 1.
//!
//! 2. **Advisor matrix** — Figure 9–13-style rows (message-size,
//!    thread-count, broadcast, scale-out, skewed-incast shapes). Per
//!    row an *oracle* runs every design (the six published ones plus
//!    the §7 WRITE variants) and takes the fastest; the *advisor* sees
//!    only the observable signals, ranks finalists with the rule
//!    engine, breaks ties with a calibrate-style microprobe at ~1/8th
//!    volume, and commits to one design. `advisor_over_oracle` is the
//!    pick's full-volume response over the oracle's; `advisor_accuracy`
//!    is the fraction of rows within the 1.15× acceptance band and must
//!    stay ≥ 0.9.
//!
//! ```text
//! adaptive [--smoke | --full] [--emit BENCH.json]
//! ```
//!
//! `--smoke` is the CI configuration gated by `perfdiff` against
//! `BENCH_0010.json`: the acceptance-size N ∈ {128, 256} phased cells
//! at a fabric-bound 8 MiB/node and a six-row matrix. `--full`
//! (default) adds the N = 64 anchor cell and two more matrix rows.

use std::collections::HashMap;

use rshuffle::{AdvisorSignals, AlgorithmAdvisor, PhasePolicy, ShuffleAlgorithm};
use rshuffle_bench::perf::{take_emit_flag, BenchReport, BenchResult, BenchRun, MetricRow};
use rshuffle_bench::skew::{skew_ratio, zipf_partition_rows, SkewSpec};
use rshuffle_bench::{run_shuffle_workload, Pattern, Transport, WorkloadConfig};
use rshuffle_simnet::{DeviceProfile, IncastModel, Topology};

/// Worker threads per node for the phased sweep. Four lanes per node
/// keep the UD send ring busy across a phase boundary, so the
/// full-drain quiesce amortizes (DESIGN.md §18).
const THREADS: usize = 4;

/// Zipf exponent for the skewed table in the phased sweep and the
/// incast matrix row.
const ZIPF_THETA: f64 = 0.5;

/// Placement seed for the Zipf split.
const ZIPF_SEED: u64 = 0x5CA1E;

/// Acceptance band for the advisor: a pick within this factor of the
/// oracle's best counts as correct.
const ACCURACY_BAND: f64 = 1.15;

fn usage() -> ! {
    eprintln!("usage: adaptive [--smoke | --full] [--emit BENCH.json]");
    std::process::exit(2);
}

/// The congested fabric of the phased sweep: 16 hosts per leaf at 4:1,
/// with the incast knee at one leaf's uplink share (4 concurrent
/// senders) and the default 4× penalty cap.
fn congested_fat_tree() -> Topology {
    Topology::fat_tree(16, 4.0).with_incast(IncastModel::new(4))
}

// ---------------------------------------------------------------------
// Experiment 1: phased vs unphased MESQ/SR.
// ---------------------------------------------------------------------

struct PhasedCell {
    nodes: usize,
    bytes_per_node: usize,
    phased_ns: u64,
    unphased_ns: u64,
    phased_gibps: f64,
    unphased_gibps: f64,
}

impl PhasedCell {
    fn speedup(&self) -> f64 {
        self.unphased_ns as f64 / self.phased_ns as f64
    }
}

fn run_phased_cell(nodes: usize, bytes_per_node: usize) -> PhasedCell {
    let mut times = [0u64; 2];
    let mut gib = [0f64; 2];
    for (slot, policy) in [(0usize, PhasePolicy::SkewAware), (1, PhasePolicy::Off)] {
        let mut cfg = WorkloadConfig::new(
            DeviceProfile::edr(),
            nodes,
            Transport::Rdma(ShuffleAlgorithm::MESQ_SR),
        );
        cfg.threads = THREADS;
        cfg.bytes_per_node = bytes_per_node;
        cfg.topology = congested_fat_tree();
        cfg.skew = Some(SkewSpec {
            theta: ZIPF_THETA,
            seed: ZIPF_SEED,
        });
        cfg.phase = policy;
        // Deep UD rings: with shallow defaults the sender is
        // credit-bound long before it is fabric-bound, and the incast
        // penalty (what phasing removes) never shows. Both policies run
        // the same depths.
        cfg.ud_send_buffers = 256;
        cfg.ud_recv_window = 64;
        let start = std::time::Instant::now();
        let r = run_shuffle_workload(&cfg);
        assert!(
            r.errors.is_empty(),
            "phased sweep N={nodes} {policy:?}: {:?}",
            r.errors
        );
        times[slot] = r.response_time.as_nanos();
        gib[slot] = r.gib_per_sec();
        eprintln!(
            "[adaptive] MESQ/SR N={nodes} phase={}: {:.3} GiB/s/node, {} ns virt, {:.0} ms wall",
            policy.label(),
            r.gib_per_sec(),
            r.response_time.as_nanos(),
            start.elapsed().as_secs_f64() * 1e3,
        );
    }
    PhasedCell {
        nodes,
        bytes_per_node,
        phased_ns: times[0],
        unphased_ns: times[1],
        phased_gibps: gib[0],
        unphased_gibps: gib[1],
    }
}

// ---------------------------------------------------------------------
// Experiment 2: advisor vs oracle.
// ---------------------------------------------------------------------

/// One Figure 9–13-style matrix row.
struct Row {
    name: &'static str,
    nodes: usize,
    threads: usize,
    message_size: usize,
    bytes_per_node: usize,
    pattern: Pattern,
    congested: bool,
    skewed: bool,
}

impl Row {
    fn config(&self, algorithm: ShuffleAlgorithm, phase: PhasePolicy) -> WorkloadConfig {
        let mut cfg =
            WorkloadConfig::new(DeviceProfile::edr(), self.nodes, Transport::Rdma(algorithm));
        cfg.threads = self.threads;
        cfg.message_size = self.message_size;
        cfg.bytes_per_node = self.bytes_per_node;
        cfg.pattern = self.pattern;
        if self.congested {
            cfg.topology = congested_fat_tree();
            // Same deep UD rings as the phased sweep: the decision the
            // row exercises (to phase or not) only exists once the
            // sender is fabric-bound rather than credit-bound.
            cfg.ud_send_buffers = 256;
            cfg.ud_recv_window = 64;
        }
        if self.skewed {
            cfg.skew = Some(SkewSpec {
                theta: ZIPF_THETA,
                seed: ZIPF_SEED,
            });
        }
        cfg.phase = phase;
        cfg
    }

    /// The observable signals a planner would hand the advisor for this
    /// row — shape from the plan, topology from the fabric description,
    /// skew from the table statistics. Nothing measured.
    fn signals(&self) -> AdvisorSignals {
        let mut s = AdvisorSignals::baseline(self.nodes, self.threads, self.message_size);
        s.broadcast = self.pattern == Pattern::Broadcast;
        let topology = if self.congested {
            congested_fat_tree()
        } else {
            Topology::SingleSwitch
        };
        s.oversubscription = topology.oversubscription();
        s.incast = topology.incast().is_some();
        if self.skewed {
            let rows = zipf_partition_rows(
                (self.nodes * self.bytes_per_node / 16) as u64,
                self.nodes,
                ZIPF_THETA,
                ZIPF_SEED,
            );
            s.skew = skew_ratio(&rows);
        }
        s
    }

    /// Phase policies the oracle explores: phasing is only meaningful
    /// (and only legal — singleton groups) for a repartition on the
    /// congested fabric.
    fn oracle_phases(&self) -> Vec<PhasePolicy> {
        if self.congested && self.pattern == Pattern::Repartition {
            vec![PhasePolicy::Off, PhasePolicy::SkewAware]
        } else {
            vec![PhasePolicy::Off]
        }
    }
}

struct RowOutcome {
    name: &'static str,
    pick: ShuffleAlgorithm,
    pick_phase: PhasePolicy,
    oracle: ShuffleAlgorithm,
    oracle_phase: PhasePolicy,
    ratio: f64,
    probes: usize,
}

/// Runs one configuration, memoizing on the (algorithm, phase, volume)
/// key — the sim is deterministic, so the advisor's full-volume pick
/// can reuse the oracle's measurement of the same design.
fn measure(
    row: &Row,
    cache: &mut HashMap<(String, PhasePolicy, usize), u64>,
    algorithm: ShuffleAlgorithm,
    phase: PhasePolicy,
    bytes_per_node: usize,
) -> u64 {
    let key = (algorithm.to_string(), phase, bytes_per_node);
    if let Some(&ns) = cache.get(&key) {
        return ns;
    }
    let mut cfg = row.config(algorithm, phase);
    cfg.bytes_per_node = bytes_per_node;
    let r = run_shuffle_workload(&cfg);
    assert!(
        r.errors.is_empty(),
        "{}: {algorithm} phase={}: {:?}",
        row.name,
        phase.label(),
        r.errors
    );
    let ns = r.response_time.as_nanos();
    cache.insert(key, ns);
    ns
}

fn run_row(row: &Row) -> RowOutcome {
    let wr = |name: &str| ShuffleAlgorithm::parse(name).expect("WR variant parses");
    let mut oracle_set = ShuffleAlgorithm::ALL.to_vec();
    oracle_set.push(wr("MEMQ/WR"));
    oracle_set.push(wr("SEMQ/WR"));

    let mut cache: HashMap<(String, PhasePolicy, usize), u64> = HashMap::new();

    // Oracle: every design under every applicable phase policy, full
    // volume.
    let mut oracle: Option<(ShuffleAlgorithm, PhasePolicy, u64)> = None;
    for &algorithm in &oracle_set {
        for &phase in &row.oracle_phases() {
            let ns = measure(row, &mut cache, algorithm, phase, row.bytes_per_node);
            if oracle.map(|(_, _, best)| ns < best).unwrap_or(true) {
                oracle = Some((algorithm, phase, ns));
            }
        }
    }
    let (oracle_alg, oracle_phase, oracle_ns) = oracle.expect("oracle set is never empty");

    // Advisor: rules over the observable signals, then a one-shot
    // microprobe over the ranked finalists at ~1/8th volume to break
    // ties the rules cannot see.
    let signals = row.signals();
    let advice = AlgorithmAdvisor::advise(&signals);
    let probe_volume = (row.bytes_per_node / 8).max(256 * 1024);
    let mut pick: Option<(ShuffleAlgorithm, u64)> = None;
    for &finalist in &advice.ranked {
        let ns = measure(row, &mut cache, finalist, advice.phase, probe_volume);
        if pick.map(|(_, best)| ns < best).unwrap_or(true) {
            pick = Some((finalist, ns));
        }
    }
    let (pick_alg, _) = pick.expect("advice.ranked is never empty");
    let pick_ns = measure(row, &mut cache, pick_alg, advice.phase, row.bytes_per_node);

    let ratio = pick_ns as f64 / oracle_ns as f64;
    eprintln!(
        "[adaptive] {}: advisor {} (phase {}) vs oracle {} (phase {}): {:.3}x{}",
        row.name,
        pick_alg,
        advice.phase.label(),
        oracle_alg,
        oracle_phase.label(),
        ratio,
        if ratio <= ACCURACY_BAND { "" } else { "  MISS" },
    );
    RowOutcome {
        name: row.name,
        pick: pick_alg,
        pick_phase: advice.phase,
        oracle: oracle_alg,
        oracle_phase,
        ratio,
        probes: advice.ranked.len(),
    }
}

fn matrix(smoke: bool) -> Vec<Row> {
    let mut rows = vec![
        // Figure 9a: big messages on a small cluster amortize the READ
        // descriptor round trip.
        Row {
            name: "fig09/big-msg/N=8",
            nodes: 8,
            threads: 4,
            message_size: 64 * 1024,
            bytes_per_node: 4 << 20,
            pattern: Pattern::Repartition,
            congested: false,
            skewed: false,
        },
        // Figure 9, left edge: small messages on the same cluster.
        Row {
            name: "fig09/small-msg/N=8",
            nodes: 8,
            threads: 4,
            message_size: 2 * 1024,
            bytes_per_node: 4 << 20,
            pattern: Pattern::Repartition,
            congested: false,
            skewed: false,
        },
        // Figure 10: many workers per node on a small cluster.
        Row {
            name: "fig10/threads/N=16",
            nodes: 16,
            threads: 8,
            message_size: 16 * 1024,
            bytes_per_node: 2 << 20,
            pattern: Pattern::Repartition,
            congested: false,
            skewed: false,
        },
        // Figure 11: broadcast, where UD multicast replicates in one
        // send.
        Row {
            name: "fig11/broadcast/N=8",
            nodes: 8,
            threads: 2,
            message_size: 16 * 1024,
            bytes_per_node: 1 << 20,
            pattern: Pattern::Broadcast,
            congested: false,
            skewed: false,
        },
        // Figure 12/13: scale-out past the QP-state knee.
        Row {
            name: "fig12/scale/N=64",
            nodes: 64,
            threads: 2,
            message_size: 16 * 1024,
            bytes_per_node: 1 << 20,
            pattern: Pattern::Repartition,
            congested: false,
            skewed: false,
        },
        // The PR 9/10 extension: skewed all-to-all on the congested
        // tree, where phasing is the real decision. Runs the winning
        // regime from the phased sweep (4 threads, fabric-bound
        // volume) so the oracle's phase choice is a real signal and
        // not noise.
        Row {
            name: "incast/skew/N=64",
            nodes: 64,
            threads: 4,
            message_size: 16 * 1024,
            bytes_per_node: 4 << 20,
            pattern: Pattern::Repartition,
            congested: true,
            skewed: true,
        },
    ];
    if !smoke {
        rows.push(Row {
            name: "fig09/big-msg/N=16",
            nodes: 16,
            threads: 4,
            message_size: 64 * 1024,
            bytes_per_node: 4 << 20,
            pattern: Pattern::Repartition,
            congested: false,
            skewed: false,
        });
        rows.push(Row {
            name: "fig12/scale/N=96",
            nodes: 96,
            threads: 2,
            message_size: 16 * 1024,
            bytes_per_node: 1 << 20,
            pattern: Pattern::Repartition,
            congested: false,
            skewed: false,
        });
    }
    rows
}

fn main() {
    let (args, emit) = take_emit_flag(std::env::args().skip(1).collect());
    let mut smoke = false;
    for flag in args.iter() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--full" => smoke = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    // ----- Experiment 1: phased vs unphased MESQ/SR. -----
    // Both modes run the acceptance sizes (128, 256) at a
    // fabric-bound 8 MiB/node; full adds the N=64 anchor cell.
    let phased_cells: Vec<(usize, usize)> = if smoke {
        vec![(128, 8 << 20), (256, 8 << 20)]
    } else {
        vec![(64, 8 << 20), (128, 8 << 20), (256, 8 << 20)]
    };
    let phased: Vec<PhasedCell> = phased_cells
        .iter()
        .map(|&(nodes, bytes)| run_phased_cell(nodes, bytes))
        .collect();

    println!("phased all-to-all (MESQ/SR, Zipf θ={ZIPF_THETA}, 4:1 fat tree, incast knee 4):");
    for cell in &phased {
        println!(
            "  N={:<4} {:>4} MiB/node  phased {:>8.3} GiB/s  unphased {:>8.3} GiB/s  speedup {:.3}x",
            cell.nodes,
            cell.bytes_per_node >> 20,
            cell.phased_gibps,
            cell.unphased_gibps,
            cell.speedup(),
        );
    }

    // ----- Experiment 2: advisor vs oracle matrix. -----
    let rows = matrix(smoke);
    let outcomes: Vec<RowOutcome> = rows.iter().map(run_row).collect();
    let hits = outcomes
        .iter()
        .filter(|o| o.ratio <= ACCURACY_BAND)
        .count();
    let accuracy = hits as f64 / outcomes.len() as f64;

    println!("advisor matrix ({} rows, band {ACCURACY_BAND}x):", rows.len());
    for o in &outcomes {
        println!(
            "  {:22} advisor {:>8} ({:10})  oracle {:>8} ({:10})  {:.3}x  [{} probes]",
            o.name,
            o.pick.to_string(),
            o.pick_phase.label(),
            o.oracle.to_string(),
            o.oracle_phase.label(),
            o.ratio,
            o.probes,
        );
    }
    println!(
        "  accuracy: {hits}/{} within {ACCURACY_BAND}x = {:.1}%",
        outcomes.len(),
        accuracy * 100.0
    );

    // ----- Acceptance gates (also enforced in CI via perfdiff). -----
    let mut failed = false;
    for cell in &phased {
        if cell.speedup() <= 1.0 {
            eprintln!(
                "adaptive: FAIL — phased MESQ/SR not faster at N={} (speedup {:.3})",
                cell.nodes,
                cell.speedup()
            );
            failed = true;
        }
    }
    if accuracy < 0.9 {
        eprintln!("adaptive: FAIL — advisor accuracy {accuracy:.2} below 0.90");
        failed = true;
    }

    if let Some(path) = emit {
        let mut report = BenchReport::new();
        report.benches.push(BenchRun {
            bench: "adaptive".to_string(),
            config: vec![
                (
                    "topology".to_string(),
                    serde::Value::Str("fat-tree/16-per-leaf/4:1+incast(4)".to_string()),
                ),
                ("zipf_theta".to_string(), serde::Value::Str(format!("{ZIPF_THETA}"))),
                ("smoke".to_string(), serde::Value::Bool(smoke)),
                (
                    "accuracy_band".to_string(),
                    serde::Value::Str(format!("{ACCURACY_BAND}")),
                ),
            ],
            results: phased
                .iter()
                .map(|c| BenchResult {
                    id: format!("phased/MESQ-SR/N={}", c.nodes),
                    metrics: vec![
                        MetricRow::higher("phased_speedup", c.speedup()),
                        MetricRow::higher("phased_gib_per_sec", c.phased_gibps),
                        MetricRow::info("unphased_gib_per_sec", c.unphased_gibps),
                        MetricRow::info("phased_response_virt_ns", c.phased_ns as f64),
                        MetricRow::info("unphased_response_virt_ns", c.unphased_ns as f64),
                        MetricRow::info("bytes_per_node", c.bytes_per_node as f64),
                    ],
                    stages: Vec::new(),
                })
                .chain(outcomes.iter().map(|o| BenchResult {
                    id: format!("advisor/{}", o.name),
                    metrics: vec![
                        MetricRow::lower("advisor_over_oracle", o.ratio),
                        MetricRow::info("probes", o.probes as f64),
                    ],
                    stages: Vec::new(),
                }))
                .chain(std::iter::once(BenchResult {
                    id: "advisor/summary".to_string(),
                    metrics: vec![
                        MetricRow::higher("advisor_accuracy", accuracy),
                        MetricRow::info("rows", outcomes.len() as f64),
                    ],
                    stages: Vec::new(),
                }))
                .collect(),
        });
        if let Err(e) = report.write(&path) {
            eprintln!("adaptive: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[adaptive] wrote {path}");
    }

    if failed {
        std::process::exit(1);
    }
}
