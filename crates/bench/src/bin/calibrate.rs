//! Quick calibration probe: prints receive throughput for every transport
//! at one configuration. Not a paper figure; used to sanity-check the cost
//! model against the paper's reference points.

use rshuffle::ShuffleAlgorithm;
use rshuffle_bench::{run_shuffle_workload, Pattern, Transport, WorkloadConfig};
use rshuffle_simnet::DeviceProfile;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let profile_name = args.get(1).map(String::as_str).unwrap_or("edr");
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let pattern = match args.get(3).map(String::as_str) {
        Some("broadcast") => Pattern::Broadcast,
        _ => Pattern::Repartition,
    };
    let profile = DeviceProfile::by_name(profile_name).expect("fdr|edr");

    let transports: Vec<Transport> = ShuffleAlgorithm::ALL
        .iter()
        .map(|&a| Transport::Rdma(a))
        .chain([Transport::Mpi, Transport::Ipoib])
        .collect();

    println!(
        "profile={} nodes={nodes} pattern={pattern:?} (volume per node: {} MiB)",
        profile.name,
        rshuffle_bench::workload::default_volume() >> 20
    );
    for t in transports {
        let mut cfg = WorkloadConfig::new(profile.clone(), nodes, t);
        cfg.pattern = pattern;
        if let Ok(j) = std::env::var("RSHUFFLE_JITTER_US") {
            cfg.receiver_jitter = rshuffle_simnet::SimDuration::from_micros(j.parse().unwrap_or(3));
        }
        let started = std::time::Instant::now();
        let r = run_shuffle_workload(&cfg);
        println!(
            "{:>10}: {:>7.2} GiB/s  response {:>10}  reg {:>8} KiB  errs {}  [{:?} wall]",
            t.to_string(),
            r.gib_per_sec(),
            format!("{}", r.response_time),
            r.registered_bytes_per_node / 1024,
            r.errors.len(),
            started.elapsed()
        );
    }
}
