//! Figure 8: performance of the MQ/SR and SQ/SR algorithms when changing
//! the credit write-back frequency (8 nodes, 16 buffers per thread per
//! remote node; FDR and EDR).

use rshuffle::ShuffleAlgorithm;
use rshuffle_baselines::qperf_peak_bandwidth;
use rshuffle_bench::report::Figure;
use rshuffle_bench::{run_shuffle_workload, Transport, WorkloadConfig};
use rshuffle_simnet::profile::GIB;
use rshuffle_simnet::DeviceProfile;

fn main() {
    let freqs = [1u32, 2, 3, 4, 8, 16];
    let algorithms = [
        ShuffleAlgorithm::SEMQ_SR,
        ShuffleAlgorithm::MEMQ_SR,
        ShuffleAlgorithm::SESQ_SR,
        ShuffleAlgorithm::MESQ_SR,
    ];
    for (sub, profile) in [
        ("fig08a", DeviceProfile::fdr()),
        ("fig08b", DeviceProfile::edr()),
    ] {
        let mut fig = Figure::new(
            sub,
            &format!(
                "Credit write-back frequency vs receive throughput, 8 nodes, {} InfiniBand",
                profile.name
            ),
            "frequency of credit update",
            "receive throughput per node (GiB/s)",
        );
        for a in algorithms {
            let mut points = Vec::new();
            for &f in &freqs {
                let mut cfg = WorkloadConfig::new(profile.clone(), 8, Transport::Rdma(a));
                cfg.credit_writeback_frequency = f;
                // §5.1.1: each thread registers 16 RDMA buffers per remote
                // node.
                cfg.buffers_per_peer = 16;
                let r = run_shuffle_workload(&cfg);
                assert!(r.errors.is_empty(), "{a} freq {f}: {:?}", r.errors);
                points.push((f as f64, r.gib_per_sec()));
                // The last MESQ/SR run at the highest frequency keeps its
                // full snapshot in the figure record: the credit-stall
                // series is the evidence behind this figure.
                if a == ShuffleAlgorithm::MESQ_SR && f == *freqs.last().unwrap() {
                    fig.attach_metrics(r.metrics.clone());
                }
            }
            fig.push(&a.to_string(), points);
        }
        // Reference lines: MPI (frequency-independent) and qperf.
        let mpi = run_shuffle_workload(&WorkloadConfig::new(profile.clone(), 8, Transport::Mpi));
        fig.push(
            "MPI",
            freqs
                .iter()
                .map(|&f| (f as f64, mpi.gib_per_sec()))
                .collect(),
        );
        let qperf = qperf_peak_bandwidth(&profile, 64 * 1024) / GIB;
        fig.push("qperf", freqs.iter().map(|&f| (f as f64, qperf)).collect());
        fig.emit();
    }
}
