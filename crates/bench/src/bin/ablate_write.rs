//! Ablation: the RDMA Write endpoint the paper leaves as future work (§7),
//! compared against the published one-sided (MQ/RD) and two-sided (MQ/SR)
//! designs on both patterns.

use rshuffle::{EndpointImpl, EndpointMode, ShuffleAlgorithm};
use rshuffle_bench::report::Figure;
use rshuffle_bench::{run_shuffle_workload, Pattern, Transport, WorkloadConfig};
use rshuffle_simnet::DeviceProfile;

fn main() {
    let profile = DeviceProfile::edr();
    let memq_wr = ShuffleAlgorithm {
        mode: EndpointMode::Multi,
        imp: EndpointImpl::MqWr,
    };
    let algorithms = [
        ShuffleAlgorithm::MEMQ_SR,
        ShuffleAlgorithm::MEMQ_RD,
        memq_wr,
        ShuffleAlgorithm::MESQ_SR,
    ];
    let mut fig = Figure::new(
        "ablate_write",
        "RDMA Write endpoint ablation, 8 nodes, EDR (x: 0 = repartition, 1 = broadcast)",
        "pattern (0=repartition, 1=broadcast)",
        "receive throughput per node (GiB/s)",
    );
    for a in algorithms {
        let mut points = Vec::new();
        for (x, pattern) in [(0.0, Pattern::Repartition), (1.0, Pattern::Broadcast)] {
            let mut cfg = WorkloadConfig::new(profile.clone(), 8, Transport::Rdma(a));
            cfg.pattern = pattern;
            if pattern == Pattern::Broadcast {
                cfg.bytes_per_node = (cfg.bytes_per_node / 7).max(4 << 20);
            }
            let r = run_shuffle_workload(&cfg);
            assert!(r.errors.is_empty(), "{a} {pattern:?}: {:?}", r.errors);
            points.push((x, r.gib_per_sec()));
            eprintln!(
                "[ablate_write] {a} {pattern:?}: {:.2} GiB/s",
                r.gib_per_sec()
            );
        }
        fig.push(&a.to_string(), points);
    }
    fig.emit();
}
