//! Figure 11: effect of many Queue Pairs — repartition on 16 nodes (EDR),
//! sweeping the number of endpoints per operator, which controls the
//! number of Queue Pairs (Table 1).

use rshuffle::{EndpointImpl, EndpointMode, ShuffleAlgorithm};
use rshuffle_bench::report::Figure;
use rshuffle_bench::{run_shuffle_workload, Transport, WorkloadConfig};
use rshuffle_simnet::DeviceProfile;

fn main() {
    let profile = DeviceProfile::edr();
    let nodes = 16usize;
    let threads = profile.threads_per_node; // 14
    let lane_sweep = [1usize, 2, 7, 14];

    let mut fig = Figure::new(
        "fig11",
        "Number of Queue Pairs per operator vs throughput, 16 nodes, EDR",
        "queue pairs per operator",
        "receive throughput per node (GiB/s)",
    );
    for imp in [EndpointImpl::SqSr, EndpointImpl::MqSr, EndpointImpl::MqRd] {
        let mut points = Vec::new();
        for &lanes in &lane_sweep {
            // The lane count interpolates between SE (1) and ME (threads);
            // the algorithm's mode field only picks the default.
            let algorithm = ShuffleAlgorithm {
                mode: if lanes == 1 {
                    EndpointMode::Single
                } else {
                    EndpointMode::Multi
                },
                imp,
            };
            let mut cfg = WorkloadConfig::new(profile.clone(), nodes, Transport::Rdma(algorithm));
            cfg.lanes = Some(lanes);
            let r = run_shuffle_workload(&cfg);
            assert!(
                r.errors.is_empty(),
                "{algorithm} lanes {lanes}: {:?}",
                r.errors
            );
            let qps = match imp {
                EndpointImpl::SqSr => lanes,
                _ => lanes * (nodes - 1),
            };
            points.push((qps as f64, r.gib_per_sec()));
            eprintln!(
                "[fig11] {imp:?} lanes={lanes} qps={qps}: {:.2} GiB/s",
                r.gib_per_sec()
            );
        }
        let label = match imp {
            EndpointImpl::SqSr => "SQ/SR",
            EndpointImpl::MqSr => "MQ/SR",
            EndpointImpl::MqRd => "MQ/RD",
            EndpointImpl::MqWr => "MQ/WR",
        };
        fig.push(label, points);
    }
    let _ = threads;
    fig.emit();
}
