//! `shufflebench` — run any single shuffle configuration from the command
//! line and print the paper's receive-throughput metric.
//!
//! ```text
//! shufflebench [--profile fdr|edr] [--nodes N] [--threads T]
//!              [--algorithm MESQ/SR|...|mpi|ipoib] [--pattern repartition|broadcast]
//!              [--mib M] [--msg-size BYTES] [--credit-freq F] [--lanes L]
//!              [--compute-us X] [--drop-prob P] [--native-multicast]
//!              [--zero-copy | --copy] [--emit BENCH.json]
//! ```
//!
//! `--emit` writes the run as a machine-readable perf-trajectory record
//! (schema `rshuffle-bench/1`) including per-stage latency digests.

use rshuffle::ShuffleAlgorithm;
use rshuffle_bench::perf::{
    stage_summaries, take_emit_flag, BenchReport, BenchResult, BenchRun, MetricRow,
};
use rshuffle_bench::{run_shuffle_workload, Pattern, Transport, WorkloadConfig};
use rshuffle_simnet::{DeviceProfile, SimDuration};
use serde::Value;

fn usage() -> ! {
    eprintln!(
        "usage: shufflebench [--profile fdr|edr] [--nodes N] [--threads T]\n\
         \x20                   [--algorithm MESQ/SR|MEMQ/SR|MEMQ/RD|SEMQ/SR|SEMQ/RD|SESQ/SR|MEMQ/WR|mpi|ipoib]\n\
         \x20                   [--pattern repartition|broadcast] [--mib M]\n\
         \x20                   [--msg-size BYTES] [--credit-freq F] [--lanes L]\n\
         \x20                   [--compute-us X] [--drop-prob P]\n\
         \x20                   [--native-multicast] [--zero-copy | --copy]"
    );
    std::process::exit(2);
}

fn main() {
    let (args, emit) = take_emit_flag(std::env::args().skip(1).collect());
    let mut profile = DeviceProfile::edr();
    let mut nodes = 8usize;
    let mut threads: Option<usize> = None;
    let mut transport = Transport::Rdma(ShuffleAlgorithm::MESQ_SR);
    let mut pattern = Pattern::Repartition;
    let mut mib: Option<usize> = None;
    let mut msg_size: Option<usize> = None;
    let mut credit_freq: Option<u32> = None;
    let mut lanes: Option<usize> = None;
    let mut compute_us = 0.0f64;
    let mut drop_prob = 0.0f64;
    let mut native_multicast = false;
    let mut zero_copy: Option<bool> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--profile" => {
                profile = DeviceProfile::by_name(value()).unwrap_or_else(|| usage());
            }
            "--nodes" => nodes = value().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = Some(value().parse().unwrap_or_else(|_| usage())),
            "--algorithm" => {
                let v = value();
                transport = match v.to_ascii_lowercase().as_str() {
                    "mpi" => Transport::Mpi,
                    "ipoib" => Transport::Ipoib,
                    other => Transport::Rdma(
                        ShuffleAlgorithm::parse(other).unwrap_or_else(|| usage()),
                    ),
                };
            }
            "--pattern" => {
                pattern = match value().as_str() {
                    "repartition" => Pattern::Repartition,
                    "broadcast" => Pattern::Broadcast,
                    _ => usage(),
                };
            }
            "--mib" => mib = Some(value().parse().unwrap_or_else(|_| usage())),
            "--msg-size" => msg_size = Some(value().parse().unwrap_or_else(|_| usage())),
            "--credit-freq" => credit_freq = Some(value().parse().unwrap_or_else(|_| usage())),
            "--lanes" => lanes = Some(value().parse().unwrap_or_else(|_| usage())),
            "--compute-us" => compute_us = value().parse().unwrap_or_else(|_| usage()),
            "--drop-prob" => drop_prob = value().parse().unwrap_or_else(|_| usage()),
            "--native-multicast" => native_multicast = true,
            "--zero-copy" => zero_copy = Some(true),
            "--copy" => zero_copy = Some(false),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let mut cfg = WorkloadConfig::new(profile, nodes, transport);
    if let Some(t) = threads {
        cfg.threads = t;
    }
    cfg.pattern = pattern;
    if let Some(m) = mib {
        cfg.bytes_per_node = m << 20;
    }
    if let Some(s) = msg_size {
        cfg.message_size = s;
    }
    if let Some(f) = credit_freq {
        cfg.credit_writeback_frequency = f;
    }
    cfg.lanes = lanes;
    cfg.compute_per_batch = SimDuration::from_nanos((compute_us * 1000.0) as u64);
    cfg.faults.ud_drop_probability = drop_prob;
    cfg.ud_native_multicast = native_multicast;
    cfg.zero_copy = zero_copy;

    println!(
        "{} | {} nodes x {} threads | {:?} | {} MiB/node | msg {} KiB",
        transport,
        cfg.nodes,
        cfg.threads,
        cfg.pattern,
        cfg.bytes_per_node >> 20,
        cfg.message_size >> 10
    );
    let r = run_shuffle_workload(&cfg);
    println!(
        "receive throughput per node: {:.3} GiB/s  (response {}, pinned {} KiB/node)",
        r.gib_per_sec(),
        r.response_time,
        r.registered_bytes_per_node / 1024
    );
    if let Some(path) = emit {
        let mut report = BenchReport::new();
        report.benches.push(BenchRun {
            bench: "shufflebench".to_string(),
            config: vec![
                ("nodes".to_string(), Value::UInt(cfg.nodes as u64)),
                ("threads".to_string(), Value::UInt(cfg.threads as u64)),
                (
                    "bytes_per_node".to_string(),
                    Value::UInt(cfg.bytes_per_node as u64),
                ),
                (
                    "message_size".to_string(),
                    Value::UInt(cfg.message_size as u64),
                ),
                ("pattern".to_string(), Value::Str(format!("{:?}", cfg.pattern))),
            ],
            results: vec![BenchResult {
                id: transport.to_string(),
                metrics: vec![
                    MetricRow::higher("gib_per_sec", r.gib_per_sec()),
                    MetricRow::lower("response_ns", r.response_time.as_nanos() as f64),
                    MetricRow::info("registered_bytes", r.registered_bytes_per_node as f64),
                ],
                stages: stage_summaries(&r.metrics),
            }],
        });
        match report.write(&path) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("shufflebench: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if !r.errors.is_empty() {
        println!("worker errors ({}):", r.errors.len());
        for e in r.errors.iter().take(4) {
            println!("  - {e}");
        }
        std::process::exit(1);
    }
}
