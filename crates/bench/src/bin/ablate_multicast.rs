//! Ablation: native InfiniBand multicast for MESQ/SR broadcasts — the
//! paper's §7 hypothesis that switch-level replication will cut the CPU
//! cost of broadcasting ("we plan to specialize the MESQ/SR algorithm to
//! use the native InfiniBand multicast primitive").

use rshuffle::ShuffleAlgorithm;
use rshuffle_bench::report::Figure;
use rshuffle_bench::{run_shuffle_workload, Pattern, Transport, WorkloadConfig};
use rshuffle_simnet::DeviceProfile;

fn main() {
    let profile = DeviceProfile::edr();
    let mut fig = Figure::new(
        "ablate_multicast",
        "Native multicast for MESQ/SR broadcast, EDR",
        "nodes",
        "receive throughput per node (GiB/s)",
    );
    for (label, native) in [("software fan-out (paper)", false), ("native multicast (§7)", true)] {
        let mut points = Vec::new();
        for nodes in [4usize, 8, 16] {
            let mut cfg = WorkloadConfig::new(
                profile.clone(),
                nodes,
                Transport::Rdma(ShuffleAlgorithm::MESQ_SR),
            );
            cfg.pattern = Pattern::Broadcast;
            cfg.ud_native_multicast = native;
            cfg.bytes_per_node =
                (rshuffle_bench::workload::default_volume() / (nodes - 1)).max(4 << 20);
            let r = run_shuffle_workload(&cfg);
            assert!(r.errors.is_empty(), "{label} n={nodes}: {:?}", r.errors);
            points.push((nodes as f64, r.gib_per_sec()));
            eprintln!("[ablate_multicast] {label} n={nodes}: {:.2} GiB/s", r.gib_per_sec());
        }
        fig.push(label, points);
    }
    fig.emit();
    println!(
        "Native multicast removes the (n-1)-fold egress replication: the sender\n\
         posts one work request per buffer and the switch fans it out, so\n\
         broadcast throughput follows the receivers' line rate instead of the\n\
         sender's egress share — confirming the paper's §7 hypothesis."
    );
}
