//! Criterion microbenchmarks for the hot host-side primitives of the
//! shuffle path, plus a small end-to-end simulated shuffle.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

use rshuffle::{
    default_partition_hash, CostModel, Exchange, ExchangeConfig, MsgHeader, MsgKind, RowBatch,
    ShuffleAlgorithm, ShuffleOperator, StreamState, HEADER_LEN,
};
use rshuffle_engine::{drive_to_sink, Generator};
use rshuffle_simnet::lru::LruSet;
use rshuffle_simnet::{Cluster, DeviceProfile};
use rshuffle_verbs::VerbsRuntime;

fn bench_header_codec(c: &mut Criterion) {
    let header = MsgHeader {
        src: 7,
        kind: MsgKind::Data,
        state: StreamState::MoreData,
        payload_len: 4064,
        counter: 123_456,
        remote_addr: 65_536,
        epoch: 1,
        src_tid: 3,
    };
    let mut buf = [0u8; HEADER_LEN];
    c.bench_function("msg_header_encode_decode", |b| {
        b.iter(|| {
            header.encode(&mut buf);
            black_box(MsgHeader::decode(&buf))
        })
    });
}

fn bench_partition_hash(c: &mut Criterion) {
    let rows: Vec<[u8; 16]> = (0..1024u64)
        .map(|i| {
            let mut r = [0u8; 16];
            r[0..8].copy_from_slice(&i.to_le_bytes());
            r
        })
        .collect();
    let mut g = c.benchmark_group("partition_hash");
    g.throughput(Throughput::Elements(rows.len() as u64));
    g.bench_function("hash_1024_tuples", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in &rows {
                acc ^= default_partition_hash(black_box(r));
            }
            acc
        })
    });
    g.finish();
}

fn bench_row_batch(c: &mut Criterion) {
    let row = [0xABu8; 16];
    let mut g = c.benchmark_group("row_batch");
    g.throughput(Throughput::Bytes(16 * 1024));
    g.bench_function("push_1024_rows", |b| {
        b.iter(|| {
            let mut batch = RowBatch::new(16, 1024);
            for _ in 0..1024 {
                batch.push_row(black_box(&row));
            }
            batch
        })
    });
    g.finish();
}

fn bench_qp_cache(c: &mut Criterion) {
    c.bench_function("lru_touch_hit", |b| {
        let mut lru = LruSet::new(640);
        for q in 0..400u64 {
            lru.touch(q);
        }
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 1) % 400;
            black_box(lru.touch(q))
        })
    });
    c.bench_function("lru_touch_thrash", |b| {
        let mut lru = LruSet::new(28);
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 1) % 64;
            black_box(lru.touch(q))
        })
    });
}

fn bench_end_to_end_shuffle(c: &mut Criterion) {
    // Wall-clock cost of simulating a complete small MESQ/SR repartition;
    // this tracks the simulator's own overhead per simulated byte.
    c.bench_function("simulate_mesq_sr_2node_1mib", |b| {
        b.iter(|| {
            let nodes = 2;
            let threads = 2;
            let cluster = Cluster::new(nodes, DeviceProfile::edr());
            let runtime = VerbsRuntime::new(cluster);
            let config = ExchangeConfig::repartition(ShuffleAlgorithm::MESQ_SR, nodes, threads);
            let exchange = Exchange::build(&runtime, &config).expect("builds");
            let cost = CostModel::from_profile(runtime.profile());
            for node in 0..nodes {
                let source = Arc::new(Generator::new(16_384, threads, node as u64));
                let shuffle = Arc::new(ShuffleOperator::with_lanes(
                    source,
                    exchange.send[node].clone(),
                    exchange.groups[node].clone(),
                    threads,
                    cost.clone(),
                ));
                drive_to_sink(runtime.cluster(), node, "s", shuffle, threads, |_, _| {});
                let receive = Arc::new(rshuffle::ReceiveOperator::with_lanes(
                    exchange.recv[node].clone(),
                    16,
                    2048,
                    threads,
                    cost.clone(),
                ));
                drive_to_sink(runtime.cluster(), node, "r", receive, threads, |_, _| {});
            }
            runtime.cluster().run();
            black_box(exchange.bytes_received(0))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_header_codec,
        bench_partition_hash,
        bench_row_batch,
        bench_qp_cache,
        bench_end_to_end_shuffle
);
criterion_main!(benches);
