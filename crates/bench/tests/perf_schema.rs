//! Validates the committed perf baseline `BENCH_0008.json`: it must
//! parse under the current `rshuffle-bench/1` schema, cover the full
//! smoke matrix (six algorithms at both concurrency levels and both
//! message sizes), carry explicit metric directions, and — trivially —
//! show zero regressions when diffed against itself. If a schema change
//! ever breaks this test, re-record the baseline with `perfdiff
//! --record BENCH_0008.json` in the same commit. The previous baseline
//! `BENCH_0006.json` predates the `directions` field and stays in the
//! repo as real-data coverage of the name-inference fallback.

use rshuffle_bench::perf::{diff_reports, Direction, ParsedReport, SCHEMA};

fn read_baseline(name: &str) -> String {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed baseline {name} is readable: {e}"))
}

fn baseline_text() -> String {
    read_baseline("BENCH_0008.json")
}

#[test]
fn committed_baseline_parses_under_current_schema() {
    let report = ParsedReport::parse(&baseline_text()).expect("baseline parses");
    assert_eq!(report.schema, SCHEMA);
    assert!(
        !report.metrics.is_empty(),
        "baseline carries no gated metrics"
    );

    // Every algorithm must appear in both the concurrency matrix and the
    // message-size sweep, at every smoke point.
    for alg in ["MESQ/SR", "MEMQ/SR", "MEMQ/RD", "SEMQ/SR", "SEMQ/RD", "SESQ/SR"] {
        for id in [
            format!("{alg}/N=1"),
            format!("{alg}/N=2"),
            format!("{alg}/msg=16KiB"),
            format!("{alg}/msg=64KiB"),
        ] {
            assert!(
                report.metrics.iter().any(|m| m.key.1 == id),
                "baseline missing result row {id:?}"
            );
        }
    }

    // The headline metrics the gate protects must all be present with
    // sane (positive, finite) values.
    for metric in ["p50_ns", "p99_ns", "makespan_ns", "agg_mbps", "gib_per_sec"] {
        let values: Vec<f64> = report
            .metrics
            .iter()
            .filter(|m| m.key.2 == metric)
            .map(|m| m.value)
            .collect();
        assert!(!values.is_empty(), "baseline missing metric {metric:?}");
        for v in values {
            assert!(v.is_finite() && v > 0.0, "{metric}: non-positive value {v}");
        }
    }
}

#[test]
fn committed_baseline_gates_hot_path_stage_latencies() {
    // The hot-path pass promoted the sender-side stage latencies to
    // gated metrics on the large-message sweep rows; a re-recorded
    // baseline that silently drops them would un-gate the doorbell and
    // CQ batching wins.
    let report = ParsedReport::parse(&baseline_text()).expect("baseline parses");
    for stage in ["stage.wr_batch_ns_p50", "stage.post_to_completion_ns_p50"] {
        let gated = report
            .metrics
            .iter()
            .filter(|m| m.key.2 == stage && m.direction == Direction::LowerIsBetter)
            .count();
        assert!(
            gated >= 6,
            "baseline gates only {gated} rows of {stage} (want one per algorithm)"
        );
    }
}

#[test]
fn baseline_diffed_against_itself_has_no_regressions() {
    let report = ParsedReport::parse(&baseline_text()).expect("baseline parses");
    let lines = diff_reports(&report, &report, 10.0);
    assert_eq!(lines.len(), report.metrics.len());
    for l in lines {
        assert!(
            !l.regressed,
            "self-diff regressed on {}/{} {}",
            l.bench, l.id, l.metric
        );
        assert_eq!(l.delta_pct, 0.0);
    }
}

#[test]
fn previous_baseline_parses_via_direction_inference() {
    // BENCH_0006.json predates the explicit `directions` field: parsing
    // it exercises the name-inference fallback on real recorded data,
    // and every metric it carries must come out with the direction the
    // old hard-coded table would have assigned.
    let report =
        ParsedReport::parse(&read_baseline("BENCH_0006.json")).expect("old baseline parses");
    assert!(!report.metrics.is_empty());
    for m in &report.metrics {
        let want = if m.key.2.ends_with("_ns") {
            Direction::LowerIsBetter
        } else if m.key.2.contains("mbps") || m.key.2.contains("gib_per_sec") {
            Direction::HigherIsBetter
        } else {
            Direction::Informational
        };
        assert_eq!(
            m.direction, want,
            "inference mis-assigned {} in the old baseline",
            m.key.2
        );
    }
}
