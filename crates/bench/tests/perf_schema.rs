//! Validates the committed perf baseline `BENCH_0006.json`: it must
//! parse under the current `rshuffle-bench/1` schema, cover the full
//! smoke matrix (six algorithms at both concurrency levels and both
//! message sizes), and — trivially — show zero regressions when diffed
//! against itself. If a schema change ever breaks this test, re-record
//! the baseline with `perfdiff --record BENCH_0006.json` in the same
//! commit.

use rshuffle_bench::perf::{diff_reports, ParsedReport, SCHEMA};

fn baseline_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_0006.json");
    std::fs::read_to_string(path).expect("committed baseline BENCH_0006.json is readable")
}

#[test]
fn committed_baseline_parses_under_current_schema() {
    let report = ParsedReport::parse(&baseline_text()).expect("baseline parses");
    assert_eq!(report.schema, SCHEMA);
    assert!(
        !report.metrics.is_empty(),
        "baseline carries no gated metrics"
    );

    // Every algorithm must appear in both the concurrency matrix and the
    // message-size sweep, at every smoke point.
    for alg in ["MESQ/SR", "MEMQ/SR", "MEMQ/RD", "SEMQ/SR", "SEMQ/RD", "SESQ/SR"] {
        for id in [
            format!("{alg}/N=1"),
            format!("{alg}/N=2"),
            format!("{alg}/msg=16KiB"),
            format!("{alg}/msg=64KiB"),
        ] {
            assert!(
                report.metrics.iter().any(|((_, rid, _), _)| rid == &id),
                "baseline missing result row {id:?}"
            );
        }
    }

    // The headline metrics the gate protects must all be present with
    // sane (positive, finite) values.
    for metric in ["p50_ns", "p99_ns", "makespan_ns", "agg_mbps", "gib_per_sec"] {
        let values: Vec<f64> = report
            .metrics
            .iter()
            .filter(|((_, _, m), _)| m == metric)
            .map(|(_, v)| *v)
            .collect();
        assert!(!values.is_empty(), "baseline missing metric {metric:?}");
        for v in values {
            assert!(v.is_finite() && v > 0.0, "{metric}: non-positive value {v}");
        }
    }
}

#[test]
fn baseline_diffed_against_itself_has_no_regressions() {
    let report = ParsedReport::parse(&baseline_text()).expect("baseline parses");
    let lines = diff_reports(&report, &report, 10.0);
    assert_eq!(lines.len(), report.metrics.len());
    for l in lines {
        assert!(
            !l.regressed,
            "self-diff regressed on {}/{} {}",
            l.bench, l.id, l.metric
        );
        assert_eq!(l.delta_pct, 0.0);
    }
}
