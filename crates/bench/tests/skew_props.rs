//! Property-based tests for the skewed-workload generators: seeded
//! determinism, skew-parameter monotonicity and partition-histogram
//! sanity across the whole parameter space the scale benchmarks sweep.

use proptest::prelude::*;
use rshuffle_bench::skew::{skew_ratio, straggler_plan, zipf_partition_rows, zipf_weights};

proptest! {
    /// The partition histogram is a pure function of its arguments.
    #[test]
    fn zipf_rows_are_seed_deterministic(
        total in 0u64..1_000_000,
        partitions in 1usize..128,
        theta_c in 0u32..250,
        seed in any::<u64>(),
    ) {
        let theta = theta_c as f64 / 100.0;
        let a = zipf_partition_rows(total, partitions, theta, seed);
        let b = zipf_partition_rows(total, partitions, theta, seed);
        prop_assert_eq!(a, b);
    }

    /// Histogram sanity: right length, exact total, and a uniform split
    /// at theta = 0 (every partition within one row of the mean).
    #[test]
    fn zipf_rows_histogram_sanity(
        total in 0u64..1_000_000,
        partitions in 1usize..128,
        theta_c in 0u32..250,
        seed in any::<u64>(),
    ) {
        let theta = theta_c as f64 / 100.0;
        let rows = zipf_partition_rows(total, partitions, theta, seed);
        prop_assert_eq!(rows.len(), partitions);
        prop_assert_eq!(rows.iter().sum::<u64>(), total);
        if theta_c == 0 {
            let floor = total / partitions as u64;
            for &r in &rows {
                prop_assert!(r == floor || r == floor + 1,
                    "theta=0 must be uniform up to apportionment: {} vs mean {}", r, floor);
            }
        }
    }

    /// A larger exponent concentrates strictly more mass in the heaviest
    /// rank (monotonicity of the analytic weights, which the integral
    /// apportionment inherits up to rounding).
    #[test]
    fn zipf_skew_is_monotone_in_theta(
        partitions in 2usize..128,
        lo_c in 0u32..200,
        delta_c in 25u32..100,
    ) {
        let lo = lo_c as f64 / 100.0;
        let hi = (lo_c + delta_c) as f64 / 100.0;
        let w_lo = zipf_weights(partitions, lo);
        let w_hi = zipf_weights(partitions, hi);
        // Weights are rank-ordered: index 0 is the heaviest rank.
        prop_assert!(w_hi[0] > w_lo[0],
            "raising theta {} -> {} must concentrate rank 1: {} vs {}",
            lo, hi, w_lo[0], w_hi[0]);
        // And the integral histograms agree once rounding noise is
        // above a row per partition.
        let rows_lo = zipf_partition_rows(1_000_000, partitions, lo, 42);
        let rows_hi = zipf_partition_rows(1_000_000, partitions, hi, 42);
        prop_assert!(skew_ratio(&rows_hi) + 1e-9 >= skew_ratio(&rows_lo),
            "skew ratio must not decrease: {} vs {}",
            skew_ratio(&rows_lo), skew_ratio(&rows_hi));
    }

    /// Straggler plans are seeded-deterministic, pick distinct in-range
    /// nodes, clamp the count, and carry the requested factor.
    #[test]
    fn straggler_plans_are_sane(
        nodes in 1usize..512,
        count in 0usize..64,
        factor_c in 11u32..100,
        seed in any::<u64>(),
    ) {
        let factor = factor_c as f64 / 10.0;
        let plan = straggler_plan(nodes, count, factor, seed);
        prop_assert_eq!(&plan, &straggler_plan(nodes, count, factor, seed));
        prop_assert_eq!(plan.slowdowns.len(), count.min(nodes));
        let mut seen = std::collections::BTreeSet::new();
        for &(node, f) in &plan.slowdowns {
            prop_assert!(node < nodes);
            prop_assert!(seen.insert(node), "straggler nodes must be distinct");
            prop_assert_eq!(f, factor);
        }
    }
}
