//! Edge-path tests for the endpoint implementations: stall detection,
//! setup-cost accounting, configuration validation and buffer bookkeeping.

use std::sync::Arc;

use rshuffle::endpoint::sr_rc::{SrRcConfig, SrRcSendEndpoint};
use rshuffle::endpoint::{EndpointId, SendEndpoint};
use rshuffle::{
    Exchange, ExchangeConfig, ShuffleAlgorithm, ShuffleError, StreamState, TransmissionGroups,
};
use rshuffle_simnet::{Cluster, DeviceProfile, SimDuration, SimTime};
use rshuffle_verbs::VerbsRuntime;

fn runtime(nodes: usize) -> Arc<VerbsRuntime> {
    VerbsRuntime::new(Cluster::new(nodes, DeviceProfile::edr()))
}

#[test]
fn sender_without_credit_reports_stall() {
    // A send endpoint whose peer never grants credit must fail with
    // `Stalled` instead of hanging (flow-control bug detection).
    let rt = runtime(2);
    let ctx = rt.context(0);
    let cfg = SrRcConfig {
        stall_timeout: SimDuration::from_micros(200),
        ..SrRcConfig::default()
    };
    let ep = Arc::new(SrRcSendEndpoint::new(&ctx, EndpointId(0), vec![1], cfg));
    // No bootstrap_credit: the peer "never" posts receives.
    rt.cluster().spawn(0, "sender", move |sim| {
        let buf = ep.get_free(&sim).expect("buffers start free");
        let err = ep.send(&sim, buf, &[1], StreamState::MoreData).unwrap_err();
        assert!(matches!(err, ShuffleError::Stalled(_)), "got {err:?}");
    });
    rt.cluster().run();
}

#[test]
fn exchange_rejects_mismatched_group_count() {
    let rt = runtime(3);
    let config = ExchangeConfig::with_groups(
        ShuffleAlgorithm::MESQ_SR,
        2,
        vec![TransmissionGroups::repartition(0, 3)], // Only 1 of 3.
    );
    let err = Exchange::build(&rt, &config).err().expect("must fail");
    assert!(matches!(err, ShuffleError::Config(_)));
}

#[test]
fn exchange_rejects_out_of_range_destination() {
    let rt = runtime(2);
    let config = ExchangeConfig::with_groups(
        ShuffleAlgorithm::MEMQ_SR,
        2,
        vec![
            TransmissionGroups::new(vec![vec![5]]), // Node 5 does not exist.
            TransmissionGroups::repartition(1, 2),
        ],
    );
    let err = Exchange::build(&rt, &config).err().expect("must fail");
    assert!(matches!(err, ShuffleError::Config(_)));
}

#[test]
fn exchange_rejects_bad_lane_count() {
    let rt = runtime(2);
    let mut config = ExchangeConfig::repartition(ShuffleAlgorithm::MESQ_SR, 2, 4);
    config.lanes_override = Some(9); // More lanes than threads.
    assert!(Exchange::build(&rt, &config).is_err());
}

#[test]
fn setup_cost_scales_with_queue_pair_count() {
    // Figure 12's mechanism: MQ endpoints pay per-peer connection costs,
    // so their setup grows with the cluster while SQ setup does not.
    let setup_ms = |algorithm, nodes| {
        let rt = runtime(nodes);
        let config = ExchangeConfig::repartition(algorithm, nodes, 4);
        let exchange = Arc::new(Exchange::build(&rt, &config).expect("builds"));
        let ex = exchange.clone();
        rt.cluster().spawn(0, "setup", move |sim| {
            ex.charge_setup(&sim, 0);
        });
        rt.cluster().run();
        (rt.kernel().now() - SimTime::ZERO).as_millis_f64()
    };
    let mq_small = setup_ms(ShuffleAlgorithm::MEMQ_SR, 2);
    let mq_large = setup_ms(ShuffleAlgorithm::MEMQ_SR, 8);
    let sq_small = setup_ms(ShuffleAlgorithm::MESQ_SR, 2);
    let sq_large = setup_ms(ShuffleAlgorithm::MESQ_SR, 8);
    assert!(
        mq_large > mq_small * 3.0,
        "MQ setup must grow with peers: {mq_small} -> {mq_large}"
    );
    assert!(
        sq_large < sq_small * 2.0,
        "SQ setup must stay near-flat: {sq_small} -> {sq_large}"
    );
    assert!(mq_large > sq_large, "MQ must cost more than SQ at scale");
}

#[test]
fn ud_registers_under_a_mebibyte_at_defaults() {
    // §5.1.2: "The RDMA Send/Receive algorithm in the Unreliable Datagram
    // protocol ... requires under 1 MiB of pinned memory" (send side,
    // per endpoint).
    let rt = runtime(8);
    let config = ExchangeConfig::repartition(ShuffleAlgorithm::MESQ_SR, 8, 14);
    let exchange = Exchange::build(&rt, &config).expect("builds");
    for lane in &exchange.send[0] {
        assert!(
            lane.registered_bytes() < 1 << 20,
            "UD send endpoint pins {} bytes",
            lane.registered_bytes()
        );
    }
}

#[test]
fn credit_writeback_frequency_one_works() {
    // Figure 8's leftmost point: write back after every receive.
    let rt = runtime(2);
    let mut config = ExchangeConfig::repartition(ShuffleAlgorithm::MEMQ_SR, 2, 2);
    config.credit_writeback_frequency = 1;
    config.message_size = 4096;
    let exchange = Exchange::build(&rt, &config).expect("builds");
    let cost = rshuffle::CostModel::from_profile(rt.profile());
    for node in 0..2 {
        let src = Arc::new(rshuffle_test_source(node));
        let sh = Arc::new(rshuffle::ShuffleOperator::with_lanes(
            src,
            exchange.send[node].clone(),
            exchange.groups[node].clone(),
            2,
            cost.clone(),
        ));
        rshuffle_engine_drive(&rt, node, sh, 2);
        let rc = Arc::new(rshuffle::ReceiveOperator::with_lanes(
            exchange.recv[node].clone(),
            16,
            512,
            2,
            cost.clone(),
        ));
        rshuffle_engine_drive(&rt, node, rc, 2);
    }
    rt.cluster().run();
    assert_eq!(
        exchange.bytes_received(0) + exchange.bytes_received(1),
        2 * 2 * 5_000 * 16
    );
}

// -- small local helpers (avoid an engine dev-dependency cycle) --

struct FixedSource {
    rows: Vec<parking_lot::Mutex<usize>>,
    node: usize,
}

fn rshuffle_test_source(node: usize) -> FixedSource {
    FixedSource {
        rows: (0..2).map(|_| parking_lot::Mutex::new(0)).collect(),
        node,
    }
}

impl rshuffle::Operator for FixedSource {
    fn next(
        &self,
        _sim: &rshuffle_simnet::SimContext,
        tid: usize,
    ) -> rshuffle::Result<(StreamState, rshuffle::RowBatch)> {
        let mut done = self.rows[tid].lock();
        let take = 500.min(5_000 - *done);
        let mut batch = rshuffle::RowBatch::new(16, take);
        for i in 0..take {
            let mut row = [0u8; 16];
            let key = (*done + i) as u64 ^ ((self.node as u64) << 32);
            row[0..8].copy_from_slice(&key.to_le_bytes());
            batch.push_row(&row);
        }
        *done += take;
        let state = if *done >= 5_000 {
            StreamState::Depleted
        } else {
            StreamState::MoreData
        };
        Ok((state, batch))
    }
}

fn rshuffle_engine_drive(
    rt: &Arc<VerbsRuntime>,
    node: usize,
    op: Arc<dyn rshuffle::Operator>,
    threads: usize,
) {
    for tid in 0..threads {
        let op = op.clone();
        rt.cluster()
            .spawn(node, &format!("w{node}-{tid}"), move |sim| loop {
                let (state, _batch) = op.next(&sim, tid).expect("operator");
                if state == StreamState::Depleted {
                    break;
                }
            });
    }
}
