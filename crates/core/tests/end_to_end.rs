//! End-to-end shuffle correctness: every algorithm × every pattern moves
//! every row to exactly the right node(s), under virtual time, including
//! out-of-order UD delivery; injected loss triggers the query-restart
//! error.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle::{
    default_partition_hash, CostModel, EndpointImpl, EndpointMode, Exchange, ExchangeConfig,
    Operator, ReceiveOperator, RowBatch, ShuffleAlgorithm, ShuffleError, ShuffleOperator,
    StreamState, TransmissionGroups,
};
use rshuffle_simnet::{Cluster, DeviceProfile, SimContext};
use rshuffle_verbs::{FaultConfig, VerbsRuntime};

const ROW: usize = 16;

/// Deterministic row: 8-byte key, 8-byte provenance tag.
fn make_row(node: usize, tid: usize, seq: usize) -> [u8; ROW] {
    let mut row = [0u8; ROW];
    // A mixed key so partitions are non-trivial.
    let key = (seq as u64)
        .wrapping_mul(0x517C_C1B7_2722_0A95)
        .wrapping_add((node as u64) << 7)
        .wrapping_add(tid as u64);
    row[0..8].copy_from_slice(&key.to_le_bytes());
    let tag = ((node as u64) << 48) | ((tid as u64) << 32) | seq as u64;
    row[8..16].copy_from_slice(&tag.to_le_bytes());
    row
}

/// A fixed, thread-partitioned row source.
struct TestSource {
    batches: Vec<Mutex<Vec<RowBatch>>>,
}

impl TestSource {
    fn new(node: usize, threads: usize, rows_per_thread: usize) -> Self {
        let batches = (0..threads)
            .map(|tid| {
                let mut all = Vec::new();
                let mut batch = RowBatch::new(ROW, 256);
                for seq in 0..rows_per_thread {
                    batch.push_row(&make_row(node, tid, seq));
                    if batch.rows() == 256 {
                        all.push(std::mem::replace(&mut batch, RowBatch::new(ROW, 256)));
                    }
                }
                if !batch.is_empty() {
                    all.push(batch);
                }
                all.reverse(); // Pop from the back in order.
                Mutex::new(all)
            })
            .collect();
        TestSource { batches }
    }
}

impl Operator for TestSource {
    fn next(&self, _sim: &SimContext, tid: usize) -> rshuffle::Result<(StreamState, RowBatch)> {
        let mut q = self.batches[tid].lock();
        match q.pop() {
            Some(b) if q.is_empty() => Ok((StreamState::Depleted, b)),
            Some(b) => Ok((StreamState::MoreData, b)),
            None => Ok((StreamState::Depleted, RowBatch::new(ROW, 0))),
        }
    }
}

struct RunResult {
    /// Rows received per node (raw 16-byte rows).
    received: Vec<Vec<[u8; ROW]>>,
    /// Errors raised by any worker.
    errors: Vec<ShuffleError>,
}

#[derive(Copy, Clone, PartialEq)]
enum Pattern {
    Repartition,
    Broadcast,
}

fn run_shuffle(
    algorithm: ShuffleAlgorithm,
    pattern: Pattern,
    nodes: usize,
    threads: usize,
    rows_per_thread: usize,
    faults: FaultConfig,
) -> RunResult {
    let cluster = Cluster::new(nodes, DeviceProfile::edr());
    let runtime = VerbsRuntime::with_faults(cluster, faults);
    let mut config = match pattern {
        Pattern::Repartition => ExchangeConfig::repartition(algorithm, nodes, threads),
        Pattern::Broadcast => ExchangeConfig::broadcast(algorithm, nodes, threads),
    };
    // Small RC messages so the tests exercise many buffers.
    config.message_size = 4096;
    config.buffers_per_peer = 4;
    let exchange = Exchange::build(&runtime, &config).expect("exchange builds");
    let cost = CostModel::from_profile(runtime.profile());

    let received: Arc<Vec<Mutex<Vec<[u8; ROW]>>>> =
        Arc::new((0..nodes).map(|_| Mutex::new(Vec::new())).collect());
    let errors: Arc<Mutex<Vec<ShuffleError>>> = Arc::new(Mutex::new(Vec::new()));

    for node in 0..nodes {
        let source = Arc::new(TestSource::new(node, threads, rows_per_thread));
        let shuffle = Arc::new(ShuffleOperator::new(
            algorithm.mode,
            source,
            exchange.send[node].clone(),
            exchange.groups[node].clone(),
            threads,
            cost.clone(),
        ));
        let receive = Arc::new(ReceiveOperator::new(
            algorithm.mode,
            exchange.recv[node].clone(),
            ROW,
            256,
            threads,
            cost.clone(),
        ));
        for tid in 0..threads {
            let shuffle = shuffle.clone();
            let errs = errors.clone();
            runtime
                .cluster()
                .spawn(node, &format!("send-{node}-{tid}"), move |sim| {
                    if let Err(e) = shuffle.next(&sim, tid) {
                        errs.lock().push(e);
                    }
                });
            let receive = receive.clone();
            let sink = received.clone();
            let errs = errors.clone();
            runtime
                .cluster()
                .spawn(node, &format!("recv-{node}-{tid}"), move |sim| loop {
                    match receive.next(&sim, tid) {
                        Ok((state, batch)) => {
                            let mut out = sink[node].lock();
                            for row in batch.iter() {
                                out.push(row.try_into().expect("16-byte row"));
                            }
                            if state == StreamState::Depleted {
                                break;
                            }
                        }
                        Err(e) => {
                            errs.lock().push(e);
                            break;
                        }
                    }
                });
        }
    }
    runtime.cluster().run();
    let result = RunResult {
        received: received.iter().map(|m| m.lock().clone()).collect(),
        errors: errors.lock().clone(),
    };
    result
}

/// Expected destination rows per node for the repartition pattern.
fn expected_repartition(
    nodes: usize,
    threads: usize,
    rows_per_thread: usize,
) -> Vec<Vec<[u8; ROW]>> {
    let mut out = vec![Vec::new(); nodes];
    for node in 0..nodes {
        let groups = TransmissionGroups::repartition(node, nodes);
        for tid in 0..threads {
            for seq in 0..rows_per_thread {
                let row = make_row(node, tid, seq);
                let g = (default_partition_hash(&row) % groups.len() as u64) as usize;
                let dest = groups.group(g)[0];
                out[dest].push(row);
            }
        }
    }
    out
}

fn sorted(mut v: Vec<[u8; ROW]>) -> Vec<[u8; ROW]> {
    v.sort_unstable();
    v
}

fn no_reorder() -> FaultConfig {
    FaultConfig {
        ud_reorder_probability: 0.0,
        ..FaultConfig::default()
    }
}

fn all_algorithms() -> Vec<ShuffleAlgorithm> {
    let mut v = ShuffleAlgorithm::ALL.to_vec();
    v.push(ShuffleAlgorithm {
        mode: EndpointMode::Multi,
        imp: EndpointImpl::MqWr,
    });
    v.push(ShuffleAlgorithm {
        mode: EndpointMode::Single,
        imp: EndpointImpl::MqWr,
    });
    v
}

#[test]
fn repartition_delivers_every_row_to_the_hashed_node() {
    let (nodes, threads, rows) = (3, 2, 1500);
    let expected = expected_repartition(nodes, threads, rows);
    for algorithm in all_algorithms() {
        let result = run_shuffle(
            algorithm,
            Pattern::Repartition,
            nodes,
            threads,
            rows,
            no_reorder(),
        );
        assert!(
            result.errors.is_empty(),
            "{algorithm}: workers errored: {:?}",
            result.errors
        );
        for (node, want) in expected.iter().enumerate() {
            assert_eq!(
                sorted(result.received[node].clone()),
                sorted(want.clone()),
                "{algorithm}: node {node} received the wrong multiset"
            );
        }
    }
}

#[test]
fn broadcast_delivers_every_row_to_every_other_node() {
    let (nodes, threads, rows) = (3, 2, 600);
    for algorithm in all_algorithms() {
        let result = run_shuffle(
            algorithm,
            Pattern::Broadcast,
            nodes,
            threads,
            rows,
            no_reorder(),
        );
        assert!(
            result.errors.is_empty(),
            "{algorithm}: workers errored: {:?}",
            result.errors
        );
        for node in 0..nodes {
            let mut expected = Vec::new();
            for src in 0..nodes {
                if src == node {
                    continue;
                }
                for tid in 0..threads {
                    for seq in 0..rows {
                        expected.push(make_row(src, tid, seq));
                    }
                }
            }
            assert_eq!(
                sorted(result.received[node].clone()),
                sorted(expected),
                "{algorithm}: node {node} missed broadcast rows"
            );
        }
    }
}

#[test]
fn native_multicast_broadcast_delivers_every_row() {
    // §7 extension: switch-level multicast must preserve broadcast
    // semantics exactly, including under reordering.
    let (nodes, threads, rows) = (4, 2, 800);
    let faults = FaultConfig {
        ud_reorder_probability: 0.3,
        ..no_reorder()
    };
    let cluster = Cluster::new(nodes, DeviceProfile::edr());
    let runtime = VerbsRuntime::with_faults(cluster, faults);
    let mut config = ExchangeConfig::broadcast(ShuffleAlgorithm::MESQ_SR, nodes, threads);
    config.ud_native_multicast = true;
    let exchange = Exchange::build(&runtime, &config).expect("exchange builds");
    let cost = CostModel::from_profile(runtime.profile());
    let received: Arc<Vec<Mutex<Vec<[u8; ROW]>>>> =
        Arc::new((0..nodes).map(|_| Mutex::new(Vec::new())).collect());
    for node in 0..nodes {
        let source = Arc::new(TestSource::new(node, threads, rows));
        let shuffle = Arc::new(ShuffleOperator::new(
            config.algorithm.mode,
            source,
            exchange.send[node].clone(),
            exchange.groups[node].clone(),
            threads,
            cost.clone(),
        ));
        for tid in 0..threads {
            let shuffle = shuffle.clone();
            runtime
                .cluster()
                .spawn(node, &format!("send-{node}-{tid}"), move |sim| {
                    shuffle.next(&sim, tid).expect("shuffle");
                });
        }
        let receive = Arc::new(ReceiveOperator::new(
            config.algorithm.mode,
            exchange.recv[node].clone(),
            ROW,
            256,
            threads,
            cost.clone(),
        ));
        for tid in 0..threads {
            let receive = receive.clone();
            let sink = received.clone();
            runtime
                .cluster()
                .spawn(node, &format!("recv-{node}-{tid}"), move |sim| loop {
                    let (state, batch) = receive.next(&sim, tid).expect("receive");
                    let mut out = sink[node].lock();
                    for row in batch.iter() {
                        out.push(row.try_into().expect("16-byte row"));
                    }
                    if state == StreamState::Depleted {
                        break;
                    }
                });
        }
    }
    runtime.cluster().run();
    for node in 0..nodes {
        let mut expected = Vec::new();
        for src in 0..nodes {
            if src == node {
                continue;
            }
            for tid in 0..threads {
                for seq in 0..rows {
                    expected.push(make_row(src, tid, seq));
                }
            }
        }
        assert_eq!(
            sorted(received[node].lock().clone()),
            sorted(expected),
            "native multicast lost rows at node {node}"
        );
    }
}

#[test]
fn mesq_sr_handles_out_of_order_delivery() {
    // Heavy reordering: Depleted datagrams routinely overtake data, which
    // exercises the counting-based termination of §4.4.2.
    let faults = FaultConfig {
        ud_drop_probability: 0.0,
        ud_reorder_probability: 0.6,
        ud_reorder_window: rshuffle_simnet::SimDuration::from_micros(40),
        seed: 2024,
        ..FaultConfig::default()
    };
    let (nodes, threads, rows) = (3, 2, 1500);
    let result = run_shuffle(
        ShuffleAlgorithm::MESQ_SR,
        Pattern::Repartition,
        nodes,
        threads,
        rows,
        faults,
    );
    assert!(result.errors.is_empty(), "errors: {:?}", result.errors);
    let expected = expected_repartition(nodes, threads, rows);
    for (node, want) in expected.iter().enumerate() {
        assert_eq!(
            sorted(result.received[node].clone()),
            sorted(want.clone()),
            "node {node} under reordering"
        );
    }
}

#[test]
fn sesq_sr_handles_out_of_order_delivery() {
    let faults = FaultConfig {
        ud_drop_probability: 0.0,
        ud_reorder_probability: 0.5,
        ud_reorder_window: rshuffle_simnet::SimDuration::from_micros(25),
        seed: 7,
        ..FaultConfig::default()
    };
    let (nodes, threads, rows) = (3, 2, 800);
    let result = run_shuffle(
        ShuffleAlgorithm::SESQ_SR,
        Pattern::Repartition,
        nodes,
        threads,
        rows,
        faults,
    );
    assert!(result.errors.is_empty(), "errors: {:?}", result.errors);
}

#[test]
fn ud_packet_loss_triggers_query_restart() {
    let faults = FaultConfig {
        ud_drop_probability: 0.02,
        ud_reorder_probability: 0.0,
        seed: 99,
        ..FaultConfig::default()
    };
    let result = run_shuffle(
        ShuffleAlgorithm::MESQ_SR,
        Pattern::Repartition,
        3,
        2,
        2000,
        faults,
    );
    assert!(
        result
            .errors
            .iter()
            .any(|e| matches!(e, ShuffleError::NetworkErrorRestartQuery { .. })),
        "2% loss must surface as a restart error, got: {:?}",
        result.errors
    );
}

#[test]
fn rc_algorithms_are_loss_free_by_construction() {
    // The same fault config only drops UD datagrams; RC traffic is immune.
    let faults = FaultConfig {
        ud_drop_probability: 0.5,
        ud_reorder_probability: 0.0,
        seed: 1,
        ..FaultConfig::default()
    };
    let (nodes, threads, rows) = (3, 2, 800);
    let expected = expected_repartition(nodes, threads, rows);
    for algorithm in [ShuffleAlgorithm::MEMQ_SR, ShuffleAlgorithm::MEMQ_RD] {
        let result = run_shuffle(
            algorithm,
            Pattern::Repartition,
            nodes,
            threads,
            rows,
            faults.clone(),
        );
        assert!(result.errors.is_empty(), "{algorithm}: {:?}", result.errors);
        for (node, want) in expected.iter().enumerate() {
            assert_eq!(
                sorted(result.received[node].clone()),
                sorted(want.clone()),
                "{algorithm}: node {node}"
            );
        }
    }
}

#[test]
fn multicast_groups_deliver_to_each_group_member() {
    // Figure 3b: node 0 multicasts to {1, 2} and {3}; other nodes stay
    // quiet senders with a trivial group to keep the exchange symmetric.
    let nodes = 4;
    let threads = 2;
    let groups: Vec<TransmissionGroups> = (0..nodes)
        .map(|me| {
            if me == 0 {
                TransmissionGroups::new(vec![vec![1, 2], vec![3]])
            } else {
                TransmissionGroups::repartition(me, nodes)
            }
        })
        .collect();
    let cluster = Cluster::new(nodes, DeviceProfile::edr());
    let runtime = VerbsRuntime::with_faults(cluster, no_reorder());
    let mut config =
        ExchangeConfig::with_groups(ShuffleAlgorithm::MEMQ_SR, threads, groups.clone());
    config.message_size = 4096;
    let exchange = Exchange::build(&runtime, &config).expect("exchange builds");
    let cost = CostModel::from_profile(runtime.profile());

    let rows = 1200;
    let received: Arc<Vec<Mutex<Vec<[u8; ROW]>>>> =
        Arc::new((0..nodes).map(|_| Mutex::new(Vec::new())).collect());

    for node in 0..nodes {
        let rows_here = if node == 0 { rows } else { 40 };
        let source = Arc::new(TestSource::new(node, threads, rows_here));
        let shuffle = Arc::new(ShuffleOperator::new(
            config.algorithm.mode,
            source,
            exchange.send[node].clone(),
            exchange.groups[node].clone(),
            threads,
            cost.clone(),
        ));
        let receive = Arc::new(ReceiveOperator::new(
            config.algorithm.mode,
            exchange.recv[node].clone(),
            ROW,
            256,
            threads,
            cost.clone(),
        ));
        for tid in 0..threads {
            let shuffle = shuffle.clone();
            runtime
                .cluster()
                .spawn(node, &format!("send-{node}-{tid}"), move |sim| {
                    shuffle.next(&sim, tid).expect("shuffle");
                });
            let receive = receive.clone();
            let sink = received.clone();
            runtime
                .cluster()
                .spawn(node, &format!("recv-{node}-{tid}"), move |sim| loop {
                    let (state, batch) = receive.next(&sim, tid).expect("receive");
                    let mut out = sink[node].lock();
                    for row in batch.iter() {
                        out.push(row.try_into().expect("16-byte row"));
                    }
                    if state == StreamState::Depleted {
                        break;
                    }
                });
        }
    }
    runtime.cluster().run();

    // Node 0's rows that hash to group 0 must appear on BOTH node 1 and 2;
    // group-1 rows only on node 3.
    let mut expect: HashMap<usize, Vec<[u8; ROW]>> = HashMap::new();
    for tid in 0..threads {
        for seq in 0..rows {
            let row = make_row(0, tid, seq);
            let g = (default_partition_hash(&row) % 2) as usize;
            if g == 0 {
                expect.entry(1).or_default().push(row);
                expect.entry(2).or_default().push(row);
            } else {
                expect.entry(3).or_default().push(row);
            }
        }
    }
    for target in [1usize, 2, 3] {
        let got: Vec<[u8; ROW]> = received[target]
            .lock()
            .iter()
            .copied()
            .filter(|r| node_of(r) == 0)
            .collect();
        assert_eq!(
            sorted(got),
            sorted(expect.remove(&target).unwrap_or_default()),
            "multicast rows from node 0 at node {target}"
        );
    }
}

fn node_of(row: &[u8; ROW]) -> usize {
    let tag = u64::from_le_bytes(row[8..16].try_into().expect("8 bytes"));
    (tag >> 48) as usize
}
