//! The exchange builder: instantiates and wires every endpoint of a
//! cluster-wide shuffle.
//!
//! Builds, for every node and lane (SE: one lane, ME: one per thread), the
//! send and receive endpoints of the chosen design, connects the Queue
//! Pairs, exchanges ring/credit descriptors out of band and seeds the
//! initial credit — everything the paper's connection-setup phase does
//! (§4.2, measured in Figure 12). Lanes are matched: the sender on
//! `(node a, lane l)` talks to the receiver on `(node b, lane l)`.

use std::collections::BTreeSet;
use std::sync::Arc;

use rshuffle_mux::{Multiplexer, MuxConfig};
use rshuffle_simnet::{Cluster, DeviceProfile, FlowId, NodeId, SimContext, SimDuration, Topology};
use rshuffle_verbs::{ConnectionManager, FaultConfig, VerbsRuntime};

use crate::config::{EndpointImpl, EndpointMode, ShuffleAlgorithm};
use crate::endpoint::rd_rc::{RdRcConfig, RdRcReceiveEndpoint, RdRcSendEndpoint};
use crate::endpoint::sr_rc::{SrRcConfig, SrRcReceiveEndpoint, SrRcSendEndpoint};
use crate::endpoint::sr_ud::{SrUdChannel, SrUdConfig};
use crate::endpoint::wr_rc::{WrRcConfig, WrRcReceiveEndpoint, WrRcSendEndpoint};
use crate::endpoint::{EndpointId, ReceiveEndpoint, SendEndpoint};
use crate::error::{Result, ShuffleError};
use crate::group::TransmissionGroups;
use crate::phase::{PhasePolicy, PhaseRunner, PhaseSchedule};

/// Configuration for building a cluster-wide exchange.
#[derive(Clone)]
pub struct ExchangeConfig {
    /// Which of the six designs to instantiate.
    pub algorithm: ShuffleAlgorithm,
    /// Worker threads per query fragment.
    pub threads: usize,
    /// Message size (header + payload) for the RC designs; the UD designs
    /// always use the MTU.
    pub message_size: usize,
    /// Send buffers per peer (RC designs; 2 = double buffering).
    pub buffers_per_peer: usize,
    /// Receive depth per peer (RC Send/Receive design).
    pub recv_depth_per_peer: usize,
    /// UD: send buffers per endpoint.
    pub ud_send_buffers: usize,
    /// UD: receive window granted per source.
    pub ud_recv_window: usize,
    /// Credit write-back frequency (Figure 8).
    pub credit_writeback_frequency: u32,
    /// Explicit lane-count override (Figure 11 sweeps this); `None` derives
    /// lanes from the endpoint mode (SE = 1, ME = threads).
    pub lanes_override: Option<usize>,
    /// Use native switch multicast for UD group sends (§7 extension).
    pub ud_native_multicast: bool,
    /// Per-thread shared-QP posting cost (see
    /// [`rshuffle_simnet::DeviceProfile::sq_contention_per_thread`]); the
    /// builder reads it from the runtime's profile.
    pub sq_contention: rshuffle_simnet::SimDuration,
    /// Stall watchdog applied to every endpoint wait loop: a wait that
    /// exceeds this virtual-time budget returns a typed
    /// [`ShuffleError::Stalled`] instead of hanging. Chaos tests shorten
    /// it so injected faults surface quickly.
    pub stall_timeout: SimDuration,
    /// UD designs: how long the send pool may stay fully depleted before
    /// the endpoint declares datagram loss and fails the query (triggering
    /// the paper's restart-on-message-loss path, §4.4.2).
    pub depleted_timeout: SimDuration,
    /// Fault-injection configuration (flat loss/reorder probabilities plus
    /// a scheduled [`rshuffle_verbs::FaultPlan`]) consumed by
    /// [`ExchangeConfig::build_runtime`].
    pub faults: FaultConfig,
    /// Flow tag applied to every Queue Pair and memory region of this
    /// exchange. [`FlowId::NONE`] (the default) leaves traffic untagged
    /// and is byte-identical to the pre-scheduler behaviour; the
    /// multi-query scheduler assigns one flow per query so the fabric can
    /// arbitrate bandwidth by weight and attribute busy time.
    pub flow: FlowId,
    /// Offset added to every [`EndpointId`] this exchange mints. Distinct
    /// concurrent queries on one runtime must use disjoint id spaces
    /// (endpoint ids are the wire-level addressing scheme, §4.2); the
    /// scheduler derives a base from the query id.
    pub endpoint_id_base: u32,
    /// Flow epoch stamped on every wire header this exchange's endpoints
    /// emit, and required of every accepted arrival. The recovery
    /// orchestrator bumps this per partial-retry attempt so leftovers of
    /// a fenced-off attempt are discarded at the transport; healthy runs
    /// stay at 0 and are byte-identical to the pre-recovery wire format.
    pub epoch: u16,
    /// Connection multiplexing: cap on physical QPs per directed node
    /// pair (the scale-out experiments sweep this). `None`, or a cap at
    /// least as large as the lane count, leaves the direct one-QP-per-lane
    /// wiring byte-identical to the pre-mux behaviour; a smaller cap makes
    /// virtual endpoints lease shared slots from a [`Multiplexer`]. Never
    /// applied to the UD design (it already uses one QP per lane total).
    pub mux: Option<MuxConfig>,
    /// Switch topology for [`ExchangeConfig::build_runtime`].
    /// [`Topology::SingleSwitch`] (the default) reproduces the paper's
    /// full-bisection testbed; fat trees model the oversubscribed spines
    /// of the 128–512-node scale-out runs.
    pub topology: Topology,
    /// Phase scheduling of the all-to-all transfer
    /// ([`crate::PhasePolicy::Off`] by default — the operator interleaves
    /// destinations freely and nothing phase-related is even built).
    pub phase: PhasePolicy,
    /// Estimated per-pair transfer matrix (`bytes[src][dst]`) for the
    /// skew-aware phase schedule; `None` falls back to a uniform
    /// estimate over the complete matrix. Ignored when `phase` is off.
    pub phase_bytes: Option<Arc<Vec<Vec<u64>>>>,
    /// Transmission groups of each node.
    pub groups: Vec<TransmissionGroups>,
}

impl ExchangeConfig {
    /// A repartition exchange among `nodes` nodes with the paper's default
    /// parameters (64 KiB RC messages, double buffering, credit write-back
    /// every 2 receives).
    pub fn repartition(algorithm: ShuffleAlgorithm, nodes: usize, threads: usize) -> Self {
        Self::with_groups(
            algorithm,
            threads,
            (0..nodes)
                .map(|me| TransmissionGroups::repartition(me, nodes))
                .collect(),
        )
    }

    /// A broadcast exchange among `nodes` nodes.
    pub fn broadcast(algorithm: ShuffleAlgorithm, nodes: usize, threads: usize) -> Self {
        Self::with_groups(
            algorithm,
            threads,
            (0..nodes)
                .map(|me| TransmissionGroups::broadcast(me, nodes))
                .collect(),
        )
    }

    /// An exchange with explicit per-node transmission groups.
    pub fn with_groups(
        algorithm: ShuffleAlgorithm,
        threads: usize,
        groups: Vec<TransmissionGroups>,
    ) -> Self {
        ExchangeConfig {
            algorithm,
            threads,
            message_size: 64 * 1024,
            buffers_per_peer: 2,
            recv_depth_per_peer: 16,
            ud_send_buffers: 16,
            ud_recv_window: 16,
            credit_writeback_frequency: 2,
            lanes_override: None,
            ud_native_multicast: false,
            sq_contention: rshuffle_simnet::SimDuration::from_nanos(28),
            stall_timeout: SimDuration::from_millis(500),
            depleted_timeout: SimDuration::from_millis(2),
            faults: FaultConfig::default(),
            flow: FlowId::NONE,
            endpoint_id_base: 0,
            epoch: 0,
            mux: None,
            topology: Topology::SingleSwitch,
            phase: PhasePolicy::Off,
            phase_bytes: None,
            groups,
        }
    }

    /// Builds the simulated cluster and verbs runtime this exchange runs
    /// over, with the configured fault plan installed on the kernel's
    /// event queue — the one-stop entry point for chaos tests and the
    /// chaos benchmark.
    pub fn build_runtime(&self, profile: DeviceProfile) -> Arc<VerbsRuntime> {
        let cluster = Cluster::with_topology(self.groups.len(), profile, self.topology.clone());
        VerbsRuntime::with_faults(cluster, self.faults.clone())
    }

    /// A single-endpoint (SE) configuration serves all `threads` workers
    /// from one endpoint, so its pools scale by the thread count — which is
    /// why Figure 9(b) shows SE and ME designs registering the same amount
    /// of memory.
    fn pool_scale(&self) -> usize {
        let lanes = self
            .lanes_override
            .unwrap_or_else(|| self.algorithm.endpoints(self.threads));
        self.threads.div_ceil(lanes.max(1))
    }

    fn sr_rc(&self) -> SrRcConfig {
        let scale = self.pool_scale();
        SrRcConfig {
            message_size: self.message_size,
            buffers_per_peer: self.buffers_per_peer * scale,
            recv_depth_per_peer: self.recv_depth_per_peer * scale,
            credit_writeback_frequency: self.credit_writeback_frequency,
            stall_timeout: self.stall_timeout,
            epoch: self.epoch,
            ..SrRcConfig::default()
        }
    }

    fn rd_rc(&self) -> RdRcConfig {
        RdRcConfig {
            message_size: self.message_size,
            buffers_per_peer: self.buffers_per_peer * self.pool_scale(),
            stall_timeout: self.stall_timeout,
            epoch: self.epoch,
            ..RdRcConfig::default()
        }
    }

    fn wr_rc(&self) -> WrRcConfig {
        WrRcConfig {
            message_size: self.message_size,
            buffers_per_peer: self.buffers_per_peer * self.pool_scale(),
            stall_timeout: self.stall_timeout,
            epoch: self.epoch,
            ..WrRcConfig::default()
        }
    }

    fn sr_ud(&self) -> SrUdConfig {
        let scale = self.pool_scale();
        // Sharing one QP among t threads bounces its state between cores on
        // every post; dedicated (ME) endpoints pay nothing. The per-thread
        // constant comes from the hardware profile (older CPUs pay more).
        let sharers = self.pool_scale();
        let post_overhead = if sharers > 1 {
            self.sq_contention * sharers as u64
        } else {
            rshuffle_simnet::SimDuration::ZERO
        };
        // The SEND operator parks one partially-filled staging buffer per
        // destination, so a send pool no larger than the fanout deadlocks
        // once every slot is parked: no buffer can complete (parked buffers
        // only flush when full) and neither data nor credit datagrams can
        // be sourced. Below the configured default the sizing is untouched
        // (the paper's 16-node testbed never hits this); past it, the pool
        // grows to the staging working set plus circulation head-room.
        let fanout = self
            .groups
            .iter()
            .map(|g| g.destinations().len())
            .max()
            .unwrap_or(0);
        let send_buffers = if fanout >= self.ud_send_buffers {
            fanout + self.ud_send_buffers.div_ceil(2).max(2)
        } else {
            self.ud_send_buffers
        };
        SrUdConfig {
            send_buffers: send_buffers * scale,
            recv_window_per_src: self.ud_recv_window * scale,
            credit_writeback_frequency: self.credit_writeback_frequency,
            post_overhead,
            native_multicast: self.ud_native_multicast,
            stall_timeout: self.stall_timeout,
            depleted_timeout: self.depleted_timeout,
            epoch: self.epoch,
            ..SrUdConfig::default()
        }
    }

    /// Predicts the total bytes of RDMA memory [`Exchange::build`] will
    /// register on `node` — from configuration alone, without building
    /// anything. The multi-query scheduler's admission controller budgets
    /// against this figure before paying for endpoint construction (an
    /// over-budget query must be deferred *before* it pins memory); a
    /// unit test pins the estimate to the actual
    /// [`VerbsRuntime::registered_bytes`] delta of a real build.
    pub fn registered_bytes_estimate(&self, profile: &DeviceProfile, node: NodeId) -> usize {
        let lanes = self
            .lanes_override
            .unwrap_or_else(|| self.algorithm.endpoints(self.threads));
        let dests: Vec<Vec<NodeId>> = self.groups.iter().map(|g| g.destinations()).collect();
        let d = dests.get(node).map_or(0, |v| v.len());
        let s = dests.iter().filter(|ds| ds.contains(&node)).count();
        let msg = self.message_size;
        // Every endpoint registers a 64-slot scratch region for control
        // writes (credit write-back, ring announcements).
        const SCRATCH: usize = 64 * 8;
        let per_lane = match self.algorithm.imp {
            EndpointImpl::MqSr => {
                let cfg = self.sr_rc();
                let send = if d > 0 {
                    msg * cfg.buffers_per_peer * d + 8 * d
                } else {
                    0
                };
                let recv = if s > 0 {
                    msg * cfg.recv_depth_per_peer * s + SCRATCH
                } else {
                    0
                };
                send + recv
            }
            EndpointImpl::MqRd => {
                let cfg = self.rd_rc();
                let send = if d > 0 {
                    let buffers = cfg.buffers_per_peer * d;
                    msg * buffers + 8 * (buffers + 2) * d + SCRATCH
                } else {
                    0
                };
                let recv = if s > 0 {
                    let ring_cap = cfg.buffers_per_peer * s + 2;
                    msg * cfg.buffers_per_peer * s + 8 * ring_cap * s + SCRATCH
                } else {
                    0
                };
                send + recv
            }
            EndpointImpl::MqWr => {
                let cfg = self.wr_rc();
                let ring_cap = cfg.buffers_per_peer + 2;
                let send = if d > 0 {
                    msg * cfg.buffers_per_peer * d + 8 * ring_cap * d + SCRATCH
                } else {
                    0
                };
                let recv = if s > 0 {
                    msg * cfg.buffers_per_peer * s + 8 * ring_cap * s + SCRATCH
                } else {
                    0
                };
                send + recv
            }
            EndpointImpl::SqSr => {
                // The UD channel registers its send pool unconditionally;
                // the receive pool (window + 2x in-flight head-room per
                // source) only exists on nodes that receive.
                let cfg = self.sr_ud();
                let send = profile.mtu * cfg.send_buffers;
                let recv = if s > 0 {
                    3 * cfg.recv_window_per_src * s * profile.mtu
                } else {
                    0
                };
                send + recv
            }
        };
        per_lane * lanes
    }
}

/// A fully wired cluster-wide exchange: per node, the lane-indexed send and
/// receive endpoints.
pub struct Exchange {
    /// `send[node][lane]`.
    pub send: Vec<Vec<Arc<dyn SendEndpoint>>>,
    /// `recv[node][lane]`.
    pub recv: Vec<Vec<Arc<dyn ReceiveEndpoint>>>,
    /// Per-node transmission groups.
    pub groups: Vec<TransmissionGroups>,
    /// The design that was built.
    pub algorithm: ShuffleAlgorithm,
    /// Lanes per node (1 for SE, `threads` for ME).
    pub lanes: usize,
    /// The flow tag all of this exchange's QPs and memory regions carry
    /// ([`FlowId::NONE`] outside the multi-query scheduler).
    pub flow: FlowId,
    /// The connection multiplexer, present when a QP cap below the lane
    /// count was in effect for this build (`None` on the direct path).
    /// Exposes [`Multiplexer::qp_count`] / [`Multiplexer::lease_waits`]
    /// to the scale benchmarks.
    pub mux: Option<Arc<Multiplexer>>,
    /// The phase runner when [`ExchangeConfig::phase`] enables scheduled
    /// all-to-all, `None` on the (default) unphased path. Shared by every
    /// sender thread of the cluster; operators cross its barrier once per
    /// phase.
    pub phases: Option<Arc<PhaseRunner>>,
}

impl Exchange {
    /// Builds and wires all endpoints for `config` over `runtime`.
    ///
    /// Resource creation is untimed (setup cost is charged explicitly via
    /// [`Exchange::charge_setup`], which Figure 12 measures).
    pub fn build(runtime: &Arc<VerbsRuntime>, config: &ExchangeConfig) -> Result<Exchange> {
        // Under the `audit` feature every exchange is born audited; tests
        // can also opt in explicitly via `runtime.enable_audit()`.
        #[cfg(feature = "audit")]
        if runtime.auditor().is_none() {
            runtime.enable_audit();
        }
        // Each build is one protocol epoch: a restarted attempt starts from
        // clean lane/buffer/ring state (violations accumulate across
        // epochs).
        if let Some(auditor) = runtime.auditor() {
            auditor.begin_epoch();
        }
        let mut config = config.clone();
        config.sq_contention = runtime.profile().sq_contention_per_thread;
        let config = &config;
        let nodes = runtime.cluster().nodes();
        if config.groups.len() != nodes {
            return Err(ShuffleError::Config(format!(
                "{} group sets for {} nodes",
                config.groups.len(),
                nodes
            )));
        }
        let lanes = config
            .lanes_override
            .unwrap_or_else(|| config.algorithm.endpoints(config.threads));
        if lanes == 0 || lanes > config.threads {
            return Err(ShuffleError::Config(format!(
                "lane count {lanes} out of range 1..={}",
                config.threads
            )));
        }
        // dests[a] = nodes a sends to; srcs[b] = nodes that send to b.
        let dests: Vec<Vec<NodeId>> = config.groups.iter().map(|g| g.destinations()).collect();
        let mut srcs: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); nodes];
        for (a, ds) in dests.iter().enumerate() {
            for &b in ds {
                if b >= nodes {
                    return Err(ShuffleError::Config(format!(
                        "group of node {a} references missing node {b}"
                    )));
                }
                srcs[b].insert(a);
            }
        }
        let srcs: Vec<Vec<NodeId>> = srcs.into_iter().map(|s| s.into_iter().collect()).collect();

        // Endpoint ids: (node, lane, role) → unique integer, offset into
        // this exchange's id space.
        let base = config.endpoint_id_base;
        let send_id =
            |node: usize, lane: usize| EndpointId(base + (node * lanes + lane) as u32 * 2);
        let recv_id =
            |node: usize, lane: usize| EndpointId(base + (node * lanes + lane) as u32 * 2 + 1);

        // Connection multiplexing: only the RC designs open one QP per
        // (lane, destination); the UD design already shares one QP per
        // lane, so a cap never applies to it. A cap at or above the lane
        // count changes nothing either — the lease table is skipped
        // entirely and the wiring stays byte-identical to the direct path.
        let muxer: Option<Arc<Multiplexer>> = match config.mux {
            Some(m) if config.algorithm.imp != EndpointImpl::SqSr && m.applies(lanes) => {
                Some(Multiplexer::new(m))
            }
            _ => None,
        };

        let mut exchange = match config.algorithm.imp {
            EndpointImpl::MqSr => {
                let cfg = config.sr_rc();
                let mut send_eps: Vec<Vec<Arc<SrRcSendEndpoint>>> = Vec::new();
                let mut recv_eps: Vec<Vec<Arc<SrRcReceiveEndpoint>>> = Vec::new();
                for node in 0..nodes {
                    let ctx = runtime.context_flow(node, config.flow);
                    let mut s_lane = Vec::new();
                    let mut r_lane = Vec::new();
                    for lane in 0..lanes {
                        if !dests[node].is_empty() {
                            s_lane.push(Arc::new(SrRcSendEndpoint::new(
                                &ctx,
                                send_id(node, lane),
                                dests[node].clone(),
                                cfg.clone(),
                            )));
                        }
                        if !srcs[node].is_empty() {
                            r_lane.push(Arc::new(SrRcReceiveEndpoint::new(
                                &ctx,
                                recv_id(node, lane),
                                srcs[node].clone(),
                                cfg.clone(),
                            )));
                        }
                    }
                    send_eps.push(s_lane);
                    recv_eps.push(r_lane);
                }
                // Wire QP pairs and bootstrap credit.
                for a in 0..nodes {
                    for lane in 0..lanes {
                        for &b in &dests[a] {
                            let s = &send_eps[a][lane];
                            let r = &recv_eps[b][lane];
                            let qp_s = s.qp_for(b);
                            let qp_r = r.qp_for(a);
                            ConnectionManager::activate_untimed(qp_s, Some(qp_r.address_handle()))?;
                            ConnectionManager::activate_untimed(qp_r, Some(qp_s.address_handle()))?;
                            if let Some(m) = &muxer {
                                let lease = m.lease(a, b, cfg.recv_depth_per_peer as u32);
                                qp_s.bind_shared_slot(&lease.send_slot)?;
                                qp_r.bind_shared_slot(&lease.recv_slot)?;
                            }
                            let credit = r.bootstrap_src(a, s.credit_slot_for(b))?;
                            s.bootstrap_credit(b, credit)?;
                        }
                    }
                }
                Exchange {
                    send: send_eps
                        .into_iter()
                        .map(|l| l.into_iter().map(|e| e as Arc<dyn SendEndpoint>).collect())
                        .collect(),
                    recv: recv_eps
                        .into_iter()
                        .map(|l| {
                            l.into_iter()
                                .map(|e| e as Arc<dyn ReceiveEndpoint>)
                                .collect()
                        })
                        .collect(),
                    groups: config.groups.clone(),
                    algorithm: config.algorithm,
                    lanes,
                    flow: config.flow,
                    mux: muxer.clone(),
                    phases: None,
                }
            }
            EndpointImpl::MqRd => {
                let cfg = config.rd_rc();
                let mut send_eps: Vec<Vec<Arc<RdRcSendEndpoint>>> = Vec::new();
                let mut recv_eps: Vec<Vec<RdRcReceiveEndpoint>> = Vec::new();
                for node in 0..nodes {
                    let ctx = runtime.context_flow(node, config.flow);
                    let mut s_lane = Vec::new();
                    let mut r_lane = Vec::new();
                    for lane in 0..lanes {
                        if !dests[node].is_empty() {
                            s_lane.push(Arc::new(RdRcSendEndpoint::new(
                                &ctx,
                                send_id(node, lane),
                                dests[node].clone(),
                                cfg.clone(),
                            )));
                        }
                        if !srcs[node].is_empty() {
                            r_lane.push(RdRcReceiveEndpoint::new(
                                &ctx,
                                recv_id(node, lane),
                                srcs[node].clone(),
                                cfg.clone(),
                            ));
                        }
                    }
                    send_eps.push(s_lane);
                    recv_eps.push(r_lane);
                }
                for a in 0..nodes {
                    for lane in 0..lanes {
                        for &b in &dests[a] {
                            let s = &send_eps[a][lane];
                            // Receive endpoints need &mut for descriptor
                            // wiring; index twice to satisfy the borrow
                            // checker.
                            let (qs_ah, qr_ah) = {
                                let r = &recv_eps[b][lane];
                                (s.qp_for(b).address_handle(), r.qp_for(a).address_handle())
                            };
                            ConnectionManager::activate_untimed(s.qp_for(b), Some(qr_ah))?;
                            {
                                let r = &recv_eps[b][lane];
                                ConnectionManager::activate_untimed(r.qp_for(a), Some(qs_ah))?;
                            }
                            if let Some(m) = &muxer {
                                let lease = m.lease(a, b, cfg.buffers_per_peer as u32);
                                s.qp_for(b).bind_shared_slot(&lease.send_slot)?;
                                recv_eps[b][lane]
                                    .qp_for(a)
                                    .bind_shared_slot(&lease.recv_slot)?;
                            }
                            let desc = s.remote_descriptor(b);
                            let ring = recv_eps[b][lane].valid_ring_for(a);
                            recv_eps[b][lane].set_descriptor(a, desc);
                            s.set_valid_ring(b, ring);
                        }
                    }
                }
                Exchange {
                    send: send_eps
                        .into_iter()
                        .map(|l| l.into_iter().map(|e| e as Arc<dyn SendEndpoint>).collect())
                        .collect(),
                    recv: recv_eps
                        .into_iter()
                        .map(|l| {
                            l.into_iter()
                                .map(|e| Arc::new(e) as Arc<dyn ReceiveEndpoint>)
                                .collect()
                        })
                        .collect(),
                    groups: config.groups.clone(),
                    algorithm: config.algorithm,
                    lanes,
                    flow: config.flow,
                    mux: muxer.clone(),
                    phases: None,
                }
            }
            EndpointImpl::MqWr => {
                let cfg = config.wr_rc();
                let mut send_eps: Vec<Vec<Arc<WrRcSendEndpoint>>> = Vec::new();
                let mut recv_eps: Vec<Vec<WrRcReceiveEndpoint>> = Vec::new();
                for node in 0..nodes {
                    let ctx = runtime.context_flow(node, config.flow);
                    let mut s_lane = Vec::new();
                    let mut r_lane = Vec::new();
                    for lane in 0..lanes {
                        if !dests[node].is_empty() {
                            s_lane.push(Arc::new(WrRcSendEndpoint::new(
                                &ctx,
                                send_id(node, lane),
                                dests[node].clone(),
                                cfg.clone(),
                            )));
                        }
                        if !srcs[node].is_empty() {
                            r_lane.push(WrRcReceiveEndpoint::new(
                                &ctx,
                                recv_id(node, lane),
                                srcs[node].clone(),
                                cfg.clone(),
                            ));
                        }
                    }
                    send_eps.push(s_lane);
                    recv_eps.push(r_lane);
                }
                for a in 0..nodes {
                    for lane in 0..lanes {
                        for &b in &dests[a] {
                            let s = &send_eps[a][lane];
                            let (qs_ah, qr_ah) = {
                                let r = &recv_eps[b][lane];
                                (s.qp_for(b).address_handle(), r.qp_for(a).address_handle())
                            };
                            ConnectionManager::activate_untimed(s.qp_for(b), Some(qr_ah))?;
                            {
                                let r = &recv_eps[b][lane];
                                ConnectionManager::activate_untimed(r.qp_for(a), Some(qs_ah))?;
                            }
                            if let Some(m) = &muxer {
                                let lease = m.lease(a, b, cfg.buffers_per_peer as u32);
                                s.qp_for(b).bind_shared_slot(&lease.send_slot)?;
                                recv_eps[b][lane]
                                    .qp_for(a)
                                    .bind_shared_slot(&lease.recv_slot)?;
                            }
                            let desc = recv_eps[b][lane].remote_descriptor(a);
                            let free_ring = s.free_ring_for(b);
                            recv_eps[b][lane].set_free_ring(a, free_ring);
                            s.set_descriptor(b, desc);
                            let grants = recv_eps[b][lane].initial_grants(a);
                            s.bootstrap_grants(b, &grants)?;
                        }
                    }
                }
                Exchange {
                    send: send_eps
                        .into_iter()
                        .map(|l| l.into_iter().map(|e| e as Arc<dyn SendEndpoint>).collect())
                        .collect(),
                    recv: recv_eps
                        .into_iter()
                        .map(|l| {
                            l.into_iter()
                                .map(|e| Arc::new(e) as Arc<dyn ReceiveEndpoint>)
                                .collect()
                        })
                        .collect(),
                    groups: config.groups.clone(),
                    algorithm: config.algorithm,
                    lanes,
                    flow: config.flow,
                    mux: muxer.clone(),
                    phases: None,
                }
            }
            EndpointImpl::SqSr => {
                let cfg = config.sr_ud();
                let mut channels: Vec<Vec<SrUdChannel>> = Vec::new();
                for node in 0..nodes {
                    let ctx = runtime.context_flow(node, config.flow);
                    let lane_channels = (0..lanes)
                        .map(|lane| {
                            SrUdChannel::new(
                                &ctx,
                                send_id(node, lane),
                                recv_id(node, lane),
                                cfg.clone(),
                            )
                        })
                        .collect();
                    channels.push(lane_channels);
                }
                // Activate QPs and exchange lane-matched address handles.
                for lane_channels in &channels {
                    for channel in lane_channels {
                        ConnectionManager::activate_untimed(channel.qp(), None)?;
                    }
                }
                for a in 0..nodes {
                    #[allow(clippy::needless_range_loop)]
                    for lane in 0..lanes {
                        let union: BTreeSet<NodeId> =
                            dests[a].iter().chain(srcs[a].iter()).copied().collect();
                        for b in union {
                            let ah = channels[b][lane].address_handle();
                            channels[a][lane].add_peer(b, ah);
                        }
                    }
                }
                // Bootstrap receive windows and credit.
                for b in 0..nodes {
                    #[allow(clippy::needless_range_loop)]
                    for lane in 0..lanes {
                        if srcs[b].is_empty() {
                            continue;
                        }
                        let expected: Vec<(EndpointId, NodeId)> =
                            srcs[b].iter().map(|&a| (send_id(a, lane), a)).collect();
                        let ctx = runtime.context_flow(b, config.flow);
                        let credit = channels[b][lane].bootstrap_receives(&ctx, &expected)?;
                        for &a in &srcs[b] {
                            channels[a][lane].bootstrap_credit(b, credit);
                        }
                    }
                }
                let send = channels
                    .iter()
                    .enumerate()
                    .map(|(node, lane_ch)| {
                        if dests[node].is_empty() {
                            Vec::new()
                        } else {
                            lane_ch
                                .iter()
                                .map(|c| Arc::new(c.send_half()) as Arc<dyn SendEndpoint>)
                                .collect()
                        }
                    })
                    .collect();
                let recv = channels
                    .iter()
                    .enumerate()
                    .map(|(node, lane_ch)| {
                        if srcs[node].is_empty() {
                            Vec::new()
                        } else {
                            lane_ch
                                .iter()
                                .map(|c| Arc::new(c.recv_half()) as Arc<dyn ReceiveEndpoint>)
                                .collect()
                        }
                    })
                    .collect();
                Exchange {
                    send,
                    recv,
                    groups: config.groups.clone(),
                    algorithm: config.algorithm,
                    lanes,
                    flow: config.flow,
                    mux: muxer.clone(),
                    phases: None,
                }
            }
        };
        // Lazy: registers no `mux.*` series unless a lease actually shared
        // a slot, keeping identity-configuration snapshots byte-identical.
        if let Some(m) = &exchange.mux {
            m.publish(runtime.cluster().obs().as_ref());
        }
        if config.phase.enabled() {
            // Phasing serializes destinations, which only makes sense when
            // every send targets exactly one node: a multicast group would
            // need to appear in several phases at once.
            for (node, g) in config.groups.iter().enumerate() {
                for i in 0..g.len() {
                    if g.group(i).len() > 1 {
                        return Err(ShuffleError::Config(format!(
                            "phase scheduling requires singleton transmission \
                             groups; node {node} group {i} has {} members",
                            g.group(i).len()
                        )));
                    }
                }
            }
            // The schedule covers exactly the pairs that exist: a provided
            // estimate refines the weights, but presence is decided by the
            // transmission groups (estimates for absent pairs are dropped,
            // present pairs are clamped to at least one byte so they are
            // never scheduled away).
            let mut bytes = vec![vec![0u64; nodes]; nodes];
            for (a, ds) in dests.iter().enumerate() {
                for &b in ds {
                    let est = config
                        .phase_bytes
                        .as_ref()
                        .and_then(|m| m.get(a).and_then(|row| row.get(b)).copied())
                        .unwrap_or(1);
                    bytes[a][b] = est.max(1);
                }
            }
            let schedule = PhaseSchedule::build(config.phase, &bytes)?;
            // Free (exempted) sources run the unphased path and never
            // reach the barrier: counting them would deadlock round 0.
            let senders = dests
                .iter()
                .enumerate()
                .filter(|(n, d)| !d.is_empty() && !schedule.is_free(*n))
                .count();
            let parties = senders * config.threads;
            exchange.phases = Some(PhaseRunner::with_obs(
                runtime.kernel(),
                schedule,
                parties,
                config.stall_timeout,
                runtime.obs().clone(),
            ));
        }
        Ok(exchange)
    }

    /// Charges the modelled connection-setup cost for `node`'s endpoints to
    /// the calling thread (the quantity of Figure 12).
    pub fn charge_setup(&self, sim: &SimContext, node: NodeId) {
        for ep in &self.send[node] {
            ep.charge_setup(sim);
        }
        for ep in &self.recv[node] {
            ep.charge_setup(sim);
        }
    }

    /// Returns this exchange's pinned memory to the runtime: deregisters
    /// (untimed and trace-invisible, so it cannot perturb virtual time)
    /// every region registered under the exchange's flow tag. Endpoints
    /// register eagerly and never release on their own; the multi-query
    /// scheduler calls this when a query attempt finishes so the next
    /// admission decision sees the true budget. A no-op for untagged
    /// exchanges. Returns the bytes freed cluster-wide.
    pub fn release(&self, runtime: &VerbsRuntime) -> usize {
        runtime.deregister_flow(self.flow)
    }

    /// Total RDMA-registered bytes on `node` across this exchange's
    /// endpoints (the quantity of Figure 9b).
    pub fn registered_bytes(&self, node: NodeId) -> usize {
        self.send[node]
            .iter()
            .map(|e| e.registered_bytes())
            .sum::<usize>()
            + self.recv[node]
                .iter()
                .map(|e| e.registered_bytes())
                .sum::<usize>()
    }

    /// Payload bytes received by `node` so far.
    pub fn bytes_received(&self, node: NodeId) -> u64 {
        self.recv[node].iter().map(|e| e.bytes_received()).sum()
    }

    /// The send endpoint for `(node, tid)` under this exchange's mode.
    pub fn send_endpoint(&self, node: NodeId, tid: usize) -> &Arc<dyn SendEndpoint> {
        match self.algorithm.mode {
            EndpointMode::Single => &self.send[node][0],
            EndpointMode::Multi => &self.send[node][tid],
        }
    }

    /// The receive endpoint for `(node, tid)` under this exchange's mode.
    pub fn recv_endpoint(&self, node: NodeId, tid: usize) -> &Arc<dyn ReceiveEndpoint> {
        match self.algorithm.mode {
            EndpointMode::Single => &self.recv[node][0],
            EndpointMode::Multi => &self.recv[node][tid],
        }
    }
}
