//! RDMA transmission buffers and the on-wire message header.
//!
//! Every message an endpoint transmits is a fixed-capacity window of a
//! registered [`MemoryRegion`] with a small metadata header in front of the
//! tuple payload, exactly as Algorithm 3 of the paper "encode\[s\]
//! (destarr, state, source, addr) as metadata in buffer". All endpoint
//! implementations share this layout so the operators above are oblivious
//! to the transport.
//!
//! Header layout (little-endian, [`HEADER_LEN`] = 32 bytes):
//!
//! | bytes   | field                                                    |
//! |---------|----------------------------------------------------------|
//! | 0..4    | source endpoint id                                       |
//! | 4       | message kind (data / credit)                             |
//! | 5       | stream state (`MoreData` / `Depleted`)                   |
//! | 6..8    | flow epoch (bumped on partial retry; receivers discard   |
//! |         | stale-epoch arrivals)                                    |
//! | 8..12   | payload length in bytes                                  |
//! | 12..14  | source worker thread id (keys the recovery flow ledger)  |
//! | 14..16  | reserved                                                 |
//! | 16..24  | total data messages sent to this destination (valid when |
//! |         | state is `Depleted`; drives UD termination counting) or  |
//! |         | absolute credit value for credit messages                |
//! | 24..32  | sender-side buffer address (offset; lets the RDMA Read   |
//! |         | receiver RELEASE the right remote buffer)                |

use parking_lot::Mutex;
use rshuffle_verbs::MemoryRegion;

use crate::error::{Result, ShuffleError};

/// Size of the message header at the start of every transmission buffer.
pub const HEADER_LEN: usize = 32;

/// Whether more data follows on this stream (§4.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StreamState {
    /// More buffers will follow.
    MoreData,
    /// This is the final buffer from this endpoint.
    Depleted,
}

/// What a message carries.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Tuple payload.
    Data,
    /// A flow-control credit update (UD endpoints write credit back as
    /// datagrams on the shared queue pair).
    Credit,
}

/// Decoded message header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MsgHeader {
    /// Source endpoint id.
    pub src: u32,
    /// Message kind.
    pub kind: MsgKind,
    /// Stream state.
    pub state: StreamState,
    /// Flow epoch this message belongs to. Healthy queries run entirely
    /// in epoch 0; a partial retry rebuilds the exchange with a bumped
    /// epoch so receivers can discard stale in-flight arrivals from the
    /// aborted attempt (exactly-once delivery without a global barrier).
    pub epoch: u16,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Worker thread id that produced the payload; keys the recovery
    /// layer's per-flow ledger `(src node, src thread, dst node)`.
    pub src_tid: u16,
    /// Total data messages sent (Depleted) or absolute credit (Credit).
    pub counter: u64,
    /// Sender-side buffer offset (RDMA Read endpoints).
    pub remote_addr: u64,
}

impl MsgHeader {
    /// Encodes the header into `dst` (which must be at least
    /// [`HEADER_LEN`] bytes).
    pub fn encode(&self, dst: &mut [u8]) {
        assert!(dst.len() >= HEADER_LEN);
        dst[0..4].copy_from_slice(&self.src.to_le_bytes());
        dst[4] = match self.kind {
            MsgKind::Data => 0,
            MsgKind::Credit => 1,
        };
        dst[5] = match self.state {
            StreamState::MoreData => 0,
            StreamState::Depleted => 1,
        };
        dst[6..8].copy_from_slice(&self.epoch.to_le_bytes());
        dst[8..12].copy_from_slice(&self.payload_len.to_le_bytes());
        dst[12..14].copy_from_slice(&self.src_tid.to_le_bytes());
        dst[14..16].copy_from_slice(&[0; 2]);
        dst[16..24].copy_from_slice(&self.counter.to_le_bytes());
        dst[24..32].copy_from_slice(&self.remote_addr.to_le_bytes());
    }

    /// Decodes a header from `src`.
    ///
    /// Header bytes travel over the (simulated) wire, so a short slice
    /// or an invalid enum tag is treated as data corruption and
    /// surfaces as [`ShuffleError::Corrupt`] — the query restarts
    /// rather than aborting the process.
    pub fn decode(src: &[u8]) -> Result<Self> {
        if src.len() < HEADER_LEN {
            return Err(ShuffleError::Corrupt(format!(
                "message header truncated: {} of {HEADER_LEN} bytes",
                src.len()
            )));
        }
        Ok(MsgHeader {
            src: u32::from_le_bytes(src[0..4].try_into().expect("4 bytes")),
            kind: match src[4] {
                0 => MsgKind::Data,
                1 => MsgKind::Credit,
                k => {
                    return Err(ShuffleError::Corrupt(format!(
                        "message header kind tag {k} is not a MsgKind"
                    )))
                }
            },
            state: match src[5] {
                0 => StreamState::MoreData,
                1 => StreamState::Depleted,
                s => {
                    return Err(ShuffleError::Corrupt(format!(
                        "message header state tag {s} is not a StreamState"
                    )))
                }
            },
            epoch: u16::from_le_bytes(src[6..8].try_into().expect("2 bytes")),
            payload_len: u32::from_le_bytes(src[8..12].try_into().expect("4 bytes")),
            src_tid: u16::from_le_bytes(src[12..14].try_into().expect("2 bytes")),
            counter: u64::from_le_bytes(src[16..24].try_into().expect("8 bytes")),
            remote_addr: u64::from_le_bytes(src[24..32].try_into().expect("8 bytes")),
        })
    }
}

/// A fixed-capacity transmission buffer: a window of a registered memory
/// region holding a header plus tuple payload.
///
/// Obtained from [`SendEndpoint::get_free`](crate::endpoint::SendEndpoint::get_free)
/// and consumed by [`SendEndpoint::send`](crate::endpoint::SendEndpoint::send);
/// on the receive side, delivered by
/// [`ReceiveEndpoint::get_data`](crate::endpoint::ReceiveEndpoint::get_data)
/// and returned with
/// [`ReceiveEndpoint::release`](crate::endpoint::ReceiveEndpoint::release).
#[derive(Clone)]
pub struct Buffer {
    mr: MemoryRegion,
    /// Offset of the header within the region.
    offset: usize,
    /// Total window size including the header.
    window: usize,
    /// Payload bytes currently written.
    len: usize,
    /// Worker thread id the operator stamps before filling the buffer;
    /// copied into the header's `src_tid` field by the endpoints.
    tag: u16,
}

impl Buffer {
    /// Creates a buffer over `[offset, offset + window)` of `mr`.
    ///
    /// # Panics
    ///
    /// Panics if the window is smaller than the header or out of bounds.
    /// Use [`Buffer::try_new`] when the offset is derived from wire data
    /// (a completion's `wr_id`, a ring-slot entry) rather than local
    /// pool bookkeeping.
    pub fn new(mr: MemoryRegion, offset: usize, window: usize) -> Self {
        assert!(window > HEADER_LEN, "buffer window must exceed the header");
        assert!(offset + window <= mr.len(), "buffer window out of bounds");
        Buffer {
            mr,
            offset,
            window,
            len: 0,
            tag: 0,
        }
    }

    /// Fallible [`Buffer::new`] for offsets that arrive over the wire: a
    /// window that is too small or out of bounds surfaces as
    /// [`ShuffleError::Corrupt`] so the query restarts instead of
    /// aborting.
    pub fn try_new(mr: MemoryRegion, offset: usize, window: usize) -> Result<Self> {
        if window <= HEADER_LEN {
            return Err(ShuffleError::Corrupt(format!(
                "buffer window of {window} bytes cannot hold the {HEADER_LEN}-byte header"
            )));
        }
        if offset.checked_add(window).is_none_or(|end| end > mr.len()) {
            return Err(ShuffleError::Corrupt(format!(
                "buffer window [{offset}, {offset}+{window}) outside region of {} bytes",
                mr.len()
            )));
        }
        Ok(Buffer {
            mr,
            offset,
            window,
            len: 0,
            tag: 0,
        })
    }

    /// The worker-thread tag stamped by [`Buffer::set_tag`] (zero until
    /// stamped).
    pub fn tag(&self) -> u16 {
        self.tag
    }

    /// Stamps the worker thread id that fills this buffer; the endpoints
    /// copy it into the wire header so receivers can attribute rows to
    /// the `(src node, src thread)` flow they came from.
    pub fn set_tag(&mut self, tag: u16) {
        self.tag = tag;
    }

    /// Payload capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.window - HEADER_LEN
    }

    /// Payload bytes currently written.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no payload has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remaining payload capacity.
    pub fn remaining(&self) -> usize {
        self.capacity() - self.len
    }

    /// Offset of the buffer window within its memory region.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Total window size (header + payload capacity).
    pub fn window(&self) -> usize {
        self.window
    }

    /// The backing memory region.
    pub fn region(&self) -> &MemoryRegion {
        &self.mr
    }

    /// Appends `bytes` to the payload.
    ///
    /// Returns [`ShuffleError::Config`] if the payload would overflow; the
    /// operators check [`Buffer::remaining`] before writing.
    pub fn push(&mut self, bytes: &[u8]) -> Result<()> {
        if bytes.len() > self.remaining() {
            return Err(ShuffleError::Config(format!(
                "payload overflow: {} bytes into {} remaining",
                bytes.len(),
                self.remaining()
            )));
        }
        self.mr.write(self.offset + HEADER_LEN + self.len, bytes)?;
        self.len += bytes.len();
        Ok(())
    }

    /// Copies the payload out.
    pub fn payload(&self) -> Result<Vec<u8>> {
        Ok(self.mr.read(self.offset + HEADER_LEN, self.len)?)
    }

    /// Runs `f` over the payload without copying.
    pub fn with_payload<R>(&self, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        Ok(self.mr.with(self.offset + HEADER_LEN, self.len, f)?)
    }

    /// Resets the payload length to zero (contents are left in place).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Writes `header` into the buffer's header area.
    pub fn write_header(&self, header: &MsgHeader) -> Result<()> {
        Ok(self
            .mr
            .with_mut(self.offset, HEADER_LEN, |b| header.encode(b))?)
    }

    /// Reads and decodes the buffer's header area. Invalid wire bytes
    /// surface as [`ShuffleError::Corrupt`].
    pub fn read_header(&self) -> Result<MsgHeader> {
        self.mr.with(self.offset, HEADER_LEN, MsgHeader::decode)?
    }

    /// Sets the payload length after bytes arrived in place (receive
    /// path). The length comes from a wire header, so a value exceeding
    /// the window's capacity is rejected as [`ShuffleError::Corrupt`]
    /// rather than trusted.
    pub(crate) fn set_len(&mut self, len: usize) -> Result<()> {
        if len > self.capacity() {
            return Err(ShuffleError::Corrupt(format!(
                "received payload of {len} bytes exceeds buffer capacity {}",
                self.capacity()
            )));
        }
        self.len = len;
        Ok(())
    }

    /// Wire size of the message currently in the buffer (header + payload).
    pub fn message_len(&self) -> usize {
        HEADER_LEN + self.len
    }
}

/// A recycle pool of fixed-size transmission windows over one registered
/// [`MemoryRegion`].
///
/// The windows are carved once at setup; afterwards the steady state is
/// allocation-free: [`BufferPool::try_take`] pops a recycled window and
/// [`BufferPool::recycle_offset`] re-arms the window a completion or a
/// released delivery names — validating the wire-derived offset exactly
/// like [`Buffer::try_new`], but without constructing anything new. The
/// free list is LIFO and the pool itself never advances virtual time, so
/// same-seed runs stay byte-identical.
pub struct BufferPool {
    mr: MemoryRegion,
    window: usize,
    free: Mutex<Vec<Buffer>>,
    capacity: usize,
}

impl BufferPool {
    /// Carves `count` contiguous windows of `window` bytes starting at
    /// `base` and arms them all as free.
    ///
    /// # Panics
    ///
    /// Panics (via [`Buffer::new`]) if any window is smaller than the
    /// header or out of bounds — pool geometry is local configuration,
    /// not wire data.
    pub fn carve(mr: MemoryRegion, base: usize, window: usize, count: usize) -> Self {
        let mut free = Vec::with_capacity(count);
        // Reverse the fill so try_take hands out ascending offsets.
        for i in (0..count).rev() {
            free.push(Buffer::new(mr.clone(), base + i * window, window));
        }
        BufferPool {
            mr,
            window,
            free: Mutex::new(free),
            capacity: count,
        }
    }

    /// Pops a free window, reset to an empty payload and a zero tag —
    /// indistinguishable from a freshly constructed [`Buffer`]. Returns
    /// `None` when every window is in flight.
    pub fn try_take(&self) -> Option<Buffer> {
        let mut buf = self.free.lock().pop()?;
        buf.len = 0;
        buf.tag = 0;
        Some(buf)
    }

    /// Re-arms the window starting at `offset` (a value that typically
    /// arrived over the wire in a completion's `wr_id` or a ring slot).
    /// Bounds and alignment are validated before the window rejoins the
    /// free list; garbage surfaces as [`ShuffleError::Corrupt`].
    pub fn recycle_offset(&self, offset: usize) -> Result<()> {
        if offset
            .checked_add(self.window)
            .is_none_or(|end| end > self.mr.len())
        {
            return Err(ShuffleError::Corrupt(format!(
                "recycled window [{offset}, {offset}+{}) outside region of {} bytes",
                self.window,
                self.mr.len()
            )));
        }
        let mut free = self.free.lock();
        if free.len() >= self.capacity {
            return Err(ShuffleError::Corrupt(format!(
                "recycle of offset {offset} would overfill a pool of {} windows",
                self.capacity
            )));
        }
        free.push(Buffer {
            mr: self.mr.clone(),
            offset,
            window: self.window,
            len: 0,
            tag: 0,
        });
        Ok(())
    }

    /// Returns a buffer to the pool (local bookkeeping, no validation).
    pub fn recycle(&self, mut buf: Buffer) {
        buf.len = 0;
        buf.tag = 0;
        self.free.lock().push(buf);
    }

    /// Windows currently free.
    pub fn free_len(&self) -> usize {
        self.free.lock().len()
    }

    /// Whether no window is currently free.
    pub fn is_exhausted(&self) -> bool {
        self.free.lock().is_empty()
    }

    /// Total windows carved at setup.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Window size in bytes (header + payload capacity).
    pub fn window(&self) -> usize {
        self.window
    }

    /// The backing memory region.
    pub fn region(&self) -> &MemoryRegion {
        &self.mr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rshuffle_simnet::Kernel;

    fn mr(len: usize) -> MemoryRegion {
        // Construct through the verbs test hook: a standalone region.
        rshuffle_verbs::MemoryRegion::new_for_tests(&Kernel::new(), 0, 1, len)
    }

    #[test]
    fn header_roundtrip() {
        let h = MsgHeader {
            src: 42,
            kind: MsgKind::Data,
            state: StreamState::Depleted,
            epoch: 3,
            payload_len: 1234,
            src_tid: 5,
            counter: 0xABCD_EF01_2345_6789,
            remote_addr: 65536,
        };
        let mut bytes = [0u8; HEADER_LEN];
        h.encode(&mut bytes);
        assert_eq!(MsgHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn credit_header_roundtrip() {
        let h = MsgHeader {
            src: 7,
            kind: MsgKind::Credit,
            state: StreamState::MoreData,
            epoch: 0,
            payload_len: 0,
            src_tid: 0,
            counter: 99,
            remote_addr: 0,
        };
        let mut bytes = [0u8; HEADER_LEN];
        h.encode(&mut bytes);
        assert_eq!(MsgHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn corrupt_headers_are_rejected_not_panicked() {
        let short = [0u8; HEADER_LEN - 1];
        assert!(matches!(
            MsgHeader::decode(&short),
            Err(ShuffleError::Corrupt(_))
        ));
        let mut bytes = [0u8; HEADER_LEN];
        bytes[4] = 9; // invalid kind tag
        assert!(matches!(
            MsgHeader::decode(&bytes),
            Err(ShuffleError::Corrupt(_))
        ));
        bytes[4] = 0;
        bytes[5] = 7; // invalid state tag
        assert!(matches!(
            MsgHeader::decode(&bytes),
            Err(ShuffleError::Corrupt(_))
        ));
    }

    #[test]
    fn push_and_payload_roundtrip() {
        let mr = mr(4096);
        let mut buf = Buffer::new(mr, 0, 1024);
        assert_eq!(buf.capacity(), 1024 - HEADER_LEN);
        buf.push(b"abc").unwrap();
        buf.push(b"defg").unwrap();
        assert_eq!(buf.len(), 7);
        assert_eq!(buf.payload().unwrap(), b"abcdefg".to_vec());
    }

    #[test]
    fn try_new_rejects_wire_derived_garbage() {
        assert!(matches!(
            Buffer::try_new(mr(4096), 0, HEADER_LEN),
            Err(ShuffleError::Corrupt(_))
        ));
        assert!(matches!(
            Buffer::try_new(mr(4096), 4000, 1024),
            Err(ShuffleError::Corrupt(_))
        ));
        assert!(matches!(
            Buffer::try_new(mr(4096), usize::MAX - 64, 1024),
            Err(ShuffleError::Corrupt(_))
        ));
        assert!(Buffer::try_new(mr(4096), 1024, 1024).is_ok());
    }

    #[test]
    fn oversized_set_len_is_rejected() {
        let mut buf = Buffer::new(mr(4096), 0, 256);
        assert!(buf.set_len(256 - HEADER_LEN).is_ok());
        assert!(matches!(
            buf.set_len(256 - HEADER_LEN + 1),
            Err(ShuffleError::Corrupt(_))
        ));
    }

    #[test]
    fn push_overflow_is_rejected() {
        let mr = mr(4096);
        let mut buf = Buffer::new(mr, 0, HEADER_LEN + 8);
        assert!(buf.push(&[0; 8]).is_ok());
        assert!(matches!(buf.push(&[0; 1]), Err(ShuffleError::Config(_))));
    }

    #[test]
    fn header_and_payload_do_not_overlap() {
        let mr = mr(4096);
        let mut buf = Buffer::new(mr, 128, 256);
        buf.push(&[0xAA; 16]).unwrap();
        let h = MsgHeader {
            src: 1,
            kind: MsgKind::Data,
            state: StreamState::MoreData,
            epoch: 1,
            payload_len: 16,
            src_tid: 2,
            counter: 0,
            remote_addr: 128,
        };
        buf.write_header(&h).unwrap();
        assert_eq!(buf.read_header().unwrap(), h);
        assert_eq!(buf.payload().unwrap(), vec![0xAA; 16]);
    }

    #[test]
    fn clear_resets_length_only() {
        let mr = mr(4096);
        let mut buf = Buffer::new(mr, 0, 256);
        buf.push(&[1, 2, 3]).unwrap();
        buf.clear();
        assert_eq!(buf.len(), 0);
        assert_eq!(buf.remaining(), buf.capacity());
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn window_smaller_than_header_panics() {
        let mr = mr(4096);
        let _ = Buffer::new(mr, 0, HEADER_LEN);
    }

    #[test]
    fn pool_hands_out_ascending_offsets_then_recycles_lifo() {
        let pool = BufferPool::carve(mr(4096), 0, 512, 4);
        assert_eq!(pool.capacity(), 4);
        assert_eq!(pool.free_len(), 4);
        let a = pool.try_take().unwrap();
        let b = pool.try_take().unwrap();
        assert_eq!(a.offset(), 0);
        assert_eq!(b.offset(), 512);
        pool.recycle(a);
        // LIFO: the most recently recycled window comes back first.
        assert_eq!(pool.try_take().unwrap().offset(), 0);
    }

    #[test]
    fn pool_take_resets_payload_and_tag() {
        let pool = BufferPool::carve(mr(4096), 0, 512, 1);
        let mut buf = pool.try_take().unwrap();
        buf.push(&[1, 2, 3]).unwrap();
        buf.set_tag(9);
        pool.recycle(buf);
        let again = pool.try_take().unwrap();
        assert_eq!(again.len(), 0);
        assert_eq!(again.tag(), 0);
        assert!(pool.try_take().is_none());
    }

    #[test]
    fn pool_recycle_offset_validates_wire_garbage() {
        let pool = BufferPool::carve(mr(4096), 0, 512, 2);
        let taken = pool.try_take().unwrap();
        assert!(matches!(
            pool.recycle_offset(4000),
            Err(ShuffleError::Corrupt(_))
        ));
        assert!(matches!(
            pool.recycle_offset(usize::MAX - 64),
            Err(ShuffleError::Corrupt(_))
        ));
        pool.recycle_offset(taken.offset()).unwrap();
        assert_eq!(pool.free_len(), 2);
        // Overfilling (a duplicate recycle) is wire garbage too.
        assert!(matches!(
            pool.recycle_offset(0),
            Err(ShuffleError::Corrupt(_))
        ));
    }
}
