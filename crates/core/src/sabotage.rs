//! One-shot protocol saboteurs for the mutation smoke test.
//!
//! Compiled only under the `saboteur` feature, these deliberately break
//! one protocol step at one call site so the mutation suite can prove
//! the auditor catches each class of bug as a *named*
//! [`AuditViolation`](rshuffle_audit::AuditViolation) — never a hang,
//! never a silent pass. A saboteur is armed process-wide and fires
//! exactly once (the first matching call site wins), so a sabotaged run
//! damages a single protocol step and the rest of the run shows how the
//! damage propagates.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The protocol steps a test can sabotage.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Sabotage {
    /// Skip one credit write-back in the RC send/receive design
    /// (§4.4.1). Absolute credit self-heals at the next write-back, so
    /// only the auditor's online gap check can see it.
    SkipCreditWriteback = 0,
    /// Drop one ValidArr announcement in the RDMA Read design
    /// (Alg. 3): the written buffer is never advertised, the receiver's
    /// stall watchdog fires, and finalize names the ring imbalance.
    DropValidArrUpdate = 1,
    /// Announce a `Depleted` counter one below the data messages
    /// actually sent (§4.4.2), so a receiver would terminate early and
    /// silently miss a message.
    UnderreportDepletedCount = 2,
    /// Grant the same remote buffer offset back twice in the RDMA
    /// Write design (§7), inviting the sender to overwrite a buffer the
    /// operator may still be reading.
    DoubleGrant = 3,
    /// Swallow one credit write-back completion on the RC control CQ
    /// without accounting for it — the bug the old
    /// `let _ = ctrl_cq.poll(..)` drain had by construction. The
    /// outstanding-write ledger never drains and end-of-stream reports
    /// a typed stall instead of passing silently.
    SwallowCtrlCompletion = 4,
}

/// Currently armed saboteur, encoded as `discriminant + 1` (0 = none).
static ARMED: AtomicUsize = AtomicUsize::new(0);

/// Arms `s`; the next matching protocol step is sabotaged once.
pub fn arm(s: Sabotage) {
    ARMED.store(s as usize + 1, Ordering::SeqCst);
}

/// Disarms any pending saboteur.
pub fn disarm() {
    ARMED.store(0, Ordering::SeqCst);
}

/// Consumes `s` if it is the armed saboteur. Call sites sabotage their
/// step exactly when this returns true.
pub fn take(s: Sabotage) -> bool {
    ARMED
        .compare_exchange(s as usize + 1, 0, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
}
