//! Error type for the shuffling operators.

use std::fmt;

use rshuffle_verbs::VerbsError;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ShuffleError>;

/// Errors surfaced by the shuffle/receive operators and endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleError {
    /// An underlying verbs operation failed.
    Verbs(VerbsError),
    /// Unreliable transport lost messages and the wait for outstanding
    /// packets timed out; per §4.4.2 the query must be restarted.
    NetworkErrorRestartQuery {
        /// The endpoint id of the source whose messages went missing.
        src: u32,
        /// Messages the source claims to have sent.
        expected: u64,
        /// Messages actually received before the timeout.
        received: u64,
    },
    /// An endpoint made no progress for longer than the stall timeout,
    /// indicating a flow-control protocol failure.
    Stalled(&'static str),
    /// A hardware completion carried an error status.
    CompletionError(&'static str),
    /// Wire data or protocol slot state failed validation (bad header
    /// tag, out-of-range offset, oversized payload). The memory the
    /// query computed over is suspect, so the query restarts — it must
    /// never abort the process.
    Corrupt(String),
    /// The operator or endpoint was misconfigured.
    Config(String),
    /// The recovery orchestrator exhausted a node's per-flow retry
    /// budget: every reconnect attempt within the budget found the
    /// fabric still broken. The caller must either degrade to a
    /// sturdier configuration or give the query up — retrying further
    /// is pointless.
    RetryBudgetExhausted {
        /// The node whose queue pairs kept failing.
        node: usize,
        /// Reconnect attempts made before giving up.
        attempts: u32,
    },
    /// The query's registered-memory requirement can never fit the
    /// scheduler's per-node budget, even running alone — admitting it
    /// would hang forever, so it is rejected up front.
    BudgetImpossible {
        /// Node whose requirement exceeds the budget.
        node: usize,
        /// Bytes the query needs registered on that node.
        required: usize,
        /// The configured per-node budget.
        budget: usize,
    },
}

impl fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShuffleError::Verbs(e) => write!(f, "verbs error: {e}"),
            ShuffleError::NetworkErrorRestartQuery {
                src,
                expected,
                received,
            } => write!(
                f,
                "network error: source endpoint {src} sent {expected} messages but only \
                 {received} arrived; restart the query"
            ),
            ShuffleError::Stalled(what) => write!(f, "endpoint stalled: {what}"),
            ShuffleError::CompletionError(what) => write!(f, "completion error: {what}"),
            ShuffleError::Corrupt(what) => write!(f, "protocol state corrupt: {what}"),
            ShuffleError::Config(msg) => write!(f, "configuration error: {msg}"),
            ShuffleError::RetryBudgetExhausted { node, attempts } => write!(
                f,
                "retry budget exhausted: node {node} still unreachable after \
                 {attempts} reconnect attempts"
            ),
            ShuffleError::BudgetImpossible {
                node,
                required,
                budget,
            } => write!(
                f,
                "registered-memory budget impossible: node {node} needs {required} bytes \
                 but the per-node budget is {budget}"
            ),
        }
    }
}

impl std::error::Error for ShuffleError {}

impl From<VerbsError> for ShuffleError {
    fn from(e: VerbsError) -> Self {
        ShuffleError::Verbs(e)
    }
}
