//! The six shuffling-algorithm designs and their Table 1 properties.
//!
//! Two orthogonal choices (§4.5): the number of endpoints per operator
//! (SE = one shared, ME = one per thread) and the endpoint implementation
//! (SQ/SR = single UD Queue Pair with Send/Receive, MQ/SR = per-peer RC
//! Queue Pairs with Send/Receive, MQ/RD = per-peer RC Queue Pairs with
//! one-sided RDMA Read).

use std::fmt;

/// Endpoints per operator.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum EndpointMode {
    /// All threads share one endpoint ("SE").
    Single,
    /// One endpoint per thread ("ME").
    Multi,
}

/// Endpoint implementation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum EndpointImpl {
    /// Single UD Queue Pair, RDMA Send/Receive ("SQ/SR").
    SqSr,
    /// Per-peer RC Queue Pairs, RDMA Send/Receive ("MQ/SR").
    MqSr,
    /// Per-peer RC Queue Pairs, one-sided RDMA Read ("MQ/RD").
    MqRd,
    /// Per-peer RC Queue Pairs, one-sided RDMA Write ("MQ/WR") — the
    /// extension the paper lists as future work (§7).
    MqWr,
}

/// One of the paper's shuffling-algorithm designs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ShuffleAlgorithm {
    /// Endpoints per operator.
    pub mode: EndpointMode,
    /// Endpoint implementation.
    pub imp: EndpointImpl,
}

impl ShuffleAlgorithm {
    /// MEMQ/RD — multi-endpoint, RDMA Read over RC.
    pub const MEMQ_RD: ShuffleAlgorithm = ShuffleAlgorithm {
        mode: EndpointMode::Multi,
        imp: EndpointImpl::MqRd,
    };
    /// MEMQ/SR — multi-endpoint, Send/Receive over RC.
    pub const MEMQ_SR: ShuffleAlgorithm = ShuffleAlgorithm {
        mode: EndpointMode::Multi,
        imp: EndpointImpl::MqSr,
    };
    /// MESQ/SR — multi-endpoint, Send/Receive over UD (the paper's winner).
    pub const MESQ_SR: ShuffleAlgorithm = ShuffleAlgorithm {
        mode: EndpointMode::Multi,
        imp: EndpointImpl::SqSr,
    };
    /// SEMQ/RD — single-endpoint, RDMA Read over RC.
    pub const SEMQ_RD: ShuffleAlgorithm = ShuffleAlgorithm {
        mode: EndpointMode::Single,
        imp: EndpointImpl::MqRd,
    };
    /// SEMQ/SR — single-endpoint, Send/Receive over RC.
    pub const SEMQ_SR: ShuffleAlgorithm = ShuffleAlgorithm {
        mode: EndpointMode::Single,
        imp: EndpointImpl::MqSr,
    };
    /// SESQ/SR — single-endpoint, Send/Receive over UD.
    pub const SESQ_SR: ShuffleAlgorithm = ShuffleAlgorithm {
        mode: EndpointMode::Single,
        imp: EndpointImpl::SqSr,
    };

    /// The six designs of the paper, in Table 1 order.
    pub const ALL: [ShuffleAlgorithm; 6] = [
        Self::MEMQ_RD,
        Self::MEMQ_SR,
        Self::SEMQ_RD,
        Self::SEMQ_SR,
        Self::MESQ_SR,
        Self::SESQ_SR,
    ];

    /// Parses names like `"MESQ/SR"` (case-insensitive, `/` optional).
    pub fn parse(name: &str) -> Option<Self> {
        let n = name.to_ascii_uppercase().replace('/', "");
        match n.as_str() {
            "MEMQRD" => Some(Self::MEMQ_RD),
            "MEMQSR" => Some(Self::MEMQ_SR),
            "MESQSR" => Some(Self::MESQ_SR),
            "SEMQRD" => Some(Self::SEMQ_RD),
            "SEMQSR" => Some(Self::SEMQ_SR),
            "SESQSR" => Some(Self::SESQ_SR),
            "MEMQWR" => Some(ShuffleAlgorithm {
                mode: EndpointMode::Multi,
                imp: EndpointImpl::MqWr,
            }),
            "SEMQWR" => Some(ShuffleAlgorithm {
                mode: EndpointMode::Single,
                imp: EndpointImpl::MqWr,
            }),
            _ => None,
        }
    }

    /// Endpoints per operator for a fragment with `threads` threads.
    pub fn endpoints(&self, threads: usize) -> usize {
        match self.mode {
            EndpointMode::Single => 1,
            EndpointMode::Multi => threads,
        }
    }

    /// Open connections (Queue Pairs) per node for point-to-point
    /// communication in an `n`-node cluster with `t` threads per fragment
    /// (Table 1, counting one operator's send side).
    pub fn qps_per_node(&self, n: usize, t: usize) -> usize {
        let lanes = self.endpoints(t);
        match self.imp {
            EndpointImpl::SqSr => lanes,
            EndpointImpl::MqSr | EndpointImpl::MqRd | EndpointImpl::MqWr => {
                lanes * n.saturating_sub(1).max(1)
            }
        }
    }

    /// Thread-contention class from Table 1.
    pub fn contention(&self) -> Contention {
        match (self.mode, self.imp) {
            (EndpointMode::Multi, _) => Contention::None,
            (EndpointMode::Single, EndpointImpl::SqSr) => Contention::Excessive,
            (EndpointMode::Single, _) => Contention::Moderate,
        }
    }

    /// Whether the transport guarantees delivery in hardware.
    pub fn reliable_transport(&self) -> bool {
        !matches!(self.imp, EndpointImpl::SqSr)
    }

    /// Whether data moves through one-sided operations.
    pub fn one_sided(&self) -> bool {
        matches!(self.imp, EndpointImpl::MqRd | EndpointImpl::MqWr)
    }

    /// Maximum message size of the transport (Table 1).
    pub fn max_message(&self, mtu: usize, max_rc: usize) -> usize {
        match self.imp {
            EndpointImpl::SqSr => mtu,
            _ => max_rc,
        }
    }
}

/// Thread-contention classes of Table 1.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Contention {
    /// Dedicated endpoints: no contention.
    None,
    /// One endpoint, multiple QPs: moderate contention.
    Moderate,
    /// One endpoint, one QP: excessive contention.
    Excessive,
}

impl fmt::Display for ShuffleAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match self.mode {
            EndpointMode::Single => "SE",
            EndpointMode::Multi => "ME",
        };
        let imp = match self.imp {
            EndpointImpl::SqSr => "SQ/SR",
            EndpointImpl::MqSr => "MQ/SR",
            EndpointImpl::MqRd => "MQ/RD",
            EndpointImpl::MqWr => "MQ/WR",
        };
        write!(f, "{mode}{imp}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_qp_counts() {
        // Table 1, n = 16 nodes, t = 14 threads (QPs for one operator's
        // point-to-point connectivity; peers = n − 1).
        let (n, t) = (16, 14);
        assert_eq!(ShuffleAlgorithm::MEMQ_RD.qps_per_node(n, t), 15 * 14);
        assert_eq!(ShuffleAlgorithm::MEMQ_SR.qps_per_node(n, t), 15 * 14);
        assert_eq!(ShuffleAlgorithm::SEMQ_RD.qps_per_node(n, t), 15);
        assert_eq!(ShuffleAlgorithm::SEMQ_SR.qps_per_node(n, t), 15);
        assert_eq!(ShuffleAlgorithm::MESQ_SR.qps_per_node(n, t), 14);
        assert_eq!(ShuffleAlgorithm::SESQ_SR.qps_per_node(n, t), 1);
    }

    #[test]
    fn table1_contention() {
        assert_eq!(ShuffleAlgorithm::MEMQ_SR.contention(), Contention::None);
        assert_eq!(ShuffleAlgorithm::MESQ_SR.contention(), Contention::None);
        assert_eq!(ShuffleAlgorithm::SEMQ_SR.contention(), Contention::Moderate);
        assert_eq!(ShuffleAlgorithm::SEMQ_RD.contention(), Contention::Moderate);
        assert_eq!(
            ShuffleAlgorithm::SESQ_SR.contention(),
            Contention::Excessive
        );
    }

    #[test]
    fn table1_transport_properties() {
        // UD: half-trip messaging, ≤4 KiB, error control in software.
        assert!(!ShuffleAlgorithm::MESQ_SR.reliable_transport());
        assert_eq!(ShuffleAlgorithm::MESQ_SR.max_message(4096, 1 << 30), 4096);
        // RC: round-trip, up to 1 GiB, error control in hardware.
        assert!(ShuffleAlgorithm::MEMQ_SR.reliable_transport());
        assert_eq!(
            ShuffleAlgorithm::SEMQ_RD.max_message(4096, 1 << 30),
            1 << 30
        );
        // Read is not supported by InfiniBand over UD: no such combination
        // exists in ALL.
        assert!(ShuffleAlgorithm::ALL
            .iter()
            .all(|a| !a.one_sided() || a.reliable_transport()));
    }

    #[test]
    fn parse_round_trips_display() {
        for a in ShuffleAlgorithm::ALL {
            assert_eq!(ShuffleAlgorithm::parse(&a.to_string()), Some(a));
        }
        assert_eq!(
            ShuffleAlgorithm::parse("mesq/sr"),
            Some(ShuffleAlgorithm::MESQ_SR)
        );
        assert!(
            ShuffleAlgorithm::parse("SESQRD").is_none(),
            "UD cannot do RDMA Read"
        );
    }
}
