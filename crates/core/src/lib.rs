//! RDMA-aware data shuffling operators for parallel database systems.
//!
//! A Rust reproduction of Liu, Yin and Blanas, *"Design and Evaluation of
//! an RDMA-aware Data Shuffling Operator for Parallel Database Systems"*
//! (EuroSys 2017), over a simulated InfiniBand fabric
//! ([`rshuffle_simnet`] / [`rshuffle_verbs`]).
//!
//! The crate provides:
//!
//! * the [`TransmissionGroups`] abstraction for repartition / multicast /
//!   broadcast patterns (§4.1),
//! * the thread-safe communication-endpoint abstraction
//!   ([`SendEndpoint`] / [`ReceiveEndpoint`], §4.2) with four
//!   implementations — Send/Receive over RC (§4.4.1), Send/Receive over UD
//!   (§4.4.2), one-sided RDMA Read over RC (§4.4.3) and the future-work
//!   RDMA Write endpoint (§7),
//! * the pull-based, vectorized [`ShuffleOperator`] and
//!   [`ReceiveOperator`] (§4.3),
//! * the [`ShuffleAlgorithm`] design matrix of Table 1 and the
//!   [`Exchange`] builder that wires a cluster-wide shuffle.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use rshuffle::{Exchange, ExchangeConfig, ShuffleAlgorithm};
//! use rshuffle_simnet::{Cluster, DeviceProfile};
//! use rshuffle_verbs::VerbsRuntime;
//!
//! let cluster = Cluster::new(4, DeviceProfile::edr());
//! let runtime = VerbsRuntime::new(cluster);
//! let config = ExchangeConfig::repartition(ShuffleAlgorithm::MESQ_SR, 4, 2);
//! let exchange = Exchange::build(&runtime, &config).unwrap();
//! assert_eq!(exchange.lanes, 2); // multi-endpoint: one lane per thread
//! ```

#![warn(missing_docs)]

pub mod advisor;
pub mod buffer;
pub mod config;
pub mod endpoint;
pub mod error;
pub mod exchange;
pub mod group;
pub mod operator;
pub mod phase;
#[cfg(feature = "saboteur")]
pub mod sabotage;

pub use advisor::{Advice, AdvisorSignals, AlgorithmAdvisor};
pub use buffer::{Buffer, MsgHeader, MsgKind, StreamState, HEADER_LEN};
pub use config::{Contention, EndpointImpl, EndpointMode, ShuffleAlgorithm};
pub use endpoint::{Delivery, EndpointId, ReceiveEndpoint, SendEndpoint};
pub use error::{Result, ShuffleError};
pub use exchange::{Exchange, ExchangeConfig};
pub use group::TransmissionGroups;
pub use phase::{Phase, PhasePolicy, PhaseRunner, PhaseSchedule, HEAVY_SOURCE_FACTOR};
pub use operator::{
    default_partition_hash, CostModel, Operator, ReceiveOperator, RowBatch, ShuffleOperator,
};
