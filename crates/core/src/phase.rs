//! Phase-scheduled all-to-all: contention-free communication rounds.
//!
//! A naive N×N repartition lets every node push to every other node at
//! once; on an oversubscribed fat-tree the shared ingress port of each
//! receiver (and the leaf downlink in front of it) then serves up to
//! N−1 concurrent senders and collapses under incast. Rödiger et al.
//! ("High-Speed Query Processing over High-Speed Networks") keep RDMA
//! shuffles at line rate by scheduling the transfer at the application
//! layer into *phases*: in each round every node sends to exactly one
//! peer and receives from exactly one peer, so no link in the fabric
//! ever carries more than one bulk flow per direction.
//!
//! Two schedule constructions, both pure functions of their inputs
//! (deterministic — same matrix, same schedule):
//!
//! * **Naive** ([`PhasePolicy::Naive`]): the classic Latin-square
//!   rotation, phase `p` pairing `src → (src + p) mod N`. All present
//!   pairs are covered exactly once in at most `N` phases.
//! * **Skew-aware** ([`PhasePolicy::SkewAware`]): heavy *sources*
//!   (row total above [`HEAVY_SOURCE_FACTOR`] × the mean row) are
//!   exempted from the schedule entirely and stream unphased, while the
//!   remaining near-uniform sources follow the rotation. The insight:
//!   source-volume skew creates no ingress contention — one heavy
//!   sender spraying a repartition hash touches every destination port
//!   exactly once at a time — so forcing it through the lockstep
//!   barrier only stretches every round to the heavy row's edge and
//!   serialises the cluster behind the tail. Exempting it adds at most
//!   `k` extra concurrent senders per ingress port (`k` = number of
//!   heavy sources, < N/2 by construction and in practice a handful),
//!   which stays below any realistic incast knee, while the schedule
//!   keeps the remaining (N−k)² flows contention-free. On a uniform
//!   matrix no source is exempt and the schedule degenerates to the
//!   naive rotation.
//!
//! [`PhaseRunner`] executes a schedule at run time: an abortable
//! generation barrier (same shape as `simnet::SimBarrier`, plus an
//! [`abort`](PhaseRunner::abort) escape hatch) that all sender threads
//! cross between rounds, so a fault on any worker releases the whole
//! barrier instead of deadlocking the remaining senders.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_obs::{names, Counter, EventKind, Histogram, Labels, Obs};
use rshuffle_simnet::{Gate, Kernel, NodeId, SimContext, SimDuration};

use crate::error::{Result, ShuffleError};

/// Whether, and how, an [`crate::Exchange`] phase-schedules its
/// all-to-all transfer.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum PhasePolicy {
    /// No phasing: the operator interleaves destinations freely, the
    /// run is byte-identical to the pre-phase code path.
    #[default]
    Off,
    /// Latin-square rotation over the node set (uniform phases).
    Naive,
    /// Latin-square rotation over the *constrained* sources only:
    /// sources whose estimated row total exceeds
    /// [`HEAVY_SOURCE_FACTOR`] × the mean row are exempted and stream
    /// unphased (source skew causes no ingress contention, so phasing
    /// the tail-dominating sender is pure cost).
    SkewAware,
}

/// A source whose estimated row total exceeds this factor times the
/// mean row total is exempted from a [`PhasePolicy::SkewAware`]
/// schedule and transmits unphased. At most `N / factor` sources can
/// exceed the threshold, so the constrained majority always exists.
pub const HEAVY_SOURCE_FACTOR: f64 = 2.0;

/// Phases per barrier crossing (a *super-round*). The cluster-wide
/// barrier exists to bound how far senders drift apart in the
/// schedule: if every sender is within `G − 1` phases of the slowest,
/// an ingress port serves at most `G` bulk senders at once. Crossing
/// the barrier only every `G` phases therefore keeps the port load
/// within any incast knee ≥ `G` while (a) paying the barrier wake only
/// `1/G` as often and (b) letting a lane that ran long in one phase
/// catch up inside the super-round instead of stretching every peer's
/// round to the per-phase maximum. The per-destination endpoint
/// quiesce still paces each phase, so drift inside a super-round is
/// additionally bounded by the send window.
pub const PHASE_GROUP: usize = 3;

impl PhasePolicy {
    /// Parses `"off"`, `"naive"`, `"skew"` / `"skew-aware"`
    /// (case-insensitive).
    pub fn parse(name: &str) -> Option<PhasePolicy> {
        match name.to_ascii_lowercase().as_str() {
            "off" => Some(PhasePolicy::Off),
            "naive" => Some(PhasePolicy::Naive),
            "skew" | "skew-aware" | "skewaware" => Some(PhasePolicy::SkewAware),
            _ => None,
        }
    }

    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PhasePolicy::Off => "off",
            PhasePolicy::Naive => "naive",
            PhasePolicy::SkewAware => "skew-aware",
        }
    }

    /// `true` when the policy actually schedules phases.
    pub fn enabled(&self) -> bool {
        !matches!(self, PhasePolicy::Off)
    }
}

/// One scheduled round: the `(src, dst, bytes)` edges active in it.
/// Within a phase no node appears twice as a source and no node twice
/// as a destination (a partial matching), so every fabric port serves
/// at most one bulk flow per direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Active `(src, dst, estimated bytes)` transfers, sorted by src.
    pub edges: Vec<(NodeId, NodeId, u64)>,
}

impl Phase {
    /// Sum of the phase's edge weights (bytes crossing the fabric).
    pub fn total_bytes(&self) -> u64 {
        self.edges.iter().map(|&(_, _, b)| b).sum()
    }

    /// Heaviest single edge — the phase's *length*: with every edge
    /// running contention-free at line rate, the round ends when its
    /// largest transfer does.
    pub fn max_edge_bytes(&self) -> u64 {
        self.edges.iter().map(|&(_, _, b)| b).max().unwrap_or(0)
    }
}

/// A complete phase schedule for one transmission: an ordered sequence
/// of partial matchings covering every nonzero `(src, dst)` pair of the
/// transfer matrix exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSchedule {
    nodes: usize,
    policy: PhasePolicy,
    phases: Vec<Phase>,
    /// `dest[phase][src]` — the destination `src` serves in `phase`
    /// (`None` when it sits the round out).
    dest: Vec<Vec<Option<NodeId>>>,
    /// Sources exempted from the schedule (heavy rows under
    /// [`PhasePolicy::SkewAware`]); they transmit unphased and never
    /// cross the barrier. Always all-false for the naive rotation.
    free: Vec<bool>,
}

impl PhaseSchedule {
    /// Builds a schedule for the `nodes × nodes` transfer matrix
    /// `bytes` (`bytes[src][dst]`, zero meaning "no transfer"). Self
    /// edges (`src == dst`) are legal — loopback traffic never crosses
    /// the fabric but the operator still sends it somewhere, so it is
    /// scheduled like any other edge.
    ///
    /// Returns a [`ShuffleError::Config`] if `bytes` is not square or
    /// the policy is [`PhasePolicy::Off`] (an Off exchange must not
    /// build a schedule at all — constructing one anyway is a wiring
    /// bug, not a quiet no-op).
    pub fn build(policy: PhasePolicy, bytes: &[Vec<u64>]) -> Result<PhaseSchedule> {
        let nodes = bytes.len();
        if bytes.iter().any(|row| row.len() != nodes) {
            return Err(ShuffleError::Config(format!(
                "phase schedule: transfer matrix must be square ({nodes} rows)"
            )));
        }
        let (phases, free) = match policy {
            PhasePolicy::Off => {
                return Err(ShuffleError::Config(
                    "phase schedule requested with PhasePolicy::Off".to_string(),
                ))
            }
            PhasePolicy::Naive => (naive_phases(bytes), vec![false; nodes]),
            PhasePolicy::SkewAware => skew_aware_phases(bytes),
        };
        let mut dest = vec![vec![None; nodes]; phases.len()];
        for (p, phase) in phases.iter().enumerate() {
            for &(src, dst, _) in &phase.edges {
                dest[p][src] = Some(dst);
            }
        }
        Ok(PhaseSchedule {
            nodes,
            policy,
            phases,
            dest,
            free,
        })
    }

    /// Uniform all-to-all estimate for `nodes` nodes: every ordered
    /// pair (including self) weighted equally. The schedule then covers
    /// the complete matrix, so an operator following it can route any
    /// hash outcome.
    pub fn uniform_bytes(nodes: usize) -> Vec<Vec<u64>> {
        vec![vec![1; nodes]; nodes]
    }

    /// Transfer-matrix estimate from per-source totals (e.g. the
    /// Zipf-skewed per-node volumes of `bench::skew`): a repartition
    /// hash spreads each source's rows uniformly over all
    /// destinations, so row `src` gets `total / nodes` per destination,
    /// clamped to ≥ 1 so every pair stays schedulable.
    pub fn estimate_from_source_totals(totals: &[u64]) -> Vec<Vec<u64>> {
        let nodes = totals.len();
        totals
            .iter()
            .map(|&t| vec![(t / nodes.max(1) as u64).max(1); nodes])
            .collect()
    }

    /// Number of scheduled rounds.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Cluster size the schedule was built for.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Policy that produced the schedule.
    pub fn policy(&self) -> PhasePolicy {
        self.policy
    }

    /// The scheduled rounds, in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Destination `src` serves in round `phase`, if any.
    pub fn dest_of(&self, phase: usize, src: NodeId) -> Option<NodeId> {
        self.dest.get(phase).and_then(|row| row.get(src)).copied().flatten()
    }

    /// `true` when `src` is exempted from the schedule (a heavy source
    /// under [`PhasePolicy::SkewAware`]): it transmits unphased and
    /// must not be counted as a barrier party.
    pub fn is_free(&self, src: NodeId) -> bool {
        self.free.get(src).copied().unwrap_or(false)
    }

    /// The exempted (unphased) sources, in node order.
    pub fn free_sources(&self) -> Vec<NodeId> {
        self.free
            .iter()
            .enumerate()
            .filter_map(|(n, &f)| f.then_some(n))
            .collect()
    }

    /// Length of the longest round (heaviest single edge over all
    /// phases) — what a skew-aware schedule minimises.
    pub fn worst_phase_len(&self) -> u64 {
        self.phases.iter().map(Phase::max_edge_bytes).max().unwrap_or(0)
    }
}

/// Latin-square rotation: phase `p` pairs `src → (src + p) mod N`.
/// Each of the `N` rotations is a perfect matching on the complete
/// graph (with self loops at `p = 0`), restricted here to the pairs
/// actually present in the matrix; rotations with no present pairs are
/// dropped.
fn naive_phases(bytes: &[Vec<u64>]) -> Vec<Phase> {
    let n = bytes.len();
    let mut phases = Vec::new();
    for p in 0..n {
        let mut edges = Vec::new();
        for (src, row) in bytes.iter().enumerate() {
            let dst = (src + p) % n;
            if row[dst] > 0 {
                edges.push((src, dst, row[dst]));
            }
        }
        if !edges.is_empty() {
            phases.push(Phase { edges });
        }
    }
    phases
}

/// Skew-aware construction: exempt heavy sources, rotate the rest.
///
/// Sources whose row total exceeds [`HEAVY_SOURCE_FACTOR`] × the mean
/// (over rows with any traffic) are marked *free*: a barrier schedule
/// would stretch every round to the heavy row's edge and pay the
/// per-round fixed cost `N` times on the critical path, yet a single
/// heavy sender spreads a repartition hash across every destination
/// and never concentrates on one ingress port — phasing it buys
/// nothing. The constrained (near-uniform) sources follow the same
/// Latin-square rotation as the naive schedule, restricted to their
/// rows, so the bulk of the matrix stays contention-free while each
/// free source adds at most one extra flow to any port. A uniform
/// matrix exempts nobody and the result equals the naive rotation.
fn skew_aware_phases(bytes: &[Vec<u64>]) -> (Vec<Phase>, Vec<bool>) {
    let n = bytes.len();
    let totals: Vec<u64> = bytes.iter().map(|row| row.iter().sum()).collect();
    let active = totals.iter().filter(|&&t| t > 0).count();
    let mean = if active == 0 {
        0.0
    } else {
        totals.iter().sum::<u64>() as f64 / active as f64
    };
    let free: Vec<bool> = totals
        .iter()
        .map(|&t| mean > 0.0 && (t as f64) > HEAVY_SOURCE_FACTOR * mean)
        .collect();
    let mut phases = Vec::new();
    for p in 0..n {
        let mut edges = Vec::new();
        for (src, row) in bytes.iter().enumerate() {
            if free[src] {
                continue;
            }
            let dst = (src + p) % n;
            if row[dst] > 0 {
                edges.push((src, dst, row[dst]));
            }
        }
        if !edges.is_empty() {
            phases.push(Phase { edges });
        }
    }
    (phases, free)
}

/// Runtime coordinator for a phased transmission: all sender threads of
/// the exchange cross a generation barrier between rounds, so round
/// `p + 1` traffic never enters the fabric while round `p` is still
/// draining. The barrier is *abortable*: a worker that hits an error
/// calls [`abort`](PhaseRunner::abort), which releases every current
/// and future waiter with a typed error instead of leaving the
/// survivors parked forever — fault-injected phased runs must fail the
/// query, not hang the simulation.
pub struct PhaseRunner {
    schedule: PhaseSchedule,
    parties: usize,
    timeout: SimDuration,
    state: Mutex<BarrierState>,
    aborted: AtomicBool,
    obs: Option<PhaseObs>,
}

struct BarrierState {
    arrived: usize,
    gate: Arc<Gate<()>>,
}

struct PhaseObs {
    obs: Arc<Obs>,
    phases_run: Arc<Counter>,
    barrier_wait: Arc<Histogram>,
}

/// Barrier wake handoff, matching `simnet::SimBarrier`.
const BARRIER_WAKE_LATENCY: SimDuration = SimDuration::from_nanos(100);

impl PhaseRunner {
    /// Builds a runner for `schedule`, crossed by `parties` sender
    /// threads (every lane of every sending node). `timeout` bounds a
    /// single barrier wait; a thread that waits longer aborts the
    /// whole runner (some peer died without reporting).
    pub fn new(
        kernel: &Kernel,
        schedule: PhaseSchedule,
        parties: usize,
        timeout: SimDuration,
    ) -> Arc<PhaseRunner> {
        let gate = Arc::new(Gate::new(kernel, BARRIER_WAKE_LATENCY));
        Arc::new(PhaseRunner {
            schedule,
            parties: parties.max(1),
            timeout,
            state: Mutex::new(BarrierState { arrived: 0, gate }),
            aborted: AtomicBool::new(false),
            obs: None,
        })
    }

    /// As [`PhaseRunner::new`], publishing `exchange.phases_run` /
    /// `exchange.phase_barrier_wait_ns` and per-phase trace instants
    /// into `obs`.
    pub fn with_obs(
        kernel: &Kernel,
        schedule: PhaseSchedule,
        parties: usize,
        timeout: SimDuration,
        obs: Arc<Obs>,
    ) -> Arc<PhaseRunner> {
        let gate = Arc::new(Gate::new(kernel, BARRIER_WAKE_LATENCY));
        let phase_obs = PhaseObs {
            phases_run: obs.metrics.counter(names::EXCHANGE_PHASES_RUN, Labels::GLOBAL),
            barrier_wait: obs
                .metrics
                .histogram(names::EXCHANGE_PHASE_BARRIER_WAIT_NS, Labels::GLOBAL),
            obs,
        };
        Arc::new(PhaseRunner {
            schedule,
            parties: parties.max(1),
            timeout,
            state: Mutex::new(BarrierState { arrived: 0, gate }),
            aborted: AtomicBool::new(false),
            obs: Some(phase_obs),
        })
    }

    /// The schedule being executed.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// Sender threads expected at every barrier crossing.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks until all parties have arrived, then releases everyone
    /// into round `phase`. Returns an error (after waking all peers) if
    /// the runner was aborted or the wait exceeded the timeout.
    pub fn wait(&self, sim: &SimContext, phase: usize) -> Result<()> {
        if self.aborted.load(Ordering::Acquire) {
            return Err(ShuffleError::Stalled("phase barrier aborted"));
        }
        let started = sim.now();
        let gate = {
            let mut st = self.state.lock();
            st.arrived += 1;
            if st.arrived == self.parties {
                st.arrived = 0;
                let full = std::mem::replace(
                    &mut st.gate,
                    Arc::new(Gate::new(sim.kernel(), BARRIER_WAKE_LATENCY)),
                );
                for _ in 0..self.parties - 1 {
                    full.push(());
                }
                None
            } else {
                Some(st.gate.clone())
            }
        };
        if let Some(gate) = gate {
            match gate.recv_timeout(sim, self.timeout) {
                rshuffle_simnet::RecvTimeout::Value(()) => {}
                rshuffle_simnet::RecvTimeout::TimedOut => {
                    self.abort();
                    return Err(ShuffleError::Stalled("phase barrier timed out"));
                }
            }
        }
        if self.aborted.load(Ordering::Acquire) {
            return Err(ShuffleError::Stalled("phase barrier aborted"));
        }
        if let Some(po) = &self.obs {
            po.phases_run.inc();
            po.barrier_wait
                .record(sim.now().as_nanos().saturating_sub(started.as_nanos()));
            po.obs.recorder.event(
                sim.node() as u32,
                sim.id().track(),
                sim.now().as_nanos(),
                EventKind::PhaseBegin,
                phase as u64,
            );
        }
        Ok(())
    }

    /// Aborts the runner: wakes every thread currently parked at the
    /// barrier and turns every future [`wait`](PhaseRunner::wait) into
    /// an immediate error. Idempotent.
    pub fn abort(&self) {
        if self.aborted.swap(true, Ordering::AcqRel) {
            return;
        }
        let st = self.state.lock();
        for _ in 0..self.parties {
            st.gate.push(());
        }
    }

    /// `true` once any worker has aborted the runner.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_set(s: &PhaseSchedule) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<(NodeId, NodeId)> = s
            .phases()
            .iter()
            .flat_map(|p| p.edges.iter().map(|&(s, d, _)| (s, d)))
            .collect();
        v.sort_unstable();
        v
    }

    /// Builds or panics — keeps the data-path unwrap/expect lint clean.
    fn build(policy: PhasePolicy, bytes: &[Vec<u64>]) -> PhaseSchedule {
        match PhaseSchedule::build(policy, bytes) {
            Ok(s) => s,
            Err(e) => panic!("schedule must build: {e}"),
        }
    }

    #[test]
    fn naive_covers_complete_matrix_once() {
        let n = 5;
        let s = build(PhasePolicy::Naive, &PhaseSchedule::uniform_bytes(n));
        assert_eq!(s.num_phases(), n);
        let pairs = pair_set(&s);
        assert_eq!(pairs.len(), n * n);
        let mut deduped = pairs.clone();
        deduped.dedup();
        assert_eq!(pairs, deduped, "every pair exactly once");
    }

    #[test]
    fn phases_are_partial_matchings() {
        let mut bytes = PhaseSchedule::uniform_bytes(6);
        bytes[0][3] = 1000;
        bytes[2][3] = 400;
        for policy in [PhasePolicy::Naive, PhasePolicy::SkewAware] {
            let s = build(policy, &bytes);
            for phase in s.phases() {
                let mut srcs: Vec<_> = phase.edges.iter().map(|e| e.0).collect();
                let mut dsts: Vec<_> = phase.edges.iter().map(|e| e.1).collect();
                srcs.sort_unstable();
                dsts.sort_unstable();
                let (ls, ld) = (srcs.len(), dsts.len());
                srcs.dedup();
                dsts.dedup();
                assert_eq!(ls, srcs.len(), "{policy:?}: src repeated in a phase");
                assert_eq!(ld, dsts.len(), "{policy:?}: dst repeated in a phase");
            }
        }
    }

    #[test]
    fn skew_aware_exempts_heavy_sources_and_rotates_the_rest() {
        let mut bytes = PhaseSchedule::uniform_bytes(8);
        bytes[1][4] = 1 << 20;
        bytes[1][5] = 1 << 19;
        bytes[6][4] = 1 << 18;
        let naive = build(PhasePolicy::Naive, &bytes);
        let skew = build(PhasePolicy::SkewAware, &bytes);
        // Row 1 dominates the matrix and is exempted; row 6's bump stays
        // under HEAVY_SOURCE_FACTOR × mean and remains constrained.
        assert_eq!(skew.free_sources(), vec![1]);
        assert!(!skew.is_free(6));
        // Scheduled pairs = all present pairs minus the free source's rows.
        let expected: Vec<(NodeId, NodeId)> = pair_set(&naive)
            .into_iter()
            .filter(|&(s, _)| !skew.is_free(s))
            .collect();
        assert_eq!(pair_set(&skew), expected, "constrained pairs covered once");
        // With the heavy row out of the schedule, no phase ever waits on it.
        assert!(skew.worst_phase_len() <= naive.worst_phase_len());
        assert_eq!(skew.worst_phase_len(), 1 << 18);
    }

    #[test]
    fn skew_aware_on_uniform_matrix_equals_naive() {
        let bytes = PhaseSchedule::uniform_bytes(6);
        let naive = build(PhasePolicy::Naive, &bytes);
        let skew = build(PhasePolicy::SkewAware, &bytes);
        assert!(skew.free_sources().is_empty());
        assert_eq!(naive.phases(), skew.phases());
    }

    #[test]
    fn off_policy_refuses_to_build() {
        let err = PhaseSchedule::build(PhasePolicy::Off, &PhaseSchedule::uniform_bytes(2));
        assert!(matches!(err, Err(ShuffleError::Config(_))));
    }

    #[test]
    fn dest_of_matches_edges() {
        let s = build(PhasePolicy::Naive, &PhaseSchedule::uniform_bytes(4));
        for (p, phase) in s.phases().iter().enumerate() {
            for &(src, dst, _) in &phase.edges {
                assert_eq!(s.dest_of(p, src), Some(dst));
            }
        }
        assert_eq!(s.dest_of(99, 0), None);
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in [PhasePolicy::Off, PhasePolicy::Naive, PhasePolicy::SkewAware] {
            assert_eq!(PhasePolicy::parse(p.label()), Some(p));
        }
        assert_eq!(PhasePolicy::parse("bogus"), None);
    }
}
