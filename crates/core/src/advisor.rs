//! Adaptive Exchange selection: picks a shuffle design (and phase
//! policy) per query from *observable* signals only.
//!
//! The paper's evaluation (Figures 9–13) shows no design dominates:
//! RDMA READ wins small clusters with big messages, the UD design wins
//! at scale and under memory pressure, single-endpoint variants trade
//! throughput for Queue-Pair state. The advisor encodes those crossovers
//! as rules over signals a planner can actually see *before* running
//! the query — cluster shape, message size, fan-out, co-runner load,
//! registered-memory headroom, topology oversubscription — and returns
//! a short ranked list of finalists. Callers that can afford it (the
//! `adaptive` bench) break ties with a one-shot calibrate-style
//! microprobe over the finalists; callers that cannot just take
//! [`Advice::pick`].
//!
//! Every rule that fires leaves a `(signal, decision)` line in
//! [`Advice::rationale`], so `diag` can dump the full signal → decision
//! table.

use crate::config::{EndpointImpl, EndpointMode, ShuffleAlgorithm};
use crate::phase::PhasePolicy;

/// The §7 one-sided WRITE variant of MEMQ (not one of the six named
/// constants, so spelled out rather than parsed on the advice path).
const MEMQ_WR: ShuffleAlgorithm = ShuffleAlgorithm {
    mode: EndpointMode::Multi,
    imp: EndpointImpl::MqWr,
};

/// Observable inputs to the advisor. Everything here is known before
/// the query transmits a single row: shape from the plan, load from the
/// scheduler, topology from the fabric description.
#[derive(Clone, Debug)]
pub struct AdvisorSignals {
    /// Cluster size (nodes).
    pub nodes: usize,
    /// Worker threads per node.
    pub threads: usize,
    /// Configured message size for the RC designs (bytes).
    pub message_size: usize,
    /// Destinations per sending node (N for a repartition).
    pub fanout: usize,
    /// Any transmission group with more than one member (multicast)?
    pub broadcast: bool,
    /// Other queries running or queued on the same scheduler.
    pub co_runners: usize,
    /// Smallest per-node registered-memory headroom under the
    /// scheduler's budget, in bytes (`None` = ungoverned).
    pub mem_headroom: Option<usize>,
    /// Topology oversubscription ratio (1.0 = full bisection).
    pub oversubscription: f64,
    /// Does the fabric model incast collapse on congested ports?
    pub incast: bool,
    /// Declared skew of the per-node send volumes
    /// (max / mean, 1.0 = uniform; from the plan's statistics).
    pub skew: f64,
}

impl AdvisorSignals {
    /// Uniform, unloaded, full-bisection baseline for `nodes` ×
    /// `threads` with `message_size`-byte messages.
    pub fn baseline(nodes: usize, threads: usize, message_size: usize) -> AdvisorSignals {
        AdvisorSignals {
            nodes,
            threads,
            message_size,
            fanout: nodes,
            broadcast: false,
            co_runners: 0,
            mem_headroom: None,
            oversubscription: 1.0,
            incast: false,
            skew: 1.0,
        }
    }
}

/// The advisor's output: ranked finalists plus the phase policy and the
/// signal → decision table that produced them.
#[derive(Clone, Debug)]
pub struct Advice {
    /// Candidate designs, rules-best first. Never empty; a microprobe
    /// may reorder it, [`Advice::pick`] takes the head.
    pub ranked: Vec<ShuffleAlgorithm>,
    /// Phase policy to run the winner under.
    pub phase: PhasePolicy,
    /// `(signal, decision)` lines, in firing order.
    pub rationale: Vec<(String, String)>,
}

impl Advice {
    /// The rules-based pick (the head of [`Advice::ranked`]).
    pub fn pick(&self) -> ShuffleAlgorithm {
        self.ranked[0]
    }
}

/// Scale at which Queue-Pair state (one QP per thread pair for the ME
/// RC designs) starts to dominate: past this the NIC context cache
/// thrashes and the connectionless UD design pulls ahead (Figure 13).
const LARGE_CLUSTER: usize = 48;

/// Message size past which one-sided READ amortizes its descriptor
/// round trip and beats Send/Receive on small clusters (Figure 9a).
const LARGE_MESSAGE: usize = 8 * 1024;

/// Per-node registered memory below which the RC designs' per-peer
/// pools no longer fit comfortably and the MTU-pooled UD design is the
/// safe choice.
const TIGHT_HEADROOM: usize = 8 << 20;

/// The stateless rule engine.
pub struct AlgorithmAdvisor;

impl AlgorithmAdvisor {
    /// Ranks the shuffle designs for `signals`. Pure and deterministic:
    /// same signals, same advice.
    pub fn advise(signals: &AdvisorSignals) -> Advice {
        let s = signals;
        let mut why: Vec<(String, String)> = Vec::new();

        // Multicast first: the UD transport replicates a datagram to a
        // group in one send, the RC designs send per member.
        if s.broadcast {
            why.push((
                "broadcast groups".to_string(),
                "UD multicast replicates in one send; RC designs pay per member".to_string(),
            ));
            return Advice {
                ranked: vec![
                    ShuffleAlgorithm::MESQ_SR,
                    ShuffleAlgorithm::SESQ_SR,
                    ShuffleAlgorithm::MEMQ_SR,
                ],
                // Phasing needs singleton groups; never under multicast.
                phase: PhasePolicy::Off,
                rationale: why,
            };
        }

        let mem_tight = s.mem_headroom.is_some_and(|h| h < TIGHT_HEADROOM) || s.co_runners >= 2;
        let ranked = if s.nodes >= LARGE_CLUSTER {
            why.push((
                format!("{} nodes ≥ {LARGE_CLUSTER}", s.nodes),
                "QP state scales per peer for RC; connectionless UD wins at scale".to_string(),
            ));
            vec![
                ShuffleAlgorithm::MESQ_SR,
                ShuffleAlgorithm::SESQ_SR,
                ShuffleAlgorithm::MEMQ_SR,
            ]
        } else if mem_tight {
            why.push((
                match s.mem_headroom {
                    Some(h) if h < TIGHT_HEADROOM => {
                        format!("{} B headroom < {TIGHT_HEADROOM} B", h)
                    }
                    _ => format!("{} co-runners", s.co_runners),
                },
                "registered memory is contended; prefer the MTU-pooled UD designs".to_string(),
            ));
            vec![
                ShuffleAlgorithm::MESQ_SR,
                ShuffleAlgorithm::SESQ_SR,
                ShuffleAlgorithm::SEMQ_SR,
            ]
        } else if s.message_size >= LARGE_MESSAGE {
            why.push((
                format!("{} B messages ≥ {LARGE_MESSAGE} B", s.message_size),
                "one-sided READ amortizes its descriptor round trip on big messages".to_string(),
            ));
            vec![
                ShuffleAlgorithm::MEMQ_RD,
                MEMQ_WR,
                ShuffleAlgorithm::MEMQ_SR,
            ]
        } else if s.threads >= 8 && s.nodes <= 16 {
            why.push((
                format!("{} threads on {} nodes", s.threads, s.nodes),
                "send-queue contention punishes single-endpoint designs; go multi-endpoint"
                    .to_string(),
            ));
            vec![
                ShuffleAlgorithm::MEMQ_SR,
                ShuffleAlgorithm::MEMQ_RD,
                ShuffleAlgorithm::MESQ_SR,
            ]
        } else {
            why.push((
                format!(
                    "{} nodes, {} threads, {} B messages",
                    s.nodes, s.threads, s.message_size
                ),
                "small uncontended cluster; RC Send/Receive is the balanced default".to_string(),
            ));
            vec![
                ShuffleAlgorithm::MEMQ_SR,
                ShuffleAlgorithm::MESQ_SR,
                ShuffleAlgorithm::MEMQ_RD,
            ]
        };

        // Phase policy: scheduled rounds only pay off when the fabric
        // actually collapses under fan-in — an oversubscribed tree with
        // incast modeled. On a work-conserving full-bisection fabric a
        // barrier is pure overhead.
        let phase = if s.incast && s.oversubscription > 1.0 {
            if s.skew > 1.25 {
                why.push((
                    format!(
                        "incast on {:.1}:1 tree, skew {:.2}",
                        s.oversubscription, s.skew
                    ),
                    "phase the all-to-all; balance rounds around the declared skew".to_string(),
                ));
                PhasePolicy::SkewAware
            } else {
                why.push((
                    format!("incast on {:.1}:1 tree", s.oversubscription),
                    "phase the all-to-all in rotation order".to_string(),
                ));
                PhasePolicy::Naive
            }
        } else {
            why.push((
                if s.incast {
                    "full-bisection fabric".to_string()
                } else {
                    "no incast collapse modeled".to_string()
                },
                "unphased; the fabric is work-conserving so barriers only cost".to_string(),
            ));
            PhasePolicy::Off
        };

        // A phased transfer needs endpoints that can actually drain at
        // a phase boundary. The UD impl quiesces its send ring per
        // phase (`sr_ud::quiesce_dest`); the RC impls have no
        // phase-boundary drain yet, so their residue leaks past the
        // schedule and re-creates the very fan-in the phases were built
        // to remove — at fabric-bound volumes they measurably lose to
        // the drainable designs. Restrict the finalists accordingly.
        let ranked = if phase.enabled() {
            let ud: Vec<ShuffleAlgorithm> = ranked
                .iter()
                .copied()
                .filter(|a| peer_independent_state(*a))
                .collect();
            why.push((
                "phased transfer".to_string(),
                "only the UD endpoints drain at phase boundaries; RC residue defeats the schedule"
                    .to_string(),
            ));
            if ud.is_empty() {
                vec![ShuffleAlgorithm::MESQ_SR, ShuffleAlgorithm::SESQ_SR]
            } else {
                ud
            }
        } else {
            ranked
        };

        Advice {
            ranked,
            phase,
            rationale: why,
        }
    }

    /// Renders the signal → decision table of `advice` for the `diag`
    /// tool (one `signal | decision` line per fired rule, then the
    /// ranking).
    pub fn table(signals: &AdvisorSignals, advice: &Advice) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "signals: nodes={} threads={} msg={}B fanout={} broadcast={} \
             co-runners={} headroom={} oversub={:.1} incast={} skew={:.2}\n",
            signals.nodes,
            signals.threads,
            signals.message_size,
            signals.fanout,
            signals.broadcast,
            signals.co_runners,
            signals
                .mem_headroom
                .map_or("none".to_string(), |h| format!("{h}B")),
            signals.oversubscription,
            signals.incast,
            signals.skew,
        ));
        for (signal, decision) in &advice.rationale {
            out.push_str(&format!("  {signal:<40} -> {decision}\n"));
        }
        let names: Vec<String> = advice.ranked.iter().map(|a| a.to_string()).collect();
        out.push_str(&format!(
            "  ranking: {} (phase: {})\n",
            names.join(" > "),
            advice.phase.label()
        ));
        out
    }
}

/// True when `algorithm` keeps per-node state independent of the peer
/// count (the UD designs) — the property the memory and scale rules key
/// on.
pub fn peer_independent_state(algorithm: ShuffleAlgorithm) -> bool {
    algorithm.imp == EndpointImpl::SqSr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_clusters_go_connectionless() {
        let s = AdvisorSignals::baseline(128, 8, 2048);
        let advice = AlgorithmAdvisor::advise(&s);
        assert_eq!(advice.pick(), ShuffleAlgorithm::MESQ_SR);
        assert!(peer_independent_state(advice.pick()));
        assert_eq!(advice.phase, PhasePolicy::Off);
    }

    #[test]
    fn big_messages_on_small_clusters_go_read() {
        let s = AdvisorSignals::baseline(8, 4, 64 * 1024);
        let advice = AlgorithmAdvisor::advise(&s);
        assert_eq!(advice.pick(), ShuffleAlgorithm::MEMQ_RD);
    }

    #[test]
    fn memory_pressure_prefers_ud() {
        let mut s = AdvisorSignals::baseline(16, 4, 16 * 1024);
        s.mem_headroom = Some(1 << 20);
        let advice = AlgorithmAdvisor::advise(&s);
        assert!(peer_independent_state(advice.pick()));
        // Without the pressure the same shape would pick READ.
        s.mem_headroom = None;
        assert_eq!(
            AlgorithmAdvisor::advise(&s).pick(),
            ShuffleAlgorithm::MEMQ_RD
        );
    }

    #[test]
    fn co_runners_count_as_pressure() {
        let mut s = AdvisorSignals::baseline(16, 4, 16 * 1024);
        s.co_runners = 3;
        assert!(peer_independent_state(AlgorithmAdvisor::advise(&s).pick()));
    }

    #[test]
    fn broadcast_forces_ud_and_disables_phasing() {
        let mut s = AdvisorSignals::baseline(8, 4, 2048);
        s.broadcast = true;
        s.incast = true;
        s.oversubscription = 4.0;
        let advice = AlgorithmAdvisor::advise(&s);
        assert_eq!(advice.pick(), ShuffleAlgorithm::MESQ_SR);
        assert_eq!(advice.phase, PhasePolicy::Off);
    }

    #[test]
    fn incast_with_skew_phases_skew_aware() {
        let mut s = AdvisorSignals::baseline(128, 8, 2048);
        s.oversubscription = 4.0;
        s.incast = true;
        s.skew = 2.0;
        let advice = AlgorithmAdvisor::advise(&s);
        assert_eq!(advice.phase, PhasePolicy::SkewAware);
        s.skew = 1.0;
        assert_eq!(AlgorithmAdvisor::advise(&s).phase, PhasePolicy::Naive);
        s.incast = false;
        assert_eq!(AlgorithmAdvisor::advise(&s).phase, PhasePolicy::Off);
    }

    #[test]
    fn phased_advice_restricts_finalists_to_drainable_endpoints() {
        // Big messages on a small congested cluster: the message-size
        // rule ranks the RC one-sided designs, but once the phase rule
        // fires every finalist must be able to drain at a phase
        // boundary — only the UD impls can today.
        let mut s = AdvisorSignals::baseline(8, 4, 64 * 1024);
        s.oversubscription = 4.0;
        s.incast = true;
        s.skew = 2.0;
        let advice = AlgorithmAdvisor::advise(&s);
        assert_eq!(advice.phase, PhasePolicy::SkewAware);
        assert!(!advice.ranked.is_empty());
        assert!(advice.ranked.iter().all(|&a| peer_independent_state(a)));
        // Unphased, the same shape keeps its RC ranking.
        s.incast = false;
        assert_eq!(
            AlgorithmAdvisor::advise(&s).pick(),
            ShuffleAlgorithm::MEMQ_RD
        );
    }

    #[test]
    fn advice_is_deterministic_and_tabulable() {
        let s = AdvisorSignals::baseline(64, 8, 4096);
        let a = AlgorithmAdvisor::advise(&s);
        let b = AlgorithmAdvisor::advise(&s);
        assert_eq!(a.ranked, b.ranked);
        assert_eq!(a.phase, b.phase);
        let table = AlgorithmAdvisor::table(&s, &a);
        assert!(table.contains("ranking:"));
        assert!(table.contains("->"));
    }
}
