//! One-sided RDMA Write over the Reliable Connection service.
//!
//! This endpoint is the extension the paper's §7 lists as future work
//! ("we plan to implement an endpoint based on the RDMA Write primitive to
//! evaluate its performance"). It inverts the RDMA Read design of §4.4.3:
//! the **receiver** owns the data buffers and stays passive; the sender
//! pushes payloads directly into granted remote buffers with RDMA Write and
//! then announces them through the receiver's `ValidArr` ring. Buffer
//! grants flow back through a `FreeArr`-style ring at the sender.
//!
//! Compared to RDMA Read, the sender's *staging* buffer is reusable as soon
//! as its own write completes — no remote consumption round trip — but
//! every multicast destination costs a full extra data transmission, and
//! flow control stalls when a receiver is slow to re-grant buffers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rshuffle_audit::{AuditHandle, BufId, RingKey, RingKind};
use rshuffle_simnet::{NodeId, SimContext, SimDuration};
use rshuffle_verbs::{
    Completion, CompletionQueue, Context, MemoryRegion, QueuePair, RemoteAddr, WcOpcode, WcStatus,
};

use crate::buffer::{Buffer, MsgHeader, MsgKind, StreamState};
use crate::endpoint::{
    audit_handle, buf_id, Backoff, CqScratch, Delivery, EndpointId, ReceiveEndpoint, RecvObs,
    SendEndpoint, SendObs, CQ_BATCH,
};
use crate::error::{Result, ShuffleError};

/// Audit identity of a ring from the remote address the peer shared out
/// of band (the owning side derives the same key from its own memory
/// region, so both sides feed one ring record).
fn ring_key(addr: &RemoteAddr) -> RingKey {
    RingKey {
        rkey: addr.rkey,
        base: addr.offset as u64,
    }
}

/// Tuning knobs for the RDMA Write endpoint.
#[derive(Clone, Debug)]
pub struct WrRcConfig {
    /// Transmission buffer window (header + payload).
    pub message_size: usize,
    /// Staging/remote buffers per peer.
    pub buffers_per_peer: usize,
    /// Polling granularity.
    pub poll_interval: SimDuration,
    /// Give up with [`ShuffleError::Stalled`] after this long without
    /// progress.
    pub stall_timeout: SimDuration,
    /// Flow epoch stamped on every outgoing header and required of every
    /// accepted arrival. The recovery orchestrator bumps this on partial
    /// retries so leftovers of the failed attempt are fenced off; healthy
    /// runs stay at 0.
    pub epoch: u16,
}

impl Default for WrRcConfig {
    fn default() -> Self {
        WrRcConfig {
            message_size: 64 * 1024,
            buffers_per_peer: 2,
            poll_interval: SimDuration::from_nanos(400),
            stall_timeout: SimDuration::from_millis(500),
            epoch: 0,
        }
    }
}

/// What a sender needs to push data into a [`WrRcReceiveEndpoint`].
#[derive(Copy, Clone, Debug)]
pub struct WrReceiverDescriptor {
    /// The receiving endpoint's id.
    pub endpoint: EndpointId,
    /// Node the receiver lives on.
    pub node: NodeId,
    /// rkey of the receiver's data pool.
    pub pool_rkey: u32,
    /// The sender's ring inside the receiver's `ValidArr`.
    pub valid_ring: RemoteAddr,
    /// Ring capacity on both sides.
    pub ring_cap: usize,
}

/// SEND endpoint: pushes payloads into remote buffers with RDMA Write.
pub struct WrRcSendEndpoint {
    id: EndpointId,
    peer_index: HashMap<NodeId, usize>,
    qps: Vec<QueuePair>,
    send_cq: CompletionQueue,
    /// Reusable scratch for batched send-CQ drains.
    send_scratch: CqScratch,
    /// Local staging buffers the operators fill.
    pool_mr: MemoryRegion,
    message_size: usize,
    ring_cap: usize,
    /// Grant rings: the receiver on peer `i` RDMA-Writes offsets of its
    /// free remote buffers into ring `i` (offset + 1; zero = empty).
    grant_arr: MemoryRegion,
    state: Mutex<WrSendState>,
    scratch: MemoryRegion,
    wr_seq: AtomicU64,
    post_lock: rshuffle_simnet::SimMutex<()>,
    obs: SendObs,
    audit: AuditHandle,
    cfg: WrRcConfig,
    setup_cost: SimDuration,
}

struct WrSendState {
    grant_cons: Vec<u64>,
    valid_prod: Vec<u64>,
    descriptors: Vec<Option<WrReceiverDescriptor>>,
    /// Remaining write completions per in-flight staging buffer.
    outstanding: HashMap<u64, u32>,
    free: Vec<Buffer>,
}

impl WrRcSendEndpoint {
    /// Creates the endpoint with its staging pool, grant rings and per-peer
    /// QPs.
    pub fn new(ctx: &Context, id: EndpointId, peers: Vec<NodeId>, cfg: WrRcConfig) -> Self {
        assert!(!peers.is_empty(), "send endpoint needs at least one peer");
        let send_cq = ctx.create_cq();
        let qps: Vec<QueuePair> = peers
            .iter()
            .map(|_| ctx.create_qp(rshuffle_verbs::QpType::Rc, send_cq.clone(), send_cq.clone()))
            .collect();
        let buffers = cfg.buffers_per_peer * peers.len();
        let ring_cap = cfg.buffers_per_peer + 2;
        let pool_bytes = cfg.message_size * buffers;
        let pool_mr = ctx.register_untimed(pool_bytes);
        let grant_arr = ctx.register_untimed(8 * ring_cap * peers.len());
        let free = (0..buffers)
            .map(|i| Buffer::new(pool_mr.clone(), i * cfg.message_size, cfg.message_size))
            .collect();
        let profile = ctx.profile();
        let setup_cost = profile.endpoint_setup
            + profile.rc_qp_setup * peers.len() as u64
            + profile.mr_register_time(pool_bytes + 8 * ring_cap * peers.len());
        let n = peers.len();
        let peer_index = peers.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let audit = audit_handle(ctx);
        for pi in 0..n {
            audit.ring(
                RingKey {
                    rkey: grant_arr.rkey(),
                    base: (8 * ring_cap * pi) as u64,
                },
                RingKind::Grant,
                ring_cap as u64,
            );
        }
        WrRcSendEndpoint {
            id,
            peer_index,
            qps,
            send_cq,
            send_scratch: CqScratch::new(),
            pool_mr,
            message_size: cfg.message_size,
            ring_cap,
            grant_arr,
            state: Mutex::new(WrSendState {
                grant_cons: vec![0; n],
                valid_prod: vec![0; n],
                descriptors: vec![None; n],
                outstanding: HashMap::new(),
                free,
            }),
            scratch: ctx.register_untimed(64 * 8),
            wr_seq: AtomicU64::new(0),
            post_lock: rshuffle_simnet::SimMutex::new(
                ctx.runtime().kernel(),
                (),
                SimDuration::from_nanos(60),
            ),
            obs: SendObs::new(ctx, id),
            audit,
            cfg,
            setup_cost,
        }
    }

    /// The QP facing `peer` (for wiring).
    pub fn qp_for(&self, peer: NodeId) -> &QueuePair {
        &self.qps[self.peer_index[&peer]]
    }

    /// Where the receiver on `peer` should RDMA-Write its buffer grants.
    pub fn free_ring_for(&self, peer: NodeId) -> RemoteAddr {
        let pi = self.peer_index[&peer];
        RemoteAddr {
            node: self.grant_arr.node(),
            rkey: self.grant_arr.rkey(),
            offset: 8 * self.ring_cap * pi,
        }
    }

    /// Wires the receiver descriptor for `peer`.
    pub fn set_descriptor(&self, peer: NodeId, desc: WrReceiverDescriptor) {
        let pi = self.peer_index[&peer];
        assert_eq!(desc.ring_cap, self.ring_cap, "ring capacities must agree");
        self.audit.ring(
            ring_key(&desc.valid_ring),
            RingKind::ValidArr,
            desc.ring_cap as u64,
        );
        self.state.lock().descriptors[pi] = Some(desc);
    }

    /// Seeds the grant ring for `peer` with the receiver's initial buffer
    /// offsets (out-of-band bootstrap, before any traffic).
    ///
    /// # Errors
    ///
    /// [`ShuffleError::Config`] if `peer` is unknown;
    /// [`ShuffleError::Corrupt`] if an offset lands outside the ring.
    pub fn bootstrap_grants(&self, peer: NodeId, offsets: &[u64]) -> Result<()> {
        let pi = *self
            .peer_index
            .get(&peer)
            .ok_or_else(|| ShuffleError::Config(format!("unknown grant peer {peer}")))?;
        if offsets.len() > self.ring_cap {
            return Err(ShuffleError::Config(format!(
                "{} initial grants exceed ring capacity {}",
                offsets.len(),
                self.ring_cap
            )));
        }
        let key = RingKey {
            rkey: self.grant_arr.rkey(),
            base: (8 * self.ring_cap * pi) as u64,
        };
        for (k, &off) in offsets.iter().enumerate() {
            self.grant_arr
                .write_u64(8 * (self.ring_cap * pi + k), off + 1)?;
            // Bootstrap happens outside the measured window, at virtual 0.
            self.audit.ring_produced(key, 0);
        }
        Ok(())
    }

    /// Pops one granted remote buffer offset for peer `pi`, blocking while
    /// none is granted.
    fn take_grant(&self, sim: &SimContext, pi: usize) -> Result<u64> {
        let deadline = sim.now() + self.cfg.stall_timeout;
        let mut drained = false;
        // Grant exhaustion is this transport's flow-control stall; it is
        // bracketed like the SR credit stalls (opened on the first failed
        // ring check only).
        let mut stall_start = None;
        let result = loop {
            let got = {
                let mut st = self.state.lock();
                let slot = 8 * (self.ring_cap * pi + (st.grant_cons[pi] as usize % self.ring_cap));
                let v = self.grant_arr.read_u64(slot)?;
                if v != 0 {
                    self.grant_arr.write_u64(slot, 0)?;
                    st.grant_cons[pi] += 1;
                    Some(v - 1)
                } else {
                    None
                }
            };
            self.obs.freearr_poll(sim, got.is_some());
            if let Some(off) = got {
                self.audit.ring_consumed(
                    RingKey {
                        rkey: self.grant_arr.rkey(),
                        base: (8 * self.ring_cap * pi) as u64,
                    },
                    sim.now().as_nanos(),
                );
                break Ok(off);
            }
            if stall_start.is_none() {
                stall_start = Some(self.obs.stall_begin(sim));
            }
            if sim.now() >= deadline {
                break Err(ShuffleError::Stalled("waiting for remote buffer grant"));
            }
            if !drained {
                self.grant_arr.drain_updates();
                drained = true;
                continue; // Re-check after the drain.
            }
            self.grant_arr
                .wait_update_timeout(sim, self.cfg.poll_interval * 32);
            drained = false;
        };
        if let Some(started) = stall_start {
            self.obs.stall_end(sim, started);
        }
        result
    }

    /// Reaps a batch of write completions (one poll cost for the whole
    /// drain), recycling staging buffers. Returns whether progress was
    /// made.
    fn reap(&self, sim: &SimContext, slice: SimDuration) -> Result<bool> {
        let mut scratch = self.send_scratch.take();
        let n = self
            .send_cq
            .drain_into(sim, &mut scratch, CQ_BATCH, slice);
        let result = self.process_send_batch(sim, &scratch);
        self.send_scratch.put(scratch);
        result?;
        Ok(n > 0)
    }

    fn process_send_batch(&self, sim: &SimContext, batch: &[Completion]) -> Result<()> {
        for c in batch {
            if c.status != WcStatus::Success {
                return Err(ShuffleError::CompletionError("RDMA write failed"));
            }
            // Ring announcements use sequence ids above the staging range
            // and need no bookkeeping.
            if c.wr_id >= RING_WR_BASE {
                continue;
            }
            let mut st = self.state.lock();
            let Some(remaining) = st.outstanding.get_mut(&c.wr_id) else {
                return Err(ShuffleError::CompletionError(
                    "write completion for unknown staging buffer",
                ));
            };
            *remaining -= 1;
            if *remaining == 0 {
                st.outstanding.remove(&c.wr_id);
                let buf =
                    Buffer::try_new(self.pool_mr.clone(), c.wr_id as usize, self.message_size)?;
                self.audit.buffer_recycled(buf_id(&buf), sim.now().as_nanos());
                st.free.push(buf);
            }
        }
        Ok(())
    }
}

/// Work-request ids at or above this value are ring announcements.
const RING_WR_BASE: u64 = 1 << 48;

impl SendEndpoint for WrRcSendEndpoint {
    fn id(&self) -> EndpointId {
        self.id
    }

    fn send(
        &self,
        sim: &SimContext,
        buf: Buffer,
        dest: &[NodeId],
        state: StreamState,
    ) -> Result<()> {
        assert!(!dest.is_empty(), "send needs at least one destination");
        let header = MsgHeader {
            src: self.id.0,
            kind: MsgKind::Data,
            state,
            epoch: self.cfg.epoch,
            payload_len: buf.len() as u32,
            src_tid: buf.tag(),
            counter: 0,
            remote_addr: 0, // Filled per destination below.
        };
        self.state
            .lock()
            .outstanding
            .insert(buf.offset() as u64, dest.len() as u32);
        self.audit.buffer_sent(buf_id(&buf), sim.now().as_nanos());
        for &d in dest {
            let pi = *self
                .peer_index
                .get(&d)
                .ok_or_else(|| ShuffleError::Config(format!("unknown destination node {d}")))?;
            let desc = self.state.lock().descriptors[pi]
                .ok_or_else(|| ShuffleError::Config("receiver descriptor not wired".into()))?;
            let remote_off = self.take_grant(sim, pi)?;
            // The receiver re-grants its own buffer; record its offset so
            // RELEASE can hand it back.
            let mut h = header;
            h.remote_addr = remote_off;
            buf.write_header(&h)?;
            // Push the payload into the granted remote buffer...
            let target = RemoteAddr {
                node: desc.node,
                rkey: desc.pool_rkey,
                offset: remote_off as usize,
            };
            let guard = self.post_lock.lock(sim);
            self.qps[pi].post_write(
                sim,
                buf.offset() as u64,
                (buf.region().clone(), buf.offset()),
                target,
                buf.message_len(),
            )?;
            // ...then announce it through the ValidArr ring (ordered after
            // the data on the same reliable connection).
            let slot_index = {
                let mut st = self.state.lock();
                let idx = st.valid_prod[pi] as usize % self.ring_cap;
                st.valid_prod[pi] += 1;
                idx
            };
            let seq = self.wr_seq.fetch_add(1, Ordering::Relaxed);
            let scratch_off = (seq % 64) as usize * 8;
            self.scratch.write_u64(scratch_off, remote_off + 1)?;
            let ring_target = RemoteAddr {
                node: desc.valid_ring.node,
                rkey: desc.valid_ring.rkey,
                offset: desc.valid_ring.offset + 8 * slot_index,
            };
            self.audit
                .ring_produced(ring_key(&desc.valid_ring), sim.now().as_nanos());
            self.qps[pi].post_write(
                sim,
                RING_WR_BASE + seq,
                (self.scratch.clone(), scratch_off),
                ring_target,
                8,
            )?;
            drop(guard);
            self.obs.sent(d, buf.len() as u64);
        }
        Ok(())
    }

    fn get_free(&self, sim: &SimContext) -> Result<Buffer> {
        let deadline = sim.now() + self.cfg.stall_timeout;
        let mut backoff = Backoff::new(self.cfg.poll_interval * 8);
        loop {
            if let Some(mut buf) = self.state.lock().free.pop() {
                buf.clear();
                self.audit.buffer_taken(buf_id(&buf), sim.now().as_nanos());
                return Ok(buf);
            }
            if sim.now() >= deadline {
                return Err(ShuffleError::Stalled("waiting for a free staging buffer"));
            }
            if self.reap(sim, backoff.next())? {
                backoff.reset();
            }
        }
    }

    fn registered_bytes(&self) -> usize {
        self.pool_mr.len() + self.grant_arr.len()
    }

    fn charge_setup(&self, sim: &SimContext) {
        sim.sleep(self.setup_cost);
    }
}

/// RECEIVE endpoint: passive target of RDMA Writes.
pub struct WrRcReceiveEndpoint {
    id: EndpointId,
    srcs: Vec<NodeId>,
    src_index: HashMap<NodeId, usize>,
    qps: Vec<QueuePair>,
    ctrl_cq: CompletionQueue,
    /// Reusable scratch for batched control-CQ drains.
    ctrl_scratch: CqScratch,
    /// Data buffers remote senders write into; per-source partitions.
    pool_mr: MemoryRegion,
    /// `ValidArr`: per-source rings announcing filled buffers.
    valid_arr: MemoryRegion,
    message_size: usize,
    ring_cap: usize,
    state: Mutex<WrRecvState>,
    scratch: MemoryRegion,
    wr_seq: AtomicU64,
    bytes_received: AtomicU64,
    obs: RecvObs,
    audit: AuditHandle,
    cfg: WrRcConfig,
    setup_cost: SimDuration,
}

struct WrRecvState {
    valid_cons: Vec<u64>,
    grant_prod: Vec<u64>,
    grant_rings: Vec<Option<RemoteAddr>>,
    depleted: Vec<bool>,
    /// Buffers pending initial grant per source.
    ungranted: Vec<Vec<u64>>,
    /// Source endpoint id → slot index, learned from message headers.
    src_ep_map: HashMap<u32, usize>,
}

impl WrRcReceiveEndpoint {
    /// Creates the endpoint: data pool, `ValidArr` and per-source QPs.
    pub fn new(ctx: &Context, id: EndpointId, srcs: Vec<NodeId>, cfg: WrRcConfig) -> Self {
        assert!(
            !srcs.is_empty(),
            "receive endpoint needs at least one source"
        );
        let ctrl_cq = ctx.create_cq();
        let qps: Vec<QueuePair> = srcs
            .iter()
            .map(|_| ctx.create_qp(rshuffle_verbs::QpType::Rc, ctrl_cq.clone(), ctrl_cq.clone()))
            .collect();
        let buffers_per_src = cfg.buffers_per_peer;
        let ring_cap = cfg.buffers_per_peer + 2;
        let pool_bytes = cfg.message_size * buffers_per_src * srcs.len();
        let pool_mr = ctx.register_untimed(pool_bytes);
        let valid_arr = ctx.register_untimed(8 * ring_cap * srcs.len());
        let ungranted: Vec<Vec<u64>> = (0..srcs.len())
            .map(|si| {
                (0..buffers_per_src)
                    .map(|k| ((si * buffers_per_src + k) * cfg.message_size) as u64)
                    .collect()
            })
            .collect();
        let profile = ctx.profile();
        let setup_cost = profile.endpoint_setup
            + profile.rc_qp_setup * srcs.len() as u64
            + profile.mr_register_time(pool_bytes + 8 * ring_cap * srcs.len());
        let n = srcs.len();
        let src_index = srcs.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let audit = audit_handle(ctx);
        for si in 0..n {
            audit.ring(
                RingKey {
                    rkey: valid_arr.rkey(),
                    base: (8 * ring_cap * si) as u64,
                },
                RingKind::ValidArr,
                ring_cap as u64,
            );
        }
        WrRcReceiveEndpoint {
            id,
            srcs,
            src_index,
            qps,
            ctrl_cq,
            ctrl_scratch: CqScratch::new(),
            pool_mr,
            valid_arr,
            message_size: cfg.message_size,
            ring_cap,
            state: Mutex::new(WrRecvState {
                valid_cons: vec![0; n],
                grant_prod: vec![0; n],
                grant_rings: vec![None; n],
                depleted: vec![false; n],
                ungranted,
                src_ep_map: HashMap::new(),
            }),
            scratch: ctx.register_untimed(64 * 8),
            wr_seq: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            obs: RecvObs::new(ctx, id),
            audit,
            cfg,
            setup_cost,
        }
    }

    /// The QP facing `src` (for wiring).
    pub fn qp_for(&self, src: NodeId) -> &QueuePair {
        &self.qps[self.src_index[&src]]
    }

    /// Descriptor the sender on `src` needs to push data here.
    pub fn remote_descriptor(&self, src: NodeId) -> WrReceiverDescriptor {
        let si = self.src_index[&src];
        WrReceiverDescriptor {
            endpoint: self.id,
            node: self.pool_mr.node(),
            pool_rkey: self.pool_mr.rkey(),
            valid_ring: RemoteAddr {
                node: self.valid_arr.node(),
                rkey: self.valid_arr.rkey(),
                offset: 8 * self.ring_cap * si,
            },
            ring_cap: self.ring_cap,
        }
    }

    /// Wires where to push buffer grants for `src`.
    pub fn set_free_ring(&mut self, src: NodeId, ring: RemoteAddr) {
        let si = self.src_index[&src];
        self.audit
            .ring(ring_key(&ring), RingKind::Grant, self.ring_cap as u64);
        self.state.lock().grant_rings[si] = Some(ring);
    }

    /// Takes the initial buffer offsets to grant to `src` and advances the
    /// grant ring producer accordingly. The exchange builder passes the
    /// offsets to [`WrRcSendEndpoint::bootstrap_grants`].
    pub fn initial_grants(&self, src: NodeId) -> Vec<u64> {
        let si = self.src_index[&src];
        let mut st = self.state.lock();
        let offsets = std::mem::take(&mut st.ungranted[si]);
        st.grant_prod[si] += offsets.len() as u64;
        offsets
    }

    fn grant_back(&self, sim: &SimContext, si: usize, offset: u64) -> Result<()> {
        let (ring, idx) = {
            let mut st = self.state.lock();
            let ring = st.grant_rings[si]
                .ok_or_else(|| ShuffleError::Config("grant ring not wired".into()))?;
            let idx = st.grant_prod[si] as usize % self.ring_cap;
            st.grant_prod[si] += 1;
            (ring, idx)
        };
        let now = sim.now().as_nanos();
        self.audit.released(
            BufId {
                rkey: self.pool_mr.rkey(),
                offset,
            },
            now,
        );
        self.audit.ring_produced(ring_key(&ring), now);
        let seq = self.wr_seq.fetch_add(1, Ordering::Relaxed);
        let scratch_off = (seq % 64) as usize * 8;
        self.scratch.write_u64(scratch_off, offset + 1)?;
        let target = RemoteAddr {
            node: ring.node,
            rkey: ring.rkey,
            offset: ring.offset + 8 * idx,
        };
        self.qps[si].post_write(sim, seq, (self.scratch.clone(), scratch_off), target, 8)?;
        // Keep the control CQ bounded, checking every grant-write ack
        // instead of swallowing them.
        if self.ctrl_cq.depth() > 16 {
            self.drain_ctrl(sim)?;
        }
        Ok(())
    }

    /// Drains queued grant-write acks through the handled path.
    fn drain_ctrl(&self, sim: &SimContext) -> Result<()> {
        let mut scratch = self.ctrl_scratch.take();
        self.ctrl_cq.poll_into(sim, &mut scratch, CQ_BATCH);
        let mut result = Ok(());
        for c in scratch.iter() {
            if c.status != WcStatus::Success {
                result = Err(ShuffleError::CompletionError("buffer grant write failed"));
                break;
            }
            if c.opcode != WcOpcode::Write {
                result = Err(ShuffleError::CompletionError(
                    "unexpected completion opcode on WR control CQ",
                ));
                break;
            }
        }
        self.ctrl_scratch.put(scratch);
        result
    }

    fn fully_done(&self) -> Result<bool> {
        let st = self.state.lock();
        for si in 0..self.srcs.len() {
            if !st.depleted[si] {
                return Ok(false);
            }
            let slot = 8 * (self.ring_cap * si + (st.valid_cons[si] as usize % self.ring_cap));
            if self.valid_arr.read_u64(slot)? != 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl ReceiveEndpoint for WrRcReceiveEndpoint {
    fn id(&self) -> EndpointId {
        self.id
    }

    fn get_data(&self, sim: &SimContext) -> Result<Option<Delivery>> {
        let deadline = sim.now() + self.cfg.stall_timeout;
        loop {
            // Scan the ValidArr rings for announced buffers.
            for si in 0..self.srcs.len() {
                let entry = {
                    let mut st = self.state.lock();
                    let slot =
                        8 * (self.ring_cap * si + (st.valid_cons[si] as usize % self.ring_cap));
                    let v = self.valid_arr.read_u64(slot)?;
                    if v == 0 {
                        None
                    } else {
                        self.valid_arr.write_u64(slot, 0)?;
                        st.valid_cons[si] += 1;
                        Some(v - 1)
                    }
                };
                let Some(offset) = entry else { continue };
                self.obs.validarr_poll(sim, 1);
                self.audit.ring_consumed(
                    RingKey {
                        rkey: self.valid_arr.rkey(),
                        base: (8 * self.ring_cap * si) as u64,
                    },
                    sim.now().as_nanos(),
                );
                let mut buf =
                    Buffer::try_new(self.pool_mr.clone(), offset as usize, self.message_size)?;
                let header = buf.read_header()?;
                if header.kind != MsgKind::Data {
                    return Err(ShuffleError::Corrupt(
                        "ValidArr announced a buffer without a data header".into(),
                    ));
                }
                if header.epoch != self.cfg.epoch {
                    // Leftover announcement from a fenced-off attempt:
                    // re-grant the buffer to its sender without handing it
                    // to the operator. `grant_back` audits a release, so
                    // record the matching delivery to keep the ledger
                    // balanced.
                    self.obs.stale_drop();
                    self.audit.delivered(buf_id(&buf), sim.now().as_nanos());
                    self.grant_back(sim, si, offset)?;
                    continue;
                }
                buf.set_len(header.payload_len as usize)?;
                self.bytes_received
                    .fetch_add(header.payload_len as u64, Ordering::Relaxed);
                self.obs.received(header.payload_len as u64);
                self.audit.delivered(buf_id(&buf), sim.now().as_nanos());
                {
                    let mut st = self.state.lock();
                    st.src_ep_map.insert(header.src, si);
                    if header.state == StreamState::Depleted {
                        st.depleted[si] = true;
                    }
                }
                return Ok(Some(Delivery {
                    state: header.state,
                    src: EndpointId(header.src),
                    src_tid: header.src_tid,
                    remote: offset,
                    local: buf,
                }));
            }
            self.obs.validarr_poll(sim, 0);
            if self.fully_done()? {
                return Ok(None);
            }
            if sim.now() >= deadline {
                return Err(ShuffleError::Stalled("WR receive made no progress"));
            }
            self.valid_arr.drain_updates();
            self.valid_arr
                .wait_update_timeout(sim, self.cfg.poll_interval * 32);
        }
    }

    fn release(
        &self,
        sim: &SimContext,
        remote: u64,
        _local: Buffer,
        src: EndpointId,
    ) -> Result<()> {
        let si = {
            let st = self.state.lock();
            *st.src_ep_map.get(&src.0).ok_or_else(|| {
                ShuffleError::Config(format!("release for unknown source {src:?}"))
            })?
        };
        #[cfg(feature = "saboteur")]
        if crate::sabotage::take(crate::sabotage::Sabotage::DoubleGrant) {
            self.grant_back(sim, si, remote)?;
        }
        // Re-grant the (receiver-owned) buffer to the sender it serves.
        self.grant_back(sim, si, remote)
    }

    fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    fn registered_bytes(&self) -> usize {
        self.pool_mr.len() + self.valid_arr.len()
    }

    fn charge_setup(&self, sim: &SimContext) {
        sim.sleep(self.setup_cost);
    }
}
