//! One-sided RDMA Read over the Reliable Connection service (§4.4.3,
//! Algorithm 3).
//!
//! The data sender stays completely **passive**: it fills registered
//! buffers and announces them by RDMA-Writing the buffer address into the
//! receiver's `ValidArr` circular queue. The receiver pulls the data with
//! RDMA Read into a local buffer from its `LocalArr` stack, and returns the
//! remote buffer by RDMA-Writing its address into the sender's `FreeArr`
//! circular queue. Both queues live in registered memory and are polled —
//! no two-sided operation is ever used for data.
//!
//! Buffer-reuse rule (the broadcast pitfall of §5.1.3): a buffer sent to a
//! transmission group of `k` nodes is reusable only after **all** `k`
//! receivers have pushed it through their `FreeArr`; a single slow receiver
//! therefore starves the sender of free buffers, which is exactly why the
//! MQ/RD designs degrade in the broadcast pattern.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rshuffle_audit::{AuditHandle, RingKey, RingKind};
use rshuffle_simnet::{NodeId, SimContext, SimDuration};
use rshuffle_verbs::{
    Completion, CompletionQueue, Context, MemoryRegion, QueuePair, RemoteAddr, WcOpcode, WcStatus,
};

use crate::buffer::{Buffer, MsgHeader, MsgKind, StreamState};
use crate::endpoint::{
    audit_handle, buf_id, CqScratch, Delivery, EndpointId, ReceiveEndpoint, RecvObs, SendEndpoint,
    SendObs, CQ_BATCH,
};
use crate::error::{Result, ShuffleError};

/// Audit identity of a circular queue from the remote address the peer
/// shared out of band (the local side derives the same key from its own
/// memory region and ring base, so both sides feed one ring record).
fn ring_key(addr: &RemoteAddr) -> RingKey {
    RingKey {
        rkey: addr.rkey,
        base: addr.offset as u64,
    }
}

/// Tuning knobs for the RDMA Read endpoint.
#[derive(Clone, Debug)]
pub struct RdRcConfig {
    /// Transmission buffer window (header + payload).
    pub message_size: usize,
    /// Send-side buffers per peer (2 = double buffering).
    pub buffers_per_peer: usize,
    /// Polling granularity for the circular queues.
    pub poll_interval: SimDuration,
    /// Give up with [`ShuffleError::Stalled`] after this long without
    /// progress.
    pub stall_timeout: SimDuration,
    /// Flow epoch stamped on every outgoing header and required of every
    /// accepted arrival. The recovery orchestrator bumps this on partial
    /// retries so leftovers of the failed attempt are fenced off; healthy
    /// runs stay at 0.
    pub epoch: u16,
}

impl Default for RdRcConfig {
    fn default() -> Self {
        RdRcConfig {
            message_size: 64 * 1024,
            buffers_per_peer: 2,
            poll_interval: SimDuration::from_nanos(400),
            stall_timeout: SimDuration::from_millis(500),
            epoch: 0,
        }
    }
}

/// SEND endpoint: passive one-sided source (Algorithm 3, SEND/GETFREE).
pub struct RdRcSendEndpoint {
    id: EndpointId,
    peers: Vec<NodeId>,
    peer_index: HashMap<NodeId, usize>,
    qps: Vec<QueuePair>,
    send_cq: CompletionQueue,
    /// Reusable scratch for batched announcement-ack drains.
    send_scratch: CqScratch,
    /// Registered data buffers remote receivers read from.
    pool_mr: MemoryRegion,
    message_size: usize,
    ring_cap: usize,
    /// `FreeArr`: one ring per peer, written remotely with freed buffer
    /// addresses (offset + 1; zero means empty).
    free_arr: MemoryRegion,
    state: Mutex<SendState>,
    /// Scratch slots sourcing the 8-byte `ValidArr` writes (payload is
    /// snapshotted at post time, so rotation is safe).
    scratch: MemoryRegion,
    wr_seq: AtomicU64,
    post_lock: rshuffle_simnet::SimMutex<()>,
    obs: SendObs,
    audit: AuditHandle,
    cfg: RdRcConfig,
    setup_cost: SimDuration,
    /// Diagnostics: virtual nanoseconds spent waiting in `get_free`.
    pub get_free_wait_ns: AtomicU64,
}

struct SendState {
    /// Consumer index into each peer's `FreeArr` ring.
    free_cons: Vec<u64>,
    /// Producer index into each peer's remote `ValidArr` ring.
    valid_prod: Vec<u64>,
    /// Remote `ValidArr` ring base for each peer.
    valid_remote: Vec<Option<RemoteAddr>>,
    /// Remaining release notifications per in-flight buffer offset.
    outstanding: HashMap<u64, u32>,
    /// Locally free buffers.
    free: Vec<Buffer>,
}

impl RdRcSendEndpoint {
    /// Creates the endpoint: data pool, `FreeArr` rings and one QP per
    /// peer.
    pub fn new(ctx: &Context, id: EndpointId, peers: Vec<NodeId>, cfg: RdRcConfig) -> Self {
        assert!(!peers.is_empty(), "send endpoint needs at least one peer");
        let send_cq = ctx.create_cq();
        let qps: Vec<QueuePair> = peers
            .iter()
            .map(|_| ctx.create_qp(rshuffle_verbs::QpType::Rc, send_cq.clone(), send_cq.clone()))
            .collect();
        let buffers = cfg.buffers_per_peer * peers.len();
        let ring_cap = buffers + 2;
        let pool_bytes = cfg.message_size * buffers;
        let pool_mr = ctx.register_untimed(pool_bytes);
        let free_arr = ctx.register_untimed(8 * ring_cap * peers.len());
        let free: Vec<Buffer> = (0..buffers)
            .map(|i| Buffer::new(pool_mr.clone(), i * cfg.message_size, cfg.message_size))
            .collect();
        let profile = ctx.profile();
        let setup_cost = profile.endpoint_setup
            + profile.rc_qp_setup * peers.len() as u64
            + profile.mr_register_time(pool_bytes + 8 * ring_cap * peers.len());
        let n = peers.len();
        let peer_index = peers.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let audit = audit_handle(ctx);
        for pi in 0..n {
            audit.ring(
                RingKey {
                    rkey: free_arr.rkey(),
                    base: (8 * ring_cap * pi) as u64,
                },
                RingKind::FreeArr,
                ring_cap as u64,
            );
        }
        RdRcSendEndpoint {
            id,
            peers,
            peer_index,
            qps,
            send_cq,
            send_scratch: CqScratch::new(),
            pool_mr,
            message_size: cfg.message_size,
            ring_cap,
            free_arr,
            state: Mutex::new(SendState {
                free_cons: vec![0; n],
                valid_prod: vec![0; n],
                valid_remote: vec![None; n],
                outstanding: HashMap::new(),
                free,
            }),
            scratch: ctx.register_untimed(64 * 8),
            wr_seq: AtomicU64::new(0),
            post_lock: rshuffle_simnet::SimMutex::new(
                ctx.runtime().kernel(),
                (),
                SimDuration::from_nanos(60),
            ),
            obs: SendObs::new(ctx, id),
            audit,
            cfg,
            setup_cost,
            get_free_wait_ns: AtomicU64::new(0),
        }
    }

    /// The QP that talks to `peer` (for wiring).
    pub fn qp_for(&self, peer: NodeId) -> &QueuePair {
        &self.qps[self.peer_index[&peer]]
    }

    /// Remote description of this endpoint for receivers on `peer`: the
    /// data-pool region and the peer's `FreeArr` ring base.
    pub fn remote_descriptor(&self, peer: NodeId) -> RdSenderDescriptor {
        let pi = self.peer_index[&peer];
        RdSenderDescriptor {
            endpoint: self.id,
            node: self.pool_mr.node(),
            pool_rkey: self.pool_mr.rkey(),
            free_arr: RemoteAddr {
                node: self.free_arr.node(),
                rkey: self.free_arr.rkey(),
                offset: 8 * self.ring_cap * pi,
            },
            ring_cap: self.ring_cap,
        }
    }

    /// Wires the remote `ValidArr` ring this endpoint announces buffers
    /// into, for `peer`.
    pub fn set_valid_ring(&self, peer: NodeId, ring: RemoteAddr) {
        let pi = self.peer_index[&peer];
        self.audit
            .ring(ring_key(&ring), RingKind::ValidArr, self.ring_cap as u64);
        self.state.lock().valid_remote[pi] = Some(ring);
    }

    /// Scans the `FreeArr` rings for release notifications; recycles
    /// buffers whose every reader has released them. Returns whether any
    /// notification was consumed.
    fn scan_free_arr(&self, sim: &SimContext) -> Result<bool> {
        let now = sim.now().as_nanos();
        let mut st = self.state.lock();
        let mut progress = false;
        for pi in 0..self.peers.len() {
            loop {
                let slot = 8 * (self.ring_cap * pi + (st.free_cons[pi] as usize % self.ring_cap));
                let v = self.free_arr.read_u64(slot)?;
                if v == 0 {
                    break;
                }
                self.free_arr.write_u64(slot, 0)?;
                st.free_cons[pi] += 1;
                self.audit.ring_consumed(
                    RingKey {
                        rkey: self.free_arr.rkey(),
                        base: (8 * self.ring_cap * pi) as u64,
                    },
                    now,
                );
                progress = true;
                let offset = v - 1;
                let Some(remaining) = st.outstanding.get_mut(&offset) else {
                    return Err(ShuffleError::CompletionError(
                        "FreeArr release for unknown buffer",
                    ));
                };
                *remaining -= 1;
                if *remaining == 0 {
                    st.outstanding.remove(&offset);
                    let buf = Buffer::try_new(self.pool_mr.clone(), offset as usize, self.message_size)?;
                    self.audit.buffer_recycled(buf_id(&buf), now);
                    st.free.push(buf);
                }
            }
        }
        Ok(progress)
    }

    /// Drains queued ValidArr-announcement write acks through the handled
    /// path (statuses checked) so the send CQ stays bounded.
    fn drain_announce_acks(&self, sim: &SimContext) -> Result<()> {
        let mut scratch = self.send_scratch.take();
        self.send_cq.poll_into(sim, &mut scratch, CQ_BATCH);
        let mut result = Ok(());
        for c in scratch.iter() {
            if c.status != WcStatus::Success {
                result = Err(ShuffleError::CompletionError(
                    "ValidArr announcement write failed",
                ));
                break;
            }
            if c.opcode != WcOpcode::Write {
                result = Err(ShuffleError::CompletionError(
                    "unexpected completion opcode on RD send CQ",
                ));
                break;
            }
        }
        self.send_scratch.put(scratch);
        result
    }
}

/// Everything a receiver needs to pull data from an [`RdRcSendEndpoint`].
#[derive(Copy, Clone, Debug)]
pub struct RdSenderDescriptor {
    /// The sending endpoint's id.
    pub endpoint: EndpointId,
    /// Node the sender lives on.
    pub node: NodeId,
    /// rkey of the sender's data pool.
    pub pool_rkey: u32,
    /// The receiver's ring inside the sender's `FreeArr`.
    pub free_arr: RemoteAddr,
    /// Capacity (slots) of the rings on both sides.
    pub ring_cap: usize,
}

impl SendEndpoint for RdRcSendEndpoint {
    fn id(&self) -> EndpointId {
        self.id
    }

    fn send(
        &self,
        sim: &SimContext,
        buf: Buffer,
        dest: &[NodeId],
        state: StreamState,
    ) -> Result<()> {
        assert!(!dest.is_empty(), "send needs at least one destination");
        let header = MsgHeader {
            src: self.id.0,
            kind: MsgKind::Data,
            state,
            epoch: self.cfg.epoch,
            payload_len: buf.len() as u32,
            src_tid: buf.tag(),
            counter: 0, // RC writes are ordered per link.
            remote_addr: buf.offset() as u64,
        };
        buf.write_header(&header)?;
        self.audit.buffer_sent(buf_id(&buf), sim.now().as_nanos());
        self.state
            .lock()
            .outstanding
            .insert(buf.offset() as u64, dest.len() as u32);
        for &d in dest {
            let pi = *self
                .peer_index
                .get(&d)
                .ok_or_else(|| ShuffleError::Config(format!("unknown destination node {d}")))?;
            let (ring, slot_index) = {
                let mut st = self.state.lock();
                let ring = st.valid_remote[pi]
                    .ok_or_else(|| ShuffleError::Config("ValidArr ring not wired".into()))?;
                let idx = st.valid_prod[pi] as usize % self.ring_cap;
                st.valid_prod[pi] += 1;
                (ring, idx)
            };
            let target = RemoteAddr {
                node: ring.node,
                rkey: ring.rkey,
                offset: ring.offset + 8 * slot_index,
            };
            self.audit
                .ring_produced(ring_key(&ring), sim.now().as_nanos());
            #[cfg(feature = "saboteur")]
            if crate::sabotage::take(crate::sabotage::Sabotage::DropValidArrUpdate) {
                // The buffer stays marked outstanding but its announcement
                // never reaches the peer's ValidArr.
                self.obs.sent(d, buf.len() as u64);
                continue;
            }
            // The scratch slot must be written inside the post lock: a
            // thread blocked on the lock would otherwise let its slot be
            // recycled before the payload is snapshotted.
            let guard = self.post_lock.lock(sim);
            let seq = self.wr_seq.fetch_add(1, Ordering::Relaxed);
            let scratch_off = (seq % 64) as usize * 8;
            self.scratch.write_u64(scratch_off, buf.offset() as u64 + 1)?;
            self.qps[pi].post_write(sim, seq, (self.scratch.clone(), scratch_off), target, 8)?;
            drop(guard);
            self.obs.sent(d, buf.len() as u64);
        }
        // Keep the write-completion queue bounded, checking every ack.
        if self.send_cq.depth() > 16 {
            self.drain_announce_acks(sim)?;
        }
        Ok(())
    }

    fn get_free(&self, sim: &SimContext) -> Result<Buffer> {
        let deadline = sim.now() + self.cfg.stall_timeout;
        let entered = sim.now();
        loop {
            if let Some(mut buf) = self.state.lock().free.pop() {
                buf.clear();
                self.audit.buffer_taken(buf_id(&buf), sim.now().as_nanos());
                self.get_free_wait_ns
                    .fetch_add((sim.now() - entered).as_nanos(), Ordering::Relaxed);
                return Ok(buf);
            }
            let progress = self.scan_free_arr(sim)?;
            self.obs.freearr_poll(sim, progress);
            if progress {
                continue;
            }
            if sim.now() >= deadline {
                return Err(ShuffleError::Stalled("waiting for FreeArr notifications"));
            }
            // Sleep until the next release lands in the FreeArr (early
            // wake), re-scanning on a bounded slice as a safety net.
            self.free_arr.drain_updates();
            let progress = self.scan_free_arr(sim)?;
            self.obs.freearr_poll(sim, progress);
            if progress {
                continue;
            }
            self.free_arr
                .wait_update_timeout(sim, self.cfg.poll_interval * 32);
        }
    }

    fn registered_bytes(&self) -> usize {
        self.pool_mr.len() + self.free_arr.len()
    }

    fn charge_setup(&self, sim: &SimContext) {
        sim.sleep(self.setup_cost);
    }
}

/// RECEIVE endpoint: active one-sided reader (Algorithm 3,
/// GETDATA/RELEASE).
pub struct RdRcReceiveEndpoint {
    id: EndpointId,
    srcs: Vec<NodeId>,
    src_index: HashMap<NodeId, usize>,
    /// Source endpoint id → slot index (filled from descriptors).
    src_by_endpoint: HashMap<u32, usize>,
    qps: Vec<QueuePair>,
    cq: CompletionQueue,
    /// Deliveries decoded from a batched CQ drain, waiting for a
    /// `get_data` caller.
    pending: Mutex<VecDeque<Delivery>>,
    /// Reusable scratch for batched CQ drains.
    cq_scratch: CqScratch,
    /// `ValidArr`: one ring per source, written remotely with full-buffer
    /// addresses.
    valid_arr: MemoryRegion,
    /// Local destination buffers for RDMA Reads.
    pool_mr: MemoryRegion,
    message_size: usize,
    ring_cap: usize,
    state: Mutex<RecvState>,
    scratch: MemoryRegion,
    wr_seq: AtomicU64,
    post_lock: rshuffle_simnet::SimMutex<()>,
    bytes_received: AtomicU64,
    obs: RecvObs,
    audit: AuditHandle,
    cfg: RdRcConfig,
    setup_cost: SimDuration,
}

struct RecvState {
    /// Consumer index into each source's `ValidArr` ring.
    valid_cons: Vec<u64>,
    /// Producer index into each source's remote `FreeArr` ring.
    free_prod: Vec<u64>,
    /// Per-source descriptors (pool rkey, FreeArr ring).
    descriptors: Vec<Option<RdSenderDescriptor>>,
    /// `LocalArr`: unused local buffers per source.
    local: Vec<Vec<Buffer>>,
    /// In-flight RDMA Reads per source.
    in_flight: Vec<u32>,
    /// Depleted flag per source.
    depleted: Vec<bool>,
}

impl RdRcReceiveEndpoint {
    /// Creates the endpoint: `ValidArr`, local read buffers and one QP per
    /// source.
    pub fn new(ctx: &Context, id: EndpointId, srcs: Vec<NodeId>, cfg: RdRcConfig) -> Self {
        assert!(
            !srcs.is_empty(),
            "receive endpoint needs at least one source"
        );
        let cq = ctx.create_cq();
        let qps: Vec<QueuePair> = srcs
            .iter()
            .map(|_| ctx.create_qp(rshuffle_verbs::QpType::Rc, cq.clone(), cq.clone()))
            .collect();
        let buffers_per_src = cfg.buffers_per_peer;
        let ring_cap = cfg.buffers_per_peer * srcs.len() + 2;
        let pool_bytes = cfg.message_size * buffers_per_src * srcs.len();
        let pool_mr = ctx.register_untimed(pool_bytes);
        let valid_arr = ctx.register_untimed(8 * ring_cap * srcs.len());
        let local: Vec<Vec<Buffer>> = (0..srcs.len())
            .map(|si| {
                (0..buffers_per_src)
                    .map(|k| {
                        Buffer::new(
                            pool_mr.clone(),
                            (si * buffers_per_src + k) * cfg.message_size,
                            cfg.message_size,
                        )
                    })
                    .collect()
            })
            .collect();
        let profile = ctx.profile();
        let setup_cost = profile.endpoint_setup
            + profile.rc_qp_setup * srcs.len() as u64
            + profile.mr_register_time(pool_bytes + 8 * ring_cap * srcs.len());
        let n = srcs.len();
        let src_index = srcs.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let audit = audit_handle(ctx);
        for si in 0..n {
            audit.ring(
                RingKey {
                    rkey: valid_arr.rkey(),
                    base: (8 * ring_cap * si) as u64,
                },
                RingKind::ValidArr,
                ring_cap as u64,
            );
        }
        RdRcReceiveEndpoint {
            id,
            srcs,
            src_index,
            src_by_endpoint: HashMap::new(),
            qps,
            cq,
            pending: Mutex::new(VecDeque::new()),
            cq_scratch: CqScratch::new(),
            valid_arr,
            pool_mr,
            message_size: cfg.message_size,
            ring_cap,
            state: Mutex::new(RecvState {
                valid_cons: vec![0; n],
                free_prod: vec![0; n],
                descriptors: vec![None; n],
                local,
                in_flight: vec![0; n],
                depleted: vec![false; n],
            }),
            scratch: ctx.register_untimed(64 * 8),
            wr_seq: AtomicU64::new(0),
            post_lock: rshuffle_simnet::SimMutex::new(
                ctx.runtime().kernel(),
                (),
                SimDuration::from_nanos(60),
            ),
            bytes_received: AtomicU64::new(0),
            obs: RecvObs::new(ctx, id),
            audit,
            cfg,
            setup_cost,
        }
    }

    /// The QP facing `src` (for wiring).
    pub fn qp_for(&self, src: NodeId) -> &QueuePair {
        &self.qps[self.src_index[&src]]
    }

    /// The `ValidArr` ring the sender on `src` should announce buffers
    /// into.
    pub fn valid_ring_for(&self, src: NodeId) -> RemoteAddr {
        let si = self.src_index[&src];
        RemoteAddr {
            node: self.valid_arr.node(),
            rkey: self.valid_arr.rkey(),
            offset: 8 * self.ring_cap * si,
        }
    }

    /// Wires the descriptor of the sender on `src`.
    pub fn set_descriptor(&mut self, src: NodeId, desc: RdSenderDescriptor) {
        let si = self.src_index[&src];
        assert_eq!(
            desc.ring_cap, self.ring_cap,
            "FreeArr/ValidArr ring capacities must agree"
        );
        self.audit.ring(
            ring_key(&desc.free_arr),
            RingKind::FreeArr,
            desc.ring_cap as u64,
        );
        self.state.lock().descriptors[si] = Some(desc);
        self.src_by_endpoint.insert(desc.endpoint.0, si);
    }

    /// Issues RDMA Reads for every announced buffer that has a local buffer
    /// available (Algorithm 3, GETDATA lines 19–24).
    fn issue_reads(&self, sim: &SimContext) -> Result<bool> {
        let mut issued = false;
        let mut n_issued = 0u64;
        for si in 0..self.srcs.len() {
            loop {
                let (remote_off, local_buf, desc) = {
                    let mut st = self.state.lock();
                    let Some(desc) = st.descriptors[si] else {
                        break;
                    };
                    if st.local[si].is_empty() {
                        break;
                    }
                    let slot =
                        8 * (self.ring_cap * si + (st.valid_cons[si] as usize % self.ring_cap));
                    let v = self.valid_arr.read_u64(slot)?;
                    if v == 0 {
                        break;
                    }
                    self.valid_arr.write_u64(slot, 0)?;
                    st.valid_cons[si] += 1;
                    st.in_flight[si] += 1;
                    let Some(local_buf) = st.local[si].pop() else {
                        return Err(ShuffleError::Corrupt(
                            "LocalArr drained while holding the state lock".into(),
                        ));
                    };
                    (v - 1, local_buf, desc)
                };
                self.audit.ring_consumed(
                    RingKey {
                        rkey: self.valid_arr.rkey(),
                        base: (8 * self.ring_cap * si) as u64,
                    },
                    sim.now().as_nanos(),
                );
                let wr_id = ((si as u64) << 32) | local_buf.offset() as u64;
                let remote = RemoteAddr {
                    node: desc.node,
                    rkey: desc.pool_rkey,
                    offset: remote_off as usize,
                };
                let guard = self.post_lock.lock(sim);
                self.qps[si].post_read(
                    sim,
                    wr_id,
                    (self.pool_mr.clone(), local_buf.offset()),
                    remote,
                    self.message_size,
                )?;
                drop(guard);
                issued = true;
                n_issued += 1;
            }
        }
        self.obs.validarr_poll(sim, n_issued);
        Ok(issued)
    }

    /// Whether any source has an unconsumed ValidArr announcement.
    fn has_pending_valid_entry(&self) -> Result<bool> {
        let st = self.state.lock();
        for si in 0..self.srcs.len() {
            let slot = 8 * (self.ring_cap * si + (st.valid_cons[si] as usize % self.ring_cap));
            if self.valid_arr.read_u64(slot)? != 0 {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// RDMA-Writes `remote + 1` into source `si`'s `FreeArr` ring — the
    /// shared tail of [`ReceiveEndpoint::release`] and the stale-epoch
    /// drop path (which returns the remote buffer without delivering).
    fn push_free(&self, sim: &SimContext, si: usize, remote: u64) -> Result<()> {
        let (desc, slot_index) = {
            let mut st = self.state.lock();
            let desc = st.descriptors[si].ok_or_else(|| {
                ShuffleError::Config(format!("release before descriptor wired for source {si}"))
            })?;
            let idx = st.free_prod[si] as usize % self.ring_cap;
            st.free_prod[si] += 1;
            (desc, idx)
        };
        let target = RemoteAddr {
            node: desc.free_arr.node,
            rkey: desc.free_arr.rkey,
            offset: desc.free_arr.offset + 8 * slot_index,
        };
        self.audit
            .ring_produced(ring_key(&desc.free_arr), sim.now().as_nanos());
        // Scratch written under the post lock (see `send`).
        let guard = self.post_lock.lock(sim);
        let seq = self.wr_seq.fetch_add(1, Ordering::Relaxed);
        let scratch_off = (seq % 64) as usize * 8;
        self.scratch.write_u64(scratch_off, remote + 1)?;
        self.qps[si].post_write(sim, seq, (self.scratch.clone(), scratch_off), target, 8)?;
        drop(guard);
        Ok(())
    }

    /// Decodes a batch of completions: FreeArr write acks are checked and
    /// skipped, stale-epoch reads recycled, live reads queued as pending
    /// deliveries.
    fn process_read_batch(&self, sim: &SimContext, batch: &[Completion]) -> Result<()> {
        for c in batch {
            if c.status != WcStatus::Success {
                return Err(ShuffleError::CompletionError("RDMA read failed"));
            }
            match c.opcode {
                WcOpcode::Write => continue, // FreeArr release ack.
                WcOpcode::Read => {}
                _ => {
                    return Err(ShuffleError::CompletionError(
                        "unexpected completion opcode on RD endpoint",
                    ))
                }
            }
            let si = (c.wr_id >> 32) as usize;
            if si >= self.srcs.len() {
                return Err(ShuffleError::Corrupt(format!(
                    "read completion names out-of-range source slot {si}"
                )));
            }
            let local_off = (c.wr_id & 0xFFFF_FFFF) as usize;
            let mut buf = Buffer::try_new(self.pool_mr.clone(), local_off, self.message_size)?;
            let header = buf.read_header()?;
            if header.epoch != self.cfg.epoch {
                // Leftover announcement from a fenced-off attempt:
                // hand the remote buffer straight back through the
                // FreeArr and requeue the local one, no delivery.
                self.obs.stale_drop();
                {
                    let mut st = self.state.lock();
                    st.in_flight[si] = st.in_flight[si].checked_sub(1).ok_or(
                        ShuffleError::CompletionError("more read completions than reads posted"),
                    )?;
                }
                self.push_free(sim, si, header.remote_addr)?;
                self.state.lock().local[si].push(buf);
                continue;
            }
            buf.set_len(header.payload_len as usize)?;
            self.bytes_received
                .fetch_add(header.payload_len as u64, Ordering::Relaxed);
            self.obs.received(header.payload_len as u64);
            self.audit.delivered(buf_id(&buf), sim.now().as_nanos());
            {
                let mut st = self.state.lock();
                st.in_flight[si] = st.in_flight[si].checked_sub(1).ok_or(
                    ShuffleError::CompletionError("more read completions than reads posted"),
                )?;
                if header.state == StreamState::Depleted {
                    st.depleted[si] = true;
                }
            }
            self.pending.lock().push_back(Delivery {
                state: header.state,
                src: EndpointId(header.src),
                src_tid: header.src_tid,
                remote: header.remote_addr,
                local: buf,
            });
        }
        Ok(())
    }

    fn fully_done(&self) -> Result<bool> {
        let st = self.state.lock();
        for si in 0..self.srcs.len() {
            if !st.depleted[si] || st.in_flight[si] > 0 {
                return Ok(false);
            }
            let slot = 8 * (self.ring_cap * si + (st.valid_cons[si] as usize % self.ring_cap));
            if self.valid_arr.read_u64(slot)? != 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl ReceiveEndpoint for RdRcReceiveEndpoint {
    fn id(&self) -> EndpointId {
        self.id
    }

    fn get_data(&self, sim: &SimContext) -> Result<Option<Delivery>> {
        let deadline = sim.now() + self.cfg.stall_timeout;
        loop {
            if let Some(d) = self.pending.lock().pop_front() {
                return Ok(Some(d));
            }
            self.issue_reads(sim)?;
            // With reads in flight, the completion queue wakes us early; if
            // the pipeline is empty, wait for the next ValidArr
            // announcement instead so issue latency stays flat.
            let in_flight: u32 = self.state.lock().in_flight.iter().sum();
            if in_flight == 0 && self.cq.depth() == 0 {
                if self.fully_done()? {
                    return Ok(None);
                }
                if sim.now() >= deadline {
                    return Err(ShuffleError::Stalled("RD receive made no progress"));
                }
                self.valid_arr.drain_updates();
                if !self.has_pending_valid_entry()? {
                    self.valid_arr
                        .wait_update_timeout(sim, self.cfg.poll_interval * 32);
                }
                continue;
            }
            let mut scratch = self.cq_scratch.take();
            let n = self
                .cq
                .drain_into(sim, &mut scratch, CQ_BATCH, self.cfg.poll_interval * 64);
            let result = self.process_read_batch(sim, &scratch);
            self.cq_scratch.put(scratch);
            result?;
            if n == 0 {
                if self.fully_done()? {
                    return Ok(None);
                }
                if sim.now() >= deadline {
                    return Err(ShuffleError::Stalled("RD receive made no progress"));
                }
            }
        }
    }

    fn release(&self, sim: &SimContext, remote: u64, local: Buffer, src: EndpointId) -> Result<()> {
        let si = *self
            .src_by_endpoint
            .get(&src.0)
            .ok_or_else(|| ShuffleError::Config(format!("release for unknown source {src:?}")))?;
        self.audit.released(buf_id(&local), sim.now().as_nanos());
        self.push_free(sim, si, remote)?;
        self.state.lock().local[si].push(local);
        Ok(())
    }

    fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    fn registered_bytes(&self) -> usize {
        self.pool_mr.len() + self.valid_arr.len()
    }

    fn charge_setup(&self, sim: &SimContext) {
        sim.sleep(self.setup_cost);
    }
}
