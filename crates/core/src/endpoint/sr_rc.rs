//! RDMA Send/Receive over the Reliable Connection service (§4.4.1).
//!
//! The data-delivery guarantee of RC requires every arriving Send to match a
//! posted Receive, so the sender and the receiver synchronize through a
//! **stateless credit mechanism**: the receiver issues credit only after a
//! Receive has been posted, and transmits the *absolute* credit (total
//! Receives posted on the connection so far) rather than a relative delta.
//! Credit travels from receiver to sender as an RDMA Write into a dedicated
//! credit region at the sender (inlined to save a DMA fetch). The write-back
//! is amortized over [`SrRcConfig::credit_writeback_frequency`] Receives —
//! the trade-off studied in Figure 8.
//!
//! Each endpoint holds one Queue Pair per peer (Θ(n) per endpoint, the "MQ"
//! design) and associates all of them with a single completion queue to
//! amortize polling.

use parking_lot::Mutex;
use rshuffle_audit::{AuditHandle, BufId, CreditLane};
use rshuffle_simnet::{NodeId, SimContext, SimDuration};
use rshuffle_verbs::{
    Completion, CompletionQueue, Context, MemoryRegion, QueuePair, RecvWr, RemoteAddr, SendWr,
    WcOpcode, WcStatus,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::buffer::{Buffer, BufferPool, MsgHeader, MsgKind, StreamState};
use crate::endpoint::{
    audit_handle, buf_id, Backoff, CqScratch, Delivery, EndpointId, ReceiveEndpoint, RecvObs,
    SendEndpoint, SendObs, CQ_BATCH,
};
use crate::error::{Result, ShuffleError};

/// The audit identity of the credit slot at `addr`.
fn credit_lane(addr: &RemoteAddr) -> CreditLane {
    CreditLane::Slot {
        rkey: addr.rkey,
        offset: addr.offset as u64,
    }
}

/// Tuning knobs shared by the RC-based endpoints.
#[derive(Clone, Debug)]
pub struct SrRcConfig {
    /// Transmission buffer window (header + payload), e.g. 64 KiB.
    pub message_size: usize,
    /// Send-side buffers per peer (2 = the paper's double buffering).
    pub buffers_per_peer: usize,
    /// Receive requests kept posted per peer.
    pub recv_depth_per_peer: usize,
    /// Post a credit write-back every this many Receives (Figure 8).
    pub credit_writeback_frequency: u32,
    /// Polling granularity for flow-control waits.
    pub poll_interval: SimDuration,
    /// Give up and report [`ShuffleError::Stalled`] after this long without
    /// progress.
    pub stall_timeout: SimDuration,
    /// Flow epoch stamped on every outgoing header and required of every
    /// accepted arrival. The recovery orchestrator bumps this on partial
    /// retries so leftovers of the failed attempt are fenced off; healthy
    /// runs stay at 0.
    pub epoch: u16,
}

impl Default for SrRcConfig {
    fn default() -> Self {
        SrRcConfig {
            message_size: 64 * 1024,
            buffers_per_peer: 2,
            recv_depth_per_peer: 16,
            credit_writeback_frequency: 2,
            poll_interval: SimDuration::from_nanos(400),
            stall_timeout: SimDuration::from_millis(500),
            epoch: 0,
        }
    }
}

/// SEND endpoint: RDMA Send/Receive over Reliable Connection.
pub struct SrRcSendEndpoint {
    id: EndpointId,
    peer_index: HashMap<NodeId, usize>,
    /// One QP per peer, indexed like `peers`.
    qps: Vec<QueuePair>,
    send_cq: CompletionQueue,
    /// Recycle pool over the registered send region: steady-state sends
    /// reuse windows instead of allocating.
    pool: BufferPool,
    /// Reusable scratch for batched send-CQ drains.
    reap_scratch: CqScratch,
    /// Outstanding sends per in-flight buffer (keyed by buffer offset); a
    /// multicast buffer completes once per destination.
    outstanding: Mutex<HashMap<u64, u32>>,
    /// Absolute credit per peer, RDMA-written by the remote receiver.
    credit_mr: MemoryRegion,
    /// Data messages sent per peer.
    sent: Mutex<Vec<u64>>,
    /// Serializes `ibv_post_send`; the contention cost of sharing one
    /// endpoint among threads (SE configurations) shows up here.
    post_lock: rshuffle_simnet::SimMutex<()>,
    obs: SendObs,
    audit: AuditHandle,
    cfg: SrRcConfig,
    setup_cost: SimDuration,
}

impl SrRcSendEndpoint {
    /// Creates the endpoint with its per-peer QPs (unconnected; the
    /// exchange builder wires them to the matching receive endpoints).
    pub fn new(ctx: &Context, id: EndpointId, peers: Vec<NodeId>, cfg: SrRcConfig) -> Self {
        assert!(!peers.is_empty(), "send endpoint needs at least one peer");
        let send_cq = ctx.create_cq();
        let qps: Vec<QueuePair> = peers
            .iter()
            .map(|_| ctx.create_qp(rshuffle_verbs::QpType::Rc, send_cq.clone(), send_cq.clone()))
            .collect();
        let pool_bytes = cfg.message_size * cfg.buffers_per_peer * peers.len();
        let pool_mr = ctx.register_untimed(pool_bytes);
        let pool = BufferPool::carve(
            pool_mr,
            0,
            cfg.message_size,
            cfg.buffers_per_peer * peers.len(),
        );
        let credit_mr = ctx.register_untimed(8 * peers.len());
        let peer_index = peers.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let profile = ctx.profile();
        let setup_cost = profile.endpoint_setup
            + profile.rc_qp_setup * peers.len() as u64
            + profile.mr_register_time(pool_bytes + 8 * peers.len());
        let n = peers.len();
        SrRcSendEndpoint {
            id,
            peer_index,
            qps,
            send_cq,
            pool,
            reap_scratch: CqScratch::new(),
            outstanding: Mutex::new(HashMap::new()),
            credit_mr,
            sent: Mutex::new(vec![0; n]),
            post_lock: rshuffle_simnet::SimMutex::new(
                ctx.runtime().kernel(),
                (),
                SimDuration::from_nanos(60),
            ),
            obs: SendObs::new(ctx, id),
            audit: audit_handle(ctx),
            cfg,
            setup_cost,
        }
    }

    /// The QP that talks to `peer` (for the exchange builder's wiring).
    pub fn qp_for(&self, peer: NodeId) -> &QueuePair {
        &self.qps[self.peer_index[&peer]]
    }

    /// Where the receiver on `peer` should RDMA-Write its credit.
    pub fn credit_slot_for(&self, peer: NodeId) -> RemoteAddr {
        RemoteAddr {
            node: self.pool.region().node(),
            rkey: self.credit_mr.rkey(),
            offset: 8 * self.peer_index[&peer],
        }
    }

    /// Seeds the initial credit for `peer` (the receiver's initial posted
    /// receives, exchanged out of band during connection setup).
    pub fn bootstrap_credit(&self, peer: NodeId, credit: u64) -> Result<()> {
        let pi = *self
            .peer_index
            .get(&peer)
            .ok_or_else(|| ShuffleError::Config(format!("unknown peer node {peer}")))?;
        self.credit_mr.write_u64(8 * pi, credit)?;
        Ok(())
    }

    /// Blocks until peer `pi` has granted credit beyond `sent`. The wait is
    /// woken by the receiver's credit RDMA Write landing in the credit
    /// region.
    fn wait_for_credit(&self, sim: &SimContext, pi: usize) -> Result<()> {
        let deadline = sim.now() + self.cfg.stall_timeout;
        let has_credit = |pi: usize| -> Result<bool> {
            let credit = self.credit_mr.read_u64(8 * pi)?;
            Ok(credit > self.sent.lock()[pi])
        };
        if has_credit(pi)? {
            return Ok(());
        }
        // Credit exhausted: this is the Figure 8 stall the flight
        // recorder tracks, bracketed so the error path closes it too.
        let stall_start = self.obs.stall_begin(sim);
        let result = loop {
            match has_credit(pi) {
                Ok(true) => break Ok(()),
                Ok(false) => {}
                Err(e) => break Err(e),
            }
            // Clear stale wake tokens, re-check, then sleep until the next
            // credit write (or a bounded slice, for SE configurations where
            // another thread may consume our wakeup).
            self.credit_mr.drain_updates();
            match has_credit(pi) {
                Ok(true) => break Ok(()),
                Ok(false) => {}
                Err(e) => break Err(e),
            }
            if sim.now() >= deadline {
                break Err(ShuffleError::Stalled("waiting for send credit"));
            }
            self.credit_mr
                .wait_update_timeout(sim, self.cfg.poll_interval * 32);
        };
        self.obs.stall_end(sim, stall_start);
        result
    }

    /// Drains a batch of send completions (one poll cost for the whole
    /// drain), recycling buffers whose every destination has acknowledged.
    /// Returns whether any completion was processed.
    fn reap_completions(&self, sim: &SimContext, block_slice: SimDuration) -> Result<bool> {
        let mut scratch = self.reap_scratch.take();
        let n = self
            .send_cq
            .drain_into(sim, &mut scratch, CQ_BATCH, block_slice);
        let result = self.process_send_batch(sim, &scratch);
        self.reap_scratch.put(scratch);
        result?;
        Ok(n > 0)
    }

    fn process_send_batch(&self, sim: &SimContext, batch: &[Completion]) -> Result<()> {
        for c in batch {
            if c.status != WcStatus::Success {
                return Err(ShuffleError::CompletionError(
                    "reliable send failed (receiver never posted a receive?)",
                ));
            }
            let fully_acked = {
                let mut outstanding = self.outstanding.lock();
                let Some(remaining) = outstanding.get_mut(&c.wr_id) else {
                    return Err(ShuffleError::CompletionError(
                        "send completion for unknown buffer",
                    ));
                };
                *remaining -= 1;
                if *remaining == 0 {
                    outstanding.remove(&c.wr_id);
                    true
                } else {
                    false
                }
            };
            if fully_acked {
                self.audit.buffer_recycled(
                    BufId {
                        rkey: self.pool.region().rkey(),
                        offset: c.wr_id,
                    },
                    sim.now().as_nanos(),
                );
                self.pool.recycle_offset(c.wr_id as usize)?;
            }
        }
        Ok(())
    }
}

impl SendEndpoint for SrRcSendEndpoint {
    fn id(&self) -> EndpointId {
        self.id
    }

    fn send(
        &self,
        sim: &SimContext,
        buf: Buffer,
        dest: &[NodeId],
        state: StreamState,
    ) -> Result<()> {
        assert!(!dest.is_empty(), "send needs at least one destination");
        let header = MsgHeader {
            src: self.id.0,
            kind: MsgKind::Data,
            state,
            epoch: self.cfg.epoch,
            payload_len: buf.len() as u32,
            src_tid: buf.tag(),
            counter: 0, // RC is ordered: Depleted arrival is authoritative.
            remote_addr: buf.offset() as u64,
        };
        buf.write_header(&header)?;
        self.audit.buffer_sent(buf_id(&buf), sim.now().as_nanos());
        self.outstanding
            .lock()
            .insert(buf.offset() as u64, dest.len() as u32);
        for &d in dest {
            let pi = *self
                .peer_index
                .get(&d)
                .ok_or_else(|| ShuffleError::Config(format!("unknown destination node {d}")))?;
            self.wait_for_credit(sim, pi)?;
            let sent_now = {
                let mut sent = self.sent.lock();
                sent[pi] += 1;
                sent[pi]
            };
            self.audit.credit_consumed(
                credit_lane(&self.credit_slot_for(d)),
                sent_now,
                sim.now().as_nanos(),
            );
            let guard = self.post_lock.lock(sim);
            self.qps[pi].post_send(
                sim,
                SendWr {
                    wr_id: buf.offset() as u64,
                    mr: buf.region().clone(),
                    offset: buf.offset(),
                    len: buf.message_len(),
                    imm: None,
                    ah: None,
                },
            )?;
            drop(guard);
            self.obs.sent(d, buf.len() as u64);
        }
        Ok(())
    }

    fn get_free(&self, sim: &SimContext) -> Result<Buffer> {
        let deadline = sim.now() + self.cfg.stall_timeout;
        let mut backoff = Backoff::new(self.cfg.poll_interval * 8);
        loop {
            if let Some(buf) = self.pool.try_take() {
                self.audit.buffer_taken(buf_id(&buf), sim.now().as_nanos());
                return Ok(buf);
            }
            if sim.now() >= deadline {
                return Err(ShuffleError::Stalled("waiting for a free send buffer"));
            }
            if self.reap_completions(sim, backoff.next())? {
                backoff.reset();
            }
        }
    }

    fn registered_bytes(&self) -> usize {
        self.pool.region().len() + self.credit_mr.len()
    }

    fn charge_setup(&self, sim: &SimContext) {
        sim.sleep(self.setup_cost);
    }
}

/// RECEIVE endpoint: RDMA Send/Receive over Reliable Connection.
pub struct SrRcReceiveEndpoint {
    id: EndpointId,
    /// Maps a source endpoint id to its slot index.
    src_by_endpoint: Mutex<HashMap<u32, usize>>,
    src_index: HashMap<NodeId, usize>,
    qps: Vec<QueuePair>,
    recv_cq: CompletionQueue,
    /// Send-side CQ of the receive QPs (credit write-backs), drained lazily
    /// through the handled path (statuses checked, never swallowed).
    ctrl_cq: CompletionQueue,
    pool_mr: MemoryRegion,
    message_size: usize,
    /// Deliveries decoded from a batched CQ drain, waiting for a
    /// `get_data` caller.
    pending: Mutex<VecDeque<Delivery>>,
    /// Reusable scratch for batched receive-CQ drains.
    recv_scratch: CqScratch,
    /// Reusable scratch for control-CQ drains.
    ctrl_scratch: CqScratch,
    /// Credit write-backs posted but not yet seen to complete. Must drain
    /// to zero at end of stream — a swallowed control completion turns
    /// into a typed error instead of silence.
    ctrl_outstanding: AtomicU64,
    /// Absolute receives posted per source (the credit value).
    posted: Mutex<Vec<u64>>,
    /// Releases since the last credit write-back, per source.
    releases: Mutex<Vec<u32>>,
    /// Where each source's send endpoint keeps my credit slot.
    credit_remote: Mutex<Vec<Option<RemoteAddr>>>,
    depleted: Mutex<Vec<bool>>,
    all_depleted: AtomicBool,
    bytes_received: AtomicU64,
    wr_seq: AtomicU64,
    /// Rotating scratch slots sourcing the 8-byte credit writes.
    scratch_mr: MemoryRegion,
    obs: RecvObs,
    audit: AuditHandle,
    cfg: SrRcConfig,
    setup_cost: SimDuration,
}

impl SrRcReceiveEndpoint {
    /// Creates the endpoint with one QP per source.
    pub fn new(ctx: &Context, id: EndpointId, srcs: Vec<NodeId>, cfg: SrRcConfig) -> Self {
        assert!(
            !srcs.is_empty(),
            "receive endpoint needs at least one source"
        );
        let recv_cq = ctx.create_cq();
        let ctrl_cq = ctx.create_cq();
        let qps: Vec<QueuePair> = srcs
            .iter()
            .map(|_| ctx.create_qp(rshuffle_verbs::QpType::Rc, ctrl_cq.clone(), recv_cq.clone()))
            .collect();
        let pool_bytes = cfg.message_size * cfg.recv_depth_per_peer * srcs.len();
        let pool_mr = ctx.register_untimed(pool_bytes);
        let src_index = srcs.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let profile = ctx.profile();
        let setup_cost = profile.endpoint_setup
            + profile.rc_qp_setup * srcs.len() as u64
            + profile.mr_register_time(pool_bytes);
        let n = srcs.len();
        SrRcReceiveEndpoint {
            id,
            src_by_endpoint: Mutex::new(HashMap::new()),
            src_index,
            qps,
            recv_cq,
            ctrl_cq,
            pool_mr,
            message_size: cfg.message_size,
            pending: Mutex::new(VecDeque::new()),
            recv_scratch: CqScratch::new(),
            ctrl_scratch: CqScratch::new(),
            ctrl_outstanding: AtomicU64::new(0),
            posted: Mutex::new(vec![0; n]),
            releases: Mutex::new(vec![0; n]),
            credit_remote: Mutex::new(vec![None; n]),
            depleted: Mutex::new(vec![false; n]),
            all_depleted: AtomicBool::new(false),
            bytes_received: AtomicU64::new(0),
            wr_seq: AtomicU64::new(0),
            scratch_mr: ctx.register_untimed(64 * 8),
            obs: RecvObs::new(ctx, id),
            audit: audit_handle(ctx),
            cfg,
            setup_cost,
        }
    }

    /// The QP that hears from `src` (for wiring).
    pub fn qp_for(&self, src: NodeId) -> &QueuePair {
        &self.qps[self.src_index[&src]]
    }

    /// Wires the remote credit slot for `src` and posts the initial receive
    /// pool on that connection. Returns the initial credit granted.
    pub fn bootstrap_src(&self, src: NodeId, credit_slot: RemoteAddr) -> Result<u64> {
        let si = *self
            .src_index
            .get(&src)
            .ok_or_else(|| ShuffleError::Config(format!("unknown source node {src}")))?;
        self.credit_remote.lock()[si] = Some(credit_slot);
        let base = self.message_size * self.cfg.recv_depth_per_peer * si;
        for k in 0..self.cfg.recv_depth_per_peer {
            let offset = base + k * self.message_size;
            self.qps[si].post_recv_untimed(RecvWr {
                wr_id: offset as u64,
                mr: self.pool_mr.clone(),
                offset,
                len: self.message_size,
            })?;
        }
        let credit = {
            let mut posted = self.posted.lock();
            posted[si] = self.cfg.recv_depth_per_peer as u64;
            posted[si]
        };
        // Bootstrap happens outside the measured window, at virtual 0.
        let lane = credit_lane(&credit_slot);
        self.audit
            .credit_lane(lane, Some(self.cfg.credit_writeback_frequency as u64));
        self.audit.receives_posted(lane, credit, 0);
        self.audit.credit_granted(lane, credit, 0);
        Ok(credit)
    }
}

impl ReceiveEndpoint for SrRcReceiveEndpoint {
    fn id(&self) -> EndpointId {
        self.id
    }

    fn get_data(&self, sim: &SimContext) -> Result<Option<Delivery>> {
        let deadline = sim.now() + self.cfg.stall_timeout;
        let mut backoff = Backoff::new(self.cfg.poll_interval * 16);
        loop {
            if let Some(d) = self.pending.lock().pop_front() {
                return Ok(Some(d));
            }
            if self.all_depleted.load(Ordering::SeqCst) && self.recv_cq.depth() == 0 {
                // Deliveries a concurrent drainer is still decoding will be
                // handed out by that thread's own later calls; this caller
                // is done once the outstanding credit write-backs complete
                // cleanly (a swallowed control completion surfaces here).
                self.finish_ctrl(sim)?;
                return Ok(None);
            }
            let mut scratch = self.recv_scratch.take();
            let n = self
                .recv_cq
                .drain_into(sim, &mut scratch, CQ_BATCH, backoff.next());
            let result = self.process_recv_batch(sim, &scratch);
            self.recv_scratch.put(scratch);
            result?;
            if n > 0 {
                backoff.reset();
            } else if sim.now() >= deadline && !self.all_depleted.load(Ordering::SeqCst) {
                return Err(ShuffleError::Stalled("receive endpoint made no progress"));
            }
        }
    }

    fn release(
        &self,
        sim: &SimContext,
        _remote: u64,
        local: Buffer,
        src: EndpointId,
    ) -> Result<()> {
        let si = {
            let map = self.src_by_endpoint.lock();
            *map.get(&src.0).ok_or_else(|| {
                ShuffleError::Config(format!("release for unknown source {src:?}"))
            })?
        };
        self.audit.released(buf_id(&local), sim.now().as_nanos());
        self.recycle_slot(sim, si, &local)
    }

    fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    fn registered_bytes(&self) -> usize {
        self.pool_mr.len()
    }

    fn charge_setup(&self, sim: &SimContext) {
        sim.sleep(self.setup_cost);
    }
}

impl SrRcReceiveEndpoint {
    /// Reposts `local`'s slot on connection `si` and runs the credit
    /// write-back protocol for it — the shared tail of the normal
    /// [`ReceiveEndpoint::release`] path and the stale-epoch drop path
    /// (which recycles without delivering).
    fn recycle_slot(&self, sim: &SimContext, si: usize, local: &Buffer) -> Result<()> {
        if self.depleted.lock()[si] {
            // The source announced end-of-stream on this connection: no
            // further Send can arrive, so reposting a receive and writing
            // back credit would be pure tail overhead whose completions
            // `finish_ctrl` would then have to sit out at end of stream.
            return Ok(());
        }
        // Repost the buffer on the connection it came from.
        self.qps[si].post_recv(
            sim,
            RecvWr {
                wr_id: local.offset() as u64,
                mr: local.region().clone(),
                offset: local.offset(),
                len: local.window(),
            },
        )?;
        let slot = self.credit_remote.lock()[si];
        // The write-back decision, the audited receive count and the
        // audited grant must be one atomic step: with several receiver
        // threads releasing concurrently, interleaving the hooks would
        // let the auditor observe `posted` running ahead of `granted` by
        // more than one write-back period even though no write-back was
        // lost. The RDMA write itself stays outside the lock.
        let (credit_now, write_back) = {
            let mut posted = self.posted.lock();
            posted[si] += 1;
            let credit_now = posted[si];
            let write_back = {
                let mut releases = self.releases.lock();
                releases[si] += 1;
                releases[si].is_multiple_of(self.cfg.credit_writeback_frequency)
            };
            // A saboteur may swallow exactly one write-back: the protocol
            // "forgets" to announce credit and only the auditor's gap check
            // can notice, because absolute credit self-heals (§4.4.1).
            #[cfg(feature = "saboteur")]
            let write_back = write_back
                && !crate::sabotage::take(crate::sabotage::Sabotage::SkipCreditWriteback);
            if let Some(slot) = &slot {
                let lane = credit_lane(slot);
                let now = sim.now().as_nanos();
                self.audit.receives_posted(lane, 1, now);
                if write_back {
                    self.audit.credit_granted(lane, credit_now, now);
                }
            }
            (credit_now, write_back)
        };
        if write_back {
            let slot = slot
                .ok_or_else(|| ShuffleError::Config("credit slot not bootstrapped".into()))?;
            self.post_credit_write(sim, si, slot, credit_now)?;
        }
        // Lazily drain credit-write completions so the control CQ does not
        // grow without bound — through the handled path, so an errored
        // write-back surfaces instead of being swallowed.
        if self.ctrl_cq.depth() > 8 {
            self.drain_ctrl(sim)?;
        }
        Ok(())
    }

    /// Decodes a batch of receive completions into [`Delivery`]s on the
    /// pending queue. Depleted flags are flipped only *after* the matching
    /// delivery is queued, so `all_depleted` can never race ahead of a
    /// delivery that is still being decoded from the same batch.
    fn process_recv_batch(&self, sim: &SimContext, batch: &[Completion]) -> Result<()> {
        for c in batch {
            if c.status != WcStatus::Success {
                return Err(ShuffleError::CompletionError("receive completed in error"));
            }
            let mut buf =
                Buffer::try_new(self.pool_mr.clone(), c.wr_id as usize, self.message_size)?;
            let header = buf.read_header()?;
            if header.kind != MsgKind::Data {
                return Err(ShuffleError::Corrupt(
                    "RC data connection delivered a non-data message".into(),
                ));
            }
            buf.set_len(header.payload_len as usize)?;
            let si = *self.src_index.get(&c.src_node).ok_or_else(|| {
                ShuffleError::Corrupt(format!("completion from unknown source node {}", c.src_node))
            })?;
            if header.epoch != self.cfg.epoch {
                // A leftover from a fenced-off flow attempt: recycle the
                // slot (repost + credit) without delivering or counting.
                self.obs.stale_drop();
                self.recycle_slot(sim, si, &buf)?;
                continue;
            }
            self.bytes_received
                .fetch_add(header.payload_len as u64, Ordering::Relaxed);
            self.obs.received(header.payload_len as u64);
            self.src_by_endpoint.lock().entry(header.src).or_insert(si);
            self.audit.delivered(buf_id(&buf), sim.now().as_nanos());
            let state = header.state;
            self.pending.lock().push_back(Delivery {
                state,
                src: EndpointId(header.src),
                src_tid: header.src_tid,
                remote: 0,
                local: buf,
            });
            if state == StreamState::Depleted {
                let mut depleted = self.depleted.lock();
                depleted[si] = true;
                if depleted.iter().all(|&d| d) {
                    self.all_depleted.store(true, Ordering::SeqCst);
                }
                drop(depleted);
                // Depletion closes the lane: releases stop recycling, so
                // this is the auditor's last chance to see a write-back
                // boundary that was reached but never announced.
                if let Some(slot) = &self.credit_remote.lock()[si] {
                    self.audit
                        .credit_lane_closed(credit_lane(slot), sim.now().as_nanos());
                }
            }
        }
        Ok(())
    }

    /// Drains whatever is queued on the control CQ through the handled
    /// path (non-blocking beyond the poll charge).
    fn drain_ctrl(&self, sim: &SimContext) -> Result<()> {
        let mut scratch = self.ctrl_scratch.take();
        self.ctrl_cq.poll_into(sim, &mut scratch, CQ_BATCH);
        let result = self.process_ctrl_batch(&scratch);
        self.ctrl_scratch.put(scratch);
        result
    }

    fn process_ctrl_batch(&self, batch: &[Completion]) -> Result<()> {
        for c in batch {
            // A saboteur may swallow control completions the way the old
            // code did (`let _ = ctrl_cq.poll(..)`): the outstanding count
            // then never drains and `finish_ctrl` reports a typed stall.
            #[cfg(feature = "saboteur")]
            if crate::sabotage::take(crate::sabotage::Sabotage::SwallowCtrlCompletion) {
                continue;
            }
            if c.status != WcStatus::Success {
                return Err(ShuffleError::CompletionError(
                    "credit write-back completed in error",
                ));
            }
            if c.opcode != WcOpcode::Write {
                return Err(ShuffleError::CompletionError(
                    "unexpected opcode on the credit control CQ",
                ));
            }
            if self.ctrl_outstanding.fetch_sub(1, Ordering::SeqCst) == 0 {
                return Err(ShuffleError::CompletionError(
                    "credit control CQ delivered more completions than writes posted",
                ));
            }
        }
        Ok(())
    }

    /// Blocks until every posted credit write-back has completed cleanly.
    /// Called once per `get_data` caller at end of stream; a write-back
    /// whose completion was lost or errored turns into a typed error here
    /// instead of silently leaking CQ entries.
    fn finish_ctrl(&self, sim: &SimContext) -> Result<()> {
        if self.ctrl_outstanding.load(Ordering::SeqCst) == 0 && self.ctrl_cq.depth() == 0 {
            return Ok(());
        }
        let deadline = sim.now() + self.cfg.stall_timeout;
        let mut backoff = Backoff::new(self.cfg.poll_interval * 4);
        loop {
            let mut scratch = self.ctrl_scratch.take();
            let n = self
                .ctrl_cq
                .drain_into(sim, &mut scratch, CQ_BATCH, backoff.next());
            let result = self.process_ctrl_batch(&scratch);
            self.ctrl_scratch.put(scratch);
            result?;
            if self.ctrl_outstanding.load(Ordering::SeqCst) == 0 {
                return Ok(());
            }
            if n > 0 {
                backoff.reset();
            } else if sim.now() >= deadline {
                return Err(ShuffleError::Stalled(
                    "credit write-back completions never arrived",
                ));
            }
        }
    }
    /// RDMA-Writes the absolute credit value into the sender's credit slot.
    ///
    /// The paper inlines the credit in the work request to save a DMA fetch
    /// (§4.4.1); the simulator models that by sourcing the 8 bytes from a
    /// scratch slot without tracking its reuse.
    fn post_credit_write(
        &self,
        sim: &SimContext,
        si: usize,
        slot: RemoteAddr,
        credit: u64,
    ) -> Result<()> {
        let seq = self.wr_seq.fetch_add(1, Ordering::Relaxed);
        let off = (seq % 64) as usize * 8;
        self.scratch_mr.write_u64(off, credit)?;
        // The grant was already audited under the `posted` lock in
        // `release`; auditing it again here would reorder grants across
        // threads.
        self.ctrl_outstanding.fetch_add(1, Ordering::SeqCst);
        self.qps[si].post_write(sim, u64::MAX - seq, (self.scratch_mr.clone(), off), slot, 8)?;
        Ok(())
    }
}
